//! **bookmarking-gc** — a reproduction of *Garbage Collection Without
//! Paging* (Hertz, Feng & Berger, PLDI 2005).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`simtime`] — deterministic simulated time, cost model, pause logs,
//!   bounded mutator utilization.
//! * [`vmm`] — a Linux-2.4-style virtual memory manager simulator with the
//!   paper's cooperation extensions (eviction notices, `vm_relinquish`).
//! * [`heap`] — the heap substrate: superpages, segregated size classes,
//!   object model, large-object space, write buffers and card table.
//! * [`collectors`] — the five baseline collectors the paper evaluates
//!   against (MarkSweep, SemiSpace, GenCopy, GenMS, CopyMS).
//! * [`bookmarking`] — the paper's contribution: the bookmarking collector.
//! * [`workloads`] — synthetic benchmark programs calibrated to Table 1.
//! * [`simulate`] — the discrete-event engine and experiment runners for
//!   every table and figure in the paper.
//!
//! # Quickstart
//!
//! ```
//! use bookmarking_gc::bookmarking::{BcOptions, Bookmarking};
//! use bookmarking_gc::heap::{AllocKind, CollectKind, GcHeap, HeapConfig, MemCtx};
//! use bookmarking_gc::simtime::{Clock, CostModel};
//! use bookmarking_gc::vmm::{Vmm, VmmConfig};
//!
//! # fn main() -> Result<(), bookmarking_gc::heap::OutOfMemory> {
//! let mut vmm = Vmm::new(VmmConfig::builder().memory_bytes(64 << 20).build(), CostModel::default());
//! let mut clock = Clock::new();
//! let pid = vmm.register_process();
//! let mut gc = Bookmarking::new(HeapConfig::builder().heap_bytes(8 << 20).build(), BcOptions::default());
//! gc.register(&mut vmm, pid);
//! let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
//! let list = gc.alloc(&mut ctx, AllocKind::Scalar { data_words: 3, num_refs: 1 })?;
//! gc.collect(&mut ctx, CollectKind::Full);
//! gc.drop_handle(list);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end run of the bookmarking
//! collector under memory pressure, and the `bench` crate's `figures`
//! binary for the paper's full evaluation.

pub use bookmarking;
pub use collectors;
pub use heap;
pub use simtime;
pub use simulate;
pub use vmm;
pub use workloads;
