//! `gcsim` — run one benchmark/collector/pressure configuration and print
//! its metrics.
//!
//! ```text
//! gcsim --collector bc --benchmark pseudoJBB --heap 100M --memory 224M \
//!       --pressure dynamic:93M --scale 0.1 --seed 42
//! gcsim --list
//! ```
//!
//! Sizes accept `K`/`M`/`G` suffixes and are *paper-equivalent*: they are
//! multiplied by `--scale` along with the workload volume, so the
//! heap-to-live geometry matches the paper at any scale.

use heap::SanitizeLevel;
use simtime::{bmu_curve, Nanos};
use simulate::{run, CollectorKind, PolicyKind, Program, RunConfig};
use telemetry::{JsonlSink, Tracer};
use workloads::{spec, table1};

#[derive(Debug)]
struct Args {
    collector: CollectorKind,
    benchmark: String,
    heap: usize,
    memory: usize,
    pressure: Option<Pressure>,
    policy: Option<PolicyKind>,
    scale: f64,
    seed: u64,
    bmu: bool,
    trace: Option<std::path::PathBuf>,
    sanitize: SanitizeLevel,
    gc_threads: usize,
}

#[derive(Debug)]
enum Pressure {
    /// `steady:<fraction>` — pin this fraction of the heap immediately.
    Steady(f64),
    /// `dynamic:<available>` — ramp until this much memory remains.
    Dynamic(usize),
}

fn parse_size(s: &str) -> Result<usize, String> {
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1usize << 10),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1 << 20),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<f64>()
        .map(|v| (v * mult as f64) as usize)
        .map_err(|e| format!("bad size '{s}': {e}"))
}

fn parse_collector(s: &str) -> Result<CollectorKind, String> {
    let lower = s.to_ascii_lowercase();
    Ok(match lower.as_str() {
        "bc" => CollectorKind::Bc,
        "bc-resize" | "resize" => CollectorKind::BcResizeOnly,
        "marksweep" | "ms" => CollectorKind::MarkSweep,
        "semispace" | "ss" => CollectorKind::SemiSpace,
        "gencopy" => CollectorKind::GenCopy,
        "genms" => CollectorKind::GenMs,
        "copyms" => CollectorKind::CopyMs,
        "gencopy-fixed" => CollectorKind::GenCopyFixed,
        "genms-fixed" => CollectorKind::GenMsFixed,
        _ => return Err(format!("unknown collector '{s}'")),
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: gcsim [--collector C] [--benchmark B] [--heap SIZE] [--memory SIZE]
             [--pressure steady:FRAC|dynamic:AVAIL] [--policy P] [--scale F]
             [--seed N] [--bmu] [--trace OUT.jsonl] [--sanitize off|checks|full]
             [--gc-threads N]
       gcsim --list

  Sizes are paper-equivalent (scaled by --scale). Collectors:
  bc, bc-resize, marksweep, semispace, gencopy, genms, copyms,
  gencopy-fixed, genms-fixed.
  --policy picks the heap-sizing policy: fixed (each collector's
  default), bc-footprint (pressure-driven shrink-to-footprint), or
  membalancer (sqrt-rule sizing from allocation and trace rates).
  --trace streams every GC/VMM event to OUT.jsonl (see DESIGN.md for
  the schema).
  --sanitize enables the heap sanitizer: 'checks' poisons free cells
  and audits space metadata; 'full' additionally shadow-re-traces the
  heap after every collection. Verification only -- results are
  unchanged; invariant violations abort with a 'sanitize:' panic.
  --gc-threads N traces with N simulated GC workers (deterministic
  work-stealing over work packets); the pause is charged as the
  critical path over workers. N=1 (the default) is the sequential
  tracer, byte-for-byte."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        collector: CollectorKind::Bc,
        benchmark: "pseudoJBB".into(),
        heap: 100 << 20,
        memory: 224 << 20,
        pressure: None,
        policy: None,
        scale: 0.1,
        seed: 42,
        bmu: false,
        trace: None,
        sanitize: SanitizeLevel::Off,
        gc_threads: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--list" => {
                println!("benchmarks (Table 1):");
                for b in table1() {
                    println!(
                        "  {:<16} {:>12} bytes allocated, min heap {:>9}",
                        b.name, b.paper_total_alloc, b.paper_min_heap
                    );
                }
                std::process::exit(0);
            }
            "--collector" => {
                args.collector = parse_collector(&value()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--benchmark" => args.benchmark = value(),
            "--heap" => {
                args.heap = parse_size(&value()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--memory" => {
                args.memory = parse_size(&value()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--pressure" => {
                let v = value();
                args.pressure = Some(match v.split_once(':') {
                    Some(("steady", f)) => Pressure::Steady(f.parse().unwrap_or_else(|_| {
                        eprintln!("bad fraction in '{v}'");
                        usage()
                    })),
                    Some(("dynamic", a)) => Pressure::Dynamic(parse_size(a).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        usage()
                    })),
                    _ => {
                        eprintln!("bad pressure spec '{v}'");
                        usage()
                    }
                });
            }
            "--policy" => {
                let v = value();
                args.policy = Some(PolicyKind::from_flag(&v).unwrap_or_else(|| {
                    eprintln!("unknown policy '{v}' (try fixed, bc-footprint, membalancer)");
                    usage()
                }));
            }
            "--scale" => args.scale = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--bmu" => args.bmu = true,
            "--gc-threads" => args.gc_threads = value().parse().unwrap_or_else(|_| usage()),
            "--trace" => args.trace = Some(std::path::PathBuf::from(value())),
            "--sanitize" => {
                let v = value();
                args.sanitize = SanitizeLevel::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown sanitize level '{v}' (try off, checks, full)");
                    usage()
                });
            }
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let Some(benchmark) = spec(&args.benchmark) else {
        eprintln!("unknown benchmark '{}'; try --list", args.benchmark);
        std::process::exit(2);
    };
    let scale = args.scale;
    let seed = args.seed;
    let scaled = |paper: usize| ((paper as f64 * scale) as usize).max(1 << 20);
    let heap = scaled(args.heap);
    let memory = scaled(args.memory);
    let make = move || -> Box<dyn Program> { Box::new(benchmark.program(scale, seed)) };

    let tracer = match &args.trace {
        Some(path) => {
            let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create trace file {}: {e}", path.display());
                std::process::exit(2);
            });
            Tracer::new(Box::new(sink))
        }
        None => Tracer::disabled(),
    };

    let mut config = match args.pressure {
        None => RunConfig::new(args.collector, heap, memory),
        Some(Pressure::Steady(frac)) => {
            simulate::experiments::steady_pressure_config(args.collector, heap, memory, frac)
        }
        Some(Pressure::Dynamic(avail)) => simulate::experiments::dynamic_pressure_config(
            args.collector,
            heap,
            memory,
            scaled(avail),
            scale,
        ),
    };
    config.tracer = tracer.clone();
    config.policy = args.policy;
    config.sanitize = args.sanitize;
    config.gc_threads = args.gc_threads;
    let result = run(&config, make());
    tracer.flush();
    if let Some(path) = &args.trace {
        println!("trace            {}", path.display());
    }

    println!("collector        {}", args.collector);
    if let Some(policy) = args.policy {
        println!("policy           {policy}");
    }
    if args.sanitize != SanitizeLevel::Off {
        println!("sanitizer        {}", args.sanitize);
    }
    if args.gc_threads > 1 {
        println!(
            "gc threads       {} ({} packets drained, {} stolen)",
            args.gc_threads, result.gc.trace_packets, result.gc.trace_steals
        );
    }
    println!("benchmark        {}", result.benchmark);
    println!(
        "scale            {} (heap {} bytes, memory {} bytes simulated)",
        args.scale, heap, memory
    );
    println!(
        "status           {}",
        if result.oom {
            "OUT OF MEMORY"
        } else if result.timed_out {
            "TIMED OUT"
        } else {
            "completed"
        }
    );
    println!("execution time   {}", result.exec_time);
    println!(
        "pauses           {} total, mean {}, max {}",
        result.pauses.count, result.pauses.mean, result.pauses.max
    );
    {
        let mut log = simtime::PauseLog::new();
        for r in &result.pause_records {
            log.record(r.start, r.duration, r.kind, r.major_faults);
        }
        let p = log.percentiles();
        println!(
            "pause pctiles    p50 {}, p90 {}, p99 {}",
            p.p50, p.p90, p.p99
        );
    }
    let g = &result.gc;
    println!(
        "collections      {} nursery, {} full ({} compacting, {} fail-safe)",
        g.nursery_gcs, g.full_gcs, g.compacting_gcs, g.failsafe_gcs
    );
    println!(
        "allocation       {} objects, {} bytes",
        g.objects_allocated, g.bytes_allocated
    );
    let v = &result.vm;
    println!(
        "paging           {} major faults ({} during pauses), {} evictions ({} hard)",
        v.major_faults, result.pauses.major_faults, v.evictions, v.hard_evictions
    );
    println!(
        "cooperation      {} notices, {} discards, {} relinquished, {} bookmarks set, {} cleared",
        v.notices, g.pages_discarded, g.pages_relinquished, g.bookmarks_set, g.bookmarks_cleared
    );
    println!(
        "heap sizing      {} shrinks, {} grows, peak {} pages",
        g.heap_shrinks, g.heap_regrows, result.metrics.heap_pages_peak
    );
    if args.bmu {
        println!("bounded mutator utilization:");
        for p in bmu_curve(&result.pause_records, result.exec_time, 12) {
            println!("  w={:<10} u={:.3}", p.window.to_string(), p.utilization);
        }
        let _ = Nanos::ZERO;
    }
}
