//! Two JVMs on one machine — the paper's Figure 7 scenario.
//!
//! ```text
//! cargo run --release --example multi_jvm
//! ```
//!
//! Starts two simulated JVM instances running the pseudoJBB analogue with
//! equal heaps on one shared machine, then shrinks the machine and repeats.
//! With the oblivious collectors, "paging effectively serializes the
//! benchmark runs … first one instance of pseudoJBB runs to completion, and
//! then the next" (§5.3.3); BC's instances degrade together gracefully.

use simulate::experiments::multi_jvm;
use simulate::{CollectorKind, Program};
use workloads::spec;

fn main() {
    let scale = 0.05;
    let benchmark = spec("pseudoJBB").expect("pseudoJBB");
    let make = || -> Box<dyn Program> { Box::new(benchmark.program(scale, 7)) };
    let heap = (77 << 20) / 20; // paper-equivalent 77 MB heaps (as in Fig. 7)

    for (label, paper_memory) in [("ample", 256usize << 20), ("tight", 140 << 20)] {
        let memory = paper_memory / 20;
        println!(
            "== two pseudoJBB instances, 77MB-equivalent heaps, {label} machine ({}MB-equivalent) ==",
            paper_memory >> 20
        );
        for kind in [
            CollectorKind::Bc,
            CollectorKind::GenMs,
            CollectorKind::CopyMs,
        ] {
            let r = multi_jvm(kind, heap, memory, &make);
            let finishes: Vec<String> = r.jvms.iter().map(|j| j.exec_time.to_string()).collect();
            let spread = {
                let a = r.jvms[0].exec_time.as_nanos() as f64;
                let b = r.jvms[1].exec_time.as_nanos() as f64;
                (a.max(b) / a.min(b) - 1.0) * 100.0
            };
            let pauses: u64 = r.jvms.iter().map(|j| j.pauses.count).sum();
            let faults: u64 = r.jvms.iter().map(|j| j.vm.major_faults).sum();
            println!(
                "  {:<10} total {:>9}  per-instance finishes [{}] (spread {:.0}%)  pauses {:>5}  faults {:>6}",
                kind.label(),
                r.total_elapsed.to_string(),
                finishes.join(", "),
                spread,
                pauses,
                faults,
            );
        }
        println!();
    }
}
