//! Collector shootout: the paper's headline comparison in one example.
//!
//! ```text
//! cargo run --release --example collector_shootout
//! ```
//!
//! Runs the pseudoJBB analogue on every collector twice — once with ample
//! memory, once while `signalmem` dynamically pins most of it — and prints
//! execution time, average pause, and major faults. Without pressure the
//! collectors are close; with it, the VM-oblivious collectors fall off a
//! cliff while BC barely moves (the paper's Figures 4–5).

use simtime::Nanos;
use simulate::experiments::dynamic_pressure;
use simulate::{run, CollectorKind, Program, RunConfig};
use workloads::spec;

fn main() {
    let scale = 0.05; // 5% of the paper's allocation volume: a few seconds
    let benchmark = spec("pseudoJBB").expect("pseudoJBB");
    let make = || -> Box<dyn Program> { Box::new(benchmark.program(scale, 42)) };
    let heap = (100 << 20) / 20; // paper-equivalent 100 MB heap
    let memory = (224 << 20) / 20; // paper-equivalent 224 MB machine
    let tight = (60 << 20) / 20; // paper-equivalent 60 MB available

    println!(
        "pseudoJBB at {:.0}% volume, heap {} MiB, machine {} MiB",
        scale * 100.0,
        heap >> 20,
        memory >> 20
    );
    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>9}   {:>12} {:>12} {:>9}",
        "collector", "calm time", "calm pause", "faults", "squeezed", "sq. pause", "faults"
    );
    for kind in [
        CollectorKind::Bc,
        CollectorKind::BcResizeOnly,
        CollectorKind::GenMs,
        CollectorKind::GenCopy,
        CollectorKind::CopyMs,
        CollectorKind::SemiSpace,
    ] {
        let calm = run(&RunConfig::new(kind, heap, memory), make());
        let squeezed = dynamic_pressure(kind, heap, memory, tight, scale, &make);
        println!(
            "{:<22} {:>12} {:>12} {:>9}   {:>12} {:>12} {:>9}",
            kind.label(),
            fmt(calm.exec_time, calm.ok()),
            fmt(calm.pauses.mean, true),
            calm.vm.major_faults,
            fmt(squeezed.exec_time, squeezed.ok()),
            fmt(squeezed.pauses.mean, true),
            squeezed.vm.major_faults,
        );
    }
    println!();
    println!("(\"squeezed\": signalmem ramps its pinned memory until only a");
    println!(" paper-equivalent 60 MB remains; the paper's Figures 4 and 5.)");
}

fn fmt(t: Nanos, ok: bool) -> String {
    if ok {
        t.to_string()
    } else {
        "FAILED".into()
    }
}
