//! A guided tour of the VMM-cooperation API (§3.3–§3.4, §4.1) — the
//! simulated analogue of the paper's 600-line Linux kernel extension.
//!
//! ```text
//! cargo run --release --example vm_cooperation
//! ```
//!
//! Drives the [`vmm::Vmm`] directly (no collector) to show each primitive:
//! eviction notices with a grace period, rescue-by-touch, discarding via
//! `madvise(MADV_DONTNEED)`, voluntary surrender via `vm_relinquish`, the
//! `mprotect` race guard, and reload notifications.

use simtime::{Clock, CostModel};
use vmm::{Access, VirtPage, VmEvent, Vmm, VmmConfig};

fn main() {
    let config = VmmConfig::builder()
        .frames(64)
        .low_watermark(8)
        .high_watermark(16)
        .build();
    let mut vmm = Vmm::new(config, CostModel::default());
    let mut clock = Clock::new();
    let runtime = vmm.register_process();
    vmm.register_notifications(runtime); // the §4.1 registration
    let hog = vmm.register_process();

    // The runtime touches 40 pages; the hog pins 20: 64-60 = 4 < the low
    // watermark, so reclaim begins.
    for p in 0..40 {
        vmm.touch(runtime, VirtPage::new(p), Access::Write, &mut clock);
    }
    for p in 0..20 {
        vmm.mlock(hog, VirtPage::new(p), &mut clock);
    }
    println!("free frames before reclaim: {}", vmm.free_frames());

    // kswapd runs: registered processes get notices *before* eviction.
    for _ in 0..3 {
        vmm.pump(&mut clock);
    }
    let mut events = Vec::new();
    vmm.drain_events_into(runtime, &mut events);
    let notices: Vec<VirtPage> = events
        .drain(..)
        .filter_map(|e| match e {
            VmEvent::EvictionScheduled { page } => Some(page),
            _ => None,
        })
        .collect();
    println!(
        "eviction notices received for {} pages: {:?}",
        notices.len(),
        &notices[..notices.len().min(4)]
    );
    assert!(!notices.is_empty());

    // Rescue the first page by touching it; the grace period saves it.
    let rescued = notices[0];
    vmm.touch(runtime, rescued, Access::Read, &mut clock);
    // Voluntarily surrender the second (after "scanning" it), guarded by
    // mprotect against the touched-before-evicted race.
    let surrendered = notices[1];
    vmm.mprotect(runtime, &[surrendered], true, &mut clock);
    vmm.vm_relinquish(runtime, &[surrendered], &mut clock);
    // Discard a third outright: it is empty, nothing needs writing back.
    let discarded = notices[2];
    vmm.madvise_dontneed(runtime, &[discarded], &mut clock);

    vmm.pump(&mut clock);
    vmm.pump(&mut clock);
    println!(
        "rescued {rescued}: resident={} | surrendered {surrendered}: resident={} | discarded {discarded}: resident={}",
        vmm.is_resident(runtime, rescued),
        vmm.is_resident(runtime, surrendered),
        vmm.is_resident(runtime, discarded),
    );
    assert!(vmm.is_resident(runtime, rescued));
    assert!(!vmm.is_resident(runtime, surrendered));
    assert!(!vmm.is_resident(runtime, discarded));

    // Touching the surrendered page faults it back from swap (~5 ms) and
    // the kernel notifies the runtime so it can clear bookmarks (§3.4.2).
    let t0 = clock.now();
    let outcome = vmm.touch(runtime, surrendered, Access::Read, &mut clock);
    println!(
        "reload of {surrendered}: major_fault={} cost={} events={:?}",
        outcome.major_fault,
        clock.now() - t0,
        {
            events.clear();
            vmm.drain_events_into(runtime, &mut events);
            &events
        }
    );
    assert!(outcome.major_fault);

    // The discarded page comes back as zeroes with only a minor fault.
    let t0 = clock.now();
    let outcome = vmm.touch(runtime, discarded, Access::Read, &mut clock);
    println!(
        "reload of {discarded}: zero_filled={} cost={}",
        outcome.zero_filled,
        clock.now() - t0
    );
    assert!(outcome.zero_filled && !outcome.major_fault);

    let s = vmm.stats(runtime);
    println!(
        "stats: {} notices, {} evictions, {} discards, {} major faults",
        s.notices, s.evictions, s.discards, s.major_faults
    );
}
