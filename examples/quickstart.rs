//! Quickstart: run the bookmarking collector under memory pressure and
//! watch it cooperate with the virtual memory manager.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a 64 MiB machine, gives a BC heap 16 MiB, runs a
//! small allocation workload, then pins most of physical memory (as the
//! paper's `signalmem` does) and keeps mutating. BC reacts by discarding
//! empty pages, shrinking its heap to the new footprint, and — once nothing
//! empty remains — bookmarking and surrendering pages, so its collections
//! keep running without page faults.

use bookmarking::{BcOptions, Bookmarking};
use heap::{AllocKind, CollectKind, GcHeap, Handle, HeapConfig, MemCtx};
use simtime::{Clock, CostModel};
use vmm::{Vmm, VmmConfig};

fn main() {
    // A 64 MiB machine shared by the collector and a memory hog.
    let mut vmm = Vmm::new(
        VmmConfig::builder().memory_bytes(64 << 20).build(),
        CostModel::default(),
    );
    let mut clock = Clock::new();
    let pid = vmm.register_process();
    let hog = vmm.register_process();

    // The bookmarking collector with a 16 MiB heap, registered for paging
    // notifications (the paper's §4.1 kernel extension).
    let mut gc = Bookmarking::new(
        HeapConfig::builder().heap_bytes(16 << 20).build(),
        BcOptions::default(),
    );
    gc.register(&mut vmm, pid);

    // Build a linked structure: 100k nodes, ~2 MiB live.
    let head = {
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let head = gc
            .alloc(
                &mut ctx,
                AllocKind::Scalar {
                    data_words: 3,
                    num_refs: 1,
                },
            )
            .expect("allocate list head");
        let mut cur = gc.dup_handle(head);
        for _ in 1..100_000 {
            let node = gc
                .alloc(
                    &mut ctx,
                    AllocKind::Scalar {
                        data_words: 3,
                        num_refs: 1,
                    },
                )
                .expect("allocate list node");
            gc.write_ref(&mut ctx, cur, 0, Some(node));
            gc.drop_handle(cur);
            cur = node;
        }
        gc.drop_handle(cur);
        gc.collect(&mut ctx, CollectKind::Full);
        head
    };
    println!(
        "built a 100k-node list; heap uses {} pages, {} collections so far",
        gc.heap_pages_used(),
        gc.stats().total_gcs()
    );

    // Now squeeze: the hog pins memory one page at a time (signalmem-style)
    // while the collector keeps reacting to eviction notices.
    // Pin until free memory falls well below the reclaim watermark
    // (the machine has 16384 frames; reclaim starts under 256 free).
    let mut pinned = 0u32;
    while pinned < 16_300 && vmm.free_frames() > 96 {
        vmm.mlock(hog, vmm::VirtPage::new(pinned), &mut clock);
        pinned += 1;
        if pinned.is_multiple_of(16) {
            vmm.pump(&mut clock);
            let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
            gc.handle_vm_events(&mut ctx);
        }
    }
    let s = gc.stats();
    println!("pinned {pinned} pages of the machine; under pressure BC:");
    println!(
        "  - discarded {} empty pages back to the OS",
        s.pages_discarded
    );
    println!(
        "  - shrank its heap {} times (now {} bytes)",
        s.heap_shrinks,
        gc.current_heap_budget()
    );
    println!(
        "  - bookmark-scanned {} pages, set {} bookmarks, relinquished {} pages",
        s.pages_bookmark_scanned, s.bookmarks_set, s.pages_relinquished
    );
    println!("  - {} heap pages are now evicted", gc.evicted_heap_pages());

    // The headline property: a full-heap collection with evicted pages
    // takes ZERO page faults.
    let faults_before = vmm.stats(pid).major_faults;
    {
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        gc.collect(&mut ctx, CollectKind::Full);
    }
    let gc_faults = vmm.stats(pid).major_faults - faults_before;
    println!(
        "full-heap collection with {} pages evicted took {gc_faults} page faults",
        gc.evicted_heap_pages()
    );
    assert_eq!(gc_faults, 0, "BC's collections must not page");

    // The data is still all there (walking it *does* fault pages back in —
    // that is mutator paging, which no collector can prevent).
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
    let mut len = 1;
    let mut cur: Handle = gc.dup_handle(head);
    while let Some(next) = gc.read_ref(&mut ctx, cur, 0) {
        gc.drop_handle(cur);
        cur = next;
        len += 1;
    }
    gc.drop_handle(cur);
    println!("walked the list after the squeeze: {len} nodes intact");
    assert_eq!(len, 100_000);
    println!("simulated time elapsed: {}", clock.now());
}
