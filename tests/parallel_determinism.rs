//! The parallel experiment scheduler must be invisible in the output:
//! every figure cell is an independent deterministic simulation, assembled
//! by cell index, so any `--jobs` value renders byte-identical reports.

use bench::pressure_figs::fig5a_report;
use bench::{fig2_report, Params};

fn quick_with_jobs(jobs: usize) -> Params {
    let mut p = Params::quick();
    p.jobs = jobs;
    p
}

#[test]
fn fig2_report_is_identical_serial_and_parallel() {
    let serial = fig2_report(&quick_with_jobs(1));
    let parallel = fig2_report(&quick_with_jobs(4));
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn fig5a_report_is_identical_serial_and_parallel() {
    let serial = fig5a_report(&quick_with_jobs(1));
    let parallel = fig5a_report(&quick_with_jobs(4));
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.to_csv(), parallel.to_csv());
}
