//! Sanitizer self-tests: four seeded collector bugs, each tripping its
//! own distinct `sanitize:` error, plus clean-run controls proving the
//! detectors stay silent on correct collectors.
//!
//! Every faulted run arms exactly one [`InjectFault`] through
//! `RunConfig::sanitize_fault`; the collector consumes it once at its
//! injection site (a dropped remembered-set record, a cleared mark bit, a
//! skipped bookmark pass, a stale forwarding address). The sanitizer at
//! [`SanitizeLevel::Full`] must then abort with the matching message —
//! these tests pin the messages as the sanitizer's user interface.

use heap::{AllocKind, CollectKind, GcHeap, Handle, MemCtx, OutOfMemory};
use simulate::experiments::dynamic_pressure_config;
use simulate::{
    run, CollectorKind, InjectFault, Program, ProgramStatus, RunConfig, RunResult, SanitizeLevel,
};
use workloads::spec;

fn program(scale: f64, seed: u64) -> Box<dyn Program> {
    Box::new(spec("pseudoJBB").unwrap().program(scale, seed))
}

/// One benchmark run at full sanitization with a single armed fault.
fn faulted(kind: CollectorKind, fault: InjectFault) -> RunResult {
    let mut config = RunConfig::new(kind, 2 << 20, 512 << 20);
    config.sanitize = SanitizeLevel::Full;
    config.sanitize_fault = Some(fault);
    run(&config, program(0.02, 42))
}

/// A mutator whose only path to one young object is a mature-space slot:
/// step 1 promotes `old` out of the nursery, step 2 stores a fresh nursery
/// object into `old`'s field and drops every other reference to it. With
/// the write-barrier record dropped by [`InjectFault::SkipBarrier`], the
/// next minor collection condemns the young object while `old` still
/// points at it — the exact bug class remembered sets exist to prevent.
struct OldToYoung {
    step: u32,
    old: Option<Handle>,
}

impl Program for OldToYoung {
    fn step(
        &mut self,
        gc: &mut dyn GcHeap,
        ctx: &mut MemCtx<'_>,
    ) -> Result<ProgramStatus, OutOfMemory> {
        let kind = AllocKind::Scalar {
            data_words: 4,
            num_refs: 1,
        };
        self.step += 1;
        match self.step {
            1 => {
                self.old = Some(gc.alloc(ctx, kind)?);
                gc.collect(ctx, CollectKind::Minor); // promote `old`
                Ok(ProgramStatus::Running)
            }
            2 => {
                let young = gc.alloc(ctx, kind)?;
                gc.write_ref(ctx, self.old.expect("step 1 ran"), 0, Some(young));
                gc.drop_handle(young);
                gc.collect(ctx, CollectKind::Minor); // shadow trace trips here
                Ok(ProgramStatus::Running)
            }
            _ => Ok(ProgramStatus::Finished),
        }
    }

    fn name(&self) -> &str {
        "old-to-young"
    }

    fn progress(&self) -> f64 {
        f64::from(self.step.min(3)) / 3.0
    }
}

/// GenMS drops one remembered-set record in its write barrier: the mature
/// slot keeps pointing at an uncopied nursery object after the trace, and
/// the shadow pass reports the unrecorded edge.
#[test]
#[should_panic(expected = "sanitize: missed barrier")]
fn genms_skipped_barrier_is_caught() {
    let mut config = RunConfig::new(CollectorKind::GenMs, 8 << 20, 512 << 20);
    config.sanitize = SanitizeLevel::Full;
    config.sanitize_fault = Some(InjectFault::SkipBarrier);
    let _ = run(&config, Box::new(OldToYoung { step: 0, old: None }));
}

/// MarkSweep clears the mark bit of one reachable object after tracing:
/// the after-trace shadow pass promises every reachable resident object is
/// marked and reports the cleared bit before the sweep frees the object.
#[test]
#[should_panic(expected = "sanitize: unmarked reachable")]
fn marksweep_cleared_mark_is_caught() {
    let _ = faulted(CollectorKind::MarkSweep, InjectFault::ClearMark);
}

/// SemiSpace returns the stale from-space address after copying one
/// object: some slot keeps referring to condemned space whose header is a
/// forwarding stub, and the shadow trace reports where the object went.
#[test]
#[should_panic(expected = "sanitize: dangling forward")]
fn semispace_dangling_forward_is_caught() {
    let _ = faulted(CollectorKind::SemiSpace, InjectFault::DanglingForward);
}

/// BC skips the bookmark pass for one evicted page: an outgoing reference
/// from that page has no incoming-bookmark summary, so after a reload the
/// collector would never find the edge. The bookmark-soundness scan after
/// the next full collection reports the missing summary.
#[test]
#[should_panic(expected = "sanitize: dropped bookmark")]
fn bc_dropped_bookmark_is_caught() {
    // The fault site sits on the eviction path, so the run needs real
    // memory pressure (the accounting tests' 1/50-paper geometry).
    let mut config = dynamic_pressure_config(
        CollectorKind::Bc,
        (100 << 20) / 50,
        (224 << 20) / 50,
        (60 << 20) / 50,
        0.02,
    );
    config.sanitize = SanitizeLevel::Full;
    config.sanitize_fault = Some(InjectFault::DropBookmark);
    let _ = run(&config, program(0.02, 42));
}

/// Control: with no fault armed, every Figure-2 collector completes a full
/// benchmark run under `SanitizeLevel::Full` without tripping anything.
#[test]
fn clean_runs_do_not_trip_the_sanitizer() {
    for kind in CollectorKind::FIGURE2 {
        let mut config = RunConfig::new(kind, 4 << 20, 512 << 20);
        config.sanitize = SanitizeLevel::Full;
        let r = run(&config, program(0.02, 42));
        assert!(r.ok(), "{kind}: sanitized clean run failed");
    }
}

/// Control: BC under the same memory pressure as the dropped-bookmark
/// test, with no fault armed — eviction, bookmarking, and reload all pass
/// the soundness scan.
#[test]
fn clean_bc_pressure_run_does_not_trip_the_sanitizer() {
    let mut config = dynamic_pressure_config(
        CollectorKind::Bc,
        (100 << 20) / 50,
        (224 << 20) / 50,
        (60 << 20) / 50,
        0.02,
    );
    config.sanitize = SanitizeLevel::Full;
    let r = run(&config, program(0.02, 42));
    assert!(r.ok(), "sanitized BC pressure run failed");
}
