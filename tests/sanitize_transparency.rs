//! The sanitizer is verification-only: a run at any [`SanitizeLevel`]
//! produces results identical to `Off`. The shadow trace reads raw memory
//! without charging the cost model, poisoning touches only free space, and
//! no hook advances the clock — so execution time, pause log, collection
//! counts, and paging counters must all match exactly.

use simulate::experiments::dynamic_pressure_config;
use simulate::{run, CollectorKind, Program, RunConfig, RunResult, SanitizeLevel};
use workloads::spec;

fn program(scale: f64, seed: u64) -> Box<dyn Program> {
    Box::new(spec("pseudoJBB").unwrap().program(scale, seed))
}

fn assert_identical(kind: CollectorKind, off: &RunResult, full: &RunResult) {
    assert_eq!(off.exec_time, full.exec_time, "{kind}: exec time diverged");
    assert_eq!(off.oom, full.oom, "{kind}: completion status diverged");
    assert_eq!(off.timed_out, full.timed_out, "{kind}: timeout diverged");
    assert_eq!(
        off.pauses.count, full.pauses.count,
        "{kind}: pause count diverged"
    );
    assert_eq!(
        off.pauses.total, full.pauses.total,
        "{kind}: pause total diverged"
    );
    assert_eq!(
        off.gc.full_gcs, full.gc.full_gcs,
        "{kind}: full-GC count diverged"
    );
    assert_eq!(
        off.gc.nursery_gcs, full.gc.nursery_gcs,
        "{kind}: nursery-GC count diverged"
    );
    assert_eq!(
        off.gc.bytes_allocated, full.gc.bytes_allocated,
        "{kind}: allocation volume diverged"
    );
    assert_eq!(
        off.vm.major_faults, full.vm.major_faults,
        "{kind}: major faults diverged"
    );
    assert_eq!(
        off.vm.evictions, full.vm.evictions,
        "{kind}: evictions diverged"
    );
}

/// Every Figure-2 collector, no pressure: `--sanitize full` is invisible
/// in the results.
#[test]
fn full_sanitize_is_transparent_without_pressure() {
    for kind in CollectorKind::FIGURE2 {
        let mut results = Vec::new();
        for level in [SanitizeLevel::Off, SanitizeLevel::Full] {
            let mut config = RunConfig::new(kind, 4 << 20, 512 << 20);
            config.sanitize = level;
            results.push(run(&config, program(0.02, 42)));
        }
        assert_identical(kind, &results[0], &results[1]);
    }
}

/// BC under dynamic pressure — the path where the sanitizer does the most
/// work (bookmark soundness, poisoned evicted cells) — still diverges
/// nowhere.
#[test]
fn full_sanitize_is_transparent_under_pressure() {
    let mut results = Vec::new();
    for level in [SanitizeLevel::Off, SanitizeLevel::Full] {
        let mut config = dynamic_pressure_config(
            CollectorKind::Bc,
            (100 << 20) / 50,
            (224 << 20) / 50,
            (60 << 20) / 50,
            0.02,
        );
        config.sanitize = level;
        results.push(run(&config, program(0.02, 42)));
    }
    assert_identical(CollectorKind::Bc, &results[0], &results[1]);
}
