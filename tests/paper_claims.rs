//! Integration tests asserting the paper's qualitative claims end-to-end,
//! at a small workload scale. These are the "shapes" EXPERIMENTS.md
//! reports: who wins, in which regime, and by what kind of margin.

use simulate::experiments::dynamic_pressure;
use simulate::{run, CollectorKind, Program, RunConfig};
use workloads::spec;

const SCALE: f64 = 0.02;
const SEED: u64 = 42;

fn pseudo_jbb() -> impl Fn() -> Box<dyn Program> {
    let b = spec("pseudoJBB").unwrap();
    move || Box::new(b.program(SCALE, SEED))
}

/// Paper-equivalent bytes at this test's scale.
fn eq(paper_bytes: usize) -> usize {
    (paper_bytes as f64 * SCALE) as usize
}

/// §5.2: "BC is closest in performance to GenMS … at the largest heap size
/// the two collectors are virtually tied."
#[test]
fn without_pressure_bc_matches_genms() {
    let make = pseudo_jbb();
    let heap = eq(140 << 20);
    let memory = 512 << 20;
    let bc = run(&RunConfig::new(CollectorKind::Bc, heap, memory), make());
    let genms = run(&RunConfig::new(CollectorKind::GenMs, heap, memory), make());
    assert!(bc.ok() && genms.ok());
    assert_eq!(bc.vm.major_faults, 0);
    assert_eq!(genms.vm.major_faults, 0);
    let ratio = bc.exec_time.as_nanos() as f64 / genms.exec_time.as_nanos() as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "BC/GenMS exec ratio {ratio:.3} not 'virtually tied'"
    );
}

/// §1/§5.3: under memory pressure BC outperforms the oblivious collectors
/// in execution time, pause time, and fault count.
#[test]
fn under_pressure_bc_beats_oblivious_collectors() {
    let make = pseudo_jbb();
    let heap = eq(100 << 20);
    let memory = eq(224 << 20);
    let target = eq(60 << 20);
    let bc = dynamic_pressure(CollectorKind::Bc, heap, memory, target, SCALE, &make);
    assert!(bc.ok());
    for kind in [
        CollectorKind::GenMs,
        CollectorKind::CopyMs,
        CollectorKind::SemiSpace,
    ] {
        let other = dynamic_pressure(kind, heap, memory, target, SCALE, &make);
        assert!(
            other.exec_time > bc.exec_time,
            "{kind}: {} should exceed BC's {}",
            other.exec_time,
            bc.exec_time
        );
        assert!(
            other.pauses.mean > bc.pauses.mean * 2,
            "{kind}: mean pause {} vs BC {}",
            other.pauses.mean,
            bc.pauses.mean
        );
        assert!(
            other.vm.major_faults > bc.vm.major_faults,
            "{kind}: faults {} vs BC {}",
            other.vm.major_faults,
            bc.vm.major_faults
        );
    }
}

/// §3.4.1: BC's full-heap collections proceed without touching evicted
/// pages — the collector takes (almost) no page faults even while the
/// mutator's data is partially swapped out.
#[test]
fn bc_collector_faults_stay_negligible_under_pressure() {
    let make = pseudo_jbb();
    let heap = eq(100 << 20);
    let memory = eq(224 << 20);
    let target = eq(60 << 20);
    let bc = dynamic_pressure(CollectorKind::Bc, heap, memory, target, SCALE, &make);
    assert!(bc.ok());
    assert!(
        bc.gc.pages_discarded > 0,
        "BC never gave pages back: {:?}",
        bc.gc
    );
    assert!(bc.gc.heap_shrinks > 0, "BC never shrank its heap");
    // Collector-attributed faults (taken inside pauses) are essentially
    // zero; a small allowance covers unscanned-page resolution (§3.4.3).
    assert!(
        bc.pauses.major_faults <= 2,
        "BC collections faulted {} times",
        bc.pauses.major_faults
    );
}

/// §5.3.2: "a variant of BC that only discards pages … requires up to 10
/// times as long to execute as the full bookmarking collector" — at
/// minimum, resizing-only must show clearly worse pauses once pressure
/// exceeds what discarding can absorb.
#[test]
fn resizing_only_pauses_degrade_where_bookmarks_do_not() {
    // This regime is granular: at very small scales the page-level
    // dynamics quantize away, so this test runs at the figures' scale.
    let scale = 0.05;
    let b = spec("pseudoJBB").unwrap();
    let make = move || -> Box<dyn Program> { Box::new(b.program(scale, SEED)) };
    let eq = |paper: usize| (paper as f64 * scale) as usize;
    let heap = eq(100 << 20);
    let memory = eq(224 << 20);
    // Sweep the severe end; the gap must appear somewhere in it, as in
    // Figure 5a's right-hand side.
    let mut best_ratio = 0.0f64;
    let mut bookmarks_engaged = false;
    for paper_avail in [44usize << 20, 36 << 20] {
        let target = eq(paper_avail);
        let bc = dynamic_pressure(CollectorKind::Bc, heap, memory, target, scale, &make);
        let resize = dynamic_pressure(
            CollectorKind::BcResizeOnly,
            heap,
            memory,
            target,
            scale,
            &make,
        );
        assert!(bc.ok() && resize.ok());
        assert_eq!(resize.gc.bookmarks_set, 0);
        bookmarks_engaged |= bc.gc.bookmarks_set > 0;
        let ratio = resize.pauses.mean.as_nanos() as f64 / bc.pauses.mean.as_nanos().max(1) as f64;
        best_ratio = best_ratio.max(ratio);
    }
    assert!(
        bookmarks_engaged,
        "pressure too mild: bookmarks never engaged"
    );
    assert!(
        best_ratio > 2.0,
        "resizing-only pauses never exceeded 2x BC's (best ratio {best_ratio:.2})"
    );
}

/// §5.3.2 (Figure 5b): fixed-size nurseries reduce paging but do not save
/// the oblivious generational collectors.
#[test]
fn fixed_nurseries_do_not_save_genms() {
    let make = pseudo_jbb();
    let heap = eq(100 << 20);
    let memory = eq(224 << 20);
    let target = eq(60 << 20);
    let bc = dynamic_pressure(CollectorKind::Bc, heap, memory, target, SCALE, &make);
    let fixed = dynamic_pressure(
        CollectorKind::GenMsFixed,
        heap,
        memory,
        target,
        SCALE,
        &make,
    );
    assert!(
        fixed.exec_time > bc.exec_time,
        "GenMS-fixed {} should still trail BC {}",
        fixed.exec_time,
        bc.exec_time
    );
    assert!(fixed.vm.major_faults > bc.vm.major_faults);
}

/// Table 1 geometry: the measured minimum heap brackets the configured
/// live set and lands within 3x of the paper's value (scaled).
#[test]
fn min_heap_brackets_live_set() {
    let b = spec("_209_db").unwrap();
    let mk = move || -> Box<dyn Program> { Box::new(b.program(SCALE, SEED)) };
    let live = ((b.immortal_bytes + b.live_window_bytes) as f64 * SCALE) as usize;
    let min = simulate::min_heap_search(
        CollectorKind::Bc,
        512 << 20,
        &mk,
        live / 2,
        live * 16,
        128 << 10,
    )
    .expect("must fit in 16x live");
    assert!(min >= live, "min heap {min} below the live set {live}");
    let paper_scaled = (b.paper_min_heap as f64 * SCALE) as usize;
    assert!(
        min < paper_scaled * 3,
        "min heap {min} wildly above the paper's {paper_scaled}"
    );
}
