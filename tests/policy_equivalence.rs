//! The heap-sizing policy layer must be invisible when unused: running any
//! collector with an explicit `--policy fixed` must be *byte-identical* to
//! running it with no policy override at all — same simulated times, same
//! paging counters, same pause log, same GC statistics.
//!
//! (BC is included: it treats `Fixed` as "my built-in shrink-to-footprint
//! default", so the rewrite inside `Bookmarking::new` is covered too.)

use proptest::prelude::*;
use simulate::experiments::dynamic_pressure_config;
use simulate::{run, CollectorKind, PolicyKind, RunConfig};
use workloads::spec;

/// One small run under dynamic pressure, reduced to a byte-exact
/// fingerprint of everything the simulation reports.
fn fingerprint(kind: CollectorKind, policy: Option<PolicyKind>, seed: u64) -> String {
    let scale = 0.02;
    let mut config = dynamic_pressure_config(
        kind,
        (100 << 20) / 50,
        (224 << 20) / 50,
        (60 << 20) / 50,
        scale,
    );
    config.policy = policy;
    let program = Box::new(spec("_202_jess").unwrap().program(scale, seed));
    format!("{:?}", run(&config, program))
}

/// A calm (no-pressure) variant, so the equivalence is also checked on the
/// path where the VMM never queues events.
fn calm_fingerprint(kind: CollectorKind, policy: Option<PolicyKind>, seed: u64) -> String {
    let mut config = RunConfig::new(kind, 4 << 20, 64 << 20);
    config.policy = policy;
    let program = Box::new(spec("_202_jess").unwrap().program(0.02, seed));
    format!("{:?}", run(&config, program))
}

#[test]
fn explicit_fixed_policy_matches_default_for_every_collector() {
    for kind in CollectorKind::ALL {
        assert_eq!(
            fingerprint(kind, None, 42),
            fingerprint(kind, Some(PolicyKind::Fixed), 42),
            "{kind}: --policy fixed diverged from the default under pressure"
        );
        assert_eq!(
            calm_fingerprint(kind, None, 42),
            calm_fingerprint(kind, Some(PolicyKind::Fixed), 42),
            "{kind}: --policy fixed diverged from the default on a calm run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized seeds and collectors: the `Fixed` policy reproduces the
    /// default byte-for-byte everywhere, not just at the golden seed.
    #[test]
    fn fixed_policy_reproduces_default_across_seeds(
        kind_idx in 0usize..9,
        seed in 1u64..=512,
    ) {
        let kind = CollectorKind::ALL[kind_idx];
        prop_assert_eq!(
            fingerprint(kind, None, seed),
            fingerprint(kind, Some(PolicyKind::Fixed), seed),
            "{} seed {}: --policy fixed diverged from the default", kind, seed
        );
    }
}
