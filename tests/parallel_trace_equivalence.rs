//! End-to-end guarantees of the parallel packet tracer:
//!
//! 1. `gc_threads: 1` is *byte-identical* to a default-built config — the
//!    packet scheduler at one worker reproduces the sequential tracer
//!    exactly (the figure goldens pin the same property at figure scale).
//! 2. Any worker count is deterministic: two identical runs produce the
//!    same simulated times, paging counters, pause log, and GC stats.
//! 3. Every worker count keeps the heap sound: the sanitizer's `Full`
//!    shadow re-trace (an independent sequential traversal) re-verifies
//!    reachability after every collection and panics on any divergence,
//!    so a clean run *is* the marks/forwards-identical oracle.

use heap::SanitizeLevel;
use proptest::prelude::*;
use simulate::experiments::dynamic_pressure_config;
use simulate::{run, CollectorKind, RunConfig};
use workloads::spec;

/// One small run under dynamic pressure, reduced to a byte-exact
/// fingerprint of everything the simulation reports.
fn fingerprint(
    kind: CollectorKind,
    gc_threads: usize,
    sanitize: SanitizeLevel,
    seed: u64,
) -> String {
    let scale = 0.02;
    let mut config = dynamic_pressure_config(
        kind,
        (100 << 20) / 50,
        (224 << 20) / 50,
        (60 << 20) / 50,
        scale,
    );
    config.gc_threads = gc_threads;
    config.sanitize = sanitize;
    let program = Box::new(spec("_202_jess").unwrap().program(scale, seed));
    format!("{:?}", run(&config, program))
}

/// A calm (ample-memory) variant, covering the path where tracing never
/// races eviction.
fn calm_fingerprint(
    kind: CollectorKind,
    gc_threads: usize,
    sanitize: SanitizeLevel,
    seed: u64,
) -> String {
    let mut config = RunConfig::new(kind, 4 << 20, 64 << 20);
    config.gc_threads = gc_threads;
    config.sanitize = sanitize;
    let program = Box::new(spec("_202_jess").unwrap().program(0.02, seed));
    format!("{:?}", run(&config, program))
}

#[test]
fn one_worker_is_byte_identical_to_the_default_config() {
    for kind in CollectorKind::ALL {
        let default = {
            let mut config = dynamic_pressure_config(
                kind,
                (100 << 20) / 50,
                (224 << 20) / 50,
                (60 << 20) / 50,
                0.02,
            );
            config.sanitize = SanitizeLevel::Off;
            let program = Box::new(spec("_202_jess").unwrap().program(0.02, 42));
            format!("{:?}", run(&config, program))
        };
        assert_eq!(
            default,
            fingerprint(kind, 1, SanitizeLevel::Off, 42),
            "{kind}: --gc-threads 1 diverged from the default config"
        );
    }
}

#[test]
fn every_worker_count_survives_the_shadow_retrace_oracle() {
    // `Full` re-traces the whole heap sequentially after every collection
    // and panics on any mark/forward mismatch — if the packet scheduler
    // marked a different object set or lost a forward, this run aborts.
    for kind in [
        CollectorKind::Bc,
        CollectorKind::SemiSpace,
        CollectorKind::GenMs,
    ] {
        for k in [2, 4, 16] {
            let _ = fingerprint(kind, k, SanitizeLevel::Full, 42);
            let _ = calm_fingerprint(kind, k, SanitizeLevel::Full, 42);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized collectors, seeds, and worker counts: every parallel
    /// run is deterministic (run twice, byte-identical) and passes the
    /// shadow re-trace oracle.
    #[test]
    fn parallel_runs_are_deterministic_and_shadow_clean(
        kind_idx in 0usize..9,
        gc_threads in 1usize..=16,
        seed in 1u64..=512,
    ) {
        let kind = CollectorKind::ALL[kind_idx];
        let first = fingerprint(kind, gc_threads, SanitizeLevel::Full, seed);
        let second = fingerprint(kind, gc_threads, SanitizeLevel::Full, seed);
        prop_assert_eq!(
            first, second,
            "{} seed {} with {} workers: two identical runs diverged",
            kind, seed, gc_threads
        );
    }
}
