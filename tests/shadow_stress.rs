//! Shadow-heap stress test: every collector is driven through a long,
//! seeded stream of allocations, pointer mutations, root drops, forced
//! collections, and (for the VM-cooperative collectors) memory pressure —
//! while a *shadow model* of the object graph tracks what every reference
//! field must contain. Any lost object, stale pointer, missed remembered
//! set entry, bad forwarding, or bookmark-related resurrection shows up as
//! a divergence between the real heap and the shadow.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use heap::{AllocKind, CollectKind, GcHeap, Handle, MemCtx};
use simtime::{Clock, CostModel};
use simulate::CollectorKind;
use vmm::{ProcessId, Vmm, VmmConfig};

const FIELDS: u16 = 4;

/// One shadow node: what each reference field must point at.
#[derive(Clone, Debug, Default)]
struct ShadowObj {
    fields: [Option<usize>; FIELDS as usize],
}

struct Driver {
    vmm: Vmm,
    clock: Clock,
    pid: ProcessId,
    hog: ProcessId,
    gc: Box<dyn GcHeap>,
    shadow: Vec<ShadowObj>,
    /// A rooted handle per shadow node (the mutator's stable view).
    handles: Vec<Handle>,
    rng: StdRng,
    pinned: u32,
}

impl Driver {
    fn new(kind: CollectorKind, memory_bytes: usize, heap_bytes: usize, seed: u64) -> Driver {
        let mut vmm = Vmm::new(
            VmmConfig::builder().memory_bytes(memory_bytes).build(),
            CostModel::default(),
        );
        let pid = vmm.register_process();
        let hog = vmm.register_process();
        let gc = kind.build(heap_bytes, telemetry::Tracer::disabled(), &mut vmm, pid);
        Driver {
            vmm,
            clock: Clock::new(),
            pid,
            hog,
            gc,
            shadow: Vec::new(),
            handles: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            pinned: 0,
        }
    }

    fn alloc_node(&mut self) {
        let mut ctx = MemCtx::new(&mut self.vmm, &mut self.clock, self.pid);
        let h = self
            .gc
            .alloc(
                &mut ctx,
                AllocKind::Scalar {
                    data_words: FIELDS + 2,
                    num_refs: FIELDS,
                },
            )
            .expect("stress heap sized generously");
        self.shadow.push(ShadowObj::default());
        self.handles.push(h);
    }

    fn mutate(&mut self) {
        if self.shadow.len() < 2 {
            return;
        }
        let src = self.rng.random_range(0..self.shadow.len());
        let field = self.rng.random_range(0..FIELDS as u32);
        let target = if self.rng.random::<f64>() < 0.15 {
            None
        } else {
            Some(self.rng.random_range(0..self.shadow.len()))
        };
        let mut ctx = MemCtx::new(&mut self.vmm, &mut self.clock, self.pid);
        self.gc.write_ref(
            &mut ctx,
            self.handles[src],
            field,
            target.map(|t| self.handles[t]),
        );
        self.shadow[src].fields[field as usize] = target;
    }

    fn verify_one(&mut self) {
        if self.shadow.is_empty() {
            return;
        }
        let src = self.rng.random_range(0..self.shadow.len());
        let field = self.rng.random_range(0..FIELDS as u32);
        let mut ctx = MemCtx::new(&mut self.vmm, &mut self.clock, self.pid);
        let got = self.gc.read_ref(&mut ctx, self.handles[src], field);
        match (got, self.shadow[src].fields[field as usize]) {
            (None, None) => {}
            (Some(h), Some(want)) => {
                assert!(
                    self.gc.same_object(h, self.handles[want]),
                    "node {src}.{field}: wrong referent"
                );
                self.gc.drop_handle(h);
            }
            (got, want) => panic!(
                "node {src}.{field}: field null-ness diverged (got {:?}, want {:?})",
                got.is_some(),
                want.is_some()
            ),
        }
    }

    fn verify_all(&mut self) {
        for src in 0..self.shadow.len() {
            for field in 0..FIELDS as u32 {
                let mut ctx = MemCtx::new(&mut self.vmm, &mut self.clock, self.pid);
                let got = self.gc.read_ref(&mut ctx, self.handles[src], field);
                match (got, self.shadow[src].fields[field as usize]) {
                    (None, None) => {}
                    (Some(h), Some(want)) => {
                        assert!(
                            self.gc.same_object(h, self.handles[want]),
                            "final check: node {src}.{field} wrong referent"
                        );
                        self.gc.drop_handle(h);
                    }
                    (got, want) => panic!(
                        "final check: node {src}.{field} diverged (got {:?}, want {:?})",
                        got.is_some(),
                        want.is_some()
                    ),
                }
            }
        }
    }

    fn squeeze(&mut self) {
        // Pin a few pages if the machine still has slack.
        for _ in 0..8 {
            if self.vmm.free_frames() > 16 {
                self.vmm
                    .mlock(self.hog, vmm::VirtPage::new(self.pinned), &mut self.clock);
                self.pinned += 1;
            }
        }
        self.pump();
    }

    fn pump(&mut self) {
        self.vmm.pump(&mut self.clock);
        let mut ctx = MemCtx::new(&mut self.vmm, &mut self.clock, self.pid);
        self.gc.handle_vm_events(&mut ctx);
    }

    fn collect(&mut self, kind: CollectKind) {
        let mut ctx = MemCtx::new(&mut self.vmm, &mut self.clock, self.pid);
        self.gc.collect(&mut ctx, kind);
    }

    fn run(&mut self, ops: usize, with_pressure: bool) {
        for i in 0..ops {
            match self.rng.random_range(0..100) {
                0..=24 => self.alloc_node(),
                25..=69 => self.mutate(),
                70..=89 => self.verify_one(),
                90..=95 => {
                    if with_pressure {
                        self.squeeze();
                    } else {
                        self.pump();
                    }
                }
                96..=97 => self.collect(CollectKind::Minor),
                _ => self.collect(CollectKind::Full),
            }
            if i % 256 == 0 {
                self.pump();
            }
        }
        self.verify_all();
    }
}

#[test]
fn shadow_stress_every_collector_without_pressure() {
    for kind in CollectorKind::ALL {
        let mut d = Driver::new(kind, 128 << 20, 16 << 20, 0xBEEF);
        d.run(4_000, false);
    }
}

#[test]
fn shadow_stress_bc_under_ratcheting_pressure() {
    for seed in [1u64, 2, 3] {
        let mut d = Driver::new(CollectorKind::Bc, 8 << 20, 4 << 20, seed);
        d.run(6_000, true);
        assert!(
            d.vmm.stats(d.pid).notices > 0,
            "seed {seed}: pressure never reached the collector"
        );
    }
}

#[test]
fn shadow_stress_resize_only_under_pressure() {
    let mut d = Driver::new(CollectorKind::BcResizeOnly, 8 << 20, 4 << 20, 77);
    d.run(6_000, true);
}

#[test]
fn shadow_stress_oblivious_collectors_under_pressure() {
    for kind in [
        CollectorKind::GenMs,
        CollectorKind::SemiSpace,
        CollectorKind::CopyMs,
    ] {
        let mut d = Driver::new(kind, 8 << 20, 4 << 20, 5);
        d.run(4_000, true);
    }
}
