//! Cross-collector integration tests: determinism, allocation accounting,
//! and graceful failure, across every collector configuration.

use simulate::{run, CollectorKind, Program, RunConfig};
use workloads::{spec, table1};

fn program(name: &str, scale: f64, seed: u64) -> Box<dyn Program> {
    Box::new(spec(name).unwrap().program(scale, seed))
}

/// Every collector runs every benchmark (at 1% volume) to completion with
/// identical allocation volume — the workload is collector-independent.
#[test]
fn all_collectors_complete_all_benchmarks() {
    for b in table1() {
        let mut volumes = Vec::new();
        for kind in CollectorKind::ALL {
            let heap = (b.scaled_min_heap(0.01) * 4).max(2 << 20);
            let config = RunConfig::new(kind, heap, 256 << 20);
            let r = run(&config, Box::new(b.program(0.01, 5)));
            assert!(
                r.ok(),
                "{} on {kind}: oom={} timeout={}",
                b.name,
                r.oom,
                r.timed_out
            );
            volumes.push(r.gc.bytes_allocated);
        }
        assert!(
            volumes.windows(2).all(|w| w[0] == w[1]),
            "{}: allocation volume varies across collectors: {volumes:?}",
            b.name
        );
    }
}

/// The whole simulation is deterministic: identical configuration gives
/// bit-identical metrics.
#[test]
fn simulation_is_deterministic() {
    for kind in [
        CollectorKind::Bc,
        CollectorKind::GenCopy,
        CollectorKind::MarkSweep,
    ] {
        let once = || {
            let config = RunConfig::new(kind, 4 << 20, 64 << 20);
            let r = run(&config, program("_202_jess", 0.01, 9));
            (
                r.exec_time,
                r.gc.objects_allocated,
                r.gc.objects_traced,
                r.gc.total_gcs(),
                r.pauses.count,
                r.pauses.total,
                r.vm.minor_faults,
            )
        };
        assert_eq!(once(), once(), "{kind} is not deterministic");
    }
}

/// Heaps below the live set fail with OutOfMemory — reported, not panicked
/// — for every collector.
#[test]
fn undersized_heaps_report_oom() {
    let b = spec("_209_db").unwrap(); // ~10 MB live at scale 1
    for kind in CollectorKind::ALL {
        // Live set at 2% scale is ~200 KiB; a 128 KiB heap cannot hold it.
        let config = RunConfig::new(kind, 128 << 10, 256 << 20);
        let r = run(&config, Box::new(b.program(0.02, 3)));
        assert!(r.oom, "{kind} should have exhausted a 128 KiB heap");
    }
}

/// Bigger heaps never increase collection counts (monotone GC frequency).
#[test]
fn gc_count_decreases_with_heap_size() {
    let counts: Vec<u64> = [2 << 20, 4 << 20, 8 << 20]
        .iter()
        .map(|&heap| {
            let config = RunConfig::new(CollectorKind::GenMs, heap, 256 << 20);
            let r = run(&config, program("_202_jess", 0.02, 4));
            assert!(r.ok());
            r.gc.total_gcs()
        })
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] >= w[1]),
        "GC counts not monotone over heap size: {counts:?}"
    );
}

/// Pause accounting is consistent: total pause time never exceeds
/// execution time, and BMU inputs are well-formed (chronological,
/// non-overlapping pauses).
#[test]
fn pause_records_are_well_formed() {
    for kind in CollectorKind::ALL {
        let config = RunConfig::new(kind, 4 << 20, 256 << 20);
        let r = run(&config, program("_205_raytrace", 0.02, 8));
        assert!(r.ok(), "{kind}");
        assert!(
            r.pauses.total <= r.exec_time,
            "{kind}: paused longer than it ran"
        );
        let recs = &r.pause_records;
        for w in recs.windows(2) {
            assert!(w[0].end() <= w[1].start, "{kind}: overlapping pauses {w:?}");
        }
        if let Some(last) = recs.last() {
            assert!(last.end() <= r.exec_time);
        }
    }
}
