//! End-to-end telemetry integration: run BC under signalmem-style memory
//! pressure with a live tracer and check the recorded event stream tells
//! the paper's story — eviction notices arrive, the collector
//! bookmark-scans the victim pages, and only then relinquishes them
//! (§3.4/§4.2: the bookmark scan must precede the page handover).

use simulate::experiments::dynamic_pressure_config;
use simulate::{run, CollectorKind, Program};
use telemetry::{jsonl, EventKind, Tracer};
use workloads::spec;

const SCALE: f64 = 0.05;
const SEED: u64 = 42;

fn eq(paper_bytes: usize) -> usize {
    (paper_bytes as f64 * SCALE) as usize
}

fn traced_bc_run() -> (simulate::RunResult, Vec<telemetry::Event>) {
    let b = spec("pseudoJBB").unwrap();
    let make = move || -> Box<dyn Program> { Box::new(b.program(SCALE, SEED)) };
    let tracer = Tracer::unbounded();
    let mut config = dynamic_pressure_config(
        CollectorKind::Bc,
        eq(100 << 20),
        eq(224 << 20),
        eq(44 << 20),
        SCALE,
    );
    config.tracer = tracer.clone();
    let result = run(&config, make());
    let events = tracer.snapshot();
    (result, events)
}

#[test]
fn bc_under_pressure_emits_evict_bookmark_scan_relinquish_in_order() {
    let (result, events) = traced_bc_run();
    assert!(result.ok(), "BC must survive this pressure regime");
    assert!(!events.is_empty(), "tracing was enabled; events must exist");

    // Each process's clock is independent, so the machine-wide stream is
    // only guaranteed time-ordered per pid.
    let mut last_per_pid = std::collections::HashMap::new();
    for e in &events {
        let last = last_per_pid.entry(e.pid).or_insert(simtime::Nanos::ZERO);
        assert!(*last <= e.t, "per-pid event stream must be time-ordered");
        *last = e.t;
    }

    // The cooperation sequence: an eviction notice, then a bookmark scan
    // of a victim page, then a relinquish — in that order.
    let first_notice = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::EvictionScheduled { .. }))
        .expect("pressure must schedule evictions");
    let first_scan = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::BookmarkScanned { .. }))
        .expect("BC must bookmark-scan victim pages");
    let first_relinquish = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::Relinquish { .. }))
        .expect("BC must relinquish scanned pages");
    assert!(
        first_notice < first_scan,
        "notice (idx {first_notice}) must precede bookmark scan (idx {first_scan})"
    );
    assert!(
        first_scan < first_relinquish,
        "bookmark scan (idx {first_scan}) must precede relinquish (idx {first_relinquish})"
    );

    // Collection and phase spans are present and balanced.
    let begins = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CollectionBegin { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CollectionEnd { .. }))
        .count();
    assert!(begins >= 1, "at least one collection must have run");
    assert_eq!(begins, ends, "collection spans must be balanced");
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PhaseBegin { .. })),
        "collections must emit phase spans"
    );

    // Every BC-attributed event carries its collector label.
    assert!(events.iter().any(|e| e.collector == "BC"));
}

#[test]
fn disabled_tracing_leaves_the_simulation_bit_identical() {
    // Emitting never advances the simulated clock, so a traced run and an
    // untraced run of the same configuration are the *same* simulation —
    // the strongest form of "no overhead when disabled".
    let b = spec("pseudoJBB").unwrap();
    let make = move || -> Box<dyn Program> { Box::new(b.program(SCALE, SEED)) };
    let mut config = dynamic_pressure_config(
        CollectorKind::Bc,
        eq(100 << 20),
        eq(224 << 20),
        eq(44 << 20),
        SCALE,
    );
    let untraced = run(&config, make());
    config.tracer = Tracer::unbounded();
    let traced = run(&config, make());
    assert_eq!(untraced.exec_time, traced.exec_time);
    assert_eq!(untraced.gc, traced.gc);
    assert_eq!(untraced.vm, traced.vm);
    assert_eq!(untraced.pauses.count, traced.pauses.count);
    assert!(untraced.metrics.trace.is_none());
    assert!(traced.metrics.trace.is_some());
}

#[test]
fn traced_run_round_trips_through_jsonl() {
    let (_, events) = traced_bc_run();
    let doc: String = events.iter().map(|e| jsonl::to_json(e) + "\n").collect();
    let parsed = jsonl::parse_all(&doc).expect("every emitted event must parse back");
    assert_eq!(parsed, events, "JSONL round-trip must be lossless");
}

#[test]
fn metrics_snapshot_unifies_gc_and_vm_views() {
    let (result, events) = traced_bc_run();
    let m = &result.metrics;
    assert_eq!(m.collector, "BC");
    // The legacy views and the unified snapshot agree.
    assert_eq!(m.gc, result.gc);
    assert_eq!(m.vm, result.vm);
    assert_eq!(m.total_gcs(), result.gc.total_gcs());
    assert_eq!(m.major_faults(), result.vm.major_faults);
    // The aggregate is derived from the same stream the tracer recorded.
    let agg = m.trace.as_ref().expect("tracing was on");
    assert_eq!(
        agg.counts.collections,
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CollectionBegin { .. }))
            .count() as u64
    );
    assert!(
        !agg.phases.is_empty(),
        "per-phase histograms must be populated"
    );
    assert!(
        agg.counts.bookmark_scans > 0 && agg.counts.relinquished > 0,
        "cooperation counters must reflect the run"
    );
    assert!(!agg.series.is_empty(), "time-bucketed series must exist");
}
