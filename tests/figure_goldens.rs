//! Figure outputs are pinned byte-for-byte against checked-in goldens:
//! performance work on the simulator hot paths (allocation-run caches,
//! zero-allocation tracing, sweep restructuring) must never change
//! simulated behaviour, only wall-clock time.
//!
//! The goldens mirror exactly what the `figures` binary writes for
//! `figures fig2 --quick --csv <dir>` / `figures fig5a --quick --csv <dir>`
//! at the default seed. After an *intentional* model change, regenerate
//! them with:
//!
//! ```text
//! cargo run --release -p bench --bin figures -- fig2 --quick --csv tests/golden > tests/golden/fig2_quick.txt
//! mv tests/golden/fig2.csv tests/golden/fig2_quick.csv
//! cargo run --release -p bench --bin figures -- fig5a --quick --csv tests/golden > tests/golden/fig5a_quick.txt
//! mv tests/golden/fig5a.csv tests/golden/fig5a_quick.csv
//! cargo run --release -p bench --bin figures -- fig_policy --quick --csv tests/golden > tests/golden/fig_policy_quick.txt
//! mv tests/golden/fig_policy.csv tests/golden/fig_policy_quick.csv
//! cargo run --release -p bench --bin figures -- fig7_scale --quick --csv tests/golden > tests/golden/fig7_scale_quick.txt
//! mv tests/golden/fig7_scale.csv tests/golden/fig7_scale_quick.csv
//! cargo run --release -p bench --bin figures -- fig_parallel --quick --csv tests/golden > tests/golden/fig_parallel_quick.txt
//! mv tests/golden/fig_parallel.csv tests/golden/fig_parallel_quick.csv
//! ```

use bench::pressure_figs::{
    dominates, fig5a_report, fig7_scale_report, fig_parallel_report, fig_parallel_runs,
    fig_policy_report, fig_policy_runs, PARALLEL_THREADS,
};
use bench::{fig2_report, Params};
use simulate::{PolicyKind, SanitizeLevel};

#[test]
fn fig2_matches_golden() {
    let t = fig2_report(&Params::quick());
    let txt = format!("== Figure 2: geomean execution time relative to BC (no pressure) ==\n{t}\n");
    assert_eq!(
        txt,
        include_str!("golden/fig2_quick.txt"),
        "fig2 text output drifted from tests/golden/fig2_quick.txt"
    );
    assert_eq!(
        t.to_csv(),
        include_str!("golden/fig2_quick.csv"),
        "fig2 CSV output drifted from tests/golden/fig2_quick.csv"
    );
}

#[test]
fn fig5a_matches_golden() {
    let t = fig5a_report(&Params::quick());
    assert_eq!(
        format!("{t}\n"),
        include_str!("golden/fig5a_quick.txt"),
        "fig5a text output drifted from tests/golden/fig5a_quick.txt"
    );
    assert_eq!(
        t.to_csv(),
        include_str!("golden/fig5a_quick.csv"),
        "fig5a CSV output drifted from tests/golden/fig5a_quick.csv"
    );
}

/// The sanitizer is observation-only: the same figures at
/// `--sanitize full` — shadow re-traces after every collection, canary
/// poisoning, frame audits — must match the sanitize-off goldens byte for
/// byte. Figure 2 exercises all six collectors without pressure; fig5a
/// runs the pressure collectors (BC's eviction/bookmark path included)
/// under dynamic pressure.
#[test]
fn figures_match_goldens_with_sanitize_full() {
    let mut params = Params::quick();
    params.sanitize = SanitizeLevel::Full;
    let fig2 = fig2_report(&params);
    assert_eq!(
        fig2.to_csv(),
        include_str!("golden/fig2_quick.csv"),
        "fig2 output changed under --sanitize full: the sanitizer leaked into simulation state"
    );
    let fig5a = fig5a_report(&params);
    assert_eq!(
        fig5a.to_csv(),
        include_str!("golden/fig5a_quick.csv"),
        "fig5a output changed under --sanitize full: the sanitizer leaked into simulation state"
    );
}

/// The scaled multi-tenant sweep — hundreds to thousands of mutators over
/// the sharded VMM and the time-slice scheduler — must be exactly as
/// deterministic as the two-JVM figures, at every `--jobs` (each cell is
/// one independent simulation, assembled by index).
#[test]
fn fig7_scale_matches_golden() {
    let t = fig7_scale_report(&Params::quick());
    assert_eq!(
        format!("{t}\n"),
        include_str!("golden/fig7_scale_quick.txt"),
        "fig7_scale text output drifted from tests/golden/fig7_scale_quick.txt"
    );
    assert_eq!(
        t.to_csv(),
        include_str!("golden/fig7_scale_quick.csv"),
        "fig7_scale CSV output drifted from tests/golden/fig7_scale_quick.csv"
    );
}

#[test]
fn fig_policy_matches_golden_and_membalancer_dominates() {
    let t = fig_policy_report(&Params::quick());
    assert_eq!(
        format!("{t}\n"),
        include_str!("golden/fig_policy_quick.txt"),
        "fig_policy text output drifted from tests/golden/fig_policy_quick.txt"
    );
    assert_eq!(
        t.to_csv(),
        include_str!("golden/fig_policy_quick.csv"),
        "fig_policy CSV output drifted from tests/golden/fig_policy_quick.csv"
    );
    // The policy layer's headline claim: on at least one collector,
    // MemBalancer strictly Pareto-dominates Fixed (no worse on both the
    // time and peak-heap axes, better on at least one).
    let runs = fig_policy_runs(&Params::quick());
    let fixed: Vec<_> = runs
        .iter()
        .filter(|(_, p, _)| *p == PolicyKind::Fixed)
        .collect();
    let membalancer: Vec<_> = runs
        .iter()
        .filter(|(_, p, _)| *p == PolicyKind::MemBalancer)
        .collect();
    let won = fixed
        .iter()
        .zip(&membalancer)
        .any(|((k1, _, f), (k2, _, m))| {
            assert_eq!(k1, k2, "policy groups must align by collector");
            f.ok() && m.ok() && dominates(m, f)
        });
    assert!(
        won,
        "MemBalancer should strictly dominate Fixed on at least one collector:\n{t}"
    );
}

/// The parallel-tracing figure is pinned byte-for-byte (its 1-worker
/// column doubles as the N=1 ≡ sequential proof at figure scale), and the
/// headline claim is asserted directly on the raw runs: for every
/// collector, the mean pause at 8 workers is shorter than at 1 worker —
/// the critical-path pause model actually shortens trace-bound pauses.
#[test]
fn fig_parallel_matches_golden_and_workers_shorten_pauses() {
    let t = fig_parallel_report(&Params::quick());
    assert_eq!(
        format!("{t}\n"),
        include_str!("golden/fig_parallel_quick.txt"),
        "fig_parallel text output drifted from tests/golden/fig_parallel_quick.txt"
    );
    assert_eq!(
        t.to_csv(),
        include_str!("golden/fig_parallel_quick.csv"),
        "fig_parallel CSV output drifted from tests/golden/fig_parallel_quick.csv"
    );
    let runs = fig_parallel_runs(&Params::quick());
    for group in runs.chunks(PARALLEL_THREADS.len()) {
        let kind = group[0].0;
        let pause_at = |threads: usize| {
            let (_, _, r) = group
                .iter()
                .find(|(_, t, _)| *t == threads)
                .expect("worker count in sweep");
            assert!(r.pauses.count > 0, "{kind}: no pauses at {threads} workers");
            r.pauses.mean
        };
        assert!(
            pause_at(8) < pause_at(1),
            "{kind}: 8 workers should shorten the mean pause ({} vs {})",
            pause_at(8),
            pause_at(1)
        );
    }
}
