//! Figure outputs are pinned byte-for-byte against checked-in goldens:
//! performance work on the simulator hot paths (allocation-run caches,
//! zero-allocation tracing, sweep restructuring) must never change
//! simulated behaviour, only wall-clock time.
//!
//! The goldens mirror exactly what the `figures` binary writes for
//! `figures fig2 --quick --csv <dir>` / `figures fig5a --quick --csv <dir>`
//! at the default seed. After an *intentional* model change, regenerate
//! them with:
//!
//! ```text
//! cargo run --release -p bench --bin figures -- fig2 --quick --csv tests/golden > tests/golden/fig2_quick.txt
//! mv tests/golden/fig2.csv tests/golden/fig2_quick.csv
//! cargo run --release -p bench --bin figures -- fig5a --quick --csv tests/golden > tests/golden/fig5a_quick.txt
//! mv tests/golden/fig5a.csv tests/golden/fig5a_quick.csv
//! ```

use bench::pressure_figs::fig5a_report;
use bench::{fig2_report, Params};

#[test]
fn fig2_matches_golden() {
    let t = fig2_report(&Params::quick());
    let txt = format!("== Figure 2: geomean execution time relative to BC (no pressure) ==\n{t}\n");
    assert_eq!(
        txt,
        include_str!("golden/fig2_quick.txt"),
        "fig2 text output drifted from tests/golden/fig2_quick.txt"
    );
    assert_eq!(
        t.to_csv(),
        include_str!("golden/fig2_quick.csv"),
        "fig2 CSV output drifted from tests/golden/fig2_quick.csv"
    );
}

#[test]
fn fig5a_matches_golden() {
    let t = fig5a_report(&Params::quick());
    assert_eq!(
        format!("{t}\n"),
        include_str!("golden/fig5a_quick.txt"),
        "fig5a text output drifted from tests/golden/fig5a_quick.txt"
    );
    assert_eq!(
        t.to_csv(),
        include_str!("golden/fig5a_quick.csv"),
        "fig5a CSV output drifted from tests/golden/fig5a_quick.csv"
    );
}
