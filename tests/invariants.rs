//! Cross-collector invariant tests over full benchmark runs.

use simulate::experiments::dynamic_pressure;
use simulate::{CollectorKind, Program};
use workloads::spec;

fn jess(scale: f64, seed: u64) -> Box<dyn Program> {
    Box::new(spec("_202_jess").unwrap().program(scale, seed))
}

/// The heap budget is respected at completion for every collector: the
/// transient force-acquire overruns used mid-collection must have been
/// paid back by the time the run ends.
#[test]
fn heap_budget_is_respected_at_completion() {
    use heap::{CollectKind, MemCtx};
    for kind in CollectorKind::ALL {
        let heap_bytes = 4 << 20;
        let mut vmm = vmm::Vmm::new(
            vmm::VmmConfig::builder().memory_bytes(256 << 20).build(),
            simtime::CostModel::default(),
        );
        let mut clock = simtime::Clock::new();
        let pid = vmm.register_process();
        let mut gc = kind.build(heap_bytes, telemetry::Tracer::disabled(), &mut vmm, pid);
        let mut program = spec("_202_jess").unwrap().program(0.02, 1);
        loop {
            let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
            match simulate::Program::step(&mut program, gc.as_mut(), &mut ctx) {
                Ok(simulate::ProgramStatus::Running) => {}
                Ok(simulate::ProgramStatus::Finished) => break,
                Err(e) => panic!("{kind}: {e}"),
            }
        }
        // Collect once so transient overruns are settled, then check.
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        gc.collect(&mut ctx, CollectKind::Full);
        let budget_pages = heap_bytes / 4096;
        assert!(
            gc.heap_pages_used() <= budget_pages,
            "{kind}: {} pages used of a {budget_pages}-page budget",
            gc.heap_pages_used()
        );
    }
}

/// The collector never reports more pause time than wall time, never
/// reports pauses out of order, and its fault attribution never exceeds
/// the process's total faults.
#[test]
fn accounting_is_internally_consistent() {
    for kind in CollectorKind::ALL {
        let r = dynamic_pressure(
            kind,
            (100 << 20) / 50,
            (224 << 20) / 50,
            (60 << 20) / 50,
            0.02,
            &|| jess(0.02, 2),
        );
        assert!(r.pauses.total <= r.exec_time, "{kind}");
        assert!(
            r.pauses.major_faults <= r.vm.major_faults,
            "{kind}: attributed more faults than occurred"
        );
        assert!(
            r.vm.hard_evictions <= r.vm.evictions,
            "{kind}: hard evictions exceed evictions"
        );
        let mut prev_end = simtime::Nanos::ZERO;
        for rec in &r.pause_records {
            assert!(rec.start >= prev_end, "{kind}: pauses overlap");
            prev_end = rec.end();
        }
    }
}

/// BC's in-pause fault count stays negligible across seeds and pressure
/// levels — the reproduction's statement of "garbage collection without
/// paging". (Allowance: nursery-page reloads after kernel-ran-ahead
/// evictions, a handful per run at most.)
#[test]
fn bc_pause_faults_negligible_across_seeds() {
    for seed in [3u64, 17, 91] {
        for paper_avail in [93usize << 20, 60 << 20] {
            let make = move || -> Box<dyn Program> {
                Box::new(spec("pseudoJBB").unwrap().program(0.02, seed))
            };
            let r = dynamic_pressure(
                CollectorKind::Bc,
                (100 << 20) / 50,
                (224 << 20) / 50,
                paper_avail / 50,
                0.02,
                &make,
            );
            assert!(r.ok(), "seed {seed}");
            assert!(
                r.pauses.major_faults <= 4,
                "seed {seed}, avail {}MB: BC faulted {} times inside pauses",
                paper_avail >> 20,
                r.pauses.major_faults
            );
        }
    }
}

/// Determinism extends to the pressure experiments: identical configs give
/// identical paging behaviour, not just identical mutator behaviour.
#[test]
fn pressure_runs_are_deterministic() {
    let once = || {
        let r = dynamic_pressure(
            CollectorKind::GenMs,
            (100 << 20) / 50,
            (224 << 20) / 50,
            (60 << 20) / 50,
            0.02,
            &|| jess(0.02, 5),
        );
        (
            r.exec_time,
            r.vm.major_faults,
            r.vm.evictions,
            r.pauses.count,
            r.pauses.total,
        )
    };
    assert_eq!(once(), once());
}

/// More pressure never helps an oblivious collector: execution time is
/// monotone (within tolerance) as available memory shrinks.
#[test]
fn pressure_monotonically_hurts_genms() {
    let time_at = |paper_avail: usize| {
        let make = || -> Box<dyn Program> { Box::new(spec("pseudoJBB").unwrap().program(0.02, 7)) };
        dynamic_pressure(
            CollectorKind::GenMs,
            (100 << 20) / 50,
            (224 << 20) / 50,
            paper_avail / 50,
            0.02,
            &make,
        )
        .exec_time
        .as_nanos() as f64
    };
    let loose = time_at(160 << 20);
    let medium = time_at(77 << 20);
    let tight = time_at(44 << 20);
    assert!(medium >= loose * 0.95, "medium {medium} vs loose {loose}");
    assert!(tight >= medium * 0.95, "tight {tight} vs medium {medium}");
    assert!(
        tight > loose * 1.5,
        "pressure never bit: {loose} -> {tight}"
    );
}
