//! Proof that the hot tracing loop is allocation-free: a counting global
//! allocator watches a full `drain_gray` over a pre-warmed object graph
//! and must observe zero heap allocations.
//!
//! The first drain is a warm-up: it sizes the mark queue, the reusable
//! scan scratch buffer, and the simulated memory / VMM page structures.
//! The second drain traces the same graph again and must not allocate at
//! all — the per-object path reuses every buffer it needs.
//!
//! This lives in its own test binary so the global allocator and the
//! single-threaded assertion cannot interfere with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

// SAFETY: delegates to `System` unchanged; only adds counter bumps.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use heap::gc::{drain_gray, Core, Forwarder};
use heap::object::field_addr;
use heap::{Address, HeapConfig, MemCtx, ObjectKind};
use simtime::{Clock, CostModel};
use vmm::{Vmm, VmmConfig};

/// A minimal marking collector: forward = mark + enqueue, no movement.
struct Marker {
    core: Core,
}

impl Forwarder for Marker {
    fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    fn forward(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address {
        if self.core.try_mark(ctx, obj) {
            self.core.queue.push(obj);
        }
        obj
    }
}

/// Builds the tree, warms every buffer with one drain, then measures a
/// second identical drain under the counting allocator.
fn measure_warm_drain(gc_threads: usize) -> (u64, usize) {
    const N: u32 = 512;
    let mut vmm = Vmm::new(
        VmmConfig::builder().frames(4096).build(),
        CostModel::default(),
    );
    let pid = vmm.register_process();
    let mut clock = Clock::new();
    let mut marker = Marker {
        core: Core::new(
            HeapConfig::builder()
                .heap_bytes(1 << 20)
                .gc_threads(gc_threads)
                .build(),
        ),
    };
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);

    // A binary tree of N scalar objects, two reference fields each.
    let kind = ObjectKind::scalar(4, 2);
    let objs: Vec<Address> = (0..N)
        .map(|i| Address(0x1040_0000 + i * kind.size_bytes()))
        .collect();
    for (i, &obj) in objs.iter().enumerate() {
        marker.core.init_object(&mut ctx, obj, kind);
        for (f, child) in [2 * i + 1, 2 * i + 2].into_iter().enumerate() {
            if child < objs.len() {
                marker
                    .core
                    .write_slot(&mut ctx, field_addr(obj, f as u32), objs[child]);
            }
        }
    }

    // Warm-up drain: grows the mark queue, the packet pool, the per-worker
    // scratch buffers, and the simulated page structures to steady state.
    marker.forward(&mut ctx, objs[0]);
    drain_gray(&mut marker, &mut ctx);
    assert_eq!(marker.core.stats.objects_traced, N as u64);
    for &obj in &objs {
        marker.core.clear_mark(&mut ctx, obj);
    }

    // The measured drain: identical trace, and every buffer is warm.
    ALLOCS.store(0, Ordering::SeqCst);
    marker.forward(&mut ctx, objs[0]);
    drain_gray(&mut marker, &mut ctx);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(marker.core.stats.objects_traced, 2 * N as u64);
    (2 * N as u64, allocs)
}

#[test]
fn drain_gray_allocates_nothing_when_warm() {
    let (traced, allocs) = measure_warm_drain(1);
    assert_eq!(
        allocs, 0,
        "drain_gray allocated {allocs} times while tracing {traced} objects; \
         the hot loop must reuse the core's scratch buffers"
    );
}

/// Same proof for the parallel packet path: with four simulated workers,
/// packets recycle through the free pool and every per-worker scratch is
/// reused, so a warm drain still allocates nothing.
#[test]
fn packet_drain_allocates_nothing_when_warm_at_four_workers() {
    let (traced, allocs) = measure_warm_drain(4);
    assert_eq!(
        allocs, 0,
        "packet drain (4 workers) allocated {allocs} times while tracing \
         {traced} objects; packets must recycle through the free pool"
    );
}
