//! The parallel packet tracer must mark exactly the objects the
//! sequential tracer marks — for any worker count, over arbitrary object
//! graphs. The scheduler only changes *when* an object is scanned and
//! which worker's time it is charged to; reachability is scheduler-free.
//!
//! Graphs are generated with a hand-rolled LCG (the `heap` crate takes no
//! RNG dependency, and the xtask determinism lint bans `thread_rng`), so
//! every run of this test sees the same graphs.

use heap::gc::{drain_gray, Core, Forwarder};
use heap::object::field_addr;
use heap::{Address, HeapConfig, MemCtx, ObjectKind};
use simtime::{Clock, CostModel};
use vmm::{Vmm, VmmConfig};

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A marking collector that records every object it marks.
struct Marker {
    core: Core,
    marked: Vec<Address>,
}

impl Forwarder for Marker {
    fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    fn forward(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address {
        if self.core.try_mark(ctx, obj) {
            self.marked.push(obj);
            self.core.queue.push(obj);
        }
        obj
    }
}

/// One random graph: `n` objects with `refs` reference fields each; every
/// field points at a random object or stays null. Roots are a random
/// subset, so part of the graph is deliberately unreachable.
struct GraphSpec {
    seed: u64,
    n: u64,
    refs: u16,
    roots: usize,
}

/// Traces `spec`'s graph with `gc_threads` workers and returns the sorted
/// marked set plus (objects_traced, packets, steals).
fn trace(spec: &GraphSpec, gc_threads: usize) -> (Vec<Address>, u64, u64, u64) {
    let mut rng = Lcg(spec.seed);
    let mut vmm = Vmm::new(
        VmmConfig::builder().frames(8192).build(),
        CostModel::default(),
    );
    let pid = vmm.register_process();
    let mut clock = Clock::new();
    let mut marker = Marker {
        core: Core::new(
            HeapConfig::builder()
                .heap_bytes(4 << 20)
                .gc_threads(gc_threads)
                .build(),
        ),
        marked: Vec::new(),
    };
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);

    // Reference fields live among the data words, so size the object to
    // hold them all plus a little payload.
    let kind = ObjectKind::scalar(spec.refs + 2, spec.refs);
    let objs: Vec<Address> = (0..spec.n)
        .map(|i| Address(0x1040_0000 + i as u32 * kind.size_bytes()))
        .collect();
    for &obj in &objs {
        marker.core.init_object(&mut ctx, obj, kind);
        for f in 0..spec.refs {
            // ~1 in 4 fields stays null so the graph has thin branches.
            if rng.below(4) != 0 {
                let target = objs[rng.below(spec.n) as usize];
                marker
                    .core
                    .write_slot(&mut ctx, field_addr(obj, u32::from(f)), target);
            }
        }
    }
    for _ in 0..spec.roots {
        let root = objs[rng.below(spec.n) as usize];
        marker.forward(&mut ctx, root);
    }
    drain_gray(&mut marker, &mut ctx);

    let mut marked = marker.marked;
    marked.sort_unstable_by_key(|a| a.0);
    marked.dedup();
    (
        marked,
        marker.core.stats.objects_traced,
        marker.core.stats.trace_packets,
        marker.core.stats.trace_steals,
    )
}

#[test]
fn every_worker_count_marks_the_sequential_set() {
    let specs = [
        // A long thin graph (deep chains: local stacks run dry, stealing
        // kicks in), a bushy one (wide fan-out: packets overflow), and a
        // sparse one with many unreachable objects.
        GraphSpec {
            seed: 1,
            n: 4000,
            refs: 1,
            roots: 3,
        },
        GraphSpec {
            seed: 2,
            n: 1500,
            refs: 6,
            roots: 2,
        },
        GraphSpec {
            seed: 3,
            n: 2500,
            refs: 2,
            roots: 1,
        },
    ];
    for spec in &specs {
        let (baseline, traced, _, steals) = trace(spec, 1);
        assert!(
            !baseline.is_empty(),
            "seed {}: nothing reachable",
            spec.seed
        );
        assert_eq!(
            baseline.len() as u64,
            traced,
            "seed {}: each marked object is traced exactly once",
            spec.seed
        );
        assert_eq!(steals, 0, "seed {}: one worker can never steal", spec.seed);
        for k in 2..=16 {
            let (marked, traced_k, _, _) = trace(spec, k);
            assert_eq!(
                marked, baseline,
                "seed {}: {k} workers marked a different object set",
                spec.seed
            );
            assert_eq!(
                traced_k, traced,
                "seed {}: {k} workers traced a different object count",
                spec.seed
            );
        }
    }
}

#[test]
fn repeated_runs_are_identical_including_steal_order() {
    let spec = GraphSpec {
        seed: 7,
        n: 3000,
        refs: 3,
        roots: 2,
    };
    for k in [1, 2, 4, 8, 16] {
        let a = trace(&spec, k);
        let b = trace(&spec, k);
        assert_eq!(
            (&a.0, a.1, a.2, a.3),
            (&b.0, b.1, b.2, b.3),
            "{k} workers: two identical runs diverged (marks, counts, \
             packets, or steals)"
        );
        // The graph is deep enough that idle workers actually steal, so
        // the equality above pins the steal schedule, not just a trivial
        // no-steal drain.
        if k > 1 {
            assert!(a.3 > 0, "{k} workers: expected at least one steal");
        }
    }
}
