//! Property tests over the heap substrate: size-class soundness, mark-sweep
//! space invariants, large-object space invariants, and memory round-trips.

// Property suites run hundreds of cases; far too slow under Miri's
// interpreter. The Miri CI job covers the plain unit tests instead.
#![cfg(not(miri))]

use proptest::prelude::*;

use heap::{
    Address, BlockKind, LargeObjectSpace, MsSpace, PagePool, SimMemory, SizeClasses, BYTES_PER_PAGE,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every request up to the LOS threshold gets the *smallest* class
    /// that fits.
    #[test]
    fn size_class_is_minimal_and_fits(bytes in 1u32..=8180) {
        let t = SizeClasses::new();
        let c = t.class_for(bytes).unwrap();
        prop_assert!(c.cell_bytes >= bytes);
        if c.index > 0 {
            prop_assert!(t.class(c.index - 1).cell_bytes < bytes);
        }
        // A cell never overlaps the next one or the superpage end.
        let last_cell_end = 12 + c.cells_per_superpage * c.cell_bytes;
        prop_assert!(last_cell_end <= 16384);
    }

    /// Random alloc/free sequences on the mark-sweep space: returned cells
    /// are unique, aligned to their class geometry, and live counts match.
    #[test]
    fn ms_space_cells_never_overlap(sizes in proptest::collection::vec(8u32..=8180, 1..120),
                                    free_mask in proptest::collection::vec(any::<bool>(), 120)) {
        let mut ms = MsSpace::new(Address(0x1040_0000), Address(0x1140_0000));
        let mut pool = PagePool::new(4096);
        let mut live: Vec<(Address, u32)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let class = ms.classes().class_for(size).unwrap();
            let kind = if i % 2 == 0 { BlockKind::Scalar } else { BlockKind::Array };
            let addr = ms.alloc(&mut pool, class.index, kind).unwrap();
            // No overlap with any live cell.
            for &(other, other_size) in &live {
                let sep = addr.0 + class.cell_bytes <= other.0
                    || other.0 + other_size <= addr.0;
                prop_assert!(sep, "cells overlap: {addr} and {other}");
            }
            live.push((addr, class.cell_bytes));
            prop_assert!(ms.is_allocated_cell(addr));
            // Maybe free one.
            if free_mask[i] && live.len() > 1 {
                let (victim, _) = live.swap_remove(0);
                let _ = ms.free_cell(&mut pool, victim);
                prop_assert!(!ms.is_allocated_cell(victim));
            }
        }
        // Per-superpage live counts agree with the allocated-cell lists.
        for sp in ms.assigned_sps() {
            prop_assert_eq!(
                ms.info(sp).live_cells as usize,
                ms.allocated_cells(sp).len()
            );
        }
        // Pool accounting: used pages = 4 per assigned superpage.
        prop_assert_eq!(pool.used(), ms.assigned_sps().len() * 4);
    }

    /// Run-cached allocation hands out the exact cell sequence the
    /// pre-cache bit-scan path produced: drive a cached space and an
    /// uncached twin (runs dropped before every alloc, forcing the slow
    /// path) through an identical alloc/free/relist/compact schedule and
    /// compare every returned address and the final bitmaps.
    #[test]
    fn run_cache_matches_bit_scan_order(
        ops in proptest::collection::vec((0u8..8, 8u32..=2048, 0u32..1_000_000), 1..250)
    ) {
        let mut cached = MsSpace::new(Address(0x1040_0000), Address(0x1140_0000));
        let mut plain = MsSpace::new(Address(0x1040_0000), Address(0x1140_0000));
        let mut pool_c = PagePool::new(4096);
        let mut pool_p = PagePool::new(4096);
        let mut live: Vec<Address> = Vec::new();
        for &(op, size, idx) in &ops {
            let pick = |live: &Vec<Address>| live[idx as usize % live.len()];
            match op {
                // Free a live cell (both spaces see the same address).
                0 if !live.is_empty() => {
                    let victim = live.swap_remove(idx as usize % live.len());
                    let freed_c = cached.free_cell(&mut pool_c, victim);
                    let freed_p = plain.free_cell(&mut pool_p, victim);
                    prop_assert_eq!(freed_c, freed_p);
                }
                // Re-list a superpage as partial, sweep-style.
                1 if !live.is_empty() => {
                    let sp = cached.sp_of(pick(&live));
                    if cached.info(sp).assignment.is_some() {
                        cached.note_partial(sp);
                        plain.note_partial(sp);
                    }
                }
                // Direct in-superpage allocation, compaction-style.
                2 if !live.is_empty() => {
                    let sp = cached.sp_of(pick(&live));
                    if let Some((class, _)) = cached.info(sp).assignment {
                        let a = cached.alloc_in_sp(sp, class);
                        let b = plain.alloc_in_sp(sp, class);
                        prop_assert_eq!(a, b);
                        if let Some(a) = a {
                            live.push(a);
                        }
                    }
                }
                // Allocate through the public path. The plain twin drops
                // its runs first, so it always takes the bit-scan path.
                _ => {
                    let class = cached.classes().class_for(size).unwrap().index;
                    let kind = if size % 2 == 0 { BlockKind::Scalar } else { BlockKind::Array };
                    plain.invalidate_runs();
                    let a = cached.alloc(&mut pool_c, class, kind);
                    let b = plain.alloc(&mut pool_p, class, kind);
                    prop_assert_eq!(a, b, "cached and bit-scan paths diverged");
                    if let Some(a) = a {
                        live.push(a);
                    }
                }
            }
        }
        // The spaces end in identical states, superpage by superpage.
        prop_assert_eq!(cached.assigned_sps(), plain.assigned_sps());
        for sp in cached.assigned_sps() {
            prop_assert_eq!(cached.allocated_cells(sp), plain.allocated_cells(sp));
            prop_assert_eq!(
                cached.info(sp).live_cells,
                cached.allocated_cells_iter(sp).count() as u32
            );
        }
    }

    /// LOS allocations are page-aligned, disjoint, and freeing coalesces
    /// (allocating the total after freeing everything succeeds in one run).
    #[test]
    fn los_alloc_free_coalesces(sizes in proptest::collection::vec(1u32..(64 << 10), 1..40)) {
        let mut los = LargeObjectSpace::new(Address(0x9040_0000), Address(0x9140_0000));
        let mut pool = PagePool::new(1 << 16);
        let mut objs = Vec::new();
        let mut total_pages = 0u32;
        for &s in &sizes {
            let a = los.alloc(&mut pool, s).unwrap();
            prop_assert_eq!(a.0 % BYTES_PER_PAGE, 0);
            for &b in &objs {
                prop_assert!(a != b);
            }
            total_pages += s.div_ceil(BYTES_PER_PAGE);
            objs.push(a);
        }
        prop_assert_eq!(pool.used(), total_pages as usize);
        for &a in &objs {
            los.free(&mut pool, a);
        }
        prop_assert_eq!(pool.used(), 0);
        prop_assert!(los.is_empty());
        // After freeing everything the space coalesced: one allocation of
        // the combined size fits at the region start.
        let big = los.alloc(&mut pool, total_pages * BYTES_PER_PAGE).unwrap();
        prop_assert_eq!(big, Address(0x9040_0000));
    }

    /// SimMemory: writes read back, zeroing zeroes, and neighbours are
    /// untouched.
    #[test]
    fn memory_round_trips(words in proptest::collection::vec((0u32..32768, any::<u32>()), 1..64)) {
        let mut mem = SimMemory::new();
        let mut model = std::collections::HashMap::new();
        for &(idx, val) in &words {
            mem.write_word(Address(idx * 4), val);
            model.insert(idx, val);
        }
        for (&idx, &val) in &model {
            prop_assert_eq!(mem.read_word(Address(idx * 4)), val);
        }
    }
}
