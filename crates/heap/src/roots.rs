//! Handle-based root set.
//!
//! The simulated mutator never holds raw heap addresses across a potential
//! collection point — copying collectors move objects. Instead it holds
//! [`Handle`]s: indices into a `RootSet` whose slots the collector treats as
//! roots and updates when objects move (the analogue of stack and global
//! scanning in a real VM).

use crate::addr::Address;

/// An opaque, stable reference to a rooted object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Handle(u32);

impl Handle {
    /// The raw slot index (diagnostics only).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// The mutator's root table.
#[derive(Clone, Debug, Default)]
pub struct RootSet {
    slots: Vec<Address>,
    free: Vec<u32>,
}

impl RootSet {
    /// An empty root set.
    pub fn new() -> RootSet {
        RootSet::default()
    }

    /// Roots `addr`, returning a stable handle.
    pub fn add(&mut self, addr: Address) -> Handle {
        debug_assert!(!addr.is_null(), "rooting null");
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = addr;
                Handle(idx)
            }
            None => {
                self.slots.push(addr);
                Handle((self.slots.len() - 1) as u32)
            }
        }
    }

    /// The current address of a rooted object.
    ///
    /// # Panics
    ///
    /// Panics if the handle was removed.
    pub fn get(&self, h: Handle) -> Address {
        let addr = self.slots[h.0 as usize];
        assert!(!addr.is_null(), "use of dropped handle {h:?}");
        addr
    }

    /// Re-points a handle (used by `read_ref`-style loads that reuse slots).
    pub fn set(&mut self, h: Handle, addr: Address) {
        debug_assert!(!addr.is_null());
        self.slots[h.0 as usize] = addr;
    }

    /// Unroots a handle; the slot is recycled.
    pub fn remove(&mut self, h: Handle) {
        debug_assert!(!self.slots[h.0 as usize].is_null(), "double drop of {h:?}");
        self.slots[h.0 as usize] = Address::NULL;
        self.free.push(h.0);
    }

    /// Number of live roots.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no roots are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the live root addresses.
    pub fn iter(&self) -> impl Iterator<Item = Address> + '_ {
        self.slots.iter().copied().filter(|a| !a.is_null())
    }

    /// Visits each live slot mutably (collectors update moved objects here).
    pub fn for_each_slot_mut(&mut self, mut f: impl FnMut(&mut Address)) {
        for slot in &mut self.slots {
            if !slot.is_null() {
                f(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_remove_cycle() {
        let mut roots = RootSet::new();
        let h1 = roots.add(Address(0x100));
        let h2 = roots.add(Address(0x200));
        assert_eq!(roots.get(h1), Address(0x100));
        assert_eq!(roots.get(h2), Address(0x200));
        assert_eq!(roots.len(), 2);
        roots.remove(h1);
        assert_eq!(roots.len(), 1);
        // Slot is recycled.
        let h3 = roots.add(Address(0x300));
        assert_eq!(h3.index(), h1.index());
        assert_eq!(roots.get(h3), Address(0x300));
    }

    #[test]
    #[should_panic(expected = "dropped handle")]
    fn use_after_remove_panics() {
        let mut roots = RootSet::new();
        let h = roots.add(Address(0x100));
        roots.remove(h);
        let _ = roots.get(h);
    }

    #[test]
    fn slot_update_moves_objects() {
        let mut roots = RootSet::new();
        let h1 = roots.add(Address(0x100));
        let h2 = roots.add(Address(0x200));
        roots.for_each_slot_mut(|slot| *slot = Address(slot.0 + 0x1000));
        assert_eq!(roots.get(h1), Address(0x1100));
        assert_eq!(roots.get(h2), Address(0x1200));
    }

    #[test]
    fn iter_skips_dropped() {
        let mut roots = RootSet::new();
        let h1 = roots.add(Address(0x100));
        let _h2 = roots.add(Address(0x200));
        roots.remove(h1);
        let live: Vec<_> = roots.iter().collect();
        assert_eq!(live, vec![Address(0x200)]);
        assert!(!roots.is_empty());
    }
}
