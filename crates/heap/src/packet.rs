//! Work-packet tracing scheduler: deterministic simulated parallel marking.
//!
//! Gray objects are batched into fixed-capacity [`Packet`]s. A
//! [`PacketQueue`] holds one [`TraceScratch`] per simulated GC worker (a
//! local LIFO stack of packets plus the worker's reusable scan/sweep
//! scratch) and a shared LIFO injector seeded from the collector's
//! [`MarkQueue`](crate::tracer::MarkQueue) at the start of each drain.
//!
//! The scheduler in [`drain_gray`](crate::gc::drain_gray) executes the
//! drain *sequentially* on the process clock but attributes each scheduling
//! quantum's simulated cost to the worker that ran it, then rewinds the
//! clock so the pause reflects the **critical path** (`max` over workers)
//! rather than the sum. Everything here is deterministic: the next worker
//! is the least-busy one (ties broken by index), steal victims are probed
//! in fixed round-robin order from the thief's index, and no host clock or
//! RNG is consulted — so `--gc-threads N` output is byte-identical across
//! runs, and `N = 1` reproduces the sequential tracer exactly.
//!
//! Packets are recycled through a free pool, and every per-worker buffer is
//! reused across drains, so the packet path performs no heap allocation
//! after warm-up (proven by `crates/heap/tests/zero_alloc_trace.rs`).

use crate::addr::Address;
use simtime::Nanos;
use zero_alloc::zero_alloc;

/// Objects per work packet. Also the scheduling quantum: a worker scans at
/// most this many objects before the scheduler re-picks the least-busy
/// worker.
pub const PACKET_CAP: usize = 64;

/// A fixed-capacity batch of gray objects.
#[derive(Debug, Default)]
pub struct Packet {
    objs: Vec<Address>,
}

impl Packet {
    fn fresh() -> Packet {
        Packet {
            objs: Vec::with_capacity(PACKET_CAP),
        }
    }

    /// Entries currently in the packet.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// Whether the packet holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }
}

/// Per-worker state: the local packet stack, reusable scratch buffers, and
/// this drain's accounting.
///
/// Folding the scratch buffers in here (instead of loose fields on
/// [`Core`](crate::gc::Core)) keeps all worker-local state in one place:
/// the drain indexes a worker and has its packets, scan scratch, and
/// counters together.
#[derive(Debug, Default)]
pub struct TraceScratch {
    /// Local LIFO stack of packets; the top packet is the active one.
    local: Vec<Packet>,
    /// Reusable `(slot, target)` buffer for
    /// [`Core::scan_refs_into`](crate::gc::Core::scan_refs_into).
    pub scan: Vec<(Address, Address)>,
    /// Reusable dead-cell buffer for sweep loops (worker 0's is the one
    /// collectors borrow via [`Core::sweep_scratch`](crate::gc::Core::sweep_scratch)).
    pub sweep: Vec<Address>,
    /// Simulated time this worker spent tracing during the current drain.
    pub busy: Nanos,
    /// Packets this worker fully drained during the current drain.
    pub packets: u64,
    /// Packets this worker stole during the current drain.
    pub steals: u64,
    /// Objects this worker scanned during the current drain.
    pub objects: u64,
}

impl TraceScratch {
    fn reset_accounting(&mut self) {
        self.busy = Nanos::ZERO;
        self.packets = 0;
        self.steals = 0;
        self.objects = 0;
    }

    fn has_work(&self) -> bool {
        // Packets are recycled as soon as they drain, so any packet on the
        // stack is non-empty.
        !self.local.is_empty()
    }
}

/// How [`PacketQueue::acquire`] found work for a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquired {
    /// The worker already had a non-empty local stack.
    Local,
    /// The worker popped the newest injector packet.
    Injector,
    /// The worker stole the oldest packet of a round-robin victim. The
    /// caller charges [`CostModel::steal_packet`](simtime::CostModel::steal_packet).
    Steal,
    /// No work is reachable for this worker.
    Nothing,
}

/// The work-packet scheduler state shared by all collectors of one heap.
#[derive(Debug)]
pub struct PacketQueue {
    workers: Vec<TraceScratch>,
    /// Shared LIFO stack of packets, seeded from the root queue in order so
    /// the newest packet holds the newest queue entries.
    injector: Vec<Packet>,
    /// Drained packets, recycled to keep the path allocation-free.
    free: Vec<Packet>,
    threads: usize,
}

impl Default for PacketQueue {
    fn default() -> PacketQueue {
        PacketQueue::new(1)
    }
}

impl PacketQueue {
    /// A scheduler for `threads` simulated workers (clamped to at least 1).
    pub fn new(threads: usize) -> PacketQueue {
        PacketQueue {
            workers: Vec::new(),
            injector: Vec::new(),
            free: Vec::new(),
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-worker states (for end-of-drain reporting).
    pub fn workers(&self) -> &[TraceScratch] {
        &self.workers
    }

    /// Worker `w`'s state.
    pub fn worker_mut(&mut self, w: usize) -> &mut TraceScratch {
        &mut self.workers[w]
    }

    /// Worker 0's reusable sweep buffer (collectors' dead-cell scratch).
    pub fn sweep_scratch(&mut self) -> &mut Vec<Address> {
        self.ensure_workers();
        &mut self.workers[0].sweep
    }

    /// Grows the worker table to `threads` entries (warm-up only).
    fn ensure_workers(&mut self) {
        if self.workers.len() < self.threads {
            self.workers.resize_with(self.threads, Default::default);
        }
    }

    /// A recycled or fresh packet (the only allocation site, warm-up only).
    #[cold]
    fn fresh_packet(&mut self) -> Packet {
        Packet::fresh()
    }

    fn grab_packet(&mut self) -> Packet {
        match self.free.pop() {
            Some(p) => p,
            None => self.fresh_packet(),
        }
    }

    /// Starts a drain: resets per-worker accounting and partitions `roots`
    /// (the pending gray queue, oldest first) into injector packets so that
    /// popping the newest packet and scanning it top-down reproduces the
    /// sequential LIFO order.
    pub fn begin(&mut self, roots: &[Address]) {
        self.ensure_workers();
        for w in &mut self.workers {
            w.reset_accounting();
            debug_assert!(w.local.is_empty(), "drain left local packets behind");
        }
        debug_assert!(self.injector.is_empty(), "drain left injector packets");
        let mut i = 0;
        while i < roots.len() {
            let mut p = self.grab_packet();
            let end = (i + PACKET_CAP).min(roots.len());
            p.objs.extend_from_slice(&roots[i..end]);
            self.injector.push(p);
            i = end;
        }
    }

    /// Picks the next worker: the least-busy eligible one (ties go to the
    /// lowest index). A worker is eligible if it has local work or can get
    /// some (injector non-empty, or any victim has a spare packet).
    pub fn select(&self) -> Option<usize> {
        let idle_can_work =
            !self.injector.is_empty() || self.workers.iter().any(|w| w.local.len() >= 2);
        let mut best: Option<usize> = None;
        for (i, w) in self.workers.iter().enumerate() {
            let eligible = w.has_work() || idle_can_work;
            if !eligible {
                continue;
            }
            // Strict < keeps ties on the lowest index.
            let better = match best {
                None => true,
                Some(b) => w.busy < self.workers[b].busy,
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    /// Ensures worker `w` has a local packet to drain, pulling from the
    /// injector first and then stealing the *oldest* packet of the first
    /// round-robin victim (probed `w+1, w+2, …` modulo the worker count)
    /// that has at least two packets. Victims keep their newest packet —
    /// it is their active working set.
    #[zero_alloc]
    pub fn acquire(&mut self, w: usize) -> Acquired {
        if self.workers[w].has_work() {
            return Acquired::Local;
        }
        if let Some(p) = self.injector.pop() {
            self.workers[w].local.push(p);
            return Acquired::Injector;
        }
        let n = self.workers.len();
        for d in 1..n {
            let v = (w + d) % n;
            if self.workers[v].local.len() >= 2 {
                let p = self.workers[v].local.remove(0);
                self.workers[w].local.push(p);
                self.workers[w].steals += 1;
                return Acquired::Steal;
            }
        }
        Acquired::Nothing
    }

    /// Pops the next gray object from worker `w`'s top packet, recycling
    /// drained packets into the free pool.
    #[zero_alloc]
    pub fn pop_obj(&mut self, w: usize) -> Option<Address> {
        let wk = &mut self.workers[w];
        let top = wk.local.last_mut()?;
        let obj = top.objs.pop()?;
        wk.objects += 1;
        if top.is_empty() {
            let p = wk.local.pop().expect("top packet vanished");
            wk.packets += 1;
            self.free.push(p);
        }
        Some(obj)
    }

    /// Pushes a newly grayed object onto worker `w`'s top packet, opening a
    /// new packet when the top one is full.
    #[zero_alloc]
    pub fn push_obj(&mut self, w: usize, obj: Address) {
        let needs_packet = match self.workers[w].local.last() {
            Some(p) => p.len() >= PACKET_CAP,
            None => true,
        };
        if needs_packet {
            let p = self.grab_packet();
            self.workers[w].local.push(p);
        }
        let wk = &mut self.workers[w];
        wk.local.last_mut().expect("just pushed").objs.push(obj);
    }

    /// Whether any packet remains anywhere.
    pub fn has_work(&self) -> bool {
        !self.injector.is_empty() || self.workers.iter().any(TraceScratch::has_work)
    }

    /// `(sum, max)` of per-worker busy time for this drain; the clock is
    /// rewound by `sum - max` so the pause equals the critical path.
    pub fn busy_totals(&self) -> (Nanos, Nanos) {
        let mut sum = Nanos::ZERO;
        let mut max = Nanos::ZERO;
        for w in &self.workers {
            sum += w.busy;
            max = max.max(w.busy);
        }
        (sum, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::MarkQueue;

    fn addrs(n: u32) -> Vec<Address> {
        (1..=n).map(|i| Address(i * 8)).collect()
    }

    #[test]
    fn single_worker_reproduces_sequential_lifo_order() {
        // Seed both a MarkQueue and a PacketQueue with the same 150 roots
        // (crossing packet boundaries), then interleave child pushes the
        // way drain_gray does; pop order must match exactly.
        let roots = addrs(150);
        let mut q = MarkQueue::new();
        for &a in &roots {
            q.push(a);
        }
        let mut pq = PacketQueue::new(1);
        pq.begin(q.as_slice());
        let mut seq = MarkQueue::new();
        for &a in &roots {
            seq.push(a);
        }
        let mut step = 0u32;
        loop {
            assert_eq!(pq.select(), if seq.is_empty() { None } else { Some(0) });
            if pq.acquire(0) == Acquired::Nothing {
                break;
            }
            let got = pq.pop_obj(0);
            let want = seq.pop();
            assert_eq!(got, want, "divergence at step {step}");
            // Every third object "discovers" two children.
            if step % 3 == 0 {
                for c in [
                    Address(0x9000_0000 + step * 8),
                    Address(0xA000_0000 + step * 8),
                ] {
                    pq.push_obj(0, c);
                    seq.push(c);
                }
            }
            step += 1;
            if step > 10_000 {
                panic!("runaway");
            }
        }
        assert!(seq.is_empty());
        assert!(!pq.has_work());
    }

    #[test]
    fn steal_takes_oldest_packet_from_round_robin_victim() {
        let mut pq = PacketQueue::new(4);
        // Three packets' worth of roots -> injector holds 3 packets.
        pq.begin(&addrs(3 * PACKET_CAP as u32));
        // Worker 2 ends up holding all three injector packets.
        assert_eq!(pq.acquire(2), Acquired::Injector);
        while let Some(p) = pq.injector.pop() {
            pq.workers[2].local.push(p);
        }
        assert_eq!(pq.workers[2].local.len(), 3);
        // Worker 0 probes victims 1, 2, 3 in order; 1 has nothing, 2 has
        // three packets -> steals worker 2's oldest.
        assert_eq!(pq.acquire(0), Acquired::Steal);
        assert_eq!(pq.workers[0].steals, 1);
        assert_eq!(pq.workers[2].local.len(), 2);
        // With only packet-poor victims left (len < 2 each after more
        // steals), acquire eventually reports Nothing for a fresh worker.
        assert_eq!(pq.acquire(3), Acquired::Steal);
        assert_eq!(pq.workers[2].local.len(), 1);
        assert_eq!(pq.acquire(1), Acquired::Nothing);
    }

    #[test]
    fn packets_recycle_through_free_pool() {
        let mut pq = PacketQueue::new(1);
        pq.begin(&addrs(PACKET_CAP as u32));
        assert_eq!(pq.acquire(0), Acquired::Injector);
        while pq.pop_obj(0).is_some() {}
        assert_eq!(pq.workers[0].packets, 1);
        assert_eq!(pq.workers[0].objects, PACKET_CAP as u64);
        assert_eq!(pq.free.len(), 1);
        // The next drain reuses the freed packet: free pool drains back.
        pq.begin(&addrs(10));
        assert!(pq.free.is_empty());
        assert_eq!(pq.injector.len(), 1);
    }

    #[test]
    fn select_prefers_least_busy_then_lowest_index() {
        let mut pq = PacketQueue::new(3);
        pq.begin(&addrs(4 * PACKET_CAP as u32));
        pq.workers[0].busy = Nanos(100);
        pq.workers[1].busy = Nanos(7);
        pq.workers[2].busy = Nanos(7);
        assert_eq!(pq.select(), Some(1));
        pq.workers[1].busy = Nanos(8);
        assert_eq!(pq.select(), Some(2));
        let (sum, max) = pq.busy_totals();
        assert_eq!(sum, Nanos(115));
        assert_eq!(max, Nanos(100));
    }
}
