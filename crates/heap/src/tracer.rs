//! The shared tracing worklist.

use crate::addr::Address;

/// A LIFO gray-object worklist used by every tracing collector.
///
/// Deduplication is the caller's job (mark bits / forwarding stubs); the
/// queue only stores pending addresses.
#[derive(Clone, Debug, Default)]
pub struct MarkQueue {
    work: Vec<Address>,
}

impl MarkQueue {
    /// An empty queue.
    pub fn new() -> MarkQueue {
        MarkQueue::default()
    }

    /// Enqueues an object for scanning.
    pub fn push(&mut self, addr: Address) {
        debug_assert!(!addr.is_null());
        self.work.push(addr);
    }

    /// Dequeues the next object, if any.
    pub fn pop(&mut self) -> Option<Address> {
        self.work.pop()
    }

    /// Whether any work remains.
    pub fn is_empty(&self) -> bool {
        self.work.is_empty()
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.work.len()
    }

    /// Discards all pending work (fail-safe restarts).
    pub fn clear(&mut self) {
        self.work.clear();
    }

    /// The pending entries in push order (oldest first).
    ///
    /// Used by the packet scheduler to partition the queue into work
    /// packets; consuming the slice with [`MarkQueue::clear`] and popping
    /// packets newest-first preserves the sequential LIFO order exactly.
    pub fn as_slice(&self) -> &[Address] {
        &self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut q = MarkQueue::new();
        q.push(Address(4));
        q.push(Address(8));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(Address(8)));
        assert_eq!(q.pop(), Some(Address(4)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_discards_work() {
        let mut q = MarkQueue::new();
        q.push(Address(4));
        q.clear();
        assert!(q.is_empty());
    }
}
