//! Heap substrate for the bookmarking-collector reproduction.
//!
//! The paper's collectors are built from a small set of shared pieces, all of
//! which live here:
//!
//! * [`SimMemory`] — a byte-addressable simulated address space backed by
//!   lazily allocated 4 KiB pages (contents survive simulated eviction, as a
//!   swap device's would).
//! * The **object model** ([`object`]): two-word headers carrying mark bit,
//!   bookmark bit, kind, size class and reference counts, exactly the
//!   information the paper stores in the Jikes RVM status word.
//! * **Segregated size classes** ([`SizeClasses`]): every allocation size up
//!   to 64 bytes has its own class, 37 larger classes bound internal
//!   fragmentation at 15 % (33 % for the largest five) and page-internal
//!   fragmentation at 25 % (§3).
//! * **Spaces**: a [`BumpSpace`] (nursery / semispaces), an [`MsSpace`] of
//!   16 KiB *superpages* with per-superpage headers (size class, block kind,
//!   incoming-bookmark count), and a page-granular [`LargeObjectSpace`] for
//!   objects over 8180 bytes.
//! * [`RootSet`] — handle-based roots so that moving collectors can update
//!   the mutator's references.
//! * [`WriteBuffer`] and [`CardTable`] — the hybrid remembered set of §3.1.
//! * The [`GcHeap`] trait — the mutator-facing interface every collector
//!   (the five baselines and BC) implements.
//!
//! Every access to heap memory is charged to the simulated [`vmm::Vmm`]
//! through a [`MemCtx`], so collectors pay for the pages they touch — the
//! property at the heart of the paper.

#![warn(missing_docs)]

mod addr;
mod api;
mod bump;
mod card;
mod ctx;
pub mod gc;
mod los;
mod mem;
mod ms;
pub mod object;
pub mod packet;
pub mod policy;
mod pool;
mod roots;
pub mod sanitize;
mod sizeclass;
mod stats;
mod tracer;
mod wbuf;

pub use addr::{Address, Layout, BYTES_PER_PAGE, BYTES_PER_SUPERPAGE, PAGES_PER_SUPERPAGE, WORD};
pub use api::{
    AllocKind, CollectKind, GcHeap, HeapConfig, HeapConfigBuilder, MetricsSnapshot, NurseryPolicy,
    OutOfMemory, METRICS_SERIES_BUCKET,
};
pub use bump::BumpSpace;
pub use card::CardTable;
pub use ctx::MemCtx;
pub use los::LargeObjectSpace;
pub use mem::SimMemory;
pub use ms::{AllocatedCells, BlockKind, MsSpace, SpIndex, SuperpageInfo};
pub use object::{Header, ObjectKind, LARGEST_CELL_BYTES, MAX_SMALL_OBJECT_BYTES};
pub use packet::{PacketQueue, TraceScratch, PACKET_CAP};
pub use policy::{HeapSizePolicy, PolicyKind, SizingDecision, SizingInput};
pub use pool::PagePool;
pub use roots::{Handle, RootSet};
pub use sanitize::{Classified, InjectFault, SanitizeError, SanitizeLevel, ShadowSpec};
pub use sizeclass::{SizeClass, SizeClasses};
pub use stats::GcStats;
pub use tracer::MarkQueue;
pub use wbuf::WriteBuffer;
