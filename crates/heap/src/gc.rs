//! Machinery shared by every collector: charged object access, the tracing
//! driver, nursery bookkeeping, and pause accounting.
//!
//! Both the baseline collectors (the `collectors` crate) and the bookmarking
//! collector (the `bookmarking` crate) are built on this module: a [`Core`]
//! bundles the per-collector state (simulated memory, page budget, roots,
//! statistics, pause log, gray queue), and the [`Forwarder`] trait plus
//! [`forward_roots`]/[`drain_gray`] implement the generic tracing loop over
//! whatever forwarding policy a collector supplies (mark, copy, or BC's
//! residency-aware mark).

use crate::addr::{Address, BYTES_PER_PAGE, WORD};
use crate::api::{AllocKind, HeapConfig, NurseryPolicy};
use crate::ctx::MemCtx;
use crate::mem::SimMemory;
use crate::object::{field_addr, Header, ObjectKind, HEADER_BYTES};
use crate::packet::{Acquired, PacketQueue, PACKET_CAP};
use crate::policy::{HeapSizePolicy, SizingDecision, SizingInput};
use crate::pool::PagePool;
use crate::roots::RootSet;
use crate::sanitize::Sanitizer;
use crate::stats::GcStats;
use crate::tracer::MarkQueue;
use simtime::{Nanos, PauseKind, PauseLog};
use telemetry::{CollectionKind, EventKind, GcPhase};
use vmm::Access;
use zero_alloc::zero_alloc;

/// Minimum Appel nursery before a full collection is forced (256 KiB).
pub const MIN_NURSERY_BYTES: u32 = 256 * 1024;

/// State common to all collectors.
#[derive(Debug)]
pub struct Core {
    /// The collector's static configuration.
    pub config: HeapConfig,
    /// The simulated backing memory.
    pub mem: SimMemory,
    /// The heap budget, in pages.
    pub pool: PagePool,
    /// The mutator's root table.
    pub roots: RootSet,
    /// Collector counters.
    pub stats: GcStats,
    /// Stop-the-world pause log.
    pub pauses: PauseLog,
    /// The gray-object worklist.
    pub queue: MarkQueue,
    /// Set when a collection could not reclaim enough memory.
    pub oom: bool,
    /// The heap-sizing policy (built from `config.policy`); every budget
    /// move goes through [`Core::apply_decision`].
    pub policy: Box<dyn HeapSizePolicy>,
    /// The work-packet tracing scheduler (see [`crate::packet`]): per-worker
    /// packet stacks plus each worker's reusable scan/sweep scratch.
    /// [`drain_gray`] takes it for the duration of a drain; after warm-up
    /// the packet path performs no heap allocations per traced object.
    pub packets: PacketQueue,
    /// Reusable VM-event buffer for [`Core::pump_policy_events`]: queued
    /// notifications drain into it without a per-pump allocation.
    event_scratch: Vec<vmm::VmEvent>,
    /// Sanitizer state (level, poison ledger, shadow-trace scratch); see
    /// [`crate::sanitize`]. Inert at [`SanitizeLevel::Off`](crate::SanitizeLevel::Off).
    pub(crate) san: Sanitizer,
}

impl Core {
    /// Creates the shared state for a fresh collector instance.
    pub fn new(config: HeapConfig) -> Core {
        Core {
            mem: SimMemory::new(),
            pool: PagePool::with_bytes(config.heap_bytes),
            roots: RootSet::new(),
            stats: GcStats::default(),
            pauses: PauseLog::new(),
            queue: MarkQueue::new(),
            oom: false,
            policy: config.policy.build(),
            packets: PacketQueue::new(config.gc_threads),
            event_scratch: Vec::new(),
            san: Sanitizer::new(config.sanitize, config.sanitize_fault),
            config,
        }
    }

    /// The reusable dead-cell scratch for sweep loops (worker 0's buffer in
    /// the packet scheduler): collectors gather a superpage's unmarked
    /// cells here (the mark checks run against an
    /// [`MsSpace`](crate::MsSpace) iterator borrow), then free them.
    pub fn sweep_scratch(&mut self) -> &mut Vec<Address> {
        self.packets.sweep_scratch()
    }

    /// Reads an object's header (charged).
    pub fn header(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Header {
        ctx.touch(&mut self.mem, obj, HEADER_BYTES, Access::Read);
        Header::decode(
            self.mem.read_word(obj),
            self.mem.read_word(obj.offset(WORD)),
        )
    }

    /// Reads a header that may be a forwarding stub (charged).
    pub fn header_or_forward(
        &mut self,
        ctx: &mut MemCtx<'_>,
        obj: Address,
    ) -> Result<Header, Address> {
        ctx.touch(&mut self.mem, obj, HEADER_BYTES, Access::Read);
        Header::decode_forwarded(
            self.mem.read_word(obj),
            self.mem.read_word(obj.offset(WORD)),
        )
    }

    /// Writes an object's header (charged).
    pub fn write_header(&mut self, ctx: &mut MemCtx<'_>, obj: Address, h: Header) {
        ctx.touch(&mut self.mem, obj, HEADER_BYTES, Access::Write);
        let (w0, w1) = h.encode();
        self.mem.write_word(obj, w0);
        self.mem.write_word(obj.offset(WORD), w1);
    }

    /// Atomically tests and sets the mark bit; `true` if newly marked.
    pub fn try_mark(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> bool {
        ctx.touch(&mut self.mem, obj, HEADER_BYTES, Access::Write);
        let w0 = self.mem.read_word(obj);
        if Header::is_marked(w0) {
            false
        } else {
            self.mem.write_word(obj, Header::with_mark(w0, true));
            true
        }
    }

    /// Whether the object is marked (charged header read).
    pub fn is_marked(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> bool {
        ctx.touch(&mut self.mem, obj, HEADER_BYTES, Access::Read);
        Header::is_marked(self.mem.read_word(obj))
    }

    /// Clears the mark bit (charged).
    pub fn clear_mark(&mut self, ctx: &mut MemCtx<'_>, obj: Address) {
        ctx.touch(&mut self.mem, obj, HEADER_BYTES, Access::Write);
        let w0 = self.mem.read_word(obj);
        self.mem.write_word(obj, Header::with_mark(w0, false));
    }

    /// Initializes a fresh object: zeroes its cell, writes the header, and
    /// charges allocation cost.
    pub fn init_object(&mut self, ctx: &mut MemCtx<'_>, obj: Address, kind: ObjectKind) {
        let size = kind.size_bytes();
        ctx.touch(&mut self.mem, obj, size, Access::Write);
        if self.sanitize_checks() {
            self.san_check_alloc_target(obj, size);
        }
        self.mem.zero(obj, size);
        let (w0, w1) = Header::new(kind).encode();
        self.mem.write_word(obj, w0);
        self.mem.write_word(obj.offset(WORD), w1);
        let costs = ctx.vmm.costs();
        let (alloc_object, ram_word) = (costs.alloc_object, costs.ram_word);
        ctx.clock
            .advance(alloc_object + ram_word * (size / WORD) as u64);
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += size as u64;
    }

    /// Reads the reference fields of `obj`, returning `(slot, target)` for
    /// each non-null one, charging the scan.
    ///
    /// Convenience wrapper over [`Core::scan_refs_into`]; the tracing loop
    /// uses the `_into` form with a reused scratch buffer instead.
    pub fn scan_refs(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Vec<(Address, Address)> {
        let mut out = Vec::new();
        self.scan_refs_into(ctx, obj, &mut out);
        out
    }

    /// Reads the reference fields of `obj` into `out` (cleared first),
    /// charging the scan. Performs no heap allocation once `out` has grown
    /// to the largest ref count seen, and copies no cost table: only the
    /// two cost fields the scan charges are read.
    #[zero_alloc]
    pub fn scan_refs_into(
        &mut self,
        ctx: &mut MemCtx<'_>,
        obj: Address,
        out: &mut Vec<(Address, Address)>,
    ) {
        out.clear();
        let h = self.header(ctx, obj);
        let n = h.kind.num_ref_fields();
        let costs = ctx.vmm.costs();
        let (scan_object, scan_ref) = (costs.scan_object, costs.scan_ref);
        ctx.clock.advance(scan_object + scan_ref * n as u64);
        if n == 0 {
            return;
        }
        // One touch for the whole referenced span, then raw reads.
        ctx.touch(
            &mut self.mem,
            obj.offset(HEADER_BYTES),
            n * WORD,
            Access::Read,
        );
        out.reserve(n as usize);
        for i in 0..n {
            let slot = field_addr(obj, i);
            let target = Address(self.mem.read_word(slot));
            if !target.is_null() {
                out.push((slot, target));
            }
        }
    }

    /// Copies an object's `size` bytes from `from` to `to` and leaves a
    /// forwarding stub at `from` (charged).
    pub fn copy_object(&mut self, ctx: &mut MemCtx<'_>, from: Address, to: Address, size: u32) {
        ctx.touch(&mut self.mem, from, size, Access::Read);
        ctx.touch(&mut self.mem, to, size, Access::Write);
        if self.sanitize_checks() {
            self.san_check_alloc_target(to, size);
        }
        self.mem.copy(from, to, size);
        let (w0, w1) = Header::forwarding_stub(to);
        self.mem.write_word(from, w0);
        self.mem.write_word(from.offset(WORD), w1);
        let copy_byte = ctx.vmm.costs().copy_byte;
        ctx.clock.advance(copy_byte * size as u64);
        self.stats.objects_moved += 1;
        self.stats.bytes_moved += size as u64;
    }

    /// Writes a reference slot (charged raw word write, no barrier).
    pub fn write_slot(&mut self, ctx: &mut MemCtx<'_>, slot: Address, val: Address) {
        ctx.write_word(&mut self.mem, slot, val.0);
    }

    /// Reads a reference slot (charged).
    pub fn read_slot(&mut self, ctx: &mut MemCtx<'_>, slot: Address) -> Address {
        Address(ctx.read_word(&mut self.mem, slot))
    }

    /// Starts a stop-the-world pause of the given kind; pair with
    /// [`Core::end_pause`]. Emits a [`EventKind::CollectionBegin`] span
    /// opener when tracing is enabled.
    pub fn begin_pause(&mut self, ctx: &mut MemCtx<'_>, kind: PauseKind) -> PauseToken {
        let gc_setup = ctx.vmm.costs().gc_setup;
        ctx.clock.advance(gc_setup);
        self.trace_event(
            ctx,
            EventKind::CollectionBegin {
                kind: collection_kind(kind),
            },
        );
        PauseToken {
            start: ctx.clock.now(),
            faults: ctx.major_faults(),
            kind,
        }
    }

    /// Finishes the pause opened by [`Core::begin_pause`], logs it, and
    /// closes the telemetry span.
    pub fn end_pause(&mut self, ctx: &mut MemCtx<'_>, token: PauseToken) {
        let duration = ctx.clock.now() - token.start;
        let faults = ctx.major_faults() - token.faults;
        self.pauses
            .record(token.start, duration, token.kind, faults);
        self.trace_event(
            ctx,
            EventKind::CollectionEnd {
                kind: collection_kind(token.kind),
            },
        );
    }

    /// Opens a telemetry phase span (root scan, trace, sweep, …); a no-op
    /// when tracing is disabled.
    #[inline]
    pub fn phase_begin(&self, ctx: &MemCtx<'_>, phase: GcPhase) {
        self.trace_event(ctx, EventKind::PhaseBegin { phase });
    }

    /// Closes a telemetry phase span.
    #[inline]
    pub fn phase_end(&self, ctx: &MemCtx<'_>, phase: GcPhase) {
        self.trace_event(ctx, EventKind::PhaseEnd { phase });
    }

    /// Emits one structured event stamped with this process and the current
    /// simulated time; a single branch when tracing is disabled.
    #[inline]
    pub fn trace_event(&self, ctx: &MemCtx<'_>, kind: EventKind) {
        self.config
            .tracer
            .emit(ctx.pid.as_u32(), ctx.clock.now(), kind);
    }

    // ----- heap sizing (crate::policy) ----------------------------------

    /// The policy's O(1) observation of current collector and VMM state.
    pub fn sizing_input(&self, ctx: &MemCtx<'_>) -> SizingInput {
        let last_pause = self
            .pauses
            .records()
            .last()
            .map_or(Nanos::ZERO, |r| r.duration);
        SizingInput {
            now: ctx.clock.now(),
            used_pages: self.pool.used(),
            limit_pages: self.pool.budget(),
            configured_pages: self.config.heap_bytes / BYTES_PER_PAGE as usize,
            bytes_allocated: self.stats.bytes_allocated,
            objects_allocated: self.stats.objects_allocated,
            objects_traced: self.stats.objects_traced,
            last_pause,
            under_pressure: ctx.vmm.under_pressure(),
            free_frames: ctx.vmm.free_frames(),
            high_watermark: ctx.vmm.config().high_watermark,
        }
    }

    /// Applies a sizing decision: moves the budget, bumps the shrink/grow
    /// counter, and emits the [`EventKind::HeapShrink`]/[`EventKind::HeapGrow`]
    /// event carrying the policy's reasoning. Returns whether the budget
    /// actually moved (callers recompute nursery limits on `true`).
    pub fn apply_decision(&mut self, ctx: &MemCtx<'_>, decision: SizingDecision) -> bool {
        let current = self.pool.budget();
        if decision.limit_pages == current {
            return false;
        }
        self.pool.set_budget(decision.limit_pages);
        if decision.limit_pages < current {
            self.stats.heap_shrinks += 1;
            self.trace_event(
                ctx,
                EventKind::HeapShrink {
                    budget_pages: decision.limit_pages as u32,
                    reason: decision.reason.into(),
                },
            );
        } else {
            self.stats.heap_regrows += 1;
            self.trace_event(
                ctx,
                EventKind::HeapGrow {
                    budget_pages: decision.limit_pages as u32,
                    reason: decision.reason.into(),
                },
            );
        }
        true
    }

    /// Runs the policy's end-of-collection hook; returns whether the budget
    /// moved.
    pub fn policy_after_gc(&mut self, ctx: &MemCtx<'_>) -> bool {
        let input = self.sizing_input(ctx);
        match self.policy.after_collection(&input) {
            Some(d) => self.apply_decision(ctx, d),
            None => false,
        }
    }

    /// Runs the policy's pressure hook (an eviction was scheduled); returns
    /// whether the budget moved.
    pub fn policy_pressure(&mut self, ctx: &MemCtx<'_>) -> bool {
        let input = self.sizing_input(ctx);
        match self.policy.on_pressure(&input) {
            Some(d) => self.apply_decision(ctx, d),
            None => false,
        }
    }

    /// Runs the policy's idle hook (a mutator safe point); returns whether
    /// the budget moved. Call only when `policy.idle_active()` — this sits
    /// on the per-step path.
    pub fn policy_idle(&mut self, ctx: &MemCtx<'_>) -> bool {
        let input = self.sizing_input(ctx);
        match self.policy.on_idle(&input) {
            Some(d) => self.apply_decision(ctx, d),
            None => false,
        }
    }

    /// The shared `handle_vm_events` body for collectors without bespoke
    /// VMM cooperation: drain queued notifications (charging the
    /// notification cost), let the policy react to eviction notices, then
    /// run the idle hook if the policy wants it. Returns whether the budget
    /// moved. Under [`crate::policy::PolicyKind::Fixed`] the process never
    /// registers for notifications, so the queue is empty and this is
    /// byte-for-byte today's defensive drain.
    pub fn pump_policy_events(&mut self, ctx: &mut MemCtx<'_>) -> bool {
        let mut changed = false;
        let mut events = std::mem::take(&mut self.event_scratch);
        events.clear();
        ctx.vmm.drain_events_into(ctx.pid, &mut events);
        for ev in &events {
            let cost = ctx.vmm.costs().notification;
            ctx.clock.advance(cost);
            if let vmm::VmEvent::EvictionScheduled { .. } = ev {
                changed |= self.policy_pressure(ctx);
            }
        }
        self.event_scratch = events;
        if self.policy.idle_active() {
            changed |= self.policy_idle(ctx);
        }
        changed
    }
}

/// An open stop-the-world pause (returned by [`Core::begin_pause`], consumed
/// by [`Core::end_pause`]).
#[derive(Clone, Copy, Debug)]
#[must_use = "an open pause must be closed with Core::end_pause"]
pub struct PauseToken {
    start: Nanos,
    faults: u64,
    kind: PauseKind,
}

impl PauseToken {
    /// The instant the pause began.
    pub fn start(&self) -> Nanos {
        self.start
    }

    /// The pause kind declared at [`Core::begin_pause`].
    pub fn kind(&self) -> PauseKind {
        self.kind
    }
}

/// The telemetry span kind for a pause.
fn collection_kind(kind: PauseKind) -> CollectionKind {
    match kind {
        PauseKind::Nursery => CollectionKind::Minor,
        PauseKind::Full => CollectionKind::Full,
        PauseKind::Compacting => CollectionKind::Compacting,
        PauseKind::FailSafe => CollectionKind::Failsafe,
    }
}

/// A collector that can forward (mark or copy) one object reference.
pub trait Forwarder {
    /// Shared state.
    fn core_mut(&mut self) -> &mut Core;

    /// Processes one edge: marks or copies `obj` as the collection requires,
    /// enqueues it for scanning on first visit, and returns its (possibly
    /// new) address.
    fn forward(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address;
}

/// Forwards every root slot.
pub fn forward_roots<F: Forwarder>(f: &mut F, ctx: &mut MemCtx<'_>) {
    let mut roots = std::mem::take(&mut f.core_mut().roots);
    let mut slots: Vec<Address> = roots.iter().collect();
    for slot in &mut slots {
        *slot = f.forward(ctx, *slot);
    }
    // Write back in the same order.
    let mut it = slots.into_iter();
    roots.for_each_slot_mut(|s| *s = it.next().expect("root count changed during trace"));
    f.core_mut().roots = roots;
}

/// Drains the gray queue through the work-packet scheduler: the pending
/// queue is partitioned into packets, N simulated workers drain them with
/// deterministic work-stealing, and the clock is rewound so the elapsed
/// pause equals the critical path (`max` over per-worker busy time) rather
/// than the sum. See [`crate::packet`] for the scheduling rules.
///
/// At `gc_threads = 1` this reproduces the old sequential loop exactly:
/// one worker, no steals, zero rewind, identical pop order and charges.
///
/// The loop is allocation-free per traced object: `(slot, target)` pairs
/// land in the active worker's reusable scan buffer, and packets recycle
/// through the scheduler's free pool.
#[zero_alloc]
pub fn drain_gray<F: Forwarder>(f: &mut F, ctx: &mut MemCtx<'_>) {
    // The scheduler must be borrowed alongside `Core` (scan scratch on one
    // side, charged heap access on the other), so it is moved out of the
    // core for the duration of the drain.
    let mut pq = std::mem::take(&mut f.core_mut().packets);
    {
        let core = f.core_mut();
        pq.begin(core.queue.as_slice());
        core.queue.clear();
    }
    let steal_cost = ctx.vmm.costs().steal_packet;
    while let Some(w) = pq.select() {
        let quantum_start = ctx.clock.now();
        match pq.acquire(w) {
            Acquired::Nothing => break,
            Acquired::Steal => ctx.clock.advance(steal_cost),
            Acquired::Local | Acquired::Injector => {}
        }
        // One scheduling quantum: up to a packet's worth of objects, so the
        // least-busy-worker pick amortizes over PACKET_CAP scans.
        let mut quantum = 0;
        while quantum < PACKET_CAP {
            let Some(obj) = pq.pop_obj(w) else { break };
            quantum += 1;
            f.core_mut().stats.objects_traced += 1;
            f.core_mut()
                .scan_refs_into(ctx, obj, &mut pq.worker_mut(w).scan);
            for i in 0..pq.workers()[w].scan.len() {
                let (slot, target) = pq.workers()[w].scan[i];
                let new = f.forward(ctx, target);
                if new != target {
                    // Page already touched by the scan.
                    f.core_mut().mem.write_word(slot, new.0);
                }
            }
            // Children the forwarder just enqueued move onto this worker's
            // local stack, newest on top — the sequential LIFO order.
            let core = f.core_mut();
            for &child in core.queue.as_slice() {
                pq.push_obj(w, child);
            }
            core.queue.clear();
        }
        let spent = ctx.clock.now() - quantum_start;
        pq.worker_mut(w).busy += spent;
    }
    let (total, critical) = pq.busy_totals();
    ctx.clock.rewind(total - critical);
    finish_drain(f, ctx, &pq);
    f.core_mut().packets = pq;
}

/// End-of-drain bookkeeping: folds per-worker packet/steal counters into
/// [`GcStats`] and emits one [`EventKind::TraceWorker`] summary per worker
/// (timestamps are post-rewind, like the pause end).
fn finish_drain<F: Forwarder>(f: &mut F, ctx: &MemCtx<'_>, pq: &PacketQueue) {
    let (_, critical) = pq.busy_totals();
    let core = f.core_mut();
    let mut traced_any = false;
    for w in pq.workers() {
        core.stats.trace_packets += w.packets;
        core.stats.trace_steals += w.steals;
        traced_any |= w.objects > 0;
    }
    if traced_any && core.config.tracer.enabled() {
        for (i, w) in pq.workers().iter().enumerate() {
            core.trace_event(
                ctx,
                EventKind::TraceWorker {
                    worker: i as u32,
                    packets: w.packets,
                    steals: w.steals,
                    objects: w.objects,
                    busy_ns: w.busy.as_nanos(),
                    idle_ns: critical.saturating_sub(w.busy).as_nanos(),
                },
            );
        }
    }
}

/// Appel-style nursery sizing shared by the generational collectors.
#[derive(Clone, Copy, Debug)]
pub struct NurserySizer {
    policy: NurseryPolicy,
}

impl NurserySizer {
    /// A sizer following `policy`.
    pub fn new(policy: NurseryPolicy) -> NurserySizer {
        NurserySizer { policy }
    }

    /// The nursery budget given the bytes that would be free if the nursery
    /// were empty, after subtracting the collector's copy reserve.
    pub fn limit(&self, free_minus_reserve_bytes: u32) -> u32 {
        match self.policy {
            NurseryPolicy::Appel => (free_minus_reserve_bytes / 2).max(MIN_NURSERY_BYTES),
            NurseryPolicy::Fixed { bytes } => bytes,
        }
    }

    /// Whether a full collection should be forced because the nursery has
    /// shrunk to its minimum (Appel) or the reserve is exhausted (fixed).
    pub fn full_gc_needed(&self, free_minus_reserve_bytes: u32) -> bool {
        match self.policy {
            NurseryPolicy::Appel => free_minus_reserve_bytes / 2 < MIN_NURSERY_BYTES,
            NurseryPolicy::Fixed { bytes } => free_minus_reserve_bytes < bytes,
        }
    }
}

/// Decides cell-vs-LOS placement for an allocation request.
pub fn is_large(kind: AllocKind) -> bool {
    kind.size_bytes() > crate::object::MAX_SMALL_OBJECT_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::{Clock, CostModel};
    use vmm::{Vmm, VmmConfig};

    fn setup() -> (Core, Vmm, Clock) {
        let mut vmm = Vmm::new(
            VmmConfig::builder().frames(1024).build(),
            CostModel::default(),
        );
        let pid = vmm.register_process();
        assert_eq!(pid.as_u32(), 0);
        (
            Core::new(HeapConfig::builder().heap_bytes(1 << 20).build()),
            vmm,
            Clock::new(),
        )
    }

    #[test]
    fn init_and_header_round_trip() {
        let (mut core, mut vmm, mut clock) = setup();
        let pid = vmm::ProcessId::new(0);
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let kind = ObjectKind::scalar(4, 2);
        let obj = Address(0x1040_0000);
        core.init_object(&mut ctx, obj, kind);
        let h = core.header(&mut ctx, obj);
        assert_eq!(h.kind, kind);
        assert!(!h.mark && !h.bookmark);
        assert_eq!(core.stats.objects_allocated, 1);
        assert_eq!(core.stats.bytes_allocated, 24);
    }

    #[test]
    fn try_mark_marks_once() {
        let (mut core, mut vmm, mut clock) = setup();
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, vmm::ProcessId::new(0));
        let obj = Address(0x1040_0000);
        core.init_object(&mut ctx, obj, ObjectKind::scalar(1, 0));
        assert!(core.try_mark(&mut ctx, obj));
        assert!(!core.try_mark(&mut ctx, obj));
        assert!(core.is_marked(&mut ctx, obj));
        core.clear_mark(&mut ctx, obj);
        assert!(!core.is_marked(&mut ctx, obj));
    }

    #[test]
    fn scan_refs_returns_nonnull_slots() {
        let (mut core, mut vmm, mut clock) = setup();
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, vmm::ProcessId::new(0));
        let obj = Address(0x1040_0000);
        core.init_object(&mut ctx, obj, ObjectKind::scalar(4, 3));
        // Set fields 0 and 2.
        core.write_slot(&mut ctx, field_addr(obj, 0), Address(0x2000));
        core.write_slot(&mut ctx, field_addr(obj, 2), Address(0x3000));
        let refs = core.scan_refs(&mut ctx, obj);
        assert_eq!(
            refs,
            vec![
                (field_addr(obj, 0), Address(0x2000)),
                (field_addr(obj, 2), Address(0x3000)),
            ]
        );
    }

    #[test]
    fn copy_object_leaves_forwarding_stub() {
        let (mut core, mut vmm, mut clock) = setup();
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, vmm::ProcessId::new(0));
        let from = Address(0x1040_0000);
        let to = Address(0x5040_0000);
        let kind = ObjectKind::scalar(2, 1);
        core.init_object(&mut ctx, from, kind);
        core.write_slot(&mut ctx, field_addr(from, 0), Address(0xABCD_0000));
        core.copy_object(&mut ctx, from, to, kind.size_bytes());
        assert_eq!(core.header_or_forward(&mut ctx, from), Err(to));
        let h = core.header(&mut ctx, to);
        assert_eq!(h.kind, kind);
        assert_eq!(
            core.read_slot(&mut ctx, field_addr(to, 0)),
            Address(0xABCD_0000)
        );
        assert_eq!(core.stats.objects_moved, 1);
    }

    #[test]
    fn nursery_sizer_appel_halves_free_space() {
        let s = NurserySizer::new(NurseryPolicy::Appel);
        assert_eq!(s.limit(40 << 20), 20 << 20);
        assert_eq!(s.limit(100), MIN_NURSERY_BYTES);
        assert!(s.full_gc_needed(100));
        assert!(!s.full_gc_needed(10 << 20));
    }

    #[test]
    fn nursery_sizer_fixed_is_constant() {
        let s = NurserySizer::new(NurseryPolicy::FIXED_4MB);
        assert_eq!(s.limit(100 << 20), 4 << 20);
        assert_eq!(s.limit(0), 4 << 20);
        assert!(s.full_gc_needed(3 << 20));
        assert!(!s.full_gc_needed(5 << 20));
    }

    #[test]
    fn is_large_matches_paper_threshold() {
        assert!(!is_large(AllocKind::DataArray { len: 2043 })); // 8180 bytes
        assert!(is_large(AllocKind::DataArray { len: 2044 })); // 8184 bytes
    }
}
