//! The segregated-fit mark-sweep space over superpages (§3).
//!
//! The mature space is divided into **superpages**: page-aligned groups of
//! four contiguous 4 KiB pages. Objects of different size classes are
//! allocated onto different superpages; completely empty superpages can be
//! reassigned to any size class. Each superpage stores its metadata in a
//! small header at its base — "this placement permits constant-time access
//! by bit-masking … while storing the metadata in the superpage header
//! prevents BC from evicting one-fourth of the pages, it reduces memory
//! overhead and simplifies the memory layout" (§3.4).
//!
//! Superpages are additionally segregated by *block kind* (scalar vs.
//! array), mirroring §4's fix for Jikes RVM header placement: "we solve
//! this problem by further segmenting our allocation to allow superpages to
//! hold either only scalars or only arrays".

use vmm::VirtPage;

use crate::addr::{Address, BYTES_PER_PAGE, BYTES_PER_SUPERPAGE, PAGES_PER_SUPERPAGE};
use crate::pool::PagePool;
use crate::sizeclass::{SizeClasses, SUPERPAGE_METADATA_BYTES};

/// Index of a superpage within the mature region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpIndex(pub u32);

/// Whether a superpage holds scalars or arrays (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlockKind {
    /// Scalars only.
    Scalar,
    /// Arrays only.
    Array,
}

/// Public snapshot of one superpage's header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperpageInfo {
    /// Assigned size class and block kind; `None` for a free superpage.
    pub assignment: Option<(u8, BlockKind)>,
    /// "The number of evicted pages pointing to objects on a given
    /// superpage" (§3.4).
    pub incoming_bookmarks: u32,
    /// Allocated (live-or-unswept) cells.
    pub live_cells: u32,
}

#[derive(Clone, Debug, Default)]
struct SpState {
    assignment: Option<(u8, BlockKind)>,
    incoming_bookmarks: u32,
    alloc_bits: Vec<u64>,
    live_cells: u32,
    /// First-free search hint.
    hint: u32,
}

impl SpState {
    fn is_allocated(&self, cell: u32) -> bool {
        self.alloc_bits
            .get((cell / 64) as usize)
            .is_some_and(|w| w & (1 << (cell % 64)) != 0)
    }

    fn set_allocated(&mut self, cell: u32, on: bool) {
        let w = &mut self.alloc_bits[(cell / 64) as usize];
        if on {
            *w |= 1 << (cell % 64);
        } else {
            *w &= !(1 << (cell % 64));
        }
    }

    /// First free cell at or after `from` (exclusive upper bound `limit`),
    /// found by whole-word bit scanning.
    fn first_free_from(&self, from: u32, limit: u32) -> Option<u32> {
        let mut word_idx = (from / 64) as usize;
        let last_word = limit.div_ceil(64) as usize;
        // Mask off bits below `from` in the first word.
        let mut mask = !0u64 << (from % 64);
        while word_idx < last_word {
            let free = !self.alloc_bits[word_idx] & mask;
            if free != 0 {
                let cell = word_idx as u32 * 64 + free.trailing_zeros();
                return (cell < limit).then_some(cell);
            }
            word_idx += 1;
            mask = !0;
        }
        None
    }

    /// One past the last cell of the contiguous free run starting at
    /// `from` (bounded by `limit`).
    fn free_run_end(&self, from: u32, limit: u32) -> u32 {
        let mut word_idx = (from / 64) as usize;
        let last_word = limit.div_ceil(64) as usize;
        // Ignore bits below `from` in the first word: the run end is the
        // first *allocated* cell at or after `from`.
        let mut mask = !0u64 << (from % 64);
        while word_idx < last_word {
            let used = self.alloc_bits[word_idx] & mask;
            if used != 0 {
                let end = word_idx as u32 * 64 + used.trailing_zeros();
                return end.min(limit);
            }
            word_idx += 1;
            mask = !0;
        }
        limit
    }
}

/// A cached **allocation run**: a contiguous range of free cells reserved
/// (by position, not by bits) from one superpage, in the spirit of Nofl's
/// bump regions. While a run is live, consecutive same-(class, kind)
/// allocations are served by bumping `next` — one bit-set and one counter
/// update, no partial-list walk and no bit scan.
///
/// # Invalidation invariants
///
/// A run may only be served while the state it summarized still holds:
///
/// * every cell in `[next, end)` is free in the superpage's `alloc_bits`;
/// * the superpage is still assigned to the run's (class, kind);
/// * the superpage is still the head of that (class, kind) partial list,
///   and its first-free hint still points into the run — so bump order is
///   *exactly* the order the bit-scan path would produce.
///
/// Every operation that can break one of these drops the affected runs:
/// [`MsSpace::free_cell`] (hint moves backwards), [`MsSpace::release_sp`]
/// (unassignment, e.g. compaction freeing source superpages), `assign`
/// (recycled superpage re-used, possibly for another class),
/// [`MsSpace::note_partial`] (sweep pushes a new partial-list head), and
/// [`MsSpace::reserve_free_cells_in_bytes`] (eviction reserves cells that
/// may sit inside the run).
#[derive(Clone, Copy, Debug)]
struct AllocRun {
    sp: u32,
    /// Next cell to hand out.
    next: u32,
    /// One past the last known-free cell of the run.
    end: u32,
    /// The class's cell size, cached for pure address arithmetic.
    cell_bytes: u32,
}

/// The segregated-fit mark-sweep space.
#[derive(Debug)]
pub struct MsSpace {
    base: Address,
    region_limit: Address,
    classes: SizeClasses,
    sps: Vec<SpState>,
    /// Superpages carved out of the region so far.
    extent_sps: u32,
    /// Fully free superpages (memory still mapped, budget released).
    free_sps: Vec<u32>,
    /// Per (class, kind): superpages with at least one free cell.
    partial: Vec<Vec<u32>>,
    /// Per (class, kind): the cached allocation run, if any.
    runs: Vec<Option<AllocRun>>,
}

impl MsSpace {
    /// An empty space over `[base, region_limit)`.
    ///
    /// # Panics
    ///
    /// Panics unless the bounds are superpage-aligned.
    pub fn new(base: Address, region_limit: Address) -> MsSpace {
        assert_eq!(base.0 % BYTES_PER_SUPERPAGE, 0);
        assert_eq!(region_limit.0 % BYTES_PER_SUPERPAGE, 0);
        let classes = SizeClasses::new();
        let n_classes = classes.iter().count();
        MsSpace {
            base,
            region_limit,
            classes,
            sps: Vec::new(),
            extent_sps: 0,
            free_sps: Vec::new(),
            partial: vec![Vec::new(); n_classes * 2],
            runs: vec![None; n_classes * 2],
        }
    }

    /// The size-class table.
    pub fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    fn partial_idx(class: u8, kind: BlockKind) -> usize {
        class as usize * 2 + if kind == BlockKind::Array { 1 } else { 0 }
    }

    /// Allocates one cell of `class` for `kind`, drawing new superpages from
    /// `pool` as needed. Returns `None` when the pool (or region) is
    /// exhausted.
    pub fn alloc(&mut self, pool: &mut PagePool, class: u8, kind: BlockKind) -> Option<Address> {
        let pidx = Self::partial_idx(class, kind);
        // Fast path: bump the cached allocation run.
        if let Some(run) = self.runs[pidx] {
            if run.next < run.end {
                let st = &mut self.sps[run.sp as usize];
                debug_assert_eq!(st.assignment, Some((class, kind)));
                debug_assert!(!st.is_allocated(run.next), "stale allocation run");
                st.set_allocated(run.next, true);
                st.live_cells += 1;
                st.hint = run.next + 1;
                self.runs[pidx] = Some(AllocRun {
                    next: run.next + 1,
                    ..run
                });
                return Some(self.cell_addr(SpIndex(run.sp), run.next, run.cell_bytes));
            }
            self.runs[pidx] = None;
        }
        while let Some(&sp) = self.partial[pidx].last() {
            if let Some(addr) = self.alloc_with_run(SpIndex(sp), pidx, class) {
                return Some(addr);
            }
            self.partial[pidx].pop();
        }
        // Need a fresh superpage: reuse a free one or extend the region.
        let sp = self.take_free_superpage(pool)?;
        self.assign(sp, class, kind);
        self.partial[pidx].push(sp.0);
        self.alloc_with_run(sp, pidx, class)
    }

    /// Slow-path allocation in `sp` that also (re)establishes the run
    /// cache for `pidx`: the allocated cell is found by bit scan, and the
    /// contiguous free cells right after it become the new run.
    fn alloc_with_run(&mut self, sp: SpIndex, pidx: usize, class: u8) -> Option<Address> {
        let sc = self.classes.class(class);
        let (cell_bytes, cells) = (sc.cell_bytes, sc.cells_per_superpage);
        let cell = self.alloc_cell_in_sp(sp, class)?;
        let end = self.sps[sp.0 as usize].free_run_end(cell + 1, cells);
        self.runs[pidx] = (cell + 1 < end).then_some(AllocRun {
            sp: sp.0,
            next: cell + 1,
            end,
            cell_bytes,
        });
        Some(self.cell_addr(sp, cell, cell_bytes))
    }

    /// Drops a cached run pointing at `sp`, if any. A run for a superpage
    /// always lives at the partial index of that superpage's assignment,
    /// so this is a single-slot check.
    fn invalidate_runs_for_sp(&mut self, sp: SpIndex) {
        if let Some((class, kind)) = self.sps[sp.0 as usize].assignment {
            let pidx = Self::partial_idx(class, kind);
            if self.runs[pidx].is_some_and(|r| r.sp == sp.0) {
                self.runs[pidx] = None;
            }
        }
    }

    /// Drops every cached allocation run. Allocation falls back to the
    /// bit-scan slow path until runs are re-established. Safe at any time;
    /// tests use it to compare cached against uncached allocation order.
    pub fn invalidate_runs(&mut self) {
        self.runs.iter_mut().for_each(|r| *r = None);
    }

    /// Like [`alloc`](MsSpace::alloc), but overruns the pool budget rather
    /// than failing (collectors copying survivors into this space must not
    /// fail mid-collection). Still fails when the region is exhausted.
    pub fn alloc_forced(
        &mut self,
        pool: &mut PagePool,
        class: u8,
        kind: BlockKind,
    ) -> Option<Address> {
        if let Some(addr) = self.alloc(pool, class, kind) {
            return Some(addr);
        }
        let sp = if let Some(sp) = self.free_sps.pop() {
            pool.force_acquire(PAGES_PER_SUPERPAGE as usize);
            SpIndex(sp)
        } else {
            let next_base = self.base.0 + self.extent_sps * BYTES_PER_SUPERPAGE;
            if next_base + BYTES_PER_SUPERPAGE > self.region_limit.0 {
                return None;
            }
            pool.force_acquire(PAGES_PER_SUPERPAGE as usize);
            let sp = self.extent_sps;
            self.extent_sps += 1;
            self.sps.push(SpState::default());
            SpIndex(sp)
        };
        self.assign(sp, class, kind);
        let pidx = Self::partial_idx(class, kind);
        self.partial[pidx].push(sp.0);
        self.alloc_with_run(sp, pidx, class)
    }

    /// Acquires a completely free superpage (budget charged to `pool`),
    /// without assigning it.
    pub fn take_free_superpage(&mut self, pool: &mut PagePool) -> Option<SpIndex> {
        if let Some(sp) = self.free_sps.last().copied() {
            if !pool.acquire(PAGES_PER_SUPERPAGE as usize) {
                return None;
            }
            self.free_sps.pop();
            return Some(SpIndex(sp));
        }
        // Extend the region.
        let next_base = self.base.0 + self.extent_sps * BYTES_PER_SUPERPAGE;
        if next_base + BYTES_PER_SUPERPAGE > self.region_limit.0 {
            return None;
        }
        if !pool.acquire(PAGES_PER_SUPERPAGE as usize) {
            return None;
        }
        let sp = self.extent_sps;
        self.extent_sps += 1;
        self.sps.push(SpState::default());
        Some(SpIndex(sp))
    }

    fn assign(&mut self, sp: SpIndex, class: u8, kind: BlockKind) {
        // A freshly (re)assigned superpage can have no cached run:
        // `release_sp` drops the run when the superpage is unassigned.
        debug_assert!(self.runs.iter().flatten().all(|r| r.sp != sp.0));
        let cells = self.classes.class(class).cells_per_superpage;
        let st = &mut self.sps[sp.0 as usize];
        debug_assert!(st.assignment.is_none() && st.live_cells == 0);
        st.assignment = Some((class, kind));
        st.alloc_bits = vec![0; cells.div_ceil(64) as usize];
        st.live_cells = 0;
        st.hint = 0;
    }

    /// Allocates a cell within a specific superpage (used by compaction to
    /// fill target superpages). Returns `None` when the superpage is full.
    ///
    /// Drops any cached run on `sp` first: the caller bypasses the
    /// partial-list discipline the run relies on.
    pub fn alloc_in_sp(&mut self, sp: SpIndex, class: u8) -> Option<Address> {
        self.invalidate_runs_for_sp(sp);
        let cell_bytes = self.classes.class(class).cell_bytes;
        self.alloc_cell_in_sp(sp, class)
            .map(|cell| self.cell_addr(sp, cell, cell_bytes))
    }

    /// The bit-scan allocation path: first free cell at or after the hint,
    /// wrapping once in case earlier cells were freed (the hint is kept
    /// at-or-below the first free cell, so the wrap is defensive).
    fn alloc_cell_in_sp(&mut self, sp: SpIndex, class: u8) -> Option<u32> {
        let cells = self.classes.class(class).cells_per_superpage;
        let st = &mut self.sps[sp.0 as usize];
        debug_assert_eq!(st.assignment.map(|(c, _)| c), Some(class));
        let cell = st
            .first_free_from(st.hint, cells)
            .or_else(|| st.first_free_from(0, st.hint))?;
        st.set_allocated(cell, true);
        st.live_cells += 1;
        st.hint = cell + 1;
        Some(cell)
    }

    fn cell_addr(&self, sp: SpIndex, cell: u32, cell_bytes: u32) -> Address {
        Address(
            self.base.0 + sp.0 * BYTES_PER_SUPERPAGE + SUPERPAGE_METADATA_BYTES + cell * cell_bytes,
        )
    }

    /// The superpage containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the space's extent.
    pub fn sp_of(&self, addr: Address) -> SpIndex {
        assert!(self.region_contains(addr), "{addr} outside MS region");
        let sp = (addr.0 - self.base.0) / BYTES_PER_SUPERPAGE;
        assert!(sp < self.extent_sps, "{addr} beyond MS extent");
        SpIndex(sp)
    }

    /// Base address of a superpage (where its 12-byte header lives).
    pub fn sp_base(&self, sp: SpIndex) -> Address {
        Address(self.base.0 + sp.0 * BYTES_PER_SUPERPAGE)
    }

    /// The page holding a superpage's header ("superpage headers ... are
    /// always resident", §3.4 — BC rescues this page from eviction).
    pub fn header_page(&self, sp: SpIndex) -> VirtPage {
        self.sp_base(sp).page()
    }

    /// Whether `addr` is within the region managed by this space.
    pub fn region_contains(&self, addr: Address) -> bool {
        addr >= self.base && addr < self.region_limit
    }

    /// Frees the cell at `addr`. If the superpage becomes empty it is
    /// unassigned and its budget returned to `pool`; the superpage's pages
    /// are returned so the caller may discard them.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not an allocated cell boundary.
    pub fn free_cell(&mut self, pool: &mut PagePool, addr: Address) -> Option<[VirtPage; 4]> {
        let sp = self.sp_of(addr);
        let (class, _) = self.sps[sp.0 as usize]
            .assignment
            .expect("free in unassigned sp");
        let cell_bytes = self.classes.class(class).cell_bytes;
        let off = addr.0 - self.sp_base(sp).0 - SUPERPAGE_METADATA_BYTES;
        assert_eq!(off % cell_bytes, 0, "{addr} is not a cell boundary");
        let cell = off / cell_bytes;
        // Freeing below the hint moves the hint backwards, which would make
        // a cached run's bump order diverge from the bit-scan order.
        self.invalidate_runs_for_sp(sp);
        let st = &mut self.sps[sp.0 as usize];
        assert!(st.is_allocated(cell), "double free of {addr}");
        st.set_allocated(cell, false);
        st.live_cells -= 1;
        if cell < st.hint {
            st.hint = cell;
        }
        if st.live_cells == 0 {
            self.release_sp(pool, sp);
            Some(self.sp_pages(sp))
        } else {
            None
        }
    }

    /// Unassigns a superpage outright (compaction frees whole source
    /// superpages), returning budget to `pool`.
    pub fn release_sp(&mut self, pool: &mut PagePool, sp: SpIndex) {
        self.invalidate_runs_for_sp(sp);
        let st = &mut self.sps[sp.0 as usize];
        debug_assert!(st.assignment.is_some());
        st.assignment = None;
        st.alloc_bits.clear();
        st.live_cells = 0;
        st.incoming_bookmarks = 0;
        st.hint = 0;
        self.free_sps.push(sp.0);
        // Remove from any partial list lazily: partial lists are pruned in
        // alloc when alloc_in_sp fails, and assignment changes invalidate
        // stale entries there.
        for list in &mut self.partial {
            list.retain(|&s| s != sp.0);
        }
        pool.release(PAGES_PER_SUPERPAGE as usize);
    }

    /// Registers an assigned superpage as having free cells again (sweep
    /// re-lists partially filled superpages).
    pub fn note_partial(&mut self, sp: SpIndex) {
        if let Some((class, kind)) = self.sps[sp.0 as usize].assignment {
            let pidx = Self::partial_idx(class, kind);
            if !self.partial[pidx].contains(&sp.0) {
                self.partial[pidx].push(sp.0);
                // The partial-list head changed: a cached run for this
                // (class, kind) no longer tracks the head superpage.
                self.runs[pidx] = None;
            }
        }
    }

    /// The four pages of a superpage.
    pub fn sp_pages(&self, sp: SpIndex) -> [VirtPage; 4] {
        let base = self.sp_base(sp);
        [
            base.page(),
            base.offset(BYTES_PER_PAGE).page(),
            base.offset(2 * BYTES_PER_PAGE).page(),
            base.offset(3 * BYTES_PER_PAGE).page(),
        ]
    }

    /// Snapshot of a superpage's header.
    pub fn info(&self, sp: SpIndex) -> SuperpageInfo {
        let st = &self.sps[sp.0 as usize];
        SuperpageInfo {
            assignment: st.assignment,
            incoming_bookmarks: st.incoming_bookmarks,
            live_cells: st.live_cells,
        }
    }

    /// Increments the incoming-bookmark counter (§3.4).
    pub fn inc_incoming_bookmarks(&mut self, sp: SpIndex) {
        self.sps[sp.0 as usize].incoming_bookmarks += 1;
    }

    /// Decrements the incoming-bookmark counter, returning the new value
    /// (§3.4.2: when it drops to zero the superpage's bookmarks can be
    /// cleared). Saturating: the mutator may overwrite a reloaded page's
    /// pointers before the clearing scan runs, so decrements can be
    /// asymmetric; saturation errs toward keeping bookmarks (safe).
    pub fn dec_incoming_bookmarks(&mut self, sp: SpIndex) -> u32 {
        let c = &mut self.sps[sp.0 as usize].incoming_bookmarks;
        *c = c.saturating_sub(1);
        *c
    }

    /// Sets the counter directly (fail-safe collection resets state, §3.5).
    pub fn reset_incoming_bookmarks(&mut self, sp: SpIndex) {
        self.sps[sp.0 as usize].incoming_bookmarks = 0;
    }

    /// Whether `addr` is an allocated cell start.
    pub fn is_allocated_cell(&self, addr: Address) -> bool {
        if !self.region_contains(addr) {
            return false;
        }
        let sp = (addr.0 - self.base.0) / BYTES_PER_SUPERPAGE;
        if sp >= self.extent_sps {
            return false;
        }
        let st = &self.sps[sp as usize];
        let Some((class, _)) = st.assignment else {
            return false;
        };
        let cell_bytes = self.classes.class(class).cell_bytes;
        let Some(off) =
            (addr.0 - self.base.0 - sp * BYTES_PER_SUPERPAGE).checked_sub(SUPERPAGE_METADATA_BYTES)
        else {
            return false;
        };
        off % cell_bytes == 0 && st.is_allocated(off / cell_bytes)
    }

    /// Indices of all assigned superpages.
    pub fn assigned_sps(&self) -> Vec<SpIndex> {
        (0..self.extent_sps)
            .filter(|&i| self.sps[i as usize].assignment.is_some())
            .map(SpIndex)
            .collect()
    }

    /// Indices of all free (unassigned, still mapped) superpages.
    pub fn free_sps(&self) -> Vec<SpIndex> {
        self.free_sps.iter().map(|&i| SpIndex(i)).collect()
    }

    /// Superpages carved from the region so far.
    pub fn extent_superpages(&self) -> u32 {
        self.extent_sps
    }

    /// Addresses of all allocated cells in a superpage, ascending.
    ///
    /// Prefer [`MsSpace::allocated_cells_iter`] in loops: it walks the
    /// allocation bitmap directly without building a `Vec`.
    pub fn allocated_cells(&self, sp: SpIndex) -> Vec<Address> {
        self.allocated_cells_iter(sp).collect()
    }

    /// Iterates the addresses of all allocated cells in a superpage,
    /// ascending, straight off `alloc_bits` — no per-superpage `Vec`.
    /// Yields nothing for an unassigned superpage.
    pub fn allocated_cells_iter(&self, sp: SpIndex) -> AllocatedCells<'_> {
        let st = &self.sps[sp.0 as usize];
        match st.assignment {
            Some((class, _)) => AllocatedCells {
                words: &st.alloc_bits,
                word_idx: 0,
                word: st.alloc_bits.first().copied().unwrap_or(0),
                base: self.cell_addr(sp, 0, 0),
                cell_bytes: self.classes.class(class).cell_bytes,
            },
            None => AllocatedCells {
                words: &[],
                word_idx: 0,
                word: 0,
                base: Address(0),
                cell_bytes: 0,
            },
        }
    }

    /// Addresses of allocated cells overlapping one page of a superpage
    /// (`page_in_sp` ∈ 0..4). Used by the eviction-time bookmark scan, which
    /// processes "each object on the victim page" (§3.4) — including cells
    /// that merely straddle into it.
    pub fn cells_overlapping_page(&self, sp: SpIndex, page_in_sp: u32) -> Vec<Address> {
        debug_assert!(page_in_sp < PAGES_PER_SUPERPAGE);
        self.cells_overlapping_bytes(
            sp,
            page_in_sp * BYTES_PER_PAGE,
            (page_in_sp + 1) * BYTES_PER_PAGE,
        )
    }

    /// Addresses of allocated cells overlapping the byte range
    /// `[start, end)` of a superpage (offsets relative to the superpage
    /// base). Used by card scanning (§3.1) and the bookmark machinery.
    pub fn cells_overlapping_bytes(&self, sp: SpIndex, start: u32, end: u32) -> Vec<Address> {
        debug_assert!(start < end && end <= BYTES_PER_SUPERPAGE);
        let st = &self.sps[sp.0 as usize];
        let Some((class, _)) = st.assignment else {
            return Vec::new();
        };
        let c = self.classes.class(class);
        // Cell i spans [12 + i*cell, 12 + (i+1)*cell).
        let first = start.saturating_sub(SUPERPAGE_METADATA_BYTES) / c.cell_bytes;
        let last = (end - 1).saturating_sub(SUPERPAGE_METADATA_BYTES) / c.cell_bytes;
        (first..=last.min(c.cells_per_superpage - 1))
            .filter(|&i| st.is_allocated(i))
            .map(|i| self.cell_addr(sp, i, c.cell_bytes))
            .collect()
    }

    /// Marks every *free* cell overlapping the byte range `[start, end)` of
    /// a superpage as allocated, so the allocator never hands out a cell on
    /// an evicted page. Returns the reserved cell addresses.
    ///
    /// The reservation is undone naturally: the cells count as unmarked
    /// allocated cells, so the first sweep that sees their pages resident
    /// frees them. Meanwhile compaction counts them as live — exactly the
    /// paper's "reserve space for every possible object on the evicted
    /// pages" (§3.4.1).
    pub fn reserve_free_cells_in_bytes(
        &mut self,
        sp: SpIndex,
        start: u32,
        end: u32,
    ) -> Vec<Address> {
        debug_assert!(start < end && end <= BYTES_PER_SUPERPAGE);
        let Some((class, _)) = self.sps[sp.0 as usize].assignment else {
            return Vec::new();
        };
        // The reserved cells may sit inside a cached run's free range.
        self.invalidate_runs_for_sp(sp);
        let c = self.classes.class(class);
        let first = start.saturating_sub(SUPERPAGE_METADATA_BYTES) / c.cell_bytes;
        let last = (end - 1).saturating_sub(SUPERPAGE_METADATA_BYTES) / c.cell_bytes;
        let st = &mut self.sps[sp.0 as usize];
        let mut reserved = Vec::new();
        for i in first..=last.min(c.cells_per_superpage - 1) {
            if !st.is_allocated(i) {
                st.set_allocated(i, true);
                st.live_cells += 1;
                reserved.push(Address(
                    self.base.0
                        + sp.0 * BYTES_PER_SUPERPAGE
                        + SUPERPAGE_METADATA_BYTES
                        + i * c.cell_bytes,
                ));
            }
        }
        reserved
    }

    // ----- sanitizer support (`crate::sanitize`) ------------------------

    /// Calls `f` with `(address, cell_bytes)` for every *free* cell of
    /// every assigned superpage — the cells the sanitizer poisons with
    /// canary words after each collection.
    pub fn for_each_free_cell(&self, mut f: impl FnMut(Address, u32)) {
        for sp in 0..self.extent_sps {
            let st = &self.sps[sp as usize];
            let Some((class, _)) = st.assignment else {
                continue;
            };
            let c = self.classes.class(class);
            for cell in 0..c.cells_per_superpage {
                if !st.is_allocated(cell) {
                    f(
                        self.cell_addr(SpIndex(sp), cell, c.cell_bytes),
                        c.cell_bytes,
                    );
                }
            }
        }
    }

    /// Whether `addr` is still the start of a free cell of exactly `bytes`
    /// bytes. The sanitizer validates a poisoned cell's canaries only while
    /// this geometry holds: releasing or reassigning the superpage (or
    /// allocating the cell) makes the old poison stale, not clobbered.
    pub fn is_current_free_cell(&self, addr: Address, bytes: u32) -> bool {
        if !self.region_contains(addr) {
            return false;
        }
        let sp = (addr.0 - self.base.0) / BYTES_PER_SUPERPAGE;
        if sp >= self.extent_sps {
            return false;
        }
        let st = &self.sps[sp as usize];
        let Some((class, _)) = st.assignment else {
            return false;
        };
        let c = self.classes.class(class);
        if c.cell_bytes != bytes {
            return false;
        }
        let Some(off) =
            (addr.0 - self.base.0 - sp * BYTES_PER_SUPERPAGE).checked_sub(SUPERPAGE_METADATA_BYTES)
        else {
            return false;
        };
        off % c.cell_bytes == 0
            && off / c.cell_bytes < c.cells_per_superpage
            && !st.is_allocated(off / c.cell_bytes)
    }

    /// Validates the allocation-run cache against the bitmaps (the
    /// sanitizer's run-cache/bitmap agreement check): every cached run must
    /// point at a superpage still assigned to its `(class, kind)`, with a
    /// matching cell size, an in-bounds end, and only free cells in
    /// `[next, end)`. Returns a description of the first mismatch.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, human-readable.
    pub fn sanitize_check_runs(&self) -> Result<(), String> {
        for (pidx, run) in self.runs.iter().enumerate() {
            let Some(run) = run else {
                continue;
            };
            let class = (pidx / 2) as u8;
            let kind = if pidx % 2 == 1 {
                BlockKind::Array
            } else {
                BlockKind::Scalar
            };
            let st = &self.sps[run.sp as usize];
            if st.assignment != Some((class, kind)) {
                return Err(format!(
                    "cached run for class {class} {kind:?} points at sp {} assigned {:?}",
                    run.sp, st.assignment
                ));
            }
            let c = self.classes.class(class);
            if c.cell_bytes != run.cell_bytes {
                return Err(format!(
                    "cached run cell size {} != class {class} cell size {}",
                    run.cell_bytes, c.cell_bytes
                ));
            }
            if run.end > c.cells_per_superpage {
                return Err(format!(
                    "cached run end {} beyond superpage capacity {}",
                    run.end, c.cells_per_superpage
                ));
            }
            for cell in run.next..run.end {
                if st.is_allocated(cell) {
                    return Err(format!(
                        "cached run covers cell {cell} of sp {} which the bitmap says is allocated",
                        run.sp
                    ));
                }
            }
        }
        Ok(())
    }

    /// Decomposes a page-aligned address into (superpage, page-within-sp).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the space's extent.
    pub fn page_within_sp(&self, page_base: Address) -> (SpIndex, u32) {
        let sp = self.sp_of(page_base);
        let off = (page_base.0 - self.sp_base(sp).0) / BYTES_PER_PAGE;
        (sp, off)
    }
}

/// Iterator over a superpage's allocated cell addresses, in ascending
/// order. See [`MsSpace::allocated_cells_iter`].
#[derive(Clone, Debug)]
pub struct AllocatedCells<'a> {
    words: &'a [u64],
    word_idx: usize,
    /// Remaining bits of the current word.
    word: u64,
    /// Address of cell 0 (superpage base plus metadata).
    base: Address,
    cell_bytes: u32,
}

impl Iterator for AllocatedCells<'_> {
    type Item = Address;

    fn next(&mut self) -> Option<Address> {
        while self.word == 0 {
            self.word_idx += 1;
            self.word = *self.words.get(self.word_idx)?;
        }
        let cell = self.word_idx as u32 * 64 + self.word.trailing_zeros();
        self.word &= self.word - 1; // clear lowest set bit
        Some(Address(self.base.0 + cell * self.cell_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (MsSpace, PagePool) {
        (
            MsSpace::new(Address(0x1040_0000), Address(0x1140_0000)),
            PagePool::new(4096),
        )
    }

    #[test]
    fn alloc_fills_one_superpage_before_taking_another() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(64).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let b = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        assert_eq!(ms.sp_of(a), ms.sp_of(b));
        assert_eq!(b.0 - a.0, 64);
        assert_eq!(pool.used(), 4);
        // First cell starts after the 12-byte header.
        assert_eq!(a.0 % BYTES_PER_SUPERPAGE, SUPERPAGE_METADATA_BYTES);
    }

    #[test]
    fn different_kinds_use_different_superpages() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(32).unwrap().index;
        let s = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let a = ms.alloc(&mut pool, class, BlockKind::Array).unwrap();
        assert_ne!(ms.sp_of(s), ms.sp_of(a), "scalar/array segregation (§4)");
    }

    #[test]
    fn superpage_exhaustion_extends_the_space() {
        let (mut ms, mut pool) = space();
        let sc = ms.classes().class_for(8184).unwrap();
        assert_eq!(sc.cells_per_superpage, 2);
        let mut addrs = Vec::new();
        for _ in 0..5 {
            addrs.push(ms.alloc(&mut pool, sc.index, BlockKind::Array).unwrap());
        }
        assert_eq!(ms.extent_superpages(), 3);
        assert_eq!(pool.used(), 12);
    }

    #[test]
    fn free_cell_empties_and_releases_superpage() {
        let (mut ms, mut pool) = space();
        let sc = ms.classes().class_for(8184).unwrap();
        let a = ms.alloc(&mut pool, sc.index, BlockKind::Scalar).unwrap();
        let b = ms.alloc(&mut pool, sc.index, BlockKind::Scalar).unwrap();
        assert!(ms.free_cell(&mut pool, a).is_none());
        let pages = ms.free_cell(&mut pool, b).expect("superpage now empty");
        assert_eq!(pages.len(), 4);
        assert_eq!(pool.used(), 0);
        assert_eq!(ms.free_sps().len(), 1);
        // The free superpage is reused for a different class.
        let tiny = ms.classes().class_for(8).unwrap().index;
        let c = ms.alloc(&mut pool, tiny, BlockKind::Scalar).unwrap();
        assert_eq!(ms.sp_of(c), ms.sp_of(a), "empty superpage reassigned");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(8).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        // Keep a second cell live so the superpage stays assigned.
        let _b = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let _ = ms.free_cell(&mut pool, a);
        let _ = ms.free_cell(&mut pool, a);
    }

    #[test]
    fn allocated_cells_round_trip() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(100).unwrap().index;
        let mut addrs: Vec<Address> = (0..10)
            .map(|_| ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap())
            .collect();
        let sp = ms.sp_of(addrs[0]);
        addrs.sort();
        assert_eq!(ms.allocated_cells(sp), addrs);
        for &a in &addrs {
            assert!(ms.is_allocated_cell(a));
            assert!(!ms.is_allocated_cell(a.offset(4)));
        }
    }

    #[test]
    fn cells_overlapping_page_includes_straddlers() {
        let (mut ms, mut pool) = space();
        // 5456-byte cells: cell 0 at 12, cell 1 at 5468, cell 2 at 10924.
        let sc = ms.classes().class_for(5000).unwrap();
        assert_eq!(sc.cell_bytes, 5456);
        for _ in 0..3 {
            ms.alloc(&mut pool, sc.index, BlockKind::Scalar).unwrap();
        }
        let sp = SpIndex(0);
        // Page 1 covers [4096, 8192): overlaps cell 0 (ends 5468) and cell 1.
        let cells = ms.cells_overlapping_page(sp, 1);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0 % BYTES_PER_SUPERPAGE, 12);
        // Page 3 covers [12288, 16384): overlaps cell 2 only.
        let cells = ms.cells_overlapping_page(sp, 3);
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn bookmark_counters_inc_dec() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(8).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let sp = ms.sp_of(a);
        assert_eq!(ms.info(sp).incoming_bookmarks, 0);
        ms.inc_incoming_bookmarks(sp);
        ms.inc_incoming_bookmarks(sp);
        assert_eq!(ms.info(sp).incoming_bookmarks, 2);
        assert_eq!(ms.dec_incoming_bookmarks(sp), 1);
        assert_eq!(ms.dec_incoming_bookmarks(sp), 0);
    }

    #[test]
    fn hint_reuses_freed_cells() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(8).unwrap().index;
        let addrs: Vec<Address> = (0..5)
            .map(|_| ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap())
            .collect();
        assert!(ms.free_cell(&mut pool, addrs[1]).is_none());
        let again = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        assert_eq!(again, addrs[1], "freed cell is reused first");
    }

    #[test]
    fn word_scan_helpers_cross_word_boundaries() {
        let mut st = SpState {
            alloc_bits: vec![0u64; 4],
            ..SpState::default()
        };
        st.set_allocated(0, true);
        st.set_allocated(70, true);
        assert_eq!(st.first_free_from(0, 256), Some(1));
        assert_eq!(st.first_free_from(70, 256), Some(71));
        assert_eq!(st.first_free_from(255, 256), Some(255));
        assert_eq!(st.first_free_from(256, 256), None);
        // The free run starting after cell 0 ends at the next allocated
        // cell (70), even across a word boundary.
        assert_eq!(st.free_run_end(1, 256), 70);
        assert_eq!(st.free_run_end(71, 256), 256);
        assert_eq!(st.free_run_end(1, 64), 64);
        // Starting on an allocated cell: the run is empty.
        assert_eq!(st.free_run_end(0, 256), 0);
        assert_eq!(st.free_run_end(70, 256), 70);
    }

    #[test]
    fn run_cache_invalidated_by_sweep_free() {
        // Sweep frees cells via free_cell and re-lists the superpage with
        // note_partial; a run cached past the freed cells must not survive,
        // or allocation order would diverge from the bit-scan order.
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(64).unwrap().index;
        let addrs: Vec<Address> = (0..8)
            .map(|_| ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap())
            .collect();
        let _ = ms.free_cell(&mut pool, addrs[2]);
        let _ = ms.free_cell(&mut pool, addrs[5]);
        ms.note_partial(ms.sp_of(addrs[0]));
        // Bit-scan order: lowest free cell first, then the next one.
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let b = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        assert_eq!(a, addrs[2], "freed cell reused first");
        assert_eq!(b, addrs[5], "then the next freed cell");
        // After the holes are refilled, allocation resumes past the top.
        let c = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        assert_eq!(c.0, addrs[7].0 + 64);
    }

    #[test]
    fn run_cache_invalidated_by_release_and_reassign() {
        // Compaction releases whole source superpages and they are later
        // reassigned, possibly to a different class. Allocating into a
        // stale run pointing at the released superpage must be impossible.
        let (mut ms, mut pool) = space();
        let sc = ms.classes().class_for(8184).unwrap();
        assert_eq!(sc.cells_per_superpage, 2);
        let a = ms.alloc(&mut pool, sc.index, BlockKind::Scalar).unwrap();
        let sp = ms.sp_of(a);
        // The cached run covers cell 1. Release the superpage outright.
        ms.release_sp(&mut pool, sp);
        assert!(ms.info(sp).assignment.is_none());
        // The next alloc must reassign from scratch and start at cell 0,
        // not bump into cell 1 of the released run.
        let b = ms.alloc(&mut pool, sc.index, BlockKind::Scalar).unwrap();
        assert_eq!(ms.sp_of(b), sp, "free superpage reused");
        assert_eq!(b, a, "allocation restarts at cell 0 after reassignment");
        // Reassignment to a different class and kind is equally safe.
        ms.release_sp(&mut pool, sp);
        let tiny = ms.classes().class_for(8).unwrap().index;
        let c = ms.alloc(&mut pool, tiny, BlockKind::Array).unwrap();
        assert_eq!(ms.sp_of(c), sp);
        assert!(ms.is_allocated_cell(c));
        assert_eq!(ms.info(sp).live_cells, 1);
    }

    #[test]
    fn run_cache_invalidated_by_alloc_in_sp() {
        // Compaction fills target superpages via alloc_in_sp, bypassing
        // the partial lists. A cached run must not hand out a cell the
        // direct path already allocated.
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(64).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let sp = ms.sp_of(a);
        let b = ms.alloc_in_sp(sp, class).unwrap();
        let c = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        assert_eq!(b.0, a.0 + 64);
        assert_eq!(c.0, b.0 + 64, "run rebuilt past the direct allocation");
        assert_eq!(ms.allocated_cells(sp).len(), 3);
    }

    #[test]
    fn run_cache_invalidated_by_reservation() {
        // Evicted-page reservations mark free cells allocated mid-run; the
        // next alloc must skip them exactly as a bit scan would.
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(64).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let sp = ms.sp_of(a);
        // Reserve the byte range holding cells 1 and 2.
        let off = a.0 % BYTES_PER_SUPERPAGE;
        let reserved = ms.reserve_free_cells_in_bytes(sp, off + 64, off + 192);
        assert_eq!(reserved.len(), 2);
        let b = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        assert_eq!(b.0, a.0 + 3 * 64, "allocation skips reserved cells");
    }

    #[test]
    fn allocated_cells_iter_matches_bit_scan() {
        // The word-level iterator visits exactly the cells whose alloc
        // bits are set, in address order, across word boundaries.
        let (mut ms, mut pool) = space();
        let sc = ms.classes().class_for(8).unwrap();
        let addrs: Vec<Address> = (0..200)
            .map(|_| ms.alloc(&mut pool, sc.index, BlockKind::Scalar).unwrap())
            .collect();
        let sp = ms.sp_of(addrs[0]);
        for &a in addrs.iter().step_by(3) {
            let _ = ms.free_cell(&mut pool, a);
        }
        let manual: Vec<Address> = (0..sc.cells_per_superpage)
            .map(|i| Address(ms.sp_base(sp).0 + SUPERPAGE_METADATA_BYTES + i * sc.cell_bytes))
            .filter(|&a| ms.is_allocated_cell(a))
            .collect();
        let via_iter: Vec<Address> = ms.allocated_cells_iter(sp).collect();
        assert_eq!(via_iter, manual);
        // Unassigned superpages iterate as empty.
        ms.release_sp(&mut pool, sp);
        assert_eq!(ms.allocated_cells_iter(sp).count(), 0);
    }

    #[test]
    fn header_page_is_first_page_of_superpage() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(8).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let sp = ms.sp_of(a);
        let pages = ms.sp_pages(sp);
        assert_eq!(ms.header_page(sp), pages[0]);
        assert_eq!(pages[3].number() - pages[0].number(), 3);
    }
}
