//! The segregated-fit mark-sweep space over superpages (§3).
//!
//! The mature space is divided into **superpages**: page-aligned groups of
//! four contiguous 4 KiB pages. Objects of different size classes are
//! allocated onto different superpages; completely empty superpages can be
//! reassigned to any size class. Each superpage stores its metadata in a
//! small header at its base — "this placement permits constant-time access
//! by bit-masking … while storing the metadata in the superpage header
//! prevents BC from evicting one-fourth of the pages, it reduces memory
//! overhead and simplifies the memory layout" (§3.4).
//!
//! Superpages are additionally segregated by *block kind* (scalar vs.
//! array), mirroring §4's fix for Jikes RVM header placement: "we solve
//! this problem by further segmenting our allocation to allow superpages to
//! hold either only scalars or only arrays".

use vmm::VirtPage;

use crate::addr::{Address, BYTES_PER_PAGE, BYTES_PER_SUPERPAGE, PAGES_PER_SUPERPAGE};
use crate::pool::PagePool;
use crate::sizeclass::{SizeClasses, SUPERPAGE_METADATA_BYTES};

/// Index of a superpage within the mature region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpIndex(pub u32);

/// Whether a superpage holds scalars or arrays (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Scalars only.
    Scalar,
    /// Arrays only.
    Array,
}

/// Public snapshot of one superpage's header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperpageInfo {
    /// Assigned size class and block kind; `None` for a free superpage.
    pub assignment: Option<(u8, BlockKind)>,
    /// "The number of evicted pages pointing to objects on a given
    /// superpage" (§3.4).
    pub incoming_bookmarks: u32,
    /// Allocated (live-or-unswept) cells.
    pub live_cells: u32,
}

#[derive(Clone, Debug, Default)]
struct SpState {
    assignment: Option<(u8, BlockKind)>,
    incoming_bookmarks: u32,
    alloc_bits: Vec<u64>,
    live_cells: u32,
    /// First-free search hint.
    hint: u32,
}

impl SpState {
    fn is_allocated(&self, cell: u32) -> bool {
        self.alloc_bits
            .get((cell / 64) as usize)
            .map(|w| w & (1 << (cell % 64)) != 0)
            .unwrap_or(false)
    }

    fn set_allocated(&mut self, cell: u32, on: bool) {
        let w = &mut self.alloc_bits[(cell / 64) as usize];
        if on {
            *w |= 1 << (cell % 64);
        } else {
            *w &= !(1 << (cell % 64));
        }
    }
}

/// The segregated-fit mark-sweep space.
#[derive(Debug)]
pub struct MsSpace {
    base: Address,
    region_limit: Address,
    classes: SizeClasses,
    sps: Vec<SpState>,
    /// Superpages carved out of the region so far.
    extent_sps: u32,
    /// Fully free superpages (memory still mapped, budget released).
    free_sps: Vec<u32>,
    /// Per (class, kind): superpages with at least one free cell.
    partial: Vec<Vec<u32>>,
}

impl MsSpace {
    /// An empty space over `[base, region_limit)`.
    ///
    /// # Panics
    ///
    /// Panics unless the bounds are superpage-aligned.
    pub fn new(base: Address, region_limit: Address) -> MsSpace {
        assert_eq!(base.0 % BYTES_PER_SUPERPAGE, 0);
        assert_eq!(region_limit.0 % BYTES_PER_SUPERPAGE, 0);
        let classes = SizeClasses::new();
        let n_classes = classes.iter().count();
        MsSpace {
            base,
            region_limit,
            classes,
            sps: Vec::new(),
            extent_sps: 0,
            free_sps: Vec::new(),
            partial: vec![Vec::new(); n_classes * 2],
        }
    }

    /// The size-class table.
    pub fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    fn partial_idx(class: u8, kind: BlockKind) -> usize {
        class as usize * 2 + if kind == BlockKind::Array { 1 } else { 0 }
    }

    /// Allocates one cell of `class` for `kind`, drawing new superpages from
    /// `pool` as needed. Returns `None` when the pool (or region) is
    /// exhausted.
    pub fn alloc(&mut self, pool: &mut PagePool, class: u8, kind: BlockKind) -> Option<Address> {
        let pidx = Self::partial_idx(class, kind);
        while let Some(&sp) = self.partial[pidx].last() {
            if let Some(addr) = self.alloc_in_sp(SpIndex(sp), class) {
                return Some(addr);
            }
            self.partial[pidx].pop();
        }
        // Need a fresh superpage: reuse a free one or extend the region.
        let sp = self.take_free_superpage(pool)?;
        self.assign(sp, class, kind);
        self.partial[pidx].push(sp.0);
        self.alloc_in_sp(sp, class)
    }

    /// Like [`alloc`](MsSpace::alloc), but overruns the pool budget rather
    /// than failing (collectors copying survivors into this space must not
    /// fail mid-collection). Still fails when the region is exhausted.
    pub fn alloc_forced(
        &mut self,
        pool: &mut PagePool,
        class: u8,
        kind: BlockKind,
    ) -> Option<Address> {
        if let Some(addr) = self.alloc(pool, class, kind) {
            return Some(addr);
        }
        let sp = if let Some(sp) = self.free_sps.pop() {
            pool.force_acquire(PAGES_PER_SUPERPAGE as usize);
            SpIndex(sp)
        } else {
            let next_base = self.base.0 + self.extent_sps * BYTES_PER_SUPERPAGE;
            if next_base + BYTES_PER_SUPERPAGE > self.region_limit.0 {
                return None;
            }
            pool.force_acquire(PAGES_PER_SUPERPAGE as usize);
            let sp = self.extent_sps;
            self.extent_sps += 1;
            self.sps.push(SpState::default());
            SpIndex(sp)
        };
        self.assign(sp, class, kind);
        self.partial[Self::partial_idx(class, kind)].push(sp.0);
        self.alloc_in_sp(sp, class)
    }

    /// Acquires a completely free superpage (budget charged to `pool`),
    /// without assigning it.
    pub fn take_free_superpage(&mut self, pool: &mut PagePool) -> Option<SpIndex> {
        if let Some(sp) = self.free_sps.last().copied() {
            if !pool.acquire(PAGES_PER_SUPERPAGE as usize) {
                return None;
            }
            self.free_sps.pop();
            return Some(SpIndex(sp));
        }
        // Extend the region.
        let next_base = self.base.0 + self.extent_sps * BYTES_PER_SUPERPAGE;
        if next_base + BYTES_PER_SUPERPAGE > self.region_limit.0 {
            return None;
        }
        if !pool.acquire(PAGES_PER_SUPERPAGE as usize) {
            return None;
        }
        let sp = self.extent_sps;
        self.extent_sps += 1;
        self.sps.push(SpState::default());
        Some(SpIndex(sp))
    }

    fn assign(&mut self, sp: SpIndex, class: u8, kind: BlockKind) {
        let cells = self.classes.class(class).cells_per_superpage;
        let st = &mut self.sps[sp.0 as usize];
        debug_assert!(st.assignment.is_none() && st.live_cells == 0);
        st.assignment = Some((class, kind));
        st.alloc_bits = vec![0; cells.div_ceil(64) as usize];
        st.live_cells = 0;
        st.hint = 0;
    }

    /// Allocates a cell within a specific superpage (used by compaction to
    /// fill target superpages). Returns `None` when the superpage is full.
    pub fn alloc_in_sp(&mut self, sp: SpIndex, class: u8) -> Option<Address> {
        let cell_bytes = self.classes.class(class).cell_bytes;
        let cells = self.classes.class(class).cells_per_superpage;
        let st = &mut self.sps[sp.0 as usize];
        debug_assert_eq!(st.assignment.map(|(c, _)| c), Some(class));
        let mut cell = st.hint;
        while cell < cells && st.is_allocated(cell) {
            cell += 1;
        }
        if cell >= cells {
            // Wrap once in case earlier cells were freed (the hint is kept
            // at-or-below the first free cell, so this is defensive).
            cell = 0;
            while cell < st.hint && st.is_allocated(cell) {
                cell += 1;
            }
            if cell >= st.hint {
                return None; // superpage full
            }
        }
        st.set_allocated(cell, true);
        st.live_cells += 1;
        st.hint = cell + 1;
        Some(self.cell_addr(sp, cell, cell_bytes))
    }

    fn cell_addr(&self, sp: SpIndex, cell: u32, cell_bytes: u32) -> Address {
        Address(
            self.base.0 + sp.0 * BYTES_PER_SUPERPAGE + SUPERPAGE_METADATA_BYTES + cell * cell_bytes,
        )
    }

    /// The superpage containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the space's extent.
    pub fn sp_of(&self, addr: Address) -> SpIndex {
        assert!(self.region_contains(addr), "{addr} outside MS region");
        let sp = (addr.0 - self.base.0) / BYTES_PER_SUPERPAGE;
        assert!(sp < self.extent_sps, "{addr} beyond MS extent");
        SpIndex(sp)
    }

    /// Base address of a superpage (where its 12-byte header lives).
    pub fn sp_base(&self, sp: SpIndex) -> Address {
        Address(self.base.0 + sp.0 * BYTES_PER_SUPERPAGE)
    }

    /// The page holding a superpage's header ("superpage headers ... are
    /// always resident", §3.4 — BC rescues this page from eviction).
    pub fn header_page(&self, sp: SpIndex) -> VirtPage {
        self.sp_base(sp).page()
    }

    /// Whether `addr` is within the region managed by this space.
    pub fn region_contains(&self, addr: Address) -> bool {
        addr >= self.base && addr < self.region_limit
    }

    /// Frees the cell at `addr`. If the superpage becomes empty it is
    /// unassigned and its budget returned to `pool`; the superpage's pages
    /// are returned so the caller may discard them.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not an allocated cell boundary.
    pub fn free_cell(&mut self, pool: &mut PagePool, addr: Address) -> Option<[VirtPage; 4]> {
        let sp = self.sp_of(addr);
        let (class, _) = self.sps[sp.0 as usize]
            .assignment
            .expect("free in unassigned sp");
        let cell_bytes = self.classes.class(class).cell_bytes;
        let off = addr.0 - self.sp_base(sp).0 - SUPERPAGE_METADATA_BYTES;
        assert_eq!(off % cell_bytes, 0, "{addr} is not a cell boundary");
        let cell = off / cell_bytes;
        let st = &mut self.sps[sp.0 as usize];
        assert!(st.is_allocated(cell), "double free of {addr}");
        st.set_allocated(cell, false);
        st.live_cells -= 1;
        if cell < st.hint {
            st.hint = cell;
        }
        if st.live_cells == 0 {
            self.release_sp(pool, sp);
            Some(self.sp_pages(sp))
        } else {
            None
        }
    }

    /// Unassigns a superpage outright (compaction frees whole source
    /// superpages), returning budget to `pool`.
    pub fn release_sp(&mut self, pool: &mut PagePool, sp: SpIndex) {
        let st = &mut self.sps[sp.0 as usize];
        debug_assert!(st.assignment.is_some());
        st.assignment = None;
        st.alloc_bits.clear();
        st.live_cells = 0;
        st.incoming_bookmarks = 0;
        st.hint = 0;
        self.free_sps.push(sp.0);
        // Remove from any partial list lazily: partial lists are pruned in
        // alloc when alloc_in_sp fails, and assignment changes invalidate
        // stale entries there.
        for list in &mut self.partial {
            list.retain(|&s| s != sp.0);
        }
        pool.release(PAGES_PER_SUPERPAGE as usize);
    }

    /// Registers an assigned superpage as having free cells again (sweep
    /// re-lists partially filled superpages).
    pub fn note_partial(&mut self, sp: SpIndex) {
        if let Some((class, kind)) = self.sps[sp.0 as usize].assignment {
            let pidx = Self::partial_idx(class, kind);
            if !self.partial[pidx].contains(&sp.0) {
                self.partial[pidx].push(sp.0);
            }
        }
    }

    /// The four pages of a superpage.
    pub fn sp_pages(&self, sp: SpIndex) -> [VirtPage; 4] {
        let base = self.sp_base(sp);
        [
            base.page(),
            base.offset(BYTES_PER_PAGE).page(),
            base.offset(2 * BYTES_PER_PAGE).page(),
            base.offset(3 * BYTES_PER_PAGE).page(),
        ]
    }

    /// Snapshot of a superpage's header.
    pub fn info(&self, sp: SpIndex) -> SuperpageInfo {
        let st = &self.sps[sp.0 as usize];
        SuperpageInfo {
            assignment: st.assignment,
            incoming_bookmarks: st.incoming_bookmarks,
            live_cells: st.live_cells,
        }
    }

    /// Increments the incoming-bookmark counter (§3.4).
    pub fn inc_incoming_bookmarks(&mut self, sp: SpIndex) {
        self.sps[sp.0 as usize].incoming_bookmarks += 1;
    }

    /// Decrements the incoming-bookmark counter, returning the new value
    /// (§3.4.2: when it drops to zero the superpage's bookmarks can be
    /// cleared). Saturating: the mutator may overwrite a reloaded page's
    /// pointers before the clearing scan runs, so decrements can be
    /// asymmetric; saturation errs toward keeping bookmarks (safe).
    pub fn dec_incoming_bookmarks(&mut self, sp: SpIndex) -> u32 {
        let c = &mut self.sps[sp.0 as usize].incoming_bookmarks;
        *c = c.saturating_sub(1);
        *c
    }

    /// Sets the counter directly (fail-safe collection resets state, §3.5).
    pub fn reset_incoming_bookmarks(&mut self, sp: SpIndex) {
        self.sps[sp.0 as usize].incoming_bookmarks = 0;
    }

    /// Whether `addr` is an allocated cell start.
    pub fn is_allocated_cell(&self, addr: Address) -> bool {
        if !self.region_contains(addr) {
            return false;
        }
        let sp = (addr.0 - self.base.0) / BYTES_PER_SUPERPAGE;
        if sp >= self.extent_sps {
            return false;
        }
        let st = &self.sps[sp as usize];
        let Some((class, _)) = st.assignment else {
            return false;
        };
        let cell_bytes = self.classes.class(class).cell_bytes;
        let Some(off) =
            (addr.0 - self.base.0 - sp * BYTES_PER_SUPERPAGE).checked_sub(SUPERPAGE_METADATA_BYTES)
        else {
            return false;
        };
        off % cell_bytes == 0 && st.is_allocated(off / cell_bytes)
    }

    /// Indices of all assigned superpages.
    pub fn assigned_sps(&self) -> Vec<SpIndex> {
        (0..self.extent_sps)
            .filter(|&i| self.sps[i as usize].assignment.is_some())
            .map(SpIndex)
            .collect()
    }

    /// Indices of all free (unassigned, still mapped) superpages.
    pub fn free_sps(&self) -> Vec<SpIndex> {
        self.free_sps.iter().map(|&i| SpIndex(i)).collect()
    }

    /// Superpages carved from the region so far.
    pub fn extent_superpages(&self) -> u32 {
        self.extent_sps
    }

    /// Addresses of all allocated cells in a superpage, ascending.
    pub fn allocated_cells(&self, sp: SpIndex) -> Vec<Address> {
        let st = &self.sps[sp.0 as usize];
        let Some((class, _)) = st.assignment else {
            return Vec::new();
        };
        let c = self.classes.class(class);
        (0..c.cells_per_superpage)
            .filter(|&i| st.is_allocated(i))
            .map(|i| self.cell_addr(sp, i, c.cell_bytes))
            .collect()
    }

    /// Addresses of allocated cells overlapping one page of a superpage
    /// (`page_in_sp` ∈ 0..4). Used by the eviction-time bookmark scan, which
    /// processes "each object on the victim page" (§3.4) — including cells
    /// that merely straddle into it.
    pub fn cells_overlapping_page(&self, sp: SpIndex, page_in_sp: u32) -> Vec<Address> {
        debug_assert!(page_in_sp < PAGES_PER_SUPERPAGE);
        self.cells_overlapping_bytes(
            sp,
            page_in_sp * BYTES_PER_PAGE,
            (page_in_sp + 1) * BYTES_PER_PAGE,
        )
    }

    /// Addresses of allocated cells overlapping the byte range
    /// `[start, end)` of a superpage (offsets relative to the superpage
    /// base). Used by card scanning (§3.1) and the bookmark machinery.
    pub fn cells_overlapping_bytes(&self, sp: SpIndex, start: u32, end: u32) -> Vec<Address> {
        debug_assert!(start < end && end <= BYTES_PER_SUPERPAGE);
        let st = &self.sps[sp.0 as usize];
        let Some((class, _)) = st.assignment else {
            return Vec::new();
        };
        let c = self.classes.class(class);
        // Cell i spans [12 + i*cell, 12 + (i+1)*cell).
        let first = start.saturating_sub(SUPERPAGE_METADATA_BYTES) / c.cell_bytes;
        let last = (end - 1).saturating_sub(SUPERPAGE_METADATA_BYTES) / c.cell_bytes;
        (first..=last.min(c.cells_per_superpage - 1))
            .filter(|&i| st.is_allocated(i))
            .map(|i| self.cell_addr(sp, i, c.cell_bytes))
            .collect()
    }

    /// Marks every *free* cell overlapping the byte range `[start, end)` of
    /// a superpage as allocated, so the allocator never hands out a cell on
    /// an evicted page. Returns the reserved cell addresses.
    ///
    /// The reservation is undone naturally: the cells count as unmarked
    /// allocated cells, so the first sweep that sees their pages resident
    /// frees them. Meanwhile compaction counts them as live — exactly the
    /// paper's "reserve space for every possible object on the evicted
    /// pages" (§3.4.1).
    pub fn reserve_free_cells_in_bytes(
        &mut self,
        sp: SpIndex,
        start: u32,
        end: u32,
    ) -> Vec<Address> {
        debug_assert!(start < end && end <= BYTES_PER_SUPERPAGE);
        let Some((class, _)) = self.sps[sp.0 as usize].assignment else {
            return Vec::new();
        };
        let c = self.classes.class(class);
        let first = start.saturating_sub(SUPERPAGE_METADATA_BYTES) / c.cell_bytes;
        let last = (end - 1).saturating_sub(SUPERPAGE_METADATA_BYTES) / c.cell_bytes;
        let st = &mut self.sps[sp.0 as usize];
        let mut reserved = Vec::new();
        for i in first..=last.min(c.cells_per_superpage - 1) {
            if !st.is_allocated(i) {
                st.set_allocated(i, true);
                st.live_cells += 1;
                reserved.push(Address(
                    self.base.0
                        + sp.0 * BYTES_PER_SUPERPAGE
                        + SUPERPAGE_METADATA_BYTES
                        + i * c.cell_bytes,
                ));
            }
        }
        reserved
    }

    /// Decomposes a page-aligned address into (superpage, page-within-sp).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the space's extent.
    pub fn page_within_sp(&self, page_base: Address) -> (SpIndex, u32) {
        let sp = self.sp_of(page_base);
        let off = (page_base.0 - self.sp_base(sp).0) / BYTES_PER_PAGE;
        (sp, off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (MsSpace, PagePool) {
        (
            MsSpace::new(Address(0x1040_0000), Address(0x1140_0000)),
            PagePool::new(4096),
        )
    }

    #[test]
    fn alloc_fills_one_superpage_before_taking_another() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(64).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let b = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        assert_eq!(ms.sp_of(a), ms.sp_of(b));
        assert_eq!(b.0 - a.0, 64);
        assert_eq!(pool.used(), 4);
        // First cell starts after the 12-byte header.
        assert_eq!(a.0 % BYTES_PER_SUPERPAGE, SUPERPAGE_METADATA_BYTES);
    }

    #[test]
    fn different_kinds_use_different_superpages() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(32).unwrap().index;
        let s = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let a = ms.alloc(&mut pool, class, BlockKind::Array).unwrap();
        assert_ne!(ms.sp_of(s), ms.sp_of(a), "scalar/array segregation (§4)");
    }

    #[test]
    fn superpage_exhaustion_extends_the_space() {
        let (mut ms, mut pool) = space();
        let sc = ms.classes().class_for(8184).unwrap();
        assert_eq!(sc.cells_per_superpage, 2);
        let mut addrs = Vec::new();
        for _ in 0..5 {
            addrs.push(ms.alloc(&mut pool, sc.index, BlockKind::Array).unwrap());
        }
        assert_eq!(ms.extent_superpages(), 3);
        assert_eq!(pool.used(), 12);
    }

    #[test]
    fn free_cell_empties_and_releases_superpage() {
        let (mut ms, mut pool) = space();
        let sc = ms.classes().class_for(8184).unwrap();
        let a = ms.alloc(&mut pool, sc.index, BlockKind::Scalar).unwrap();
        let b = ms.alloc(&mut pool, sc.index, BlockKind::Scalar).unwrap();
        assert!(ms.free_cell(&mut pool, a).is_none());
        let pages = ms.free_cell(&mut pool, b).expect("superpage now empty");
        assert_eq!(pages.len(), 4);
        assert_eq!(pool.used(), 0);
        assert_eq!(ms.free_sps().len(), 1);
        // The free superpage is reused for a different class.
        let tiny = ms.classes().class_for(8).unwrap().index;
        let c = ms.alloc(&mut pool, tiny, BlockKind::Scalar).unwrap();
        assert_eq!(ms.sp_of(c), ms.sp_of(a), "empty superpage reassigned");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(8).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        // Keep a second cell live so the superpage stays assigned.
        let _b = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let _ = ms.free_cell(&mut pool, a);
        let _ = ms.free_cell(&mut pool, a);
    }

    #[test]
    fn allocated_cells_round_trip() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(100).unwrap().index;
        let mut addrs: Vec<Address> = (0..10)
            .map(|_| ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap())
            .collect();
        let sp = ms.sp_of(addrs[0]);
        addrs.sort();
        assert_eq!(ms.allocated_cells(sp), addrs);
        for &a in &addrs {
            assert!(ms.is_allocated_cell(a));
            assert!(!ms.is_allocated_cell(a.offset(4)));
        }
    }

    #[test]
    fn cells_overlapping_page_includes_straddlers() {
        let (mut ms, mut pool) = space();
        // 5456-byte cells: cell 0 at 12, cell 1 at 5468, cell 2 at 10924.
        let sc = ms.classes().class_for(5000).unwrap();
        assert_eq!(sc.cell_bytes, 5456);
        for _ in 0..3 {
            ms.alloc(&mut pool, sc.index, BlockKind::Scalar).unwrap();
        }
        let sp = SpIndex(0);
        // Page 1 covers [4096, 8192): overlaps cell 0 (ends 5468) and cell 1.
        let cells = ms.cells_overlapping_page(sp, 1);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0 % BYTES_PER_SUPERPAGE, 12);
        // Page 3 covers [12288, 16384): overlaps cell 2 only.
        let cells = ms.cells_overlapping_page(sp, 3);
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn bookmark_counters_inc_dec() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(8).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let sp = ms.sp_of(a);
        assert_eq!(ms.info(sp).incoming_bookmarks, 0);
        ms.inc_incoming_bookmarks(sp);
        ms.inc_incoming_bookmarks(sp);
        assert_eq!(ms.info(sp).incoming_bookmarks, 2);
        assert_eq!(ms.dec_incoming_bookmarks(sp), 1);
        assert_eq!(ms.dec_incoming_bookmarks(sp), 0);
    }

    #[test]
    fn hint_reuses_freed_cells() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(8).unwrap().index;
        let addrs: Vec<Address> = (0..5)
            .map(|_| ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap())
            .collect();
        assert!(ms.free_cell(&mut pool, addrs[1]).is_none());
        let again = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        assert_eq!(again, addrs[1], "freed cell is reused first");
    }

    #[test]
    fn header_page_is_first_page_of_superpage() {
        let (mut ms, mut pool) = space();
        let class = ms.classes().class_for(8).unwrap().index;
        let a = ms.alloc(&mut pool, class, BlockKind::Scalar).unwrap();
        let sp = ms.sp_of(a);
        let pages = ms.sp_pages(sp);
        assert_eq!(ms.header_page(sp), pages[0]);
        assert_eq!(pages[3].0 - pages[0].0, 3);
    }
}
