//! A bump-pointer space: the nursery, and the semispaces of the copying
//! collectors.

use vmm::VirtPage;

use crate::addr::{Address, BYTES_PER_PAGE};
use crate::pool::PagePool;

/// Pages acquired from the pool per growth step.
const GROW_PAGES: u32 = 16;

/// A contiguous bump-allocated space within one address region.
///
/// The space grows its mapped extent page-wise from a shared [`PagePool`];
/// running out of pool budget (not out of region) is the allocation-failure
/// signal that triggers collection.
#[derive(Clone, Debug)]
pub struct BumpSpace {
    base: Address,
    region_limit: Address,
    top: Address,
    /// End of the currently mapped extent.
    extent: Address,
}

impl BumpSpace {
    /// An empty space over `[base, region_limit)`.
    ///
    /// # Panics
    ///
    /// Panics unless both bounds are page-aligned.
    pub fn new(base: Address, region_limit: Address) -> BumpSpace {
        assert_eq!(base.0 % BYTES_PER_PAGE, 0);
        assert_eq!(region_limit.0 % BYTES_PER_PAGE, 0);
        BumpSpace {
            base,
            region_limit,
            top: base,
            extent: base,
        }
    }

    /// Bump-allocates `bytes` (word multiple), growing the extent from
    /// `pool` as needed. Returns `None` when the pool budget (or the region)
    /// is exhausted — the caller should collect.
    #[inline]
    pub fn alloc(&mut self, pool: &mut PagePool, bytes: u32) -> Option<Address> {
        debug_assert!(bytes.is_multiple_of(4) && bytes > 0);
        let new_top = self.top.0.checked_add(bytes)?;
        if new_top > self.extent.0 {
            return self.grow_and_alloc(pool, new_top);
        }
        let obj = self.top;
        self.top = Address(new_top);
        Some(obj)
    }

    /// The out-of-line growth path of [`alloc`](BumpSpace::alloc): extends
    /// the mapped extent from `pool`, then bumps.
    #[cold]
    fn grow_and_alloc(&mut self, pool: &mut PagePool, new_top: u32) -> Option<Address> {
        let deficit = new_top - self.extent.0;
        let grow_pages = deficit.div_ceil(BYTES_PER_PAGE).max(GROW_PAGES);
        let grow_pages = grow_pages.min((self.region_limit.0 - self.extent.0) / BYTES_PER_PAGE);
        if self.extent.0 + grow_pages * BYTES_PER_PAGE < new_top {
            return None; // region exhausted
        }
        if !pool.acquire(grow_pages as usize) {
            // Try the exact deficit before giving up.
            let exact = deficit.div_ceil(BYTES_PER_PAGE);
            if exact == grow_pages || !pool.acquire(exact as usize) {
                return None;
            }
            self.extent = self.extent.offset(exact * BYTES_PER_PAGE);
        } else {
            self.extent = self.extent.offset(grow_pages * BYTES_PER_PAGE);
        }
        let obj = self.top;
        self.top = Address(new_top);
        Some(obj)
    }

    /// Like [`alloc`](BumpSpace::alloc), but overruns the pool budget rather
    /// than failing (copying collectors must not fail mid-collection; the
    /// overrun is reported as out-of-memory afterwards). Still fails when
    /// the address *region* is exhausted.
    pub fn alloc_forced(&mut self, pool: &mut PagePool, bytes: u32) -> Option<Address> {
        if let Some(addr) = self.alloc(pool, bytes) {
            return Some(addr);
        }
        let new_top = self.top.0.checked_add(bytes)?;
        if new_top > self.region_limit.0 {
            return None;
        }
        if new_top > self.extent.0 {
            let grow = (new_top - self.extent.0).div_ceil(BYTES_PER_PAGE);
            pool.force_acquire(grow as usize);
            self.extent = self.extent.offset(grow * BYTES_PER_PAGE);
        }
        let obj = self.top;
        self.top = Address(new_top);
        Some(obj)
    }

    /// Resets the bump pointer, keeping the mapped extent (nursery reuse).
    pub fn reset(&mut self) {
        self.top = self.base;
    }

    /// Releases the whole mapped extent back to `pool` and returns the page
    /// list (so the caller can `madvise` them away if it chooses to).
    pub fn release_all(&mut self, pool: &mut PagePool) -> Vec<VirtPage> {
        let pages = self.mapped_pages();
        pool.release(pages.len());
        self.top = self.base;
        self.extent = self.base;
        pages
    }

    /// Shrinks the mapped extent to the current top (page-rounded),
    /// releasing the tail to `pool`; returns the released pages.
    pub fn shrink_to_top(&mut self, pool: &mut PagePool) -> Vec<VirtPage> {
        let keep = Address(self.top.0).align_up(BYTES_PER_PAGE);
        let mut released = Vec::new();
        let mut p = keep;
        while p < self.extent {
            released.push(p.page());
            p = p.offset(BYTES_PER_PAGE);
        }
        pool.release(released.len());
        self.extent = keep;
        released
    }

    /// Whether `addr` lies in this space's *region* (not just the used part).
    pub fn region_contains(&self, addr: Address) -> bool {
        addr >= self.base && addr < self.region_limit
    }

    /// Whether `addr` lies below the current bump pointer.
    pub fn contains_allocated(&self, addr: Address) -> bool {
        addr >= self.base && addr < self.top
    }

    /// The first address of the space.
    pub fn base(&self) -> Address {
        self.base
    }

    /// The current bump pointer.
    pub fn top(&self) -> Address {
        self.top
    }

    /// Bytes allocated since the last reset.
    pub fn used_bytes(&self) -> u32 {
        self.top.0 - self.base.0
    }

    /// Pages currently mapped.
    pub fn extent_pages(&self) -> usize {
        ((self.extent.0 - self.base.0) / BYTES_PER_PAGE) as usize
    }

    /// The mapped pages, in address order.
    pub fn mapped_pages(&self) -> Vec<VirtPage> {
        (0..self.extent_pages() as u32)
            .map(|i| Address(self.base.0 + i * BYTES_PER_PAGE).page())
            .collect()
    }

    /// Remaining bytes before the region (not the pool) is exhausted.
    pub fn region_headroom(&self) -> u32 {
        self.region_limit.0 - self.top.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (BumpSpace, PagePool) {
        (
            BumpSpace::new(Address(0x10000), Address(0x20000)), // 16 pages
            PagePool::new(64),
        )
    }

    #[test]
    fn allocations_are_contiguous() {
        let (mut s, mut pool) = space();
        let a = s.alloc(&mut pool, 16).unwrap();
        let b = s.alloc(&mut pool, 24).unwrap();
        assert_eq!(a, Address(0x10000));
        assert_eq!(b, Address(0x10010));
        assert_eq!(s.used_bytes(), 40);
        assert!(s.contains_allocated(a));
        assert!(!s.contains_allocated(Address(0x10030)));
    }

    #[test]
    fn growth_draws_from_pool() {
        let (mut s, mut pool) = space();
        s.alloc(&mut pool, 8).unwrap();
        assert_eq!(pool.used(), 16); // one GROW_PAGES step
                                     // Fill the region (16 pages = 65536 bytes).
        assert!(s.alloc(&mut pool, 65536 - 8).is_some());
        assert!(s.alloc(&mut pool, 8).is_none(), "region exhausted");
    }

    #[test]
    fn pool_exhaustion_fails_allocation() {
        let mut s = BumpSpace::new(Address(0x10000), Address(0x110000));
        let mut pool = PagePool::new(4);
        // GROW_PAGES=16 won't fit; falls back to the exact deficit.
        assert!(s.alloc(&mut pool, BYTES_PER_PAGE * 4).is_some());
        assert!(s.alloc(&mut pool, 8).is_none());
    }

    #[test]
    fn reset_keeps_extent() {
        let (mut s, mut pool) = space();
        s.alloc(&mut pool, 4096 * 3).unwrap();
        let pages_before = s.extent_pages();
        s.reset();
        assert_eq!(s.used_bytes(), 0);
        assert_eq!(s.extent_pages(), pages_before);
        assert_eq!(pool.used(), pages_before);
    }

    #[test]
    fn release_all_returns_pages_to_pool() {
        let (mut s, mut pool) = space();
        s.alloc(&mut pool, 4096 * 3).unwrap();
        let pages = s.release_all(&mut pool);
        assert_eq!(pages.len(), 16); // full GROW_PAGES extent
        assert_eq!(pool.used(), 0);
        assert_eq!(s.extent_pages(), 0);
    }

    #[test]
    fn shrink_to_top_releases_tail() {
        let (mut s, mut pool) = space();
        s.alloc(&mut pool, 4096 + 100).unwrap(); // needs 2 pages, maps 16
        let released = s.shrink_to_top(&mut pool);
        assert_eq!(released.len(), 14);
        assert_eq!(s.extent_pages(), 2);
        assert_eq!(pool.used(), 2);
    }
}
