//! The heap-size budget, accounted in pages.
//!
//! Experiments fix a *heap size* per run (e.g. "a 77 MB heap", Figure 7);
//! all spaces of one collector draw pages from a shared `PagePool` whose
//! budget is that heap size. Exhausting the pool is what triggers
//! collection, and — for BC under memory pressure — the pool budget is what
//! shrinks when the collector gives pages back to the operating system
//! (§3.3.3: "BC tries not to grow at the expense of paging, but instead
//! limits the heap to the current footprint").

/// A page-granular budget shared by a collector's spaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagePool {
    budget: usize,
    used: usize,
    peak: usize,
}

impl PagePool {
    /// A pool with a budget of `budget` pages.
    pub fn new(budget: usize) -> PagePool {
        PagePool {
            budget,
            used: 0,
            peak: 0,
        }
    }

    /// A pool sized in bytes (rounded down to whole pages).
    pub fn with_bytes(bytes: usize) -> PagePool {
        PagePool::new(bytes / crate::BYTES_PER_PAGE as usize)
    }

    /// Tries to reserve `pages`; returns whether the budget allowed it.
    #[must_use]
    pub fn acquire(&mut self, pages: usize) -> bool {
        if self.used + pages <= self.budget {
            self.used += pages;
            self.peak = self.peak.max(self.used);
            true
        } else {
            false
        }
    }

    /// Reserves `pages` unconditionally, allowing a temporary budget
    /// overrun. Collectors use this mid-collection when refusing would leave
    /// the heap inconsistent; callers should check
    /// [`over_budget`](PagePool::over_budget) afterwards and report
    /// out-of-memory if usage stays above budget.
    pub fn force_acquire(&mut self, pages: usize) {
        self.used += pages;
        self.peak = self.peak.max(self.used);
    }

    /// Returns `pages` to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more pages are released than were acquired.
    pub fn release(&mut self, pages: usize) {
        assert!(
            pages <= self.used,
            "releasing {pages} of {} used",
            self.used
        );
        self.used -= pages;
    }

    /// Pages currently in use.
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark of pages ever in use at once.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Pages still available under the budget.
    pub fn available(&self) -> usize {
        self.budget - self.used
    }

    /// The budget, in pages.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget * crate::BYTES_PER_PAGE as usize
    }

    /// Shrinks (or grows) the budget. Shrinking below current usage is
    /// allowed: the pool simply refuses further acquisitions until usage
    /// falls back under budget (this is how BC pins its heap to the current
    /// footprint under pressure).
    pub fn set_budget(&mut self, pages: usize) {
        self.budget = pages;
    }

    /// Whether usage currently exceeds budget (possible after a shrink).
    pub fn over_budget(&self) -> bool {
        self.used > self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_within_budget() {
        let mut pool = PagePool::new(10);
        assert!(pool.acquire(4));
        assert!(pool.acquire(6));
        assert!(!pool.acquire(1));
        assert_eq!(pool.used(), 10);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn release_restores_budget() {
        let mut pool = PagePool::new(10);
        assert!(pool.acquire(10));
        pool.release(3);
        assert_eq!(pool.available(), 3);
        assert!(pool.acquire(3));
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut pool = PagePool::new(10);
        assert!(pool.acquire(2));
        pool.release(3);
    }

    #[test]
    fn shrink_below_usage_blocks_acquisition() {
        let mut pool = PagePool::new(10);
        assert!(pool.acquire(8));
        pool.set_budget(5);
        assert!(pool.over_budget());
        assert!(!pool.acquire(1));
        pool.release(4);
        assert!(!pool.over_budget());
        assert!(pool.acquire(1));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut pool = PagePool::new(10);
        assert!(pool.acquire(6));
        pool.release(4);
        assert!(pool.acquire(2));
        assert_eq!(pool.peak(), 6);
        pool.force_acquire(7);
        assert_eq!(pool.peak(), 11);
        pool.release(11);
        assert_eq!(pool.peak(), 11);
    }

    #[test]
    fn byte_constructor_rounds_down() {
        let pool = PagePool::with_bytes(10_000);
        assert_eq!(pool.budget(), 2);
        assert_eq!(pool.budget_bytes(), 8192);
    }
}
