//! The opt-in GC sanitizer: an independent verification layer hooked into
//! every collector at phase boundaries.
//!
//! The bookmarking collector is exactly the kind of design that fails
//! silently — a missed write barrier, a stale bookmark after an eviction,
//! or a dangling forwarding pointer shows up as wrong figure data, not as
//! a crash. Following MMTk's "sanity GC", this module re-derives the
//! collector's invariants from first principles and diffs them against the
//! collector's own state:
//!
//! * [`SanitizeLevel::Checks`] — cheap physical validation after every
//!   collection: free-cell poisoning with canary words in [`MsSpace`] and
//!   [`BumpSpace`] (validated on reuse and at the hook), allocation-run /
//!   bitmap agreement, and VMM frame conservation.
//! * [`SanitizeLevel::Full`] — everything in `Checks`, plus an independent
//!   **shadow re-trace** from the roots after each collection, using only
//!   raw memory reads. Every reachable object is checked against the
//!   collector's verdict: reachable objects must not lie in condemned
//!   space (a missed write barrier or remembered-set entry), must not
//!   decode as forwarding stubs (a dangling forward), and must carry the
//!   mark bit wherever the collector's phase promises one. For BC it also
//!   proves bookmark soundness: every outgoing reference from an evicted
//!   page must be summarized by an incoming-bookmark counter.
//!
//! The layer is **observation-only**: it reads and writes simulated memory
//! only through raw (uncharged) [`SimMemory`](crate::SimMemory) accesses,
//! never touches the VMM or the clock, and poisons only cells no collector
//! path reads. Figure outputs are byte-identical with the sanitizer on —
//! `tests/sanitize_transparency.rs` and a CI golden diff pin that.
//!
//! Violations are reported by panicking with a distinct, actionable
//! `sanitize:` message per [`SanitizeError`] variant; fault-injection tests
//! (`tests/sanitize_faults.rs`) prove each detector actually fires.

use core::fmt;
use std::collections::{BTreeMap, HashMap, HashSet};

use crate::addr::{Address, BYTES_PER_PAGE, WORD};
use crate::bump::BumpSpace;
use crate::ctx::MemCtx;
use crate::gc::Core;
use crate::ms::MsSpace;
use crate::object::{field_addr, Header};

/// How much verification runs ([`off`](SanitizeLevel::Off) costs nothing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SanitizeLevel {
    /// No verification (the default; zero overhead).
    #[default]
    Off,
    /// Cheap physical checks: canary poisoning, run-cache agreement, frame
    /// conservation.
    Checks,
    /// `Checks` plus the shadow re-trace and bookmark soundness.
    Full,
}

impl SanitizeLevel {
    /// Parses a `--sanitize` argument value.
    pub fn parse(s: &str) -> Option<SanitizeLevel> {
        match s {
            "off" => Some(SanitizeLevel::Off),
            "checks" => Some(SanitizeLevel::Checks),
            "full" => Some(SanitizeLevel::Full),
            _ => None,
        }
    }
}

impl fmt::Display for SanitizeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SanitizeLevel::Off => "off",
            SanitizeLevel::Checks => "checks",
            SanitizeLevel::Full => "full",
        })
    }
}

/// A collector bug seeded on purpose (test-only): each fault is consumed
/// once at its injection site and must trip a distinct [`SanitizeError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectFault {
    /// GenMS skips one remembered-set record in its write barrier.
    SkipBarrier,
    /// The mark bit of one reachable object is cleared after tracing.
    ClearMark,
    /// BC skips the bookmark pass for one evicted page.
    DropBookmark,
    /// SemiSpace returns the stale from-space address after copying.
    DanglingForward,
}

/// One violated invariant. Reported via [`SanitizeError::report`], which
/// panics with a distinct `sanitize:` message per variant — the messages
/// are the sanitizer's user interface, so they name the collector, the
/// phase, and the addresses involved.
#[derive(Clone, Debug)]
pub enum SanitizeError {
    /// A reachable object lies in space the collector condemned: some
    /// write barrier or remembered-set entry failed to record the edge.
    MissedBarrier {
        /// The collector that just finished a phase.
        collector: &'static str,
        /// The hook point ("after-trace", "after-collection").
        phase: &'static str,
        /// The slot holding the edge (`None` for a root).
        slot: Option<Address>,
        /// The condemned object.
        target: Address,
        /// What the condemned space was.
        condemned: &'static str,
    },
    /// A reachable, resident object the phase promises is marked isn't.
    UnmarkedReachable {
        /// The collector.
        collector: &'static str,
        /// The hook point.
        phase: &'static str,
        /// The unmarked object.
        obj: Address,
    },
    /// A reachable slot still points at a forwarding stub (or at condemned
    /// space whose header already became one): the forwarder returned a
    /// stale address.
    DanglingForward {
        /// The collector.
        collector: &'static str,
        /// The hook point.
        phase: &'static str,
        /// The slot holding the stale edge (`None` for a root).
        slot: Option<Address>,
        /// The stale address.
        target: Address,
        /// Where the stub says the object went.
        forwarded_to: Address,
    },
    /// An outgoing reference from an evicted page has no incoming-bookmark
    /// summary: after a reload the collector would never find the edge.
    DroppedBookmark {
        /// The evicted page number holding the reference.
        page: u32,
        /// The slot on the evicted page.
        slot: Address,
        /// The unsummarized target.
        target: Address,
        /// Which counter is missing.
        detail: &'static str,
    },
    /// A free cell's canary words were overwritten: something wrote through
    /// a dangling pointer into freed (or never-allocated) space.
    CanaryClobbered {
        /// Where the check ran ("allocation reuse", "post-collection scan").
        context: &'static str,
        /// The free cell (or bump-tail address) holding the canary.
        cell: Address,
        /// The clobbered word's address.
        addr: Address,
        /// What the word held instead of the canary.
        found: u32,
    },
    /// The allocation-run cache disagrees with the allocation bitmaps.
    RunCacheMismatch {
        /// The specific disagreement, from [`MsSpace::sanitize_check_runs`].
        detail: String,
    },
    /// VMM frame conservation failed: free + resident != total frames.
    FrameAccounting {
        /// Free frames across all shards.
        free: usize,
        /// Resident pages across all processes.
        resident: usize,
        /// Configured physical frames.
        frames: usize,
    },
}

impl fmt::Display for SanitizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanitizeError::MissedBarrier {
                collector,
                phase,
                slot,
                target,
                condemned,
            } => write!(
                f,
                "missed barrier: {collector} {phase}: reachable edge {} -> {target} points into \
                 {condemned}; a write barrier or remembered-set entry failed to record it",
                SlotOrRoot(*slot)
            ),
            SanitizeError::UnmarkedReachable {
                collector,
                phase,
                obj,
            } => write!(
                f,
                "unmarked reachable: {collector} {phase}: object {obj} is reachable from the \
                 roots but its mark bit is clear; the trace missed it"
            ),
            SanitizeError::DanglingForward {
                collector,
                phase,
                slot,
                target,
                forwarded_to,
            } => write!(
                f,
                "dangling forward: {collector} {phase}: reachable edge {} -> {target} decodes as \
                 a forwarding stub to {forwarded_to}; the forwarder returned a stale address",
                SlotOrRoot(*slot)
            ),
            SanitizeError::DroppedBookmark {
                page,
                slot,
                target,
                detail,
            } => write!(
                f,
                "dropped bookmark: evicted page {page}: outgoing reference {slot} -> {target} \
                 has no incoming-bookmark summary ({detail}); a reload would lose the edge"
            ),
            SanitizeError::CanaryClobbered {
                context,
                cell,
                addr,
                found,
            } => write!(
                f,
                "canary clobbered: {context}: free cell {cell} word {addr} holds {found:#010x} \
                 instead of the canary; something wrote through a dangling pointer"
            ),
            SanitizeError::RunCacheMismatch { detail } => {
                write!(f, "run-cache mismatch: {detail}")
            }
            SanitizeError::FrameAccounting {
                free,
                resident,
                frames,
            } => write!(
                f,
                "frame accounting: {free} free + {resident} resident != {frames} physical \
                 frames; the VMM leaked or double-counted a frame"
            ),
        }
    }
}

impl SanitizeError {
    /// Reports the violation by panicking with a `sanitize:` message.
    pub fn report(self) -> ! {
        panic!("sanitize: {self}");
    }
}

/// Displays an optional slot address, or `roots` for a root edge.
struct SlotOrRoot(Option<Address>);

impl fmt::Display for SlotOrRoot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(slot) => write!(f, "{slot}"),
            None => f.write_str("roots"),
        }
    }
}

/// The canary word poisoning free cells at [`SanitizeLevel::Checks`] and
/// above. Distinctive and pointer-unlike (unaligned as an address).
pub const CANARY: u32 = 0xDEAD_BEEF;

/// How a collector classifies an address for the shadow re-trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Classified {
    /// A live object the collector retained.
    Live,
    /// Space the collection condemned (a released nursery, the old
    /// semispace, a freed cell…) — no reachable edge may point here.
    Condemned(&'static str),
}

/// A collector's description of its own post-phase state, consumed by
/// [`Core::sanitize_shadow_trace`]. The closures capture the collector's
/// spaces immutably while the core runs the trace (disjoint borrows).
pub struct ShadowSpec<'a> {
    /// Collector name for error messages.
    pub collector: &'static str,
    /// Hook point for error messages ("after-trace", "after-collection").
    pub phase: &'static str,
    /// Classifies an address as live or condemned.
    pub classify: &'a dyn Fn(Address) -> Classified,
    /// Whether the object of the given size (header included, in bytes) is
    /// wholly resident (BC does not trace through evicted objects; everyone
    /// else returns `true`). The trace decodes the size from the raw header
    /// so the closure need not read heap memory itself.
    pub resident: &'a dyn Fn(Address, u32) -> bool,
    /// Whether this phase promises the object's mark bit is set.
    pub expect_marked: &'a dyn Fn(Address) -> bool,
}

/// Per-core sanitizer state: the configured level, the pending injected
/// fault, the poison ledger, and reusable trace scratch.
#[derive(Debug, Default)]
pub struct Sanitizer {
    level: SanitizeLevel,
    pending_fault: Option<InjectFault>,
    /// Poisoned free cells: start address -> cell size in bytes. A
    /// `BTreeMap` so validation visits cells in address order and the
    /// first error is deterministic.
    poisoned_cells: BTreeMap<u32, u32>,
    /// Poisoned bump-space tails: space base -> poisoned `[start, end)`.
    poisoned_tails: HashMap<u32, (u32, u32)>,
    /// Shadow-trace visited set (reused across collections).
    visited: HashSet<u32>,
    /// Shadow-trace worklist (reused across collections).
    worklist: Vec<Address>,
}

impl Sanitizer {
    /// A sanitizer at `level` with an optional pending fault to inject.
    pub fn new(level: SanitizeLevel, fault: Option<InjectFault>) -> Sanitizer {
        Sanitizer {
            level,
            pending_fault: fault,
            ..Sanitizer::default()
        }
    }

    /// The configured level.
    pub fn level(&self) -> SanitizeLevel {
        self.level
    }
}

impl Core {
    /// Whether any sanitizer hooks should run.
    #[inline]
    pub fn sanitize_active(&self) -> bool {
        self.san.level != SanitizeLevel::Off
    }

    /// Whether physical checks (canaries, run cache, frames) run.
    #[inline]
    pub fn sanitize_checks(&self) -> bool {
        self.san.level >= SanitizeLevel::Checks
    }

    /// Whether the shadow re-trace runs.
    #[inline]
    pub fn sanitize_full(&self) -> bool {
        self.san.level == SanitizeLevel::Full
    }

    /// Consumes the pending injected fault if it equals `fault`; the
    /// injection sites in the collectors are exercised once each.
    pub fn san_take_fault(&mut self, fault: InjectFault) -> bool {
        if self.san.pending_fault == Some(fault) {
            self.san.pending_fault = None;
            true
        } else {
            false
        }
    }

    /// The independent shadow re-trace: BFS from the roots over raw memory
    /// only, diffing every reachable edge against the collector's verdict
    /// in `spec`. Reads no charged memory and advances no clock — the
    /// simulation is byte-identical with this on.
    ///
    /// # Panics
    ///
    /// Panics with a [`SanitizeError`] on the first violated invariant.
    pub fn sanitize_shadow_trace(&mut self, spec: &ShadowSpec<'_>) {
        let mut visited = std::mem::take(&mut self.san.visited);
        let mut work = std::mem::take(&mut self.san.worklist);
        visited.clear();
        work.clear();
        for root in self.roots.iter() {
            self.san_shadow_edge(spec, None, root, &mut visited, &mut work);
        }
        while let Some(obj) = work.pop() {
            let h = match Header::decode_forwarded(
                self.mem.read_word(obj),
                self.mem.read_word(obj.offset(WORD)),
            ) {
                Ok(h) => h,
                Err(forwarded_to) => SanitizeError::DanglingForward {
                    collector: spec.collector,
                    phase: spec.phase,
                    slot: None,
                    target: obj,
                    forwarded_to,
                }
                .report(),
            };
            for i in 0..h.kind.num_ref_fields() {
                let slot = field_addr(obj, i);
                let target = Address(self.mem.read_word(slot));
                if !target.is_null() {
                    self.san_shadow_edge(spec, Some(slot), target, &mut visited, &mut work);
                }
            }
        }
        self.san.visited = visited;
        self.san.worklist = work;
    }

    /// Validates one shadow-trace edge and enqueues live resident targets.
    fn san_shadow_edge(
        &self,
        spec: &ShadowSpec<'_>,
        slot: Option<Address>,
        target: Address,
        visited: &mut HashSet<u32>,
        work: &mut Vec<Address>,
    ) {
        if target.is_null() {
            return;
        }
        match (spec.classify)(target) {
            Classified::Condemned(condemned) => {
                // Disambiguate: a condemned target whose header already
                // became a forwarding stub is a stale (dangling) forward;
                // an intact header means the edge was never recorded.
                let decoded = Header::decode_forwarded(
                    self.mem.read_word(target),
                    self.mem.read_word(target.offset(WORD)),
                );
                match decoded {
                    Err(forwarded_to) => SanitizeError::DanglingForward {
                        collector: spec.collector,
                        phase: spec.phase,
                        slot,
                        target,
                        forwarded_to,
                    }
                    .report(),
                    Ok(_) => SanitizeError::MissedBarrier {
                        collector: spec.collector,
                        phase: spec.phase,
                        slot,
                        target,
                        condemned,
                    }
                    .report(),
                }
            }
            Classified::Live => {
                let h = match Header::decode_forwarded(
                    self.mem.read_word(target),
                    self.mem.read_word(target.offset(WORD)),
                ) {
                    Ok(h) => h,
                    Err(forwarded_to) => SanitizeError::DanglingForward {
                        collector: spec.collector,
                        phase: spec.phase,
                        slot,
                        target,
                        forwarded_to,
                    }
                    .report(),
                };
                if !(spec.resident)(target, h.kind.size_bytes()) {
                    // BC: evicted objects are summarized by bookmarks, not
                    // traced; their soundness has its own check.
                    return;
                }
                if (spec.expect_marked)(target) && !Header::is_marked(self.mem.read_word(target)) {
                    SanitizeError::UnmarkedReachable {
                        collector: spec.collector,
                        phase: spec.phase,
                        obj: target,
                    }
                    .report();
                }
                if visited.insert(target.0) {
                    work.push(target);
                }
            }
        }
    }

    /// The post-collection physical checks ([`SanitizeLevel::Checks`] and
    /// up): run-cache agreement, canary validation and re-poisoning over
    /// `ms` free cells and the `bumps` free tails, and VMM frame
    /// conservation. Raw memory only; nothing is charged.
    ///
    /// # Panics
    ///
    /// Panics with a [`SanitizeError`] on the first violated invariant.
    pub fn sanitize_physical_checks(
        &mut self,
        ctx: &MemCtx<'_>,
        ms: Option<&MsSpace>,
        bumps: &[&BumpSpace],
    ) {
        if !self.sanitize_checks() {
            return;
        }
        // Allocation-run cache vs. bitmaps.
        if let Some(ms) = ms {
            if let Err(detail) = ms.sanitize_check_runs() {
                SanitizeError::RunCacheMismatch { detail }.report();
            }
        }
        // Validate surviving canaries from the previous poison pass. A
        // poisoned cell is only checkable while its geometry held: stale
        // entries (cell allocated, superpage released or reassigned) are
        // dropped silently.
        let poisoned = std::mem::take(&mut self.san.poisoned_cells);
        for (&addr, &bytes) in &poisoned {
            if ms.is_some_and(|ms| ms.is_current_free_cell(Address(addr), bytes)) {
                self.san_check_canary_words(Address(addr), bytes, "post-collection scan");
            }
        }
        // Bump tails: the still-free intersection of the previous poison
        // range must be intact.
        for bump in bumps {
            let key = bump.base().0;
            let top = bump.top().0;
            let extent_end = bump.base().0 + bump.extent_pages() as u32 * BYTES_PER_PAGE;
            if let Some(&(start, end)) = self.san.poisoned_tails.get(&key) {
                let lo = start.max(top);
                let hi = end.min(extent_end);
                if lo < hi {
                    self.san_check_canary_words(Address(lo), hi - lo, "post-collection scan");
                }
            }
            // Re-poison the current free tail.
            if top < extent_end {
                for a in (top..extent_end).step_by(WORD as usize) {
                    self.mem.write_word(Address(a), CANARY);
                }
                self.san.poisoned_tails.insert(key, (top, extent_end));
            } else {
                self.san.poisoned_tails.remove(&key);
            }
        }
        // Re-poison every currently free cell.
        let mut repoisoned = poisoned;
        repoisoned.clear();
        if let Some(ms) = ms {
            ms.for_each_free_cell(|cell, bytes| {
                for a in (cell.0..cell.0 + bytes).step_by(WORD as usize) {
                    self.mem.write_word(Address(a), CANARY);
                }
                repoisoned.insert(cell.0, bytes);
            });
        }
        self.san.poisoned_cells = repoisoned;
        // VMM frame conservation (the invariant the vmm proptests pin,
        // re-checked live on every collection).
        let free = ctx.vmm.free_frames();
        let resident = ctx.vmm.total_resident();
        let frames = ctx.vmm.config().frames;
        if free + resident != frames {
            SanitizeError::FrameAccounting {
                free,
                resident,
                frames,
            }
            .report();
        }
    }

    /// Called from the allocation paths before a cell or bump range is
    /// zeroed/copied over: its poison (if tracked) must be intact.
    ///
    /// Only the intersection of the tracked extent with the allocation
    /// itself is checked. The ledger's geometry can go stale between
    /// collections — an empty superpage is recycled for a different size
    /// class, or taken over as a copy target — and then the tracked extent
    /// overlaps *neighbouring* live allocations, which legitimately hold
    /// non-canary data. The allocation's own bytes were free until this
    /// moment under either geometry, so they must still read canary (or
    /// zero, after a demand-zero reload); full-extent validation is the
    /// post-collection scan's job, where [`MsSpace::is_current_free_cell`]
    /// guards against exactly this staleness.
    pub(crate) fn san_check_alloc_target(&mut self, obj: Address, size: u32) {
        if let Some(bytes) = self.san.poisoned_cells.remove(&obj.0) {
            self.san_check_canary_words(obj, bytes.min(size), "allocation reuse");
            return;
        }
        let tail = self
            .san
            .poisoned_tails
            .values()
            .find(|&&(start, end)| obj.0 >= start && obj.0 < end)
            .copied();
        if let Some((_, end)) = tail {
            let hi = (obj.0 + size).min(end);
            if obj.0 < hi {
                self.san_check_canary_words(obj, hi - obj.0, "allocation reuse");
            }
        }
    }

    /// Requires every word of `[addr, addr + bytes)` to hold the canary or
    /// zero (a discarded page demand-zeroes; BC zeroes reserved cells).
    fn san_check_canary_words(&self, addr: Address, bytes: u32, context: &'static str) {
        for a in (addr.0..addr.0 + bytes).step_by(WORD as usize) {
            let found = self.mem.read_word(Address(a));
            if found != CANARY && found != 0 {
                SanitizeError::CanaryClobbered {
                    context,
                    cell: addr,
                    addr: Address(a),
                    found,
                }
                .report();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::HeapConfig;
    use crate::object::ObjectKind;
    use crate::pool::PagePool;
    use simtime::{Clock, CostModel};
    use vmm::{Vmm, VmmConfig};

    fn setup(level: SanitizeLevel) -> (Core, Vmm, Clock) {
        let mut vmm = Vmm::new(
            VmmConfig::builder().frames(1024).build(),
            CostModel::default(),
        );
        let pid = vmm.register_process();
        assert_eq!(pid.as_u32(), 0);
        let config = HeapConfig::builder()
            .heap_bytes(1 << 20)
            .sanitize(level)
            .build();
        (Core::new(config), vmm, Clock::new())
    }

    #[test]
    fn level_parse_round_trips() {
        for level in [
            SanitizeLevel::Off,
            SanitizeLevel::Checks,
            SanitizeLevel::Full,
        ] {
            assert_eq!(SanitizeLevel::parse(&level.to_string()), Some(level));
        }
        assert_eq!(SanitizeLevel::parse("bogus"), None);
        assert!(SanitizeLevel::Checks < SanitizeLevel::Full);
    }

    #[test]
    fn shadow_trace_accepts_a_consistent_heap() {
        let (mut core, mut vmm, mut clock) = setup(SanitizeLevel::Full);
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, vmm::ProcessId::new(0));
        let a = Address(0x1040_0000);
        let b = Address(0x1040_0040);
        core.init_object(&mut ctx, a, ObjectKind::scalar(4, 1));
        core.init_object(&mut ctx, b, ObjectKind::scalar(4, 0));
        core.write_slot(&mut ctx, field_addr(a, 0), b);
        core.roots.add(a);
        assert!(core.try_mark(&mut ctx, a));
        assert!(core.try_mark(&mut ctx, b));
        let spec = ShadowSpec {
            collector: "test",
            phase: "after-trace",
            classify: &|_| Classified::Live,
            resident: &|_, _| true,
            expect_marked: &|_| true,
        };
        core.sanitize_shadow_trace(&spec);
    }

    #[test]
    #[should_panic(expected = "sanitize: unmarked reachable")]
    fn shadow_trace_detects_unmarked_reachable() {
        let (mut core, mut vmm, mut clock) = setup(SanitizeLevel::Full);
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, vmm::ProcessId::new(0));
        let a = Address(0x1040_0000);
        let b = Address(0x1040_0040);
        core.init_object(&mut ctx, a, ObjectKind::scalar(4, 1));
        core.init_object(&mut ctx, b, ObjectKind::scalar(4, 0));
        core.write_slot(&mut ctx, field_addr(a, 0), b);
        core.roots.add(a);
        assert!(core.try_mark(&mut ctx, a)); // b stays unmarked
        let spec = ShadowSpec {
            collector: "test",
            phase: "after-trace",
            classify: &|_| Classified::Live,
            resident: &|_, _| true,
            expect_marked: &|_| true,
        };
        core.sanitize_shadow_trace(&spec);
    }

    #[test]
    #[should_panic(expected = "sanitize: missed barrier")]
    fn shadow_trace_detects_condemned_edge() {
        let (mut core, mut vmm, mut clock) = setup(SanitizeLevel::Full);
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, vmm::ProcessId::new(0));
        let a = Address(0x1040_0000);
        let dead = Address(0x2040_0000);
        core.init_object(&mut ctx, a, ObjectKind::scalar(4, 1));
        core.init_object(&mut ctx, dead, ObjectKind::scalar(4, 0));
        core.write_slot(&mut ctx, field_addr(a, 0), dead);
        core.roots.add(a);
        let spec = ShadowSpec {
            collector: "test",
            phase: "after-collection",
            classify: &|t| {
                if t.0 >= 0x2000_0000 {
                    Classified::Condemned("released nursery")
                } else {
                    Classified::Live
                }
            },
            resident: &|_, _| true,
            expect_marked: &|_| false,
        };
        core.sanitize_shadow_trace(&spec);
    }

    #[test]
    #[should_panic(expected = "sanitize: dangling forward")]
    fn shadow_trace_detects_forwarding_stub() {
        let (mut core, mut vmm, mut clock) = setup(SanitizeLevel::Full);
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, vmm::ProcessId::new(0));
        let a = Address(0x1040_0000);
        let from = Address(0x2040_0000);
        let to = Address(0x3040_0000);
        core.init_object(&mut ctx, a, ObjectKind::scalar(4, 1));
        core.init_object(&mut ctx, from, ObjectKind::scalar(4, 0));
        core.copy_object(&mut ctx, from, to, 24);
        core.write_slot(&mut ctx, field_addr(a, 0), from); // stale edge
        core.roots.add(a);
        let spec = ShadowSpec {
            collector: "test",
            phase: "after-collection",
            classify: &|t| {
                if t.0 >= 0x2000_0000 && t.0 < 0x3000_0000 {
                    Classified::Condemned("old semispace")
                } else {
                    Classified::Live
                }
            },
            resident: &|_, _| true,
            expect_marked: &|_| false,
        };
        core.sanitize_shadow_trace(&spec);
    }

    #[test]
    fn canary_poison_and_validate_round_trip() {
        let (mut core, mut vmm, mut clock) = setup(SanitizeLevel::Checks);
        let mut pool = PagePool::new(1024);
        let mut ms = MsSpace::new(Address(0x1040_0000), Address(0x1140_0000));
        let class = ms.classes().class_for(64).unwrap().index;
        let a = ms
            .alloc(&mut pool, class, crate::ms::BlockKind::Scalar)
            .unwrap();
        let _b = ms
            .alloc(&mut pool, class, crate::ms::BlockKind::Scalar)
            .unwrap();
        let _ = ms.free_cell(&mut pool, a);
        {
            let clock_ref = &mut clock;
            let ctx = MemCtx::new(&mut vmm, clock_ref, vmm::ProcessId::new(0));
            core.sanitize_physical_checks(&ctx, Some(&ms), &[]);
        }
        assert_eq!(core.mem.read_word(a), CANARY);
        // A second pass validates what the first wrote.
        {
            let clock_ref = &mut clock;
            let ctx = MemCtx::new(&mut vmm, clock_ref, vmm::ProcessId::new(0));
            core.sanitize_physical_checks(&ctx, Some(&ms), &[]);
        }
    }

    #[test]
    #[should_panic(expected = "sanitize: canary clobbered")]
    fn clobbered_canary_is_detected() {
        let (mut core, mut vmm, mut clock) = setup(SanitizeLevel::Checks);
        let mut pool = PagePool::new(1024);
        let mut ms = MsSpace::new(Address(0x1040_0000), Address(0x1140_0000));
        let class = ms.classes().class_for(64).unwrap().index;
        let a = ms
            .alloc(&mut pool, class, crate::ms::BlockKind::Scalar)
            .unwrap();
        let _b = ms
            .alloc(&mut pool, class, crate::ms::BlockKind::Scalar)
            .unwrap();
        let _ = ms.free_cell(&mut pool, a);
        {
            let clock_ref = &mut clock;
            let ctx = MemCtx::new(&mut vmm, clock_ref, vmm::ProcessId::new(0));
            core.sanitize_physical_checks(&ctx, Some(&ms), &[]);
        }
        // A stray write through a dangling pointer.
        core.mem.write_word(a.offset(8), 0x1234_5678);
        let clock_ref = &mut clock;
        let ctx = MemCtx::new(&mut vmm, clock_ref, vmm::ProcessId::new(0));
        core.sanitize_physical_checks(&ctx, Some(&ms), &[]);
    }

    #[test]
    #[should_panic(expected = "sanitize: canary clobbered")]
    fn clobbered_cell_is_detected_on_reuse() {
        let (mut core, mut vmm, mut clock) = setup(SanitizeLevel::Checks);
        let mut pool = PagePool::new(1024);
        let mut ms = MsSpace::new(Address(0x1040_0000), Address(0x1140_0000));
        let class = ms.classes().class_for(64).unwrap().index;
        let a = ms
            .alloc(&mut pool, class, crate::ms::BlockKind::Scalar)
            .unwrap();
        let b = ms
            .alloc(&mut pool, class, crate::ms::BlockKind::Scalar)
            .unwrap();
        {
            // Charged initialization makes the pages resident: later raw
            // writes (poison, clobber) survive the next charged touch.
            let mut ctx = MemCtx::new(&mut vmm, &mut clock, vmm::ProcessId::new(0));
            core.init_object(&mut ctx, a, ObjectKind::scalar(4, 0));
            core.init_object(&mut ctx, b, ObjectKind::scalar(4, 0));
        }
        let _ = ms.free_cell(&mut pool, a);
        {
            let clock_ref = &mut clock;
            let ctx = MemCtx::new(&mut vmm, clock_ref, vmm::ProcessId::new(0));
            core.sanitize_physical_checks(&ctx, Some(&ms), &[]);
        }
        core.mem.write_word(a.offset(16), 0xBAD);
        // Reallocate the cell: init_object's reuse check must fire.
        let again = ms
            .alloc(&mut pool, class, crate::ms::BlockKind::Scalar)
            .unwrap();
        assert_eq!(again, a);
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, vmm::ProcessId::new(0));
        core.init_object(&mut ctx, again, ObjectKind::scalar(4, 0));
    }
}
