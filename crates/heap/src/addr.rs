//! Simulated addresses and the fixed virtual-address-space layout.

use core::fmt;
use vmm::VirtPage;

/// Bytes per machine word (the paper's testbed is 32-bit x86).
pub const WORD: u32 = 4;
/// Bytes per virtual-memory page.
pub const BYTES_PER_PAGE: u32 = vmm::PAGE_BYTES as u32;
/// Pages per superpage ("page-aligned groups of four contiguous pages", §3).
pub const PAGES_PER_SUPERPAGE: u32 = 4;
/// Bytes per superpage (16 KiB).
pub const BYTES_PER_SUPERPAGE: u32 = BYTES_PER_PAGE * PAGES_PER_SUPERPAGE;

/// A 32-bit simulated virtual address. `Address(0)` is null.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(pub u32);

impl Address {
    /// The null address.
    pub const NULL: Address = Address(0);

    /// Whether this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// This address plus `bytes`.
    pub const fn offset(self, bytes: u32) -> Address {
        Address(self.0 + bytes)
    }

    /// The page containing this address.
    pub const fn page(self) -> VirtPage {
        VirtPage::containing(self.0)
    }

    /// Whether the address is word-aligned.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD)
    }

    /// Rounds up to the next multiple of `align` (a power of two).
    pub const fn align_up(self, align: u32) -> Address {
        Address((self.0 + align - 1) & !(align - 1))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

/// Rounds a byte count up to whole words.
pub(crate) const fn round_up_words(bytes: u32) -> u32 {
    (bytes + WORD - 1) & !(WORD - 1)
}

/// The fixed region layout of a simulated process's heap address space.
///
/// Every collector draws its spaces from the same four regions so that the
/// [`vmm`] page tables stay dense:
///
/// | Region    | Use                                                |
/// |-----------|----------------------------------------------------|
/// | `nursery` | bump-pointer nursery                               |
/// | `space_a` | mature mark-sweep superpages, or semispace "from"  |
/// | `space_b` | semispace "to" (copying collectors only)           |
/// | `los`     | page-granular large object space                   |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Nursery region `[base, limit)`.
    pub nursery: (Address, Address),
    /// First mature region.
    pub space_a: (Address, Address),
    /// Second mature region (copy reserve).
    pub space_b: (Address, Address),
    /// Large object region.
    pub los: (Address, Address),
}

impl Layout {
    /// The layout constants used by every collector in this reproduction.
    pub const fn standard() -> Layout {
        Layout {
            nursery: (Address(0x0040_0000), Address(0x1040_0000)), // 256 MiB
            space_a: (Address(0x1040_0000), Address(0x5040_0000)), // 1 GiB
            space_b: (Address(0x5040_0000), Address(0x9040_0000)), // 1 GiB
            los: (Address(0x9040_0000), Address(0xB040_0000)),     // 512 MiB
        }
    }

    /// Which region an address falls into, if any.
    pub fn region_of(&self, addr: Address) -> Option<Region> {
        let a = addr.0;
        if a >= self.nursery.0 .0 && a < self.nursery.1 .0 {
            Some(Region::Nursery)
        } else if a >= self.space_a.0 .0 && a < self.space_a.1 .0 {
            Some(Region::SpaceA)
        } else if a >= self.space_b.0 .0 && a < self.space_b.1 .0 {
            Some(Region::SpaceB)
        } else if a >= self.los.0 .0 && a < self.los.1 .0 {
            Some(Region::Los)
        } else {
            None
        }
    }
}

impl Default for Layout {
    fn default() -> Layout {
        Layout::standard()
    }
}

/// One of the four fixed address regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// The nursery.
    Nursery,
    /// First mature region.
    SpaceA,
    /// Second mature region.
    SpaceB,
    /// The large object space.
    Los,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_and_alignment() {
        assert!(Address::NULL.is_null());
        assert!(!Address(4).is_null());
        assert!(Address(8).is_word_aligned());
        assert!(!Address(9).is_word_aligned());
        assert_eq!(Address(13).align_up(8), Address(16));
        assert_eq!(Address(16).align_up(8), Address(16));
        assert_eq!(round_up_words(1), 4);
        assert_eq!(round_up_words(4), 4);
        assert_eq!(round_up_words(5), 8);
    }

    #[test]
    fn page_of_address() {
        assert_eq!(Address(0).page(), VirtPage::new(0));
        assert_eq!(Address(4095).page(), VirtPage::new(0));
        assert_eq!(Address(4096).page(), VirtPage::new(1));
    }

    #[test]
    fn standard_layout_regions_are_disjoint_and_classified() {
        let l = Layout::standard();
        assert_eq!(l.region_of(Address(0x0040_0000)), Some(Region::Nursery));
        assert_eq!(l.region_of(Address(0x1040_0000)), Some(Region::SpaceA));
        assert_eq!(l.region_of(Address(0x5040_0000)), Some(Region::SpaceB));
        assert_eq!(l.region_of(Address(0x9040_0000)), Some(Region::Los));
        assert_eq!(l.region_of(Address(0x0000_1000)), None);
        assert_eq!(l.region_of(Address(0xF000_0000)), None);
        // Contiguity: each region ends where the next begins.
        assert_eq!(l.nursery.1, l.space_a.0);
        assert_eq!(l.space_a.1, l.space_b.0);
        assert_eq!(l.space_b.1, l.los.0);
    }

    #[test]
    fn superpage_constants_match_the_paper() {
        // §3: "superpages, page-aligned groups of four contiguous pages (16K)".
        assert_eq!(BYTES_PER_SUPERPAGE, 16 * 1024);
        assert_eq!(PAGES_PER_SUPERPAGE, 4);
    }
}
