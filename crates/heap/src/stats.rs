//! Collector statistics.

/// Counters every collector maintains; experiments read these alongside the
/// [`vmm::VmStats`] paging counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Objects allocated.
    pub objects_allocated: u64,
    /// Bytes allocated (requested sizes, headers included).
    pub bytes_allocated: u64,
    /// Nursery (minor) collections.
    pub nursery_gcs: u64,
    /// Full-heap collections.
    pub full_gcs: u64,
    /// Full-heap *compacting* collections (BC §3.2, SemiSpace copies).
    pub compacting_gcs: u64,
    /// Completeness fail-safe collections (BC §3.5).
    pub failsafe_gcs: u64,
    /// Objects marked/copied live across all collections.
    pub objects_traced: u64,
    /// Objects moved by copying/compacting collections.
    pub objects_moved: u64,
    /// Bytes moved by copying/compacting collections.
    pub bytes_moved: u64,
    /// Write-barrier records taken.
    pub barrier_records: u64,
    /// Bookmarks set on objects (BC §3.4).
    pub bookmarks_set: u64,
    /// Bookmarks cleared when reloaded pages drained their superpage
    /// counters (BC §3.4.2).
    pub bookmarks_cleared: u64,
    /// Pages scanned for outgoing pointers before eviction (BC §3.4).
    pub pages_bookmark_scanned: u64,
    /// Empty pages discarded via `madvise` (BC §3.3.2).
    pub pages_discarded: u64,
    /// Pages surrendered via `vm_relinquish` (BC §3.4).
    pub pages_relinquished: u64,
    /// Times the heap budget was shrunk in response to pressure (§3.3.3).
    pub heap_shrinks: u64,
    /// Times the heap budget was grown back after pressure abated (the §7
    /// future-work extension; zero for the paper's evaluated collectors).
    pub heap_regrows: u64,
    /// Pointer-rich victim pages vetoed by the §7 victim-selection
    /// extension (zero under the default kernel-choice policy).
    pub victims_vetoed: u64,
    /// Work packets drained by the packet tracer across all collections
    /// (see [`crate::packet`]).
    pub trace_packets: u64,
    /// Work packets stolen between simulated GC workers (zero at
    /// `gc_threads = 1`).
    pub trace_steals: u64,
}

impl GcStats {
    /// Total collections of any kind.
    pub fn total_gcs(&self) -> u64 {
        self.nursery_gcs + self.full_gcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_minor_and_full() {
        let stats = GcStats {
            nursery_gcs: 10,
            full_gcs: 3,
            ..GcStats::default()
        };
        assert_eq!(stats.total_gcs(), 13);
    }
}
