//! The card table used by write-buffer filtering (§3.1).
//!
//! When a write buffer fills, entries whose source lies in the mature space
//! are converted into a mark on the *source object's card*; nursery
//! collection then scans "only those objects whose cards are marked".

use crate::addr::Address;

/// Bytes covered by one card.
pub const CARD_BYTES: u32 = 512;

/// A bitmap of dirty cards over a contiguous address range.
///
/// The bitmap grows on demand as high cards are marked: BC covers its
/// whole mature *region* (gigabytes of address space) but a small heap
/// only ever dirties cards near the region base, so an eager bitmap would
/// charge every collector instance ~640 KB of host memory up front —
/// which is exactly what flattened the multi-thousand-tenant fleet runs.
/// Words past `bits.len()` simply read as clean.
#[derive(Clone, Debug)]
pub struct CardTable {
    base: Address,
    bits: Vec<u64>,
    cards: u32,
}

impl CardTable {
    /// A clean table covering `[base, limit)`.
    ///
    /// # Panics
    ///
    /// Panics unless the bounds are card-aligned.
    pub fn new(base: Address, limit: Address) -> CardTable {
        assert_eq!(base.0 % CARD_BYTES, 0);
        assert_eq!(limit.0 % CARD_BYTES, 0);
        let cards = (limit.0 - base.0) / CARD_BYTES;
        CardTable {
            base,
            bits: Vec::new(),
            cards,
        }
    }

    fn card_of(&self, addr: Address) -> Option<u32> {
        addr.0
            .checked_sub(self.base.0)
            .map(|off| off / CARD_BYTES)
            .filter(|&c| c < self.cards)
    }

    /// Marks the card containing `addr` dirty.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the covered range.
    pub fn mark(&mut self, addr: Address) {
        let c = self.card_of(addr).expect("address outside card table");
        let w = (c / 64) as usize;
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        self.bits[w] |= 1 << (c % 64);
    }

    /// Whether the card containing `addr` is dirty.
    pub fn is_marked(&self, addr: Address) -> bool {
        self.card_of(addr)
            .is_some_and(|c| match self.bits.get((c / 64) as usize) {
                Some(&w) => w & (1 << (c % 64)) != 0,
                None => false,
            })
    }

    /// The base addresses of all dirty cards, ascending.
    pub fn dirty_cards(&self) -> Vec<Address> {
        let mut out = Vec::new();
        for (w, &bits) in self.bits.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push(Address(self.base.0 + (w as u32 * 64 + b) * CARD_BYTES));
                bits &= bits - 1;
            }
        }
        out
    }

    /// Clears every mark (after a nursery collection consumes them).
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Number of dirty cards.
    pub fn dirty_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The span of addresses one dirty card covers.
    pub fn card_range(card_base: Address) -> (Address, Address) {
        (card_base, card_base.offset(CARD_BYTES))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut t = CardTable::new(Address(0x1000), Address(0x3000));
        t.mark(Address(0x1234));
        assert!(t.is_marked(Address(0x1200)));
        assert!(t.is_marked(Address(0x13FF)));
        assert!(!t.is_marked(Address(0x1400)));
        assert_eq!(t.dirty_count(), 1);
    }

    #[test]
    fn dirty_cards_are_sorted_bases() {
        let mut t = CardTable::new(Address(0), Address(0x10000));
        t.mark(Address(0x5000));
        t.mark(Address(0x200));
        t.mark(Address(0x5100)); // same card as 0x5000
        let dirty = t.dirty_cards();
        assert_eq!(dirty, vec![Address(0x200 & !511), Address(0x5000)]);
    }

    #[test]
    fn clear_resets() {
        let mut t = CardTable::new(Address(0), Address(0x1000));
        t.mark(Address(0));
        t.clear();
        assert_eq!(t.dirty_count(), 0);
        assert!(!t.is_marked(Address(0)));
    }

    #[test]
    #[should_panic(expected = "outside card table")]
    fn out_of_range_mark_panics() {
        let mut t = CardTable::new(Address(0x1000), Address(0x2000));
        t.mark(Address(0x2000));
    }

    #[test]
    fn out_of_range_query_is_false() {
        let t = CardTable::new(Address(0x1000), Address(0x2000));
        assert!(!t.is_marked(Address(0)));
        assert!(!t.is_marked(Address(0x9000)));
    }

    #[test]
    fn bitmap_grows_lazily_with_the_highest_marked_card() {
        // A gigabyte-spanning table must cost nothing until marked, and
        // then only as much as its highest dirty card demands.
        let mut t = CardTable::new(Address(0), Address(1 << 30));
        assert_eq!(t.bits.len(), 0);
        assert!(!t.is_marked(Address(1 << 29)));
        t.mark(Address(0x200));
        assert_eq!(t.bits.len(), 1);
        t.mark(Address(1 << 20));
        assert!(t.bits.len() <= (1 << 20) / (512 * 64) + 1);
        assert!(t.is_marked(Address(0x200)));
        assert!(t.is_marked(Address(1 << 20)));
        assert_eq!(t.dirty_count(), 2);
    }
}
