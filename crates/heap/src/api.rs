//! The mutator-facing collector interface.
//!
//! Workload programs drive any collector through [`GcHeap`]: they hold
//! [`Handle`]s (never raw addresses), allocate with [`GcHeap::alloc`], and
//! read/write reference fields through the collector so that write barriers
//! fire and paging costs are charged.

use core::fmt;
use std::error::Error;

use simtime::PauseLog;

use crate::addr::Layout;
use crate::ctx::MemCtx;
use crate::object::ObjectKind;
use crate::roots::Handle;
use crate::stats::GcStats;

/// What the mutator asks to allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// A fixed-shape object with `data_words` payload words, the first
    /// `num_refs` of which are reference fields.
    Scalar {
        /// Payload words (header excluded).
        data_words: u16,
        /// Leading reference fields.
        num_refs: u16,
    },
    /// An array of `len` reference elements.
    RefArray {
        /// Element count.
        len: u32,
    },
    /// An array of `len` non-reference words.
    DataArray {
        /// Element count.
        len: u32,
    },
}

impl AllocKind {
    /// The object-model shape for this request.
    pub fn object_kind(&self) -> ObjectKind {
        match *self {
            AllocKind::Scalar {
                data_words,
                num_refs,
            } => ObjectKind::scalar(data_words, num_refs),
            AllocKind::RefArray { len } => ObjectKind::Array { len, refs: true },
            AllocKind::DataArray { len } => ObjectKind::Array { len, refs: false },
        }
    }

    /// Total size in bytes, header included.
    pub fn size_bytes(&self) -> u32 {
        self.object_kind().size_bytes()
    }
}

/// The heap is exhausted: even after full collection (and, for BC, the
/// completeness fail-safe) the allocation cannot be satisfied within the
/// configured heap size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The request that failed, in bytes.
    pub requested_bytes: u32,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "heap exhausted allocating {} bytes",
            self.requested_bytes
        )
    }
}

impl Error for OutOfMemory {}

/// Nursery sizing policy (§5.3.2 compares Appel-style variable nurseries
/// against 4 MB fixed nurseries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NurseryPolicy {
    /// Appel-style: the nursery gets half of the currently free heap.
    Appel,
    /// A fixed-size nursery (the paper's fixed variants use 4 MB).
    Fixed {
        /// Nursery size in bytes.
        bytes: u32,
    },
}

impl NurseryPolicy {
    /// The paper's fixed-nursery configuration (4 MB).
    pub const FIXED_4MB: NurseryPolicy = NurseryPolicy::Fixed {
        bytes: 4 * 1024 * 1024,
    };
}

/// Static configuration for one collector instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapConfig {
    /// Total heap budget in bytes (the experiments' "heap size").
    pub heap_bytes: usize,
    /// Nursery sizing (ignored by the single-generation collectors).
    pub nursery: NurseryPolicy,
    /// Address-space layout.
    pub layout: Layout,
}

impl HeapConfig {
    /// A configuration with the given heap size and Appel nursery.
    pub fn with_heap_bytes(heap_bytes: usize) -> HeapConfig {
        HeapConfig {
            heap_bytes,
            nursery: NurseryPolicy::Appel,
            layout: Layout::standard(),
        }
    }
}

/// The interface every collector implements; the mutator's only view of
/// the heap.
///
/// Handles remain valid across collections (moving collectors update the
/// root table); raw addresses must never be held across a call that may
/// collect.
pub trait GcHeap {
    /// Allocates an object, collecting as needed.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the heap budget cannot satisfy the
    /// request even after full collection.
    fn alloc(&mut self, ctx: &mut MemCtx<'_>, kind: AllocKind) -> Result<Handle, OutOfMemory>;

    /// Stores `val` (or null) into reference field `field` of `src`,
    /// through the write barrier.
    fn write_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32, val: Option<Handle>);

    /// Loads reference field `field` of `src`, returning a fresh handle (or
    /// `None` for null). The caller owns the handle and must
    /// [`drop_handle`](GcHeap::drop_handle) it.
    fn read_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32) -> Option<Handle>;

    /// Touches the whole object (a read of its payload) — models mutator
    /// data accesses for locality/paging purposes.
    fn read_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle);

    /// Touches the whole object with a write.
    fn write_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle);

    /// Whether two handles currently denote the same object (reference
    /// equality, stable across moving collections).
    fn same_object(&self, a: Handle, b: Handle) -> bool;

    /// Duplicates a handle (a second independent root to the same object).
    fn dup_handle(&mut self, h: Handle) -> Handle;

    /// Releases a handle; the object may become unreachable.
    fn drop_handle(&mut self, h: Handle);

    /// Forces a collection (`full` requests a full-heap collection).
    fn collect(&mut self, ctx: &mut MemCtx<'_>, full: bool);

    /// Processes queued virtual-memory notifications (eviction notices,
    /// residency changes, protection faults). Called by the engine after
    /// every mutator step; only the bookmarking collector reacts.
    fn handle_vm_events(&mut self, ctx: &mut MemCtx<'_>);

    /// Collector counters.
    fn stats(&self) -> &GcStats;

    /// Stop-the-world pause log.
    fn pause_log(&self) -> &PauseLog;

    /// Heap pages currently charged against the budget.
    fn heap_pages_used(&self) -> usize;

    /// Short collector name ("BC", "GenMS", …) for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_kind_sizes() {
        assert_eq!(
            AllocKind::Scalar {
                data_words: 4,
                num_refs: 2
            }
            .size_bytes(),
            8 + 16
        );
        assert_eq!(AllocKind::RefArray { len: 10 }.size_bytes(), 8 + 40);
        assert_eq!(AllocKind::DataArray { len: 0 }.size_bytes(), 8);
    }

    #[test]
    fn out_of_memory_displays_request() {
        let e = OutOfMemory {
            requested_bytes: 64,
        };
        assert_eq!(e.to_string(), "heap exhausted allocating 64 bytes");
    }

    #[test]
    fn fixed_nursery_constant_is_4mb() {
        match NurseryPolicy::FIXED_4MB {
            NurseryPolicy::Fixed { bytes } => assert_eq!(bytes, 4 << 20),
            _ => panic!("wrong variant"),
        }
    }
}
