//! The mutator-facing collector interface.
//!
//! Workload programs drive any collector through [`GcHeap`]: they hold
//! [`Handle`]s (never raw addresses), allocate with [`GcHeap::alloc`], and
//! read/write reference fields through the collector so that write barriers
//! fire and paging costs are charged.

use core::fmt;
use std::error::Error;

use simtime::{Nanos, PauseLog, PauseStats};
use telemetry::Tracer;

use crate::addr::Layout;
use crate::ctx::MemCtx;
use crate::object::ObjectKind;
use crate::policy::PolicyKind;
use crate::roots::Handle;
use crate::sanitize::{InjectFault, SanitizeLevel};
use crate::stats::GcStats;

/// What the mutator asks to allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// A fixed-shape object with `data_words` payload words, the first
    /// `num_refs` of which are reference fields.
    Scalar {
        /// Payload words (header excluded).
        data_words: u16,
        /// Leading reference fields.
        num_refs: u16,
    },
    /// An array of `len` reference elements.
    RefArray {
        /// Element count.
        len: u32,
    },
    /// An array of `len` non-reference words.
    DataArray {
        /// Element count.
        len: u32,
    },
}

impl AllocKind {
    /// The object-model shape for this request.
    pub fn object_kind(&self) -> ObjectKind {
        match *self {
            AllocKind::Scalar {
                data_words,
                num_refs,
            } => ObjectKind::scalar(data_words, num_refs),
            AllocKind::RefArray { len } => ObjectKind::Array { len, refs: true },
            AllocKind::DataArray { len } => ObjectKind::Array { len, refs: false },
        }
    }

    /// Total size in bytes, header included.
    pub fn size_bytes(&self) -> u32 {
        self.object_kind().size_bytes()
    }
}

/// The heap is exhausted: even after full collection (and, for BC, the
/// completeness fail-safe) the allocation cannot be satisfied within the
/// configured heap size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The request that failed, in bytes.
    pub requested_bytes: u32,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "heap exhausted allocating {} bytes",
            self.requested_bytes
        )
    }
}

impl Error for OutOfMemory {}

/// Nursery sizing policy (§5.3.2 compares Appel-style variable nurseries
/// against 4 MB fixed nurseries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NurseryPolicy {
    /// Appel-style: the nursery gets half of the currently free heap.
    Appel,
    /// A fixed-size nursery (the paper's fixed variants use 4 MB).
    Fixed {
        /// Nursery size in bytes.
        bytes: u32,
    },
}

impl NurseryPolicy {
    /// The paper's fixed-nursery configuration (4 MB).
    pub const FIXED_4MB: NurseryPolicy = NurseryPolicy::Fixed {
        bytes: 4 * 1024 * 1024,
    };
}

/// What kind of collection is requested of [`GcHeap::collect`].
///
/// Single-generation collectors treat [`CollectKind::Minor`] as a full
/// collection (they have nothing smaller to run).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectKind {
    /// A nursery collection (generational collectors only).
    Minor,
    /// A full-heap collection.
    Full,
}

/// Static configuration for one collector instance.
///
/// Build with [`HeapConfig::builder`]:
///
/// ```
/// use heap::{HeapConfig, NurseryPolicy};
///
/// let config = HeapConfig::builder()
///     .heap_bytes(32 << 20)
///     .nursery(NurseryPolicy::FIXED_4MB)
///     .build();
/// assert_eq!(config.heap_bytes, 32 << 20);
/// ```
#[derive(Clone, Debug)]
pub struct HeapConfig {
    /// Total heap budget in bytes (the experiments' "heap size").
    pub heap_bytes: usize,
    /// Nursery sizing (ignored by the single-generation collectors).
    pub nursery: NurseryPolicy,
    /// Address-space layout.
    pub layout: Layout,
    /// Heap-sizing policy (see [`crate::policy`]); [`PolicyKind::Fixed`]
    /// (the default) reproduces each collector's historical behaviour.
    pub policy: PolicyKind,
    /// Structured-event sink; [`Tracer::disabled`] (the default) records
    /// nothing and costs one branch per would-be event.
    pub tracer: Tracer,
    /// Sanitizer level (see [`crate::sanitize`]); [`SanitizeLevel::Off`]
    /// (the default) costs nothing.
    pub sanitize: SanitizeLevel,
    /// A collector fault to inject once, for sanitizer self-tests; `None`
    /// (the default) outside `tests/sanitize_faults.rs`.
    pub sanitize_fault: Option<InjectFault>,
    /// Simulated GC worker count for the packet-drain tracer (see
    /// [`crate::packet`]). The default, 1, reproduces the sequential tracer
    /// byte-for-byte; larger counts model parallel tracing with the pause
    /// charged as the critical path over workers.
    pub gc_threads: usize,
}

impl HeapConfig {
    /// Starts building a configuration (32 MB heap, Appel nursery,
    /// standard layout, tracing disabled until overridden).
    pub fn builder() -> HeapConfigBuilder {
        HeapConfigBuilder {
            config: HeapConfig {
                heap_bytes: 32 << 20,
                nursery: NurseryPolicy::Appel,
                layout: Layout::standard(),
                policy: PolicyKind::Fixed,
                tracer: Tracer::disabled(),
                sanitize: SanitizeLevel::Off,
                sanitize_fault: None,
                gc_threads: 1,
            },
        }
    }
}

/// Builder for [`HeapConfig`]; see [`HeapConfig::builder`].
#[derive(Clone, Debug)]
pub struct HeapConfigBuilder {
    config: HeapConfig,
}

impl HeapConfigBuilder {
    /// Sets the total heap budget in bytes.
    pub fn heap_bytes(mut self, heap_bytes: usize) -> HeapConfigBuilder {
        self.config.heap_bytes = heap_bytes;
        self
    }

    /// Sets the nursery sizing policy.
    pub fn nursery(mut self, nursery: NurseryPolicy) -> HeapConfigBuilder {
        self.config.nursery = nursery;
        self
    }

    /// Sets the address-space layout.
    pub fn layout(mut self, layout: Layout) -> HeapConfigBuilder {
        self.config.layout = layout;
        self
    }

    /// Sets the heap-sizing policy.
    pub fn policy(mut self, policy: PolicyKind) -> HeapConfigBuilder {
        self.config.policy = policy;
        self
    }

    /// Attaches a telemetry tracer; the collector emits collection/phase
    /// spans and cooperation events through it.
    pub fn tracer(mut self, tracer: Tracer) -> HeapConfigBuilder {
        self.config.tracer = tracer;
        self
    }

    /// Sets the sanitizer level.
    pub fn sanitize(mut self, level: SanitizeLevel) -> HeapConfigBuilder {
        self.config.sanitize = level;
        self
    }

    /// Arms a one-shot collector fault for sanitizer self-tests.
    pub fn sanitize_fault(mut self, fault: InjectFault) -> HeapConfigBuilder {
        self.config.sanitize_fault = Some(fault);
        self
    }

    /// Sets the simulated GC worker count (clamped to `1..=64`).
    pub fn gc_threads(mut self, threads: usize) -> HeapConfigBuilder {
        self.config.gc_threads = threads.clamp(1, 64);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> HeapConfig {
        self.config
    }
}

/// Time-series bucket width used when [`GcHeap::metrics`] aggregates a
/// trace (100 simulated milliseconds).
pub const METRICS_SERIES_BUCKET: Nanos = Nanos(100_000_000);

/// A unified end-of-run metrics view: collector counters, paging counters,
/// pause summary, and (when tracing was enabled with an in-memory sink)
/// the aggregated event stream with per-phase pause histograms.
///
/// The `gc` and `vm` fields are the same [`GcStats`] and [`vmm::VmStats`]
/// values callers previously read separately — kept as documented views so
/// their field names remain the vocabulary of reports.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Collector name ("BC", "GenMS", …).
    pub collector: &'static str,
    /// Collector counters (view of [`GcHeap::stats`]).
    pub gc: GcStats,
    /// Paging counters for this process (view of [`vmm::Vmm::stats`]).
    pub vm: vmm::VmStats,
    /// Stop-the-world pause summary (view of [`GcHeap::pause_log`]).
    pub pauses: PauseStats,
    /// Heap pages currently charged against the budget.
    pub heap_pages_used: usize,
    /// High-water mark of heap pages ever charged at once — the run's
    /// total-memory axis in the `fig_policy` Pareto tables.
    pub heap_pages_peak: usize,
    /// Aggregated telemetry — per-phase/per-kind histograms and a
    /// time-bucketed series — when the tracer retains events in memory;
    /// `None` for disabled tracers and streaming (JSONL) sinks.
    pub trace: Option<telemetry::Aggregate>,
}

impl MetricsSnapshot {
    /// Total collections of any kind (view of `gc.total_gcs()`).
    pub fn total_gcs(&self) -> u64 {
        self.gc.total_gcs()
    }

    /// Major faults taken by this process (view of `vm.major_faults`).
    pub fn major_faults(&self) -> u64 {
        self.vm.major_faults
    }

    /// The per-phase duration histogram, when a trace captured it.
    pub fn phase_histogram(
        &self,
        phase: telemetry::GcPhase,
    ) -> Option<&telemetry::DurationHistogram> {
        self.trace.as_ref().and_then(|t| t.phase(phase))
    }
}

/// The interface every collector implements; the mutator's only view of
/// the heap.
///
/// Handles remain valid across collections (moving collectors update the
/// root table); raw addresses must never be held across a call that may
/// collect.
pub trait GcHeap {
    /// Allocates an object, collecting as needed.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the heap budget cannot satisfy the
    /// request even after full collection.
    fn alloc(&mut self, ctx: &mut MemCtx<'_>, kind: AllocKind) -> Result<Handle, OutOfMemory>;

    /// Stores `val` (or null) into reference field `field` of `src`,
    /// through the write barrier.
    fn write_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32, val: Option<Handle>);

    /// Loads reference field `field` of `src`, returning a fresh handle (or
    /// `None` for null). The caller owns the handle and must
    /// [`drop_handle`](GcHeap::drop_handle) it.
    fn read_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32) -> Option<Handle>;

    /// Touches the whole object (a read of its payload) — models mutator
    /// data accesses for locality/paging purposes.
    fn read_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle);

    /// Touches the whole object with a write.
    fn write_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle);

    /// Whether two handles currently denote the same object (reference
    /// equality, stable across moving collections).
    fn same_object(&self, a: Handle, b: Handle) -> bool;

    /// Duplicates a handle (a second independent root to the same object).
    fn dup_handle(&mut self, h: Handle) -> Handle;

    /// Releases a handle; the object may become unreachable.
    fn drop_handle(&mut self, h: Handle);

    /// Forces a collection of the requested [`CollectKind`].
    fn collect(&mut self, ctx: &mut MemCtx<'_>, kind: CollectKind);

    /// Processes queued virtual-memory notifications (eviction notices,
    /// residency changes, protection faults). Called by the engine after
    /// every mutator step; only the bookmarking collector reacts.
    fn handle_vm_events(&mut self, ctx: &mut MemCtx<'_>);

    /// Collector counters.
    fn stats(&self) -> &GcStats;

    /// Stop-the-world pause log.
    fn pause_log(&self) -> &PauseLog;

    /// Heap pages currently charged against the budget.
    fn heap_pages_used(&self) -> usize;

    /// High-water mark of heap pages ever charged at once.
    fn heap_pages_peak(&self) -> usize {
        self.heap_pages_used()
    }

    /// Short collector name ("BC", "GenMS", …) for reports.
    fn name(&self) -> &'static str;

    /// The tracer this collector emits telemetry through (disabled unless
    /// one was configured).
    fn tracer(&self) -> &Tracer;

    /// One unified metrics view: collector counters, the caller-supplied
    /// paging counters, the pause summary, and — when the tracer retains
    /// events in memory — aggregated per-phase histograms.
    ///
    /// Paging counters live in the shared [`vmm::Vmm`], which the collector
    /// does not own; pass `vmm.stats(pid)` for this collector's process.
    fn metrics(&self, vm: &vmm::VmStats) -> MetricsSnapshot {
        let events = self.tracer().snapshot();
        let trace =
            (!events.is_empty()).then(|| telemetry::aggregate(&events, METRICS_SERIES_BUCKET));
        MetricsSnapshot {
            collector: self.name(),
            gc: *self.stats(),
            vm: *vm,
            pauses: self.pause_log().stats(),
            heap_pages_used: self.heap_pages_used(),
            heap_pages_peak: self.heap_pages_peak(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_kind_sizes() {
        assert_eq!(
            AllocKind::Scalar {
                data_words: 4,
                num_refs: 2
            }
            .size_bytes(),
            8 + 16
        );
        assert_eq!(AllocKind::RefArray { len: 10 }.size_bytes(), 8 + 40);
        assert_eq!(AllocKind::DataArray { len: 0 }.size_bytes(), 8);
    }

    #[test]
    fn out_of_memory_displays_request() {
        let e = OutOfMemory {
            requested_bytes: 64,
        };
        assert_eq!(e.to_string(), "heap exhausted allocating 64 bytes");
    }

    #[test]
    fn fixed_nursery_constant_is_4mb() {
        match NurseryPolicy::FIXED_4MB {
            NurseryPolicy::Fixed { bytes } => assert_eq!(bytes, 4 << 20),
            _ => panic!("wrong variant"),
        }
    }
}
