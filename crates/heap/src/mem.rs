//! The byte-addressable simulated memory backing a process's heap.
//!
//! Pages are materialized lazily on first write. Contents survive simulated
//! eviction (as they would on a swap device); a page discarded via
//! `madvise(MADV_DONTNEED)` must be re-zeroed by the caller, which is what
//! [`MemCtx`](crate::MemCtx) does when the VMM reports a demand-zero fill.
//!
//! `SimMemory` performs **no cost accounting**: it is raw storage. All
//! charged access goes through [`MemCtx`](crate::MemCtx).

use crate::addr::{Address, BYTES_PER_PAGE};

const PAGE: usize = BYTES_PER_PAGE as usize;

/// Pages per directory chunk (4 MiB of simulated address space). The
/// directory itself must be sparse, not just the page boxes: the heap
/// layout spreads regions across a ~3 GiB span, and a dense
/// `Vec<Option<..>>` indexed by raw page number costs megabytes of
/// written host memory per process once a high region is touched — which
/// multiplies ruinously in thousand-tenant fleet runs.
const DIR_CHUNK: usize = 1024;

type PageBox = Option<Box<[u32; PAGE / 4]>>;

/// A sparse, page-granular byte store over the 32-bit simulated space,
/// organised as a two-level directory of lazily materialized pages.
#[derive(Default)]
pub struct SimMemory {
    dirs: Vec<Option<Box<[PageBox; DIR_CHUNK]>>>,
}

impl core::fmt::Debug for SimMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SimMemory")
            .field("materialized_pages", &self.materialized_pages())
            .finish()
    }
}

impl SimMemory {
    /// Creates an empty memory; every page reads as zero.
    pub fn new() -> SimMemory {
        SimMemory::default()
    }

    /// The materialized page at `idx`, or `None` (reads as zero).
    fn page(&self, idx: usize) -> Option<&[u32; PAGE / 4]> {
        self.dirs
            .get(idx / DIR_CHUNK)?
            .as_ref()?
            .get(idx % DIR_CHUNK)?
            .as_deref()
    }

    /// The materialized page at `idx` for writing, without materializing.
    fn page_opt_mut(&mut self, idx: usize) -> Option<&mut [u32; PAGE / 4]> {
        self.dirs
            .get_mut(idx / DIR_CHUNK)?
            .as_mut()?
            .get_mut(idx % DIR_CHUNK)?
            .as_deref_mut()
    }

    /// The slot holding page `idx`, materializing its directory chunk.
    fn slot_mut(&mut self, idx: usize) -> &mut PageBox {
        let (c, o) = (idx / DIR_CHUNK, idx % DIR_CHUNK);
        if c >= self.dirs.len() {
            self.dirs.resize_with(c + 1, || None);
        }
        &mut self.dirs[c].get_or_insert_with(|| Box::new([const { None }; DIR_CHUNK]))[o]
    }

    fn page_mut(&mut self, idx: usize) -> &mut [u32; PAGE / 4] {
        self.slot_mut(idx)
            .get_or_insert_with(|| Box::new([0; PAGE / 4]))
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn read_word(&self, addr: Address) -> u32 {
        assert!(addr.is_word_aligned(), "unaligned read at {addr}");
        let idx = (addr.0 as usize) / PAGE;
        match self.page(idx) {
            Some(p) => p[(addr.0 as usize % PAGE) / 4],
            None => 0,
        }
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn write_word(&mut self, addr: Address, value: u32) {
        assert!(addr.is_word_aligned(), "unaligned write at {addr}");
        let idx = (addr.0 as usize) / PAGE;
        self.page_mut(idx)[(addr.0 as usize % PAGE) / 4] = value;
    }

    /// Zeroes `[addr, addr + bytes)` (word-aligned on both ends).
    ///
    /// Runs one `fill(0)` per page rather than a word loop. Pages never
    /// materialized are skipped — they already read as zero.
    pub fn zero(&mut self, addr: Address, bytes: u32) {
        assert!(addr.is_word_aligned() && bytes.is_multiple_of(4));
        let start = addr.0 as u64;
        let end = start + bytes as u64;
        let mut a = start;
        while a < end {
            let idx = (a / BYTES_PER_PAGE as u64) as usize;
            let off = (a % BYTES_PER_PAGE as u64) as usize / 4;
            let run = (((end - a) / 4) as usize).min(PAGE / 4 - off);
            if let Some(p) = self.page_opt_mut(idx) {
                p[off..off + run].fill(0);
            }
            a += (run * 4) as u64;
        }
    }

    /// Copies `bytes` (word multiple) from `src` to `dst`. Ranges must not
    /// overlap.
    ///
    /// Copies page-sized slice runs instead of looping word-by-word; an
    /// unmaterialized source page reads as zeroes, so the destination run is
    /// zero-filled instead of copied.
    pub fn copy(&mut self, src: Address, dst: Address, bytes: u32) {
        assert!(src.is_word_aligned() && dst.is_word_aligned() && bytes.is_multiple_of(4));
        debug_assert!(
            src.0 + bytes <= dst.0 || dst.0 + bytes <= src.0,
            "overlapping copy {src}..+{bytes} -> {dst}"
        );
        let total = bytes as u64;
        let mut done: u64 = 0;
        while done < total {
            let s = src.0 as u64 + done;
            let d = dst.0 as u64 + done;
            let s_idx = (s / BYTES_PER_PAGE as u64) as usize;
            let s_off = (s % BYTES_PER_PAGE as u64) as usize / 4;
            let d_idx = (d / BYTES_PER_PAGE as u64) as usize;
            let d_off = (d % BYTES_PER_PAGE as u64) as usize / 4;
            let run = (((total - done) / 4) as usize)
                .min(PAGE / 4 - s_off)
                .min(PAGE / 4 - d_off);
            let src_present = self.page(s_idx).is_some();
            if !src_present {
                // Source reads as zero; only clear a materialized target.
                if let Some(p) = self.page_opt_mut(d_idx) {
                    p[d_off..d_off + run].fill(0);
                }
            } else if s_idx == d_idx {
                let p = self.page_opt_mut(s_idx).expect("present above");
                p.copy_within(s_off..s_off + run, d_off);
            } else {
                // Detach the source page so the destination can be borrowed
                // (and lazily materialized) at the same time.
                let sp = self.slot_mut(s_idx).take().expect("present above");
                self.page_mut(d_idx)[d_off..d_off + run].copy_from_slice(&sp[s_off..s_off + run]);
                *self.slot_mut(s_idx) = Some(sp);
            }
            done += (run * 4) as u64;
        }
    }

    /// Number of pages that have ever been written (for diagnostics).
    pub fn materialized_pages(&self) -> usize {
        self.dirs
            .iter()
            .flatten()
            .map(|d| d.iter().filter(|p| p.is_some()).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = SimMemory::new();
        assert_eq!(mem.read_word(Address(0)), 0);
        assert_eq!(mem.read_word(Address(0x4000_0000)), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut mem = SimMemory::new();
        mem.write_word(Address(4096), 0xDEAD_BEEF);
        mem.write_word(Address(4100), 42);
        assert_eq!(mem.read_word(Address(4096)), 0xDEAD_BEEF);
        assert_eq!(mem.read_word(Address(4100)), 42);
        assert_eq!(mem.read_word(Address(4104)), 0);
        assert_eq!(mem.materialized_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let mem = SimMemory::new();
        mem.read_word(Address(2));
    }

    #[test]
    fn zero_clears_partial_and_full_pages() {
        let mut mem = SimMemory::new();
        for off in (0..12288).step_by(4) {
            mem.write_word(Address(off), 7);
        }
        // Zero [2048, 10240): a partial page, a whole page, a partial page.
        mem.zero(Address(2048), 8192);
        assert_eq!(mem.read_word(Address(2044)), 7);
        assert_eq!(mem.read_word(Address(2048)), 0);
        assert_eq!(mem.read_word(Address(4096)), 0);
        assert_eq!(mem.read_word(Address(8192)), 0);
        assert_eq!(mem.read_word(Address(10236)), 0);
        assert_eq!(mem.read_word(Address(10240)), 7);
    }

    #[test]
    fn copy_from_unmaterialized_source_zeroes_destination() {
        let mut mem = SimMemory::new();
        for off in (0..64u32).step_by(4) {
            mem.write_word(Address(0x1000 + off), 9);
        }
        // Source range was never written: reads as zero, so the copy must
        // leave the destination reading as zero too.
        mem.copy(Address(0x8000), Address(0x1000), 64);
        for off in (0..64u32).step_by(4) {
            assert_eq!(mem.read_word(Address(0x1000 + off)), 0);
        }
    }

    #[test]
    fn copy_spans_page_boundaries() {
        let mut mem = SimMemory::new();
        // Source straddles the page 0 / page 1 boundary.
        for i in 0..64u32 {
            mem.write_word(Address(4096 - 128 + i * 4), i + 1);
        }
        // Destination straddles the page 4 / page 5 boundary at a
        // different offset, so runs are re-chunked on both sides.
        mem.copy(Address(4096 - 128), Address(5 * 4096 - 60), 256);
        for i in 0..64u32 {
            assert_eq!(mem.read_word(Address(5 * 4096 - 60 + i * 4)), i + 1);
        }
    }

    #[test]
    fn same_page_copy_uses_copy_within() {
        let mut mem = SimMemory::new();
        for i in 0..8u32 {
            mem.write_word(Address(i * 4), i + 50);
        }
        mem.copy(Address(0), Address(512), 32);
        for i in 0..8u32 {
            assert_eq!(mem.read_word(Address(512 + i * 4)), i + 50);
        }
        assert_eq!(mem.materialized_pages(), 1);
    }

    #[test]
    fn zero_partial_run_within_one_page() {
        let mut mem = SimMemory::new();
        for i in 0..32u32 {
            mem.write_word(Address(i * 4), 3);
        }
        mem.zero(Address(16), 48);
        assert_eq!(mem.read_word(Address(12)), 3);
        for off in (16..64u32).step_by(4) {
            assert_eq!(mem.read_word(Address(off)), 0);
        }
        assert_eq!(mem.read_word(Address(64)), 3);
    }

    #[test]
    fn copy_moves_words() {
        let mut mem = SimMemory::new();
        for i in 0..16u32 {
            mem.write_word(Address(i * 4), i + 100);
        }
        mem.copy(Address(0), Address(0x1000), 64);
        for i in 0..16u32 {
            assert_eq!(mem.read_word(Address(0x1000 + i * 4)), i + 100);
        }
    }
}
