//! The byte-addressable simulated memory backing a process's heap.
//!
//! Pages are materialized lazily on first write. Contents survive simulated
//! eviction (as they would on a swap device); a page discarded via
//! `madvise(MADV_DONTNEED)` must be re-zeroed by the caller, which is what
//! [`MemCtx`](crate::MemCtx) does when the VMM reports a demand-zero fill.
//!
//! `SimMemory` performs **no cost accounting**: it is raw storage. All
//! charged access goes through [`MemCtx`](crate::MemCtx).

use crate::addr::{Address, BYTES_PER_PAGE};

const PAGE: usize = BYTES_PER_PAGE as usize;

/// A sparse, page-granular byte store over the 32-bit simulated space.
#[derive(Default)]
pub struct SimMemory {
    pages: Vec<Option<Box<[u32; PAGE / 4]>>>,
}

impl core::fmt::Debug for SimMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SimMemory")
            .field(
                "materialized_pages",
                &self.pages.iter().filter(|p| p.is_some()).count(),
            )
            .finish()
    }
}

impl SimMemory {
    /// Creates an empty memory; every page reads as zero.
    pub fn new() -> SimMemory {
        SimMemory::default()
    }

    fn page_mut(&mut self, idx: usize) -> &mut [u32; PAGE / 4] {
        if idx >= self.pages.len() {
            self.pages.resize_with(idx + 1, || None);
        }
        self.pages[idx].get_or_insert_with(|| Box::new([0; PAGE / 4]))
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn read_word(&self, addr: Address) -> u32 {
        assert!(addr.is_word_aligned(), "unaligned read at {addr}");
        let idx = (addr.0 as usize) / PAGE;
        match self.pages.get(idx) {
            Some(Some(p)) => p[(addr.0 as usize % PAGE) / 4],
            _ => 0,
        }
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn write_word(&mut self, addr: Address, value: u32) {
        assert!(addr.is_word_aligned(), "unaligned write at {addr}");
        let idx = (addr.0 as usize) / PAGE;
        self.page_mut(idx)[(addr.0 as usize % PAGE) / 4] = value;
    }

    /// Zeroes `[addr, addr + bytes)` (word-aligned on both ends).
    pub fn zero(&mut self, addr: Address, bytes: u32) {
        assert!(addr.is_word_aligned() && bytes.is_multiple_of(4));
        let mut a = addr;
        let end = addr.offset(bytes);
        while a < end {
            // Fast path: whole pages.
            if a.0.is_multiple_of(BYTES_PER_PAGE) && end.0 - a.0 >= BYTES_PER_PAGE {
                let idx = (a.0 / BYTES_PER_PAGE) as usize;
                if idx < self.pages.len() {
                    if let Some(p) = &mut self.pages[idx] {
                        p.fill(0);
                    }
                }
                a = a.offset(BYTES_PER_PAGE);
            } else {
                self.write_word(a, 0);
                a = a.offset(4);
            }
        }
    }

    /// Copies `bytes` (word multiple) from `src` to `dst`. Ranges must not
    /// overlap.
    pub fn copy(&mut self, src: Address, dst: Address, bytes: u32) {
        assert!(src.is_word_aligned() && dst.is_word_aligned() && bytes.is_multiple_of(4));
        debug_assert!(
            src.0 + bytes <= dst.0 || dst.0 + bytes <= src.0,
            "overlapping copy {src}..+{bytes} -> {dst}"
        );
        for off in (0..bytes).step_by(4) {
            let w = self.read_word(src.offset(off));
            self.write_word(dst.offset(off), w);
        }
    }

    /// Number of pages that have ever been written (for diagnostics).
    pub fn materialized_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = SimMemory::new();
        assert_eq!(mem.read_word(Address(0)), 0);
        assert_eq!(mem.read_word(Address(0x4000_0000)), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut mem = SimMemory::new();
        mem.write_word(Address(4096), 0xDEAD_BEEF);
        mem.write_word(Address(4100), 42);
        assert_eq!(mem.read_word(Address(4096)), 0xDEAD_BEEF);
        assert_eq!(mem.read_word(Address(4100)), 42);
        assert_eq!(mem.read_word(Address(4104)), 0);
        assert_eq!(mem.materialized_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let mem = SimMemory::new();
        mem.read_word(Address(2));
    }

    #[test]
    fn zero_clears_partial_and_full_pages() {
        let mut mem = SimMemory::new();
        for off in (0..12288).step_by(4) {
            mem.write_word(Address(off), 7);
        }
        // Zero [2048, 10240): a partial page, a whole page, a partial page.
        mem.zero(Address(2048), 8192);
        assert_eq!(mem.read_word(Address(2044)), 7);
        assert_eq!(mem.read_word(Address(2048)), 0);
        assert_eq!(mem.read_word(Address(4096)), 0);
        assert_eq!(mem.read_word(Address(8192)), 0);
        assert_eq!(mem.read_word(Address(10236)), 0);
        assert_eq!(mem.read_word(Address(10240)), 7);
    }

    #[test]
    fn copy_moves_words() {
        let mut mem = SimMemory::new();
        for i in 0..16u32 {
            mem.write_word(Address(i * 4), i + 100);
        }
        mem.copy(Address(0), Address(0x1000), 64);
        for i in 0..16u32 {
            assert_eq!(mem.read_word(Address(0x1000 + i * 4)), i + 100);
        }
    }
}
