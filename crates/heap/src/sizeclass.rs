//! Segregated size classes (§3 of the paper).
//!
//! "BC uses size classes designed to minimize both internal and external
//! fragmentation (which we bound at 25%). Each allocation size up to 64
//! bytes has its own size class. Larger object sizes fall into a range of 37
//! size classes; for all but the largest five, these have a worst-case
//! internal fragmentation of 15%. The five largest classes have between 16%
//! and 33% worst-case internal fragmentation; BC could only do better by
//! violating the bound on page-internal or external fragmentation."
//!
//! The construction here follows that recipe exactly:
//!
//! * 15 *small* classes: every word-multiple size from 8 to 64 bytes;
//! * 33 *geometric* classes growing by ≈12 % per step from 64 bytes up to
//!   ⌊usable/6⌋, keeping worst-case internal fragmentation under 15 %;
//! * 4 *divisor* classes ⌊usable/5⌋ … ⌊usable/2⌋ that tile a superpage's
//!   usable space perfectly (zero page-internal waste), at the cost of
//!   16–33 % worst-case internal fragmentation — the paper's "largest five"
//!   (the ⌊usable/6⌋ class is shared with the geometric tail).
//!
//! where *usable* = 16384 − 12 bytes of superpage-header metadata.

use crate::addr::{BYTES_PER_SUPERPAGE, WORD};

/// Bytes of metadata at the start of every superpage (the superpage header
/// of §3.4, kept small so that "objects larger than 8180 bytes (half the
/// size of a superpage minus metadata)" overflow to the large object space).
pub const SUPERPAGE_METADATA_BYTES: u32 = 12;

/// Usable payload bytes per superpage.
pub const USABLE_BYTES: u32 = BYTES_PER_SUPERPAGE - SUPERPAGE_METADATA_BYTES;

/// Number of small classes (8, 12, …, 64 bytes).
const SMALL_CLASSES: usize = 15;
/// Number of geometric classes between 64 bytes and ⌊usable/6⌋.
const GEOMETRIC_CLASSES: usize = 33;
/// Divisor classes ⌊usable/5⌋ … ⌊usable/2⌋.
const DIVISOR_CLASSES: usize = 4;
/// Total class count: 15 small + 37 larger (33 geometric + 4 divisor).
pub const CLASS_COUNT: usize = SMALL_CLASSES + GEOMETRIC_CLASSES + DIVISOR_CLASSES;

/// One segregated size class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeClass {
    /// Index into [`SizeClasses`].
    pub index: u8,
    /// Cell size in bytes (word multiple).
    pub cell_bytes: u32,
    /// Cells per superpage at this class.
    pub cells_per_superpage: u32,
}

/// The full size-class table plus an O(1) size→class lookup.
#[derive(Debug)]
pub struct SizeClasses {
    classes: Vec<SizeClass>,
    /// `lookup[size]` = class index for a request of `size` bytes.
    lookup: Vec<u8>,
}

impl SizeClasses {
    /// Builds the table described in the module docs.
    pub fn new() -> SizeClasses {
        let mut sizes: Vec<u32> = Vec::with_capacity(CLASS_COUNT);
        // Small classes: every word size 8..=64.
        for s in (8..=64).step_by(WORD as usize) {
            sizes.push(s);
        }
        // Divisor classes (computed first so the geometric run can target
        // the /6 divisor).
        let divisors: Vec<u32> = (2..=6)
            .rev()
            .map(|k| (USABLE_BYTES / k) & !(WORD - 1))
            .collect(); // [usable/6, /5, /4, /3, /2] word-aligned down
        let geo_target = divisors[0]; // ⌊usable/6⌋
                                      // Geometric classes from 64 to geo_target in GEOMETRIC_CLASSES steps.
        let ratio = (geo_target as f64 / 64.0).powf(1.0 / GEOMETRIC_CLASSES as f64);
        let mut prev = 64u32;
        for i in 1..=GEOMETRIC_CLASSES {
            let ideal = 64.0 * ratio.powi(i as i32);
            let mut s = ((ideal.round() as u32) + WORD - 1) & !(WORD - 1);
            if s <= prev {
                s = prev + WORD;
            }
            if i == GEOMETRIC_CLASSES {
                s = geo_target;
            }
            sizes.push(s);
            prev = s;
        }
        // Remaining divisor classes.
        sizes.extend_from_slice(&divisors[1..]);
        debug_assert_eq!(sizes.len(), CLASS_COUNT);
        debug_assert!(sizes.windows(2).all(|w| w[0] < w[1]));

        let classes: Vec<SizeClass> = sizes
            .iter()
            .enumerate()
            .map(|(i, &cell_bytes)| SizeClass {
                index: i as u8,
                cell_bytes,
                cells_per_superpage: USABLE_BYTES / cell_bytes,
            })
            .collect();

        let max = *sizes.last().unwrap();
        let mut lookup = vec![0u8; max as usize + 1];
        let mut class = 0usize;
        for size in 1..=max {
            while sizes[class] < size {
                class += 1;
            }
            lookup[size as usize] = class as u8;
        }
        SizeClasses { classes, lookup }
    }

    /// The class for a request of `bytes` (header included).
    ///
    /// Returns `None` when the request exceeds the largest cell and must go
    /// to the large object space.
    #[inline]
    pub fn class_for(&self, bytes: u32) -> Option<SizeClass> {
        let idx = *self.lookup.get(bytes.max(1) as usize)?;
        Some(self.classes[idx as usize])
    }

    /// The class at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= CLASS_COUNT`.
    #[inline]
    pub fn class(&self, index: u8) -> SizeClass {
        self.classes[index as usize]
    }

    /// All classes, smallest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &SizeClass> + ExactSizeIterator {
        self.classes.iter()
    }

    /// The largest cell size (requests above this overflow to the LOS).
    pub fn largest_cell(&self) -> u32 {
        self.classes.last().unwrap().cell_bytes
    }
}

impl Default for SizeClasses {
    fn default() -> SizeClasses {
        SizeClasses::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MAX_SMALL_OBJECT_BYTES;

    #[test]
    fn class_count_matches_the_paper() {
        let t = SizeClasses::new();
        // 15 classes at/below 64 bytes; 37 above (§3: "a range of 37 size
        // classes").
        let small = t.iter().filter(|c| c.cell_bytes <= 64).count();
        let large = t.iter().filter(|c| c.cell_bytes > 64).count();
        assert_eq!(small, 15);
        assert_eq!(large, 37);
    }

    #[test]
    fn every_word_size_up_to_64_has_its_own_class() {
        let t = SizeClasses::new();
        for s in (8..=64u32).step_by(4) {
            let c = t.class_for(s).unwrap();
            assert_eq!(c.cell_bytes, s, "size {s} must have an exact class");
        }
    }

    #[test]
    fn internal_fragmentation_bounds() {
        let t = SizeClasses::new();
        let classes: Vec<_> = t.iter().copied().collect();
        for (i, c) in classes.iter().enumerate().skip(1) {
            let prev = classes[i - 1].cell_bytes;
            // Worst-fitting request: one word above the previous class.
            let worst = prev + WORD;
            let frag = (c.cell_bytes - worst) as f64 / c.cell_bytes as f64;
            let last_five = i >= classes.len() - 5;
            let bound = if last_five { 1.0 / 3.0 + 1e-9 } else { 0.15 };
            assert!(
                frag <= bound,
                "class {} ({}B after {}B): frag {:.3} exceeds {:.3}",
                i,
                c.cell_bytes,
                prev,
                frag,
                bound
            );
        }
        // The five largest classes match the paper's 16–33% range at the top.
        let top = classes.last().unwrap();
        let prev = classes[classes.len() - 2].cell_bytes;
        let frag = (top.cell_bytes - prev - WORD) as f64 / top.cell_bytes as f64;
        assert!(frag > 0.30 && frag < 0.34, "top class frag {frag:.3}");
    }

    #[test]
    fn page_internal_fragmentation_bounded_at_25_percent() {
        // §3: external/page-internal fragmentation "which we bound at 25%".
        let t = SizeClasses::new();
        for c in t.iter() {
            let used = c.cells_per_superpage * c.cell_bytes;
            let waste = (USABLE_BYTES - used) as f64 / USABLE_BYTES as f64;
            assert!(
                waste <= 0.25,
                "class {}B wastes {:.3} of a superpage",
                c.cell_bytes,
                waste
            );
            assert!(c.cells_per_superpage >= 2, "class {}B", c.cell_bytes);
        }
    }

    #[test]
    fn divisor_classes_tile_perfectly() {
        let t = SizeClasses::new();
        let top4: Vec<_> = t.iter().rev().take(4).collect();
        for c in top4 {
            let used = c.cells_per_superpage * c.cell_bytes;
            // Word-aligned divisor classes waste less than one cell's
            // rounding (k * 3 bytes).
            assert!(USABLE_BYTES - used < c.cell_bytes.min(64));
        }
    }

    #[test]
    fn los_threshold_objects_fit_in_the_largest_class() {
        let t = SizeClasses::new();
        // §3: objects up to 8180 bytes are heap-allocated.
        assert!(t.largest_cell() >= MAX_SMALL_OBJECT_BYTES);
        assert!(t.class_for(MAX_SMALL_OBJECT_BYTES).is_some());
        assert!(t.class_for(t.largest_cell() + 1).is_none());
    }

    #[test]
    fn lookup_is_tight() {
        let t = SizeClasses::new();
        for bytes in [8u32, 9, 63, 64, 65, 100, 1000, 5000, 8180] {
            let c = t.class_for(bytes).unwrap();
            assert!(c.cell_bytes >= bytes);
            if c.index > 0 {
                let prev = t.class(c.index - 1);
                assert!(prev.cell_bytes < bytes, "class not minimal for {bytes}");
            }
        }
    }

    #[test]
    fn classes_are_strictly_increasing_word_multiples() {
        let t = SizeClasses::new();
        let mut prev = 0;
        for c in t.iter() {
            assert!(c.cell_bytes > prev);
            assert_eq!(c.cell_bytes % WORD, 0);
            prev = c.cell_bytes;
        }
    }
}
