//! Pluggable heap-sizing policies.
//!
//! Every decision about how large the heap budget is allowed to be lives
//! behind [`HeapSizePolicy`]: after each collection (and on paging
//! notifications) the collector hands the policy an O(1) snapshot of its
//! state — a [`SizingInput`] — and applies whatever new limit the policy
//! returns by growing or shrinking the shared [`PagePool`](crate::PagePool)
//! budget. Pages released this way flow back to the virtual memory manager
//! the same way they always have: the budget stops further acquisitions and
//! the collector's discard/relinquish machinery hands frames back.
//!
//! Three policies ship:
//!
//! * [`PolicyKind::Fixed`] — the limit never moves; today's behaviour for
//!   the baseline collectors, bit for bit.
//! * [`PolicyKind::BcFootprint`] — the paper's §3.3.3 rule, extracted from
//!   `bookmarking::pressure`: on an eviction notice, pin the budget to the
//!   current footprint plus a small headroom; optionally (§7) regrow in
//!   small steps once the machine has comfortable free-frame slack.
//! * [`PolicyKind::MemBalancer`] — the square-root rule of the "Optimal
//!   Heap Limits for Reducing Browser Memory Use" work: the heap gets
//!   `live + √(c · live · g / s)` bytes, where `g` is the smoothed
//!   allocation rate and `s` the smoothed trace (collection) rate.

use simtime::Nanos;

use crate::addr::BYTES_PER_PAGE;

/// Slack kept above the live footprint when pinning the budget to it
/// (§3.3.3; 64 pages = 256 KiB).
pub const HEADROOM_PAGES: usize = 64;

/// Pages regrown per idle step once pressure abates (§7).
pub const REGROW_STEP_PAGES: usize = 64;

/// Tuning constant `c` of the MemBalancer rule, in bytes. Larger values
/// trade memory for fewer collections; 16 MiB keeps the quick-scale
/// experiments between "footprint + headroom" and the configured limit.
pub const MEMBALANCER_TUNING_BYTES: f64 = 16.0 * 1024.0 * 1024.0;

/// Smoothing factor of the MemBalancer rate EWMAs (weight of the newest
/// sample).
pub const MEMBALANCER_SMOOTHING: f64 = 0.5;

/// The O(1) observation a policy sizes the heap from.
///
/// Every field is a counter or gauge the collector already maintains — no
/// field requires walking the heap, the pause log, or the event stream, so
/// building an input is cheap enough for the per-step idle path.
#[derive(Clone, Copy, Debug)]
pub struct SizingInput {
    /// Current simulated time of the observing process.
    pub now: Nanos,
    /// Heap pages currently charged against the budget (the footprint).
    pub used_pages: usize,
    /// The current budget, in pages (what the policy may move).
    pub limit_pages: usize,
    /// The experiment's configured heap size, in pages — the hard ceiling
    /// no policy may exceed.
    pub configured_pages: usize,
    /// Cumulative bytes allocated by the mutator.
    pub bytes_allocated: u64,
    /// Cumulative objects allocated by the mutator.
    pub objects_allocated: u64,
    /// Cumulative objects traced across all collections.
    pub objects_traced: u64,
    /// Duration of the most recent stop-the-world pause
    /// ([`Nanos::ZERO`] before the first collection).
    pub last_pause: Nanos,
    /// Whether the VMM is currently below its reclaim watermark.
    pub under_pressure: bool,
    /// Free physical frames in the VMM right now.
    pub free_frames: usize,
    /// The VMM's reclaim high watermark, in frames.
    pub high_watermark: usize,
}

/// A policy's verdict: move the budget to `limit_pages`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizingDecision {
    /// The new heap budget, in pages.
    pub limit_pages: usize,
    /// Why the policy moved the limit; carried on the
    /// [`HeapShrink`](telemetry::EventKind::HeapShrink) /
    /// [`HeapGrow`](telemetry::EventKind::HeapGrow) telemetry event.
    pub reason: &'static str,
}

/// A heap-sizing policy: observes [`SizingInput`]s at the collector's
/// decision points and returns new limits.
///
/// Invariants every implementation must keep:
///
/// * Never return a limit above `configured_pages` — the experiment's heap
///   size is a hard ceiling.
/// * Shrinking below `used_pages` is allowed (the pool refuses further
///   acquisitions until usage falls back under budget) but a decision
///   should normally keep at least [`HEADROOM_PAGES`] of slack so the next
///   allocation does not immediately force a collection.
/// * Decisions must be deterministic functions of the inputs seen so far —
///   figure goldens pin simulated behaviour byte-for-byte.
pub trait HeapSizePolicy: std::fmt::Debug {
    /// Short label for reports and traces (`"fixed"`, `"bc-footprint"`, …).
    fn name(&self) -> &'static str;

    /// Called at the end of every collection.
    fn after_collection(&mut self, input: &SizingInput) -> Option<SizingDecision> {
        let _ = input;
        None
    }

    /// Called when the VMM schedules an eviction of one of this process's
    /// pages — the §3.3.3 signal that the footprint exceeds available
    /// memory.
    fn on_pressure(&mut self, input: &SizingInput) -> Option<SizingDecision> {
        let _ = input;
        None
    }

    /// Called at mutator safe points (between steps) while
    /// [`idle_active`](HeapSizePolicy::idle_active) is `true`.
    fn on_idle(&mut self, input: &SizingInput) -> Option<SizingDecision> {
        let _ = input;
        None
    }

    /// Whether [`on_idle`](HeapSizePolicy::on_idle) wants to run. The idle
    /// hook sits on the per-mutator-step path, so policies that never act
    /// there return `false` (the default) and skip even the input snapshot.
    fn idle_active(&self) -> bool {
        false
    }
}

/// Which heap-sizing policy a run uses; the serializable selector threaded
/// through `HeapConfig`, `RunConfig`, and the CLIs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The limit never moves. For the bookmarking collector this selector
    /// means "the collector's own default" (BC's baseline behaviour *is*
    /// shrink-to-footprint, §3.3.3), so `--policy fixed` reproduces today's
    /// behaviour for every collector.
    Fixed,
    /// BC's §3.3.3 shrink-to-footprint, as a reusable policy.
    BcFootprint {
        /// Also regrow in [`REGROW_STEP_PAGES`] steps once free frames
        /// exceed twice the reclaim high watermark (§7).
        regrow: bool,
    },
    /// The MemBalancer √-rule with EWMA-smoothed rates.
    MemBalancer,
}

impl PolicyKind {
    /// Parses a `--policy` flag value.
    pub fn from_flag(s: &str) -> Option<PolicyKind> {
        match s.to_ascii_lowercase().as_str() {
            "fixed" => Some(PolicyKind::Fixed),
            "bc-footprint" | "footprint" => Some(PolicyKind::BcFootprint { regrow: false }),
            "membalancer" => Some(PolicyKind::MemBalancer),
            _ => None,
        }
    }

    /// Whether this policy needs the VMM's eviction notifications (it has a
    /// pressure response). `Fixed` does not, so collectors that never
    /// registered before still do not register — their event queues stay
    /// empty and behaviour is unchanged.
    pub fn wants_notifications(self) -> bool {
        !matches!(self, PolicyKind::Fixed)
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn HeapSizePolicy> {
        match self {
            PolicyKind::Fixed => Box::new(Fixed),
            PolicyKind::BcFootprint { regrow } => Box::new(BcFootprint { regrow }),
            PolicyKind::MemBalancer => Box::new(MemBalancer::new()),
        }
    }

    /// Stable label for tables and flags.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Fixed => "fixed",
            PolicyKind::BcFootprint { .. } => "bc-footprint",
            PolicyKind::MemBalancer => "membalancer",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The do-nothing policy: the heap budget is whatever the experiment
/// configured, forever.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fixed;

impl HeapSizePolicy for Fixed {
    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// BC's §3.3.3 sizing, policy-shaped: on an eviction notice, pin the budget
/// to the current footprint plus [`HEADROOM_PAGES`]; with `regrow`, step
/// the budget back toward the configured size at idle once free frames
/// exceed twice the reclaim high watermark (§7).
#[derive(Clone, Copy, Debug)]
pub struct BcFootprint {
    /// Whether the §7 regrow extension is active.
    pub regrow: bool,
}

impl BcFootprint {
    /// The §3.3.3 footprint target: used pages plus headroom, capped at the
    /// configured size. Kept as a free function of the input so the
    /// pre-refactor `pressure.rs` arithmetic is testable in isolation.
    pub fn footprint_target(input: &SizingInput) -> usize {
        (input.used_pages + HEADROOM_PAGES).min(input.configured_pages)
    }
}

impl HeapSizePolicy for BcFootprint {
    fn name(&self) -> &'static str {
        "bc-footprint"
    }

    fn on_pressure(&mut self, input: &SizingInput) -> Option<SizingDecision> {
        let target = BcFootprint::footprint_target(input);
        (target < input.limit_pages).then_some(SizingDecision {
            limit_pages: target,
            reason: "footprint-shrink",
        })
    }

    fn on_idle(&mut self, input: &SizingInput) -> Option<SizingDecision> {
        if input.limit_pages >= input.configured_pages {
            return None;
        }
        // Only regrow while the machine has comfortable slack: at least
        // twice the reclaim high watermark of free frames.
        if input.free_frames > input.high_watermark * 2 {
            Some(SizingDecision {
                limit_pages: (input.limit_pages + REGROW_STEP_PAGES).min(input.configured_pages),
                reason: "regrow",
            })
        } else {
            None
        }
    }

    fn idle_active(&self) -> bool {
        self.regrow
    }
}

/// One rate observation (taken at the end of a collection).
#[derive(Clone, Copy, Debug)]
struct RateSample {
    now: Nanos,
    bytes_allocated: u64,
    objects_traced: u64,
}

/// The MemBalancer rule: after each collection, set the limit to
/// `live + √(c · live · g / s)` where `g` is the allocation rate (bytes per
/// simulated nanosecond, EWMA-smoothed across collections) and `s` the
/// trace rate (bytes traced per pause nanosecond, likewise smoothed).
/// A fast allocator earns more slack before the next collection; a slow
/// tracer makes collections expensive, which also argues for more slack.
/// The result is clamped to `[used + HEADROOM_PAGES, configured]`. Under an
/// eviction notice it additionally shrinks to the footprint, like
/// [`BcFootprint`].
#[derive(Clone, Copy, Debug)]
pub struct MemBalancer {
    prev: Option<RateSample>,
    alloc_rate: f64,
    trace_rate: f64,
}

impl MemBalancer {
    /// A fresh balancer with no rate history (its first collection only
    /// records a sample).
    pub fn new() -> MemBalancer {
        MemBalancer {
            prev: None,
            alloc_rate: 0.0,
            trace_rate: 0.0,
        }
    }

    /// The √-rule target in pages for the given live footprint and smoothed
    /// rates, before clamping against the input's configured ceiling.
    pub fn sqrt_target_pages(used_pages: usize, alloc_rate: f64, trace_rate: f64) -> usize {
        let live_bytes = used_pages as f64 * BYTES_PER_PAGE as f64;
        let extra_bytes = (MEMBALANCER_TUNING_BYTES * live_bytes * alloc_rate / trace_rate).sqrt();
        let extra_pages = (extra_bytes / BYTES_PER_PAGE as f64).ceil() as usize;
        used_pages + extra_pages.max(HEADROOM_PAGES)
    }
}

impl Default for MemBalancer {
    fn default() -> MemBalancer {
        MemBalancer::new()
    }
}

impl HeapSizePolicy for MemBalancer {
    fn name(&self) -> &'static str {
        "membalancer"
    }

    fn after_collection(&mut self, input: &SizingInput) -> Option<SizingDecision> {
        if let Some(prev) = self.prev {
            let dt = input.now.as_nanos().saturating_sub(prev.now.as_nanos()) as f64;
            let da = input.bytes_allocated.saturating_sub(prev.bytes_allocated) as f64;
            let dtr = input.objects_traced.saturating_sub(prev.objects_traced) as f64;
            let pause = input.last_pause.as_nanos() as f64;
            if dt > 0.0 {
                let raw = da / dt;
                self.alloc_rate =
                    MEMBALANCER_SMOOTHING * raw + (1.0 - MEMBALANCER_SMOOTHING) * self.alloc_rate;
            }
            if pause > 0.0 && dtr > 0.0 && input.objects_allocated > 0 {
                let avg_obj_bytes = input.bytes_allocated as f64 / input.objects_allocated as f64;
                let raw = dtr * avg_obj_bytes / pause;
                self.trace_rate =
                    MEMBALANCER_SMOOTHING * raw + (1.0 - MEMBALANCER_SMOOTHING) * self.trace_rate;
            }
        }
        self.prev = Some(RateSample {
            now: input.now,
            bytes_allocated: input.bytes_allocated,
            objects_traced: input.objects_traced,
        });
        if self.alloc_rate <= 0.0 || self.trace_rate <= 0.0 {
            return None;
        }
        let target =
            MemBalancer::sqrt_target_pages(input.used_pages, self.alloc_rate, self.trace_rate)
                .min(input.configured_pages);
        (target != input.limit_pages).then_some(SizingDecision {
            limit_pages: target,
            reason: "membalancer-sqrt",
        })
    }

    fn on_pressure(&mut self, input: &SizingInput) -> Option<SizingDecision> {
        let target = BcFootprint::footprint_target(input);
        (target < input.limit_pages).then_some(SizingDecision {
            limit_pages: target,
            reason: "membalancer-pressure",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(used: usize, limit: usize, configured: usize) -> SizingInput {
        SizingInput {
            now: Nanos(1_000_000),
            used_pages: used,
            limit_pages: limit,
            configured_pages: configured,
            bytes_allocated: 1_000_000,
            objects_allocated: 20_000,
            objects_traced: 10_000,
            last_pause: Nanos(50_000),
            under_pressure: false,
            free_frames: 1000,
            high_watermark: 100,
        }
    }

    #[test]
    fn fixed_never_moves_the_limit() {
        let mut p = Fixed;
        let i = input(100, 1000, 2000);
        assert_eq!(p.after_collection(&i), None);
        assert_eq!(p.on_pressure(&i), None);
        assert_eq!(p.on_idle(&i), None);
        assert!(!p.idle_active());
    }

    /// The pre-refactor `pressure.rs` arithmetic, verbatim:
    /// `target = (used + 64).min(configured_pages)`, shrink only when the
    /// target is below the current budget.
    #[test]
    fn bc_footprint_matches_pre_refactor_shrink() {
        let mut p = BcFootprint { regrow: false };
        for &(used, limit, configured) in &[
            (100usize, 1000usize, 2000usize),
            (950, 1000, 2000),
            (1000, 1000, 2000),
            (0, 64, 2000),
            (1990, 2000, 2000),
            (5, 2000, 50), // configured below used+headroom
        ] {
            let i = input(used, limit, configured);
            let expected_target = (used + 64).min(configured);
            let expected = (expected_target < limit).then_some(expected_target);
            assert_eq!(
                p.on_pressure(&i).map(|d| d.limit_pages),
                expected,
                "used={used} limit={limit} configured={configured}"
            );
        }
    }

    #[test]
    fn bc_footprint_regrow_steps_toward_configured() {
        let mut p = BcFootprint { regrow: true };
        assert!(p.idle_active());
        // Comfortable slack: grow by one step.
        let i = input(100, 500, 2000);
        assert_eq!(p.on_idle(&i).map(|d| d.limit_pages), Some(564));
        // At the configured size: nothing to do.
        let i = input(100, 2000, 2000);
        assert_eq!(p.on_idle(&i), None);
        // Step is capped at the configured size.
        let i = input(100, 1990, 2000);
        assert_eq!(p.on_idle(&i).map(|d| d.limit_pages), Some(2000));
        // No slack: hold.
        let mut tight = input(100, 500, 2000);
        tight.free_frames = 150;
        assert_eq!(p.on_idle(&tight), None);
        // Without the regrow option the idle hook is inert.
        assert!(!BcFootprint { regrow: false }.idle_active());
    }

    #[test]
    fn membalancer_sqrt_is_monotonic_in_alloc_rate() {
        let slow = MemBalancer::sqrt_target_pages(1000, 0.5, 2.0);
        let fast = MemBalancer::sqrt_target_pages(1000, 4.0, 2.0);
        assert!(
            fast > slow,
            "faster allocation must earn a larger heap ({fast} vs {slow})"
        );
        // And monotonic (inversely) in trace rate.
        let cheap_gc = MemBalancer::sqrt_target_pages(1000, 1.0, 8.0);
        let dear_gc = MemBalancer::sqrt_target_pages(1000, 1.0, 0.5);
        assert!(dear_gc > cheap_gc);
    }

    #[test]
    fn membalancer_clamps_at_min_and_max() {
        // Tiny rates: the floor is used + HEADROOM_PAGES.
        let floor = MemBalancer::sqrt_target_pages(500, 1e-12, 1.0);
        assert_eq!(floor, 500 + HEADROOM_PAGES);
        // Huge rates: after_collection caps at the configured size.
        let mut p = MemBalancer {
            prev: Some(RateSample {
                now: Nanos(0),
                bytes_allocated: 0,
                objects_traced: 0,
            }),
            alloc_rate: 1e9,
            trace_rate: 1e-6,
        };
        let i = input(500, 600, 700);
        let d = p.after_collection(&i).expect("limit must move");
        assert_eq!(d.limit_pages, 700);
    }

    #[test]
    fn membalancer_warms_up_before_deciding() {
        let mut p = MemBalancer::new();
        // First collection: only records a sample.
        assert_eq!(p.after_collection(&input(100, 1000, 2000)), None);
        // Second collection, later, with allocation and tracing progress:
        // rates exist, a decision comes out.
        let mut i2 = input(100, 1000, 2000);
        i2.now = Nanos(2_000_000);
        i2.bytes_allocated = 2_000_000;
        i2.objects_traced = 20_000;
        assert!(p.after_collection(&i2).is_some());
    }

    #[test]
    fn policy_kind_flags_round_trip() {
        assert_eq!(PolicyKind::from_flag("fixed"), Some(PolicyKind::Fixed));
        assert_eq!(
            PolicyKind::from_flag("bc-footprint"),
            Some(PolicyKind::BcFootprint { regrow: false })
        );
        assert_eq!(
            PolicyKind::from_flag("footprint"),
            Some(PolicyKind::BcFootprint { regrow: false })
        );
        assert_eq!(
            PolicyKind::from_flag("MemBalancer"),
            Some(PolicyKind::MemBalancer)
        );
        assert_eq!(PolicyKind::from_flag("nope"), None);
        assert!(!PolicyKind::Fixed.wants_notifications());
        assert!(PolicyKind::MemBalancer.wants_notifications());
        assert_eq!(PolicyKind::MemBalancer.to_string(), "membalancer");
    }
}
