//! Page-sized write buffers (§3.1).
//!
//! "Like all generational collectors, BC must remember pointers from the
//! older to the younger generation. It normally stores these pointers in
//! page-sized write buffers that provide fast storage and processing but may
//! demand unbounded amounts of space. To limit space overhead, BC processes
//! buffers when they fill."

use crate::addr::Address;

/// Slots per buffer: one 4 KiB page of 4-byte slot addresses.
pub const BUFFER_SLOTS: usize = 1024;

/// A sequential store buffer of pointer-store slot addresses.
#[derive(Clone, Debug, Default)]
pub struct WriteBuffer {
    slots: Vec<Address>,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> WriteBuffer {
        WriteBuffer {
            slots: Vec::with_capacity(BUFFER_SLOTS),
        }
    }

    /// Records a pointer store into `slot`. Returns `true` when the buffer
    /// has just filled and should be processed (§3.1 filtering).
    #[must_use]
    pub fn record(&mut self, slot: Address) -> bool {
        self.slots.push(slot);
        self.slots.len() >= BUFFER_SLOTS
    }

    /// Takes every recorded slot, leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<Address> {
        std::mem::take(&mut self.slots)
    }

    /// Replaces the contents with `kept` (the §3.1 compaction of entries
    /// that survive filtering).
    pub fn retain_entries(&mut self, kept: Vec<Address>) {
        debug_assert!(kept.len() <= BUFFER_SLOTS);
        self.slots = kept;
    }

    /// Recorded entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no stores are recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates the recorded slots.
    pub fn iter(&self) -> impl Iterator<Item = Address> + '_ {
        self.slots.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_at_page_capacity() {
        let mut buf = WriteBuffer::new();
        for i in 0..BUFFER_SLOTS - 1 {
            assert!(!buf.record(Address(i as u32 * 4)));
        }
        assert!(buf.record(Address(0xFFFC)), "1024th record signals full");
        assert_eq!(buf.len(), BUFFER_SLOTS);
    }

    #[test]
    fn drain_empties() {
        let mut buf = WriteBuffer::new();
        let _ = buf.record(Address(4));
        let _ = buf.record(Address(8));
        let drained = buf.drain();
        assert_eq!(drained, vec![Address(4), Address(8)]);
        assert!(buf.is_empty());
    }

    #[test]
    fn retain_keeps_filtered_entries() {
        let mut buf = WriteBuffer::new();
        let _ = buf.record(Address(4));
        let _ = buf.record(Address(8));
        let _ = buf.record(Address(12));
        let kept: Vec<Address> = buf.drain().into_iter().filter(|a| a.0 != 8).collect();
        buf.retain_entries(kept);
        assert_eq!(buf.len(), 2);
        assert!(buf.iter().all(|a| a.0 != 8));
    }
}
