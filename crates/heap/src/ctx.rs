//! Charged memory access: every heap touch goes through the simulated VMM.

use simtime::Clock;
use vmm::{Access, ProcessId, TouchOutcome, Vmm};

use crate::addr::{Address, BYTES_PER_PAGE};
use crate::mem::SimMemory;

/// The access context threaded through all heap and collector operations:
/// the shared virtual memory manager, this process's clock, and its id.
///
/// `MemCtx` is the **only** path by which collectors and mutators read or
/// write heap memory, which is how the simulation guarantees that every
/// access pays for the pages it touches — including the major faults that
/// the paper's bookmarking collector is designed to avoid.
#[derive(Debug)]
pub struct MemCtx<'a> {
    /// The shared virtual memory manager.
    pub vmm: &'a mut Vmm,
    /// The clock of the process performing the access.
    pub clock: &'a mut Clock,
    /// The accessing process.
    pub pid: ProcessId,
}

impl<'a> MemCtx<'a> {
    /// Creates a context for `pid`.
    pub fn new(vmm: &'a mut Vmm, clock: &'a mut Clock, pid: ProcessId) -> MemCtx<'a> {
        MemCtx { vmm, clock, pid }
    }

    /// Touches every page of `[addr, addr+len)`, faulting as needed, and
    /// zero-fills any demand-zero pages in the backing store.
    pub fn touch(
        &mut self,
        mem: &mut SimMemory,
        addr: Address,
        len: u32,
        access: Access,
    ) -> TouchOutcome {
        debug_assert!(len > 0);
        let first = addr.page().number();
        let last = Address(addr.0 + len - 1).page().number();
        let mut combined = TouchOutcome::default();
        for p in first..=last {
            let o = self
                .vmm
                .touch(self.pid, vmm::VirtPage::new(p), access, self.clock);
            if o.zero_filled {
                mem.zero(Address(p * BYTES_PER_PAGE), BYTES_PER_PAGE);
            }
            combined.major_fault |= o.major_fault;
            combined.zero_filled |= o.zero_filled;
            combined.protection_fault |= o.protection_fault;
            combined.events_queued |= o.events_queued;
        }
        combined
    }

    /// Reads the word at `addr`, charging the touch.
    pub fn read_word(&mut self, mem: &mut SimMemory, addr: Address) -> u32 {
        self.touch(mem, addr, 4, Access::Read);
        mem.read_word(addr)
    }

    /// Writes the word at `addr`, charging the touch.
    pub fn write_word(&mut self, mem: &mut SimMemory, addr: Address, value: u32) {
        self.touch(mem, addr, 4, Access::Write);
        mem.write_word(addr, value);
    }

    /// Major faults this process has taken so far (for attribution).
    pub fn major_faults(&self) -> u64 {
        self.vmm.stats(self.pid).major_faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::CostModel;
    use vmm::VmmConfig;

    fn ctx_parts() -> (Vmm, Clock) {
        (
            Vmm::new(
                VmmConfig::builder().frames(64).build(),
                CostModel::default(),
            ),
            Clock::new(),
        )
    }

    #[test]
    fn read_write_charge_and_round_trip() {
        let (mut vmm, mut clock) = ctx_parts();
        let pid = vmm.register_process();
        let mut mem = SimMemory::new();
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        ctx.write_word(&mut mem, Address(0x1000), 99);
        assert_eq!(ctx.read_word(&mut mem, Address(0x1000)), 99);
        assert!(ctx.clock.now().as_nanos() > 0);
        assert!(ctx.vmm.is_resident(pid, Address(0x1000).page()));
    }

    #[test]
    fn discarded_pages_reread_as_zero() {
        let (mut vmm, mut clock) = ctx_parts();
        let pid = vmm.register_process();
        let mut mem = SimMemory::new();
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        ctx.write_word(&mut mem, Address(0x2000), 1234);
        let page = Address(0x2000).page();
        ctx.vmm.madvise_dontneed(pid, &[page], ctx.clock);
        // The simulated memory still holds stale bytes, but a charged read
        // must observe the demand-zero fill.
        assert_eq!(ctx.read_word(&mut mem, Address(0x2000)), 0);
    }

    #[test]
    fn touch_spans_multiple_pages() {
        let (mut vmm, mut clock) = ctx_parts();
        let pid = vmm.register_process();
        let mut mem = SimMemory::new();
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let o = ctx.touch(&mut mem, Address(4000), 8192, Access::Write);
        assert!(o.zero_filled);
        for p in 0..3 {
            assert!(ctx.vmm.is_resident(pid, vmm::VirtPage::new(p)));
        }
        assert!(!ctx.vmm.is_resident(pid, vmm::VirtPage::new(3)));
    }
}
