//! The page-based large object space (objects over 8180 bytes, §3).

use std::collections::BTreeMap;

use vmm::VirtPage;

use crate::addr::{Address, BYTES_PER_PAGE};
use crate::pool::PagePool;

/// A page-granular allocator for large objects.
///
/// Each object occupies a whole number of pages; freed runs are coalesced
/// with their neighbours. The object's header lives in its first page, so
/// liveness checks touch only that page.
#[derive(Debug)]
pub struct LargeObjectSpace {
    base: Address,
    region_limit: Address,
    /// Frontier of never-used space.
    cursor: Address,
    /// Free runs: start address → page count.
    free_runs: BTreeMap<u32, u32>,
    /// Live objects: start address → page count.
    objects: BTreeMap<u32, u32>,
}

impl LargeObjectSpace {
    /// An empty space over `[base, region_limit)` (page-aligned).
    ///
    /// # Panics
    ///
    /// Panics unless the bounds are page-aligned.
    pub fn new(base: Address, region_limit: Address) -> LargeObjectSpace {
        assert_eq!(base.0 % BYTES_PER_PAGE, 0);
        assert_eq!(region_limit.0 % BYTES_PER_PAGE, 0);
        LargeObjectSpace {
            base,
            region_limit,
            cursor: base,
            free_runs: BTreeMap::new(),
            objects: BTreeMap::new(),
        }
    }

    /// Allocates an object of `bytes`, rounded up to whole pages. Returns
    /// `None` when the pool (or region) is exhausted.
    pub fn alloc(&mut self, pool: &mut PagePool, bytes: u32) -> Option<Address> {
        let pages = bytes.div_ceil(BYTES_PER_PAGE);
        // First fit over the free runs.
        let fit = self
            .free_runs
            .iter()
            .find(|&(_, &len)| len >= pages)
            .map(|(&start, &len)| (start, len));
        let addr = if let Some((start, len)) = fit {
            if !pool.acquire(pages as usize) {
                return None;
            }
            self.free_runs.remove(&start);
            if len > pages {
                self.free_runs
                    .insert(start + pages * BYTES_PER_PAGE, len - pages);
            }
            Address(start)
        } else {
            let start = self.cursor;
            if start.0 + pages * BYTES_PER_PAGE > self.region_limit.0 {
                return None;
            }
            if !pool.acquire(pages as usize) {
                return None;
            }
            self.cursor = start.offset(pages * BYTES_PER_PAGE);
            start
        };
        self.objects.insert(addr.0, pages);
        Some(addr)
    }

    /// Frees the object at `addr`, returning its pages (for discarding) and
    /// releasing budget to `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live large object.
    pub fn free(&mut self, pool: &mut PagePool, addr: Address) -> Vec<VirtPage> {
        let pages = self
            .objects
            .remove(&addr.0)
            .expect("free of non-LOS object");
        pool.release(pages as usize);
        // Insert and coalesce.
        let mut start = addr.0;
        let mut len = pages;
        if let Some((&pstart, &plen)) = self.free_runs.range(..start).next_back() {
            if pstart + plen * BYTES_PER_PAGE == start {
                self.free_runs.remove(&pstart);
                start = pstart;
                len += plen;
            }
        }
        if let Some(&nlen) = self.free_runs.get(&(addr.0 + pages * BYTES_PER_PAGE)) {
            self.free_runs.remove(&(addr.0 + pages * BYTES_PER_PAGE));
            len += nlen;
        }
        self.free_runs.insert(start, len);
        (0..pages)
            .map(|i| Address(addr.0 + i * BYTES_PER_PAGE).page())
            .collect()
    }

    /// Whether `addr` is the start of a live large object.
    pub fn is_live_object(&self, addr: Address) -> bool {
        self.objects.contains_key(&addr.0)
    }

    /// Whether `addr` falls in this space's region.
    pub fn region_contains(&self, addr: Address) -> bool {
        addr >= self.base && addr < self.region_limit
    }

    /// All live objects (address, page count), ascending.
    pub fn objects(&self) -> Vec<(Address, u32)> {
        self.objects
            .iter()
            .map(|(&a, &p)| (Address(a), p))
            .collect()
    }

    /// The object containing `addr`, if any (addresses may point into the
    /// middle of a large object's pages during page scans).
    pub fn object_containing(&self, addr: Address) -> Option<(Address, u32)> {
        let (&start, &pages) = self.objects.range(..=addr.0).next_back()?;
        if addr.0 < start + pages * BYTES_PER_PAGE {
            Some((Address(start), pages))
        } else {
            None
        }
    }

    /// Pages of the object at `addr`.
    pub fn pages_of(&self, addr: Address) -> Vec<VirtPage> {
        let pages = self.objects[&addr.0];
        (0..pages)
            .map(|i| Address(addr.0 + i * BYTES_PER_PAGE).page())
            .collect()
    }

    /// Number of live large objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the space holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (LargeObjectSpace, PagePool) {
        (
            LargeObjectSpace::new(Address(0x9040_0000), Address(0x9140_0000)),
            PagePool::new(4096),
        )
    }

    #[test]
    fn alloc_rounds_to_pages() {
        let (mut los, mut pool) = space();
        let a = los.alloc(&mut pool, 9000).unwrap();
        assert_eq!(pool.used(), 3);
        assert!(los.is_live_object(a));
        assert_eq!(los.pages_of(a).len(), 3);
    }

    #[test]
    fn free_reuses_space_first_fit() {
        let (mut los, mut pool) = space();
        let a = los.alloc(&mut pool, BYTES_PER_PAGE * 4).unwrap();
        let b = los.alloc(&mut pool, BYTES_PER_PAGE * 2).unwrap();
        los.free(&mut pool, a);
        assert!(!los.is_live_object(a));
        // A 3-page object fits in the 4-page hole.
        let c = los.alloc(&mut pool, BYTES_PER_PAGE * 3).unwrap();
        assert_eq!(c, a);
        // And a 1-page object fits in the remaining hole before b.
        let d = los.alloc(&mut pool, 100).unwrap();
        assert!(d < b);
        let _ = b;
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let (mut los, mut pool) = space();
        let a = los.alloc(&mut pool, BYTES_PER_PAGE * 2).unwrap();
        let b = los.alloc(&mut pool, BYTES_PER_PAGE * 2).unwrap();
        let c = los.alloc(&mut pool, BYTES_PER_PAGE * 2).unwrap();
        let _guard = los.alloc(&mut pool, BYTES_PER_PAGE).unwrap();
        los.free(&mut pool, a);
        los.free(&mut pool, c);
        los.free(&mut pool, b); // merges with both neighbours
        let big = los.alloc(&mut pool, BYTES_PER_PAGE * 6).unwrap();
        assert_eq!(big, a, "coalesced run re-used");
    }

    #[test]
    fn object_containing_finds_interior_addresses() {
        let (mut los, mut pool) = space();
        let a = los.alloc(&mut pool, BYTES_PER_PAGE * 3).unwrap();
        assert_eq!(los.object_containing(a), Some((a, 3)));
        assert_eq!(
            los.object_containing(a.offset(2 * BYTES_PER_PAGE + 100)),
            Some((a, 3))
        );
        assert_eq!(los.object_containing(a.offset(3 * BYTES_PER_PAGE)), None);
    }

    #[test]
    #[should_panic(expected = "non-LOS object")]
    fn free_of_unknown_address_panics() {
        let (mut los, mut pool) = space();
        los.free(&mut pool, Address(0x9040_0000));
    }

    #[test]
    fn pool_exhaustion_fails() {
        let mut los = LargeObjectSpace::new(Address(0x9040_0000), Address(0x9140_0000));
        let mut pool = PagePool::new(2);
        assert!(los.alloc(&mut pool, BYTES_PER_PAGE * 3).is_none());
        assert!(los.alloc(&mut pool, BYTES_PER_PAGE * 2).is_some());
        assert!(los.alloc(&mut pool, 1).is_none());
    }
}
