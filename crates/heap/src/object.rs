//! The object model: two-word headers and field layout.
//!
//! Jikes RVM keeps a status word in every object header; the paper stores
//! the **bookmark** as "a single bit already available in the object's
//! header" (§3.5) alongside the mark bit. This reproduction uses a uniform
//! two-word header:
//!
//! ```text
//! word 0 (status): [ ... | ARRAY_REF | FORWARDED | ARRAY | BOOKMARK | MARK ]
//! word 1:          scalar    → size_words << 16 | num_ref_fields
//!                  array     → element count
//!                  forwarded → forwarding address (status.FORWARDED set)
//! ```
//!
//! Scalars lay their reference fields first (fields `0 .. num_refs` are
//! references), which lets an eviction-time page scan find outgoing pointers
//! without external type information — the ability §4 obtains in Jikes by
//! segregating scalar and array superpages and disabling the header-offset
//! optimizations. Arrays are either all-reference or all-data.

use crate::addr::{round_up_words, Address, WORD};

/// Header size in bytes (two words).
pub const HEADER_BYTES: u32 = 2 * WORD;
/// Objects larger than this go to the large object space
/// (§3: "BC allocates objects larger than 8180 bytes — half the size of a
/// superpage minus metadata — into the large object space").
pub const MAX_SMALL_OBJECT_BYTES: u32 = 8180;
/// The largest mark-sweep cell (the ⌊usable/2⌋ divisor class).
pub const LARGEST_CELL_BYTES: u32 = ((16384 - 12) / 2) & !(WORD - 1);

const MARK_BIT: u32 = 1 << 0;
const BOOKMARK_BIT: u32 = 1 << 1;
const ARRAY_BIT: u32 = 1 << 2;
const FORWARDED_BIT: u32 = 1 << 3;
const ARRAY_REF_BIT: u32 = 1 << 4;

/// The shape of an object: a scalar with leading reference fields, or an
/// array of all-reference / all-data words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A fixed-shape object. `size_words` includes the header.
    Scalar {
        /// Total size in words, header included.
        size_words: u16,
        /// Number of leading reference fields.
        num_refs: u16,
    },
    /// A word-element array.
    Array {
        /// Element count.
        len: u32,
        /// Whether every element is a reference.
        refs: bool,
    },
}

impl ObjectKind {
    /// A scalar sized for `data_words` payload words, of which the first
    /// `num_refs` are references.
    ///
    /// # Panics
    ///
    /// Panics if `num_refs > data_words` or the object exceeds 8180 bytes.
    pub fn scalar(data_words: u16, num_refs: u16) -> ObjectKind {
        assert!(num_refs <= data_words, "more refs than fields");
        let size_words = data_words as u32 + HEADER_BYTES / WORD;
        assert!(
            size_words * WORD <= MAX_SMALL_OBJECT_BYTES,
            "scalar of {} bytes exceeds the 8180-byte scalar limit",
            size_words * WORD
        );
        ObjectKind::Scalar {
            size_words: size_words as u16,
            num_refs,
        }
    }

    /// Total object size in bytes, header included, word-aligned.
    pub fn size_bytes(&self) -> u32 {
        match *self {
            ObjectKind::Scalar { size_words, .. } => size_words as u32 * WORD,
            ObjectKind::Array { len, .. } => round_up_words(HEADER_BYTES + len * WORD),
        }
    }

    /// Number of reference fields.
    pub fn num_ref_fields(&self) -> u32 {
        match *self {
            ObjectKind::Scalar { num_refs, .. } => num_refs as u32,
            ObjectKind::Array { len, refs: true } => len,
            ObjectKind::Array { refs: false, .. } => 0,
        }
    }

    /// Whether this is an array (for scalar/array superpage segregation).
    pub fn is_array(&self) -> bool {
        matches!(self, ObjectKind::Array { .. })
    }
}

/// A decoded object header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Mark bit (tracing liveness).
    pub mark: bool,
    /// Bookmark bit (§3.4: the object is the target of at least one pointer
    /// from an evicted page).
    pub bookmark: bool,
    /// The object's shape.
    pub kind: ObjectKind,
}

impl Header {
    /// A fresh header for a newly allocated object.
    pub fn new(kind: ObjectKind) -> Header {
        Header {
            mark: false,
            bookmark: false,
            kind,
        }
    }

    /// Encodes to the two header words.
    pub fn encode(&self) -> (u32, u32) {
        let mut w0 = 0;
        if self.mark {
            w0 |= MARK_BIT;
        }
        if self.bookmark {
            w0 |= BOOKMARK_BIT;
        }
        let w1 = match self.kind {
            ObjectKind::Scalar {
                size_words,
                num_refs,
            } => ((size_words as u32) << 16) | num_refs as u32,
            ObjectKind::Array { len, refs } => {
                w0 |= ARRAY_BIT;
                if refs {
                    w0 |= ARRAY_REF_BIT;
                }
                len
            }
        };
        (w0, w1)
    }

    /// Decodes the two header words.
    ///
    /// # Panics
    ///
    /// Panics if the header is a forwarding stub (see
    /// [`decode_forwarded`](Header::decode_forwarded)).
    pub fn decode(w0: u32, w1: u32) -> Header {
        assert_eq!(w0 & FORWARDED_BIT, 0, "decoding a forwarding stub");
        let kind = if w0 & ARRAY_BIT != 0 {
            ObjectKind::Array {
                len: w1,
                refs: w0 & ARRAY_REF_BIT != 0,
            }
        } else {
            ObjectKind::Scalar {
                size_words: (w1 >> 16) as u16,
                num_refs: (w1 & 0xFFFF) as u16,
            }
        };
        Header {
            mark: w0 & MARK_BIT != 0,
            bookmark: w0 & BOOKMARK_BIT != 0,
            kind,
        }
    }

    /// Decodes a header that may be a forwarding stub left by a copying
    /// collection: `Ok(header)` for ordinary objects, `Err(new_address)`
    /// when the object has been forwarded.
    pub fn decode_forwarded(w0: u32, w1: u32) -> Result<Header, Address> {
        if w0 & FORWARDED_BIT != 0 {
            Err(Address(w1))
        } else {
            Ok(Header::decode(w0, w1))
        }
    }

    /// The header words of a forwarding stub pointing at `to` (written into
    /// the *old* copy of a moved object).
    pub fn forwarding_stub(to: Address) -> (u32, u32) {
        (FORWARDED_BIT, to.0)
    }

    /// Tests the mark bit directly on an encoded status word.
    pub fn is_marked(w0: u32) -> bool {
        w0 & MARK_BIT != 0
    }

    /// Tests the bookmark bit directly on an encoded status word.
    pub fn is_bookmarked(w0: u32) -> bool {
        w0 & BOOKMARK_BIT != 0
    }

    /// Sets or clears the mark bit on an encoded status word.
    pub fn with_mark(w0: u32, mark: bool) -> u32 {
        if mark {
            w0 | MARK_BIT
        } else {
            w0 & !MARK_BIT
        }
    }

    /// Sets or clears the bookmark bit on an encoded status word.
    pub fn with_bookmark(w0: u32, bookmark: bool) -> u32 {
        if bookmark {
            w0 | BOOKMARK_BIT
        } else {
            w0 & !BOOKMARK_BIT
        }
    }
}

/// Address of reference field `i` of the object at `obj`.
///
/// Valid for `i < kind.num_ref_fields()`; scalar reference fields and array
/// elements both start right after the header.
pub fn field_addr(obj: Address, i: u32) -> Address {
    obj.offset(HEADER_BYTES + i * WORD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let kind = ObjectKind::scalar(6, 2);
        let h = Header {
            mark: true,
            bookmark: false,
            kind,
        };
        let (w0, w1) = h.encode();
        assert_eq!(Header::decode(w0, w1), h);
        assert_eq!(kind.size_bytes(), 8 + 24);
        assert_eq!(kind.num_ref_fields(), 2);
        assert!(!kind.is_array());
    }

    #[test]
    fn array_round_trip() {
        for refs in [true, false] {
            let kind = ObjectKind::Array { len: 1000, refs };
            let h = Header {
                mark: false,
                bookmark: true,
                kind,
            };
            let (w0, w1) = h.encode();
            assert_eq!(Header::decode(w0, w1), h);
            assert_eq!(kind.size_bytes(), 8 + 4000);
            assert_eq!(kind.num_ref_fields(), if refs { 1000 } else { 0 });
            assert!(kind.is_array());
        }
    }

    #[test]
    fn forwarding_stub_round_trip() {
        let (w0, w1) = Header::forwarding_stub(Address(0x1234_5678));
        assert_eq!(Header::decode_forwarded(w0, w1), Err(Address(0x1234_5678)));
        let h = Header::new(ObjectKind::scalar(1, 0));
        let (w0, w1) = h.encode();
        assert_eq!(Header::decode_forwarded(w0, w1), Ok(h));
    }

    #[test]
    #[should_panic(expected = "forwarding stub")]
    fn decoding_a_stub_panics() {
        let (w0, w1) = Header::forwarding_stub(Address(64));
        let _ = Header::decode(w0, w1);
    }

    #[test]
    fn bit_helpers_flip_only_their_bit() {
        let h = Header {
            mark: false,
            bookmark: true,
            kind: ObjectKind::scalar(3, 1),
        };
        let (w0, w1) = h.encode();
        let marked = Header::with_mark(w0, true);
        assert!(Header::is_marked(marked));
        assert!(Header::is_bookmarked(marked));
        assert_eq!(Header::decode(Header::with_mark(marked, false), w1), h);
        let unbooked = Header::with_bookmark(w0, false);
        assert!(!Header::is_bookmarked(unbooked));
    }

    #[test]
    #[should_panic(expected = "8180-byte")]
    fn oversized_scalar_is_rejected() {
        let _ = ObjectKind::scalar(2100, 0);
    }

    #[test]
    #[should_panic(expected = "more refs than fields")]
    fn refs_beyond_fields_rejected() {
        let _ = ObjectKind::scalar(2, 3);
    }

    #[test]
    fn field_addresses_follow_header() {
        let obj = Address(0x1000);
        assert_eq!(field_addr(obj, 0), Address(0x1008));
        assert_eq!(field_addr(obj, 3), Address(0x1014));
    }

    #[test]
    fn largest_cell_constant_is_half_superpage_minus_metadata() {
        assert_eq!(LARGEST_CELL_BYTES, 8184);
        const { assert!(LARGEST_CELL_BYTES >= MAX_SMALL_OBJECT_BYTES) };
    }
}
