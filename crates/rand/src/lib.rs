//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of the rand 0.10 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension methods [`RngExt::random`] / [`RngExt::random_range`].
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — deterministic,
//! fast, and statistically solid for simulation workloads. It is **not**
//! cryptographically secure, which matches how this workspace uses it
//! (synthetic benchmark generation from fixed seeds).

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a numeric seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Random: Sized {
    /// Draws a uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Extension methods mirroring rand 0.10's `Rng` trait.
pub trait RngExt: RngCore {
    /// Samples a uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(1usize..=4);
            assert!((1..=4).contains(&w));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(0..100);
            assert!((0..100i32).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
