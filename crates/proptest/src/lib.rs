//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the subset of proptest 1.x it uses: the [`proptest!`] test macro,
//! [`prop_oneof!`], `prop_assert!`/`prop_assert_eq!`, range/tuple/`Just`/
//! [`any`] strategies, `.prop_map(..)`, and [`collection::vec`].
//!
//! Semantics differ from real proptest in one deliberate way: there is **no
//! shrinking**. Each test runs `ProptestConfig::cases` deterministic cases
//! seeded from the test name, so failures reproduce exactly but are not
//! minimized. For a simulation testbed with fixed seeds this is an
//! acceptable trade for building offline.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Test-runner plumbing: the per-test RNG and configuration.
pub mod test_runner {
    use super::*;

    /// Deterministic RNG driving strategy sampling for one test.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates the RNG for `test_name`, case `case`.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (case as u64).wrapping_mul(0x9E37_79B9),
            ))
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            self.0.random_range(0..n.max(1))
        }
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len());
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical uniform strategy (see [`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Creates the canonical strategy for `T`.
        pub fn new() -> Any<T> {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The `any::<T>()` entry point.
pub mod arbitrary {
    use super::strategy::{Any, Arbitrary};

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// An inclusive length bound for [`vec`]: built from a fixed `usize`, a
    /// `Range<usize>`, or a `RangeInclusive<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn holds(x in 0u32..10, v in proptest::collection::vec(any::<bool>(), 8)) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg =
                    $crate::strategy::Strategy::generate(&$strategy, &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_items! { $config; $($rest)* }
    };
}
