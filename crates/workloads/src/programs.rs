//! Structurally faithful mini-workloads.
//!
//! The statistical generator in [`crate::SyntheticProgram`] matches Table 1's
//! aggregate shapes; the programs here model the *structure* of three of the
//! paper's benchmarks instead — real object graphs with phase behaviour —
//! and double as API-usage examples for writing custom [`Program`]s.

use std::collections::VecDeque;

use heap::{AllocKind, GcHeap, Handle, MemCtx, OutOfMemory};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simulate::{Program, ProgramStatus};

/// `_201_compress`-like: cycles a ring of large buffers (the LZW
/// input/output blocks) over a small immortal dictionary. Allocation is
/// dominated by short-lived large arrays — the pattern that exercises the
/// large object space and produces wholly empty pages when buffers retire.
#[derive(Debug)]
pub struct CompressLike {
    dictionary: Vec<Handle>,
    ring: VecDeque<Handle>,
    rng: StdRng,
    blocks_left: usize,
    total_blocks: usize,
}

impl CompressLike {
    /// A run compressing `blocks` buffers (each a 16–64 KiB array).
    pub fn new(blocks: usize, seed: u64) -> CompressLike {
        CompressLike {
            dictionary: Vec::new(),
            ring: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
            blocks_left: blocks,
            total_blocks: blocks.max(1),
        }
    }
}

impl Program for CompressLike {
    fn step(
        &mut self,
        gc: &mut dyn GcHeap,
        ctx: &mut MemCtx<'_>,
    ) -> Result<ProgramStatus, OutOfMemory> {
        // Build the dictionary once: 512 small nodes.
        if self.dictionary.is_empty() {
            for _ in 0..512 {
                self.dictionary.push(gc.alloc(
                    ctx,
                    AllocKind::Scalar {
                        data_words: 6,
                        num_refs: 1,
                    },
                )?);
            }
        }
        for _ in 0..4 {
            if self.blocks_left == 0 {
                return Ok(ProgramStatus::Finished);
            }
            let work = ctx.vmm.costs().mutator_work;
            ctx.clock.advance(work * 64); // "compressing" a block
            let words = self.rng.random_range(4_096..16_384u32);
            let block = gc.alloc(ctx, AllocKind::DataArray { len: words })?;
            gc.write_data(ctx, block); // fill the buffer
                                       // Dictionary lookups: touch random entries.
            for _ in 0..32 {
                let i = self.rng.random_range(0..self.dictionary.len());
                gc.read_data(ctx, self.dictionary[i]);
            }
            self.ring.push_back(block);
            if self.ring.len() > 3 {
                gc.drop_handle(self.ring.pop_front().unwrap());
            }
            self.blocks_left -= 1;
        }
        Ok(ProgramStatus::Running)
    }

    fn name(&self) -> &str {
        "compress-like"
    }

    fn progress(&self) -> f64 {
        1.0 - self.blocks_left as f64 / self.total_blocks as f64
    }
}

/// `_209_db`-like: an immortal database of records read intensively, with
/// occasional updates that swap record payloads — a resident working set
/// the LRU must keep in memory while the transaction garbage churns.
#[derive(Debug)]
pub struct DbLike {
    /// The database: record nodes (immortal).
    records: Vec<Handle>,
    rng: StdRng,
    transactions_left: usize,
    total: usize,
    record_target: usize,
}

impl DbLike {
    /// A database of `records` records serving `transactions` lookups.
    pub fn new(records: usize, transactions: usize, seed: u64) -> DbLike {
        DbLike {
            records: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            transactions_left: transactions,
            total: transactions.max(1),
            record_target: records.max(1),
        }
    }
}

impl Program for DbLike {
    fn step(
        &mut self,
        gc: &mut dyn GcHeap,
        ctx: &mut MemCtx<'_>,
    ) -> Result<ProgramStatus, OutOfMemory> {
        // Load phase: build the database.
        if self.records.len() < self.record_target {
            for _ in 0..256 {
                if self.records.len() >= self.record_target {
                    break;
                }
                let rec = gc.alloc(
                    ctx,
                    AllocKind::Scalar {
                        data_words: 16,
                        num_refs: 2,
                    },
                )?;
                // Link each record to its predecessor (index chains).
                if let Some(&prev) = self.records.last() {
                    gc.write_ref(ctx, rec, 0, Some(prev));
                }
                self.records.push(rec);
            }
            return Ok(ProgramStatus::Running);
        }
        // Transaction phase.
        for _ in 0..128 {
            if self.transactions_left == 0 {
                return Ok(ProgramStatus::Finished);
            }
            let work = ctx.vmm.costs().mutator_work;
            ctx.clock.advance(work);
            // A lookup reads a handful of random records (a scan).
            for _ in 0..4 {
                let i = self.rng.random_range(0..self.records.len());
                gc.read_data(ctx, self.records[i]);
            }
            // A result set: short-lived.
            let result = gc.alloc(
                ctx,
                AllocKind::RefArray {
                    len: self.rng.random_range(4..16),
                },
            )?;
            let i = self.rng.random_range(0..self.records.len());
            gc.write_ref(ctx, result, 0, Some(self.records[i]));
            gc.drop_handle(result);
            // Rarely, an update: re-point a record's payload field.
            if self.rng.random::<f64>() < 0.05 {
                let payload = gc.alloc(
                    ctx,
                    AllocKind::Scalar {
                        data_words: 8,
                        num_refs: 0,
                    },
                )?;
                let i = self.rng.random_range(0..self.records.len());
                gc.write_ref(ctx, self.records[i], 1, Some(payload));
                gc.drop_handle(payload);
            }
            self.transactions_left -= 1;
        }
        Ok(ProgramStatus::Running)
    }

    fn name(&self) -> &str {
        "db-like"
    }

    fn progress(&self) -> f64 {
        1.0 - self.transactions_left as f64 / self.total as f64
    }
}

/// GCBench-style tree builder (javac-like linked structures): repeatedly
/// builds complete binary trees top-down, holds a few long-lived ones, and
/// drops the rest — deep object graphs with bulk deaths, the classic
/// stress for tracing collectors.
#[derive(Debug)]
pub struct TreeBuilder {
    long_lived: Vec<Handle>,
    iterations_left: usize,
    total: usize,
    depth: u32,
}

impl TreeBuilder {
    /// Builds `iterations` trees of `depth` levels (depth 10 ≈ 1023 nodes).
    pub fn new(iterations: usize, depth: u32, seed: u64) -> TreeBuilder {
        let _ = seed; // tree shape is deterministic; kept for signature parity
        TreeBuilder {
            long_lived: Vec::new(),
            iterations_left: iterations,
            total: iterations.max(1),
            depth: depth.clamp(2, 16),
        }
    }

    fn build_tree(
        &self,
        gc: &mut dyn GcHeap,
        ctx: &mut MemCtx<'_>,
        depth: u32,
    ) -> Result<Handle, OutOfMemory> {
        let node = gc.alloc(
            ctx,
            AllocKind::Scalar {
                data_words: 4,
                num_refs: 2,
            },
        )?;
        if depth > 1 {
            let left = self.build_tree(gc, ctx, depth - 1)?;
            let right = self.build_tree(gc, ctx, depth - 1)?;
            gc.write_ref(ctx, node, 0, Some(left));
            gc.write_ref(ctx, node, 1, Some(right));
            gc.drop_handle(left);
            gc.drop_handle(right);
        }
        Ok(node)
    }

    /// Counts nodes by walking a tree (verification helper).
    pub fn count_nodes(gc: &mut dyn GcHeap, ctx: &mut MemCtx<'_>, root: Handle) -> usize {
        let mut count = 1;
        for field in 0..2 {
            if let Some(child) = gc.read_ref(ctx, root, field) {
                count += Self::count_nodes(gc, ctx, child);
                gc.drop_handle(child);
            }
        }
        count
    }
}

impl Program for TreeBuilder {
    fn step(
        &mut self,
        gc: &mut dyn GcHeap,
        ctx: &mut MemCtx<'_>,
    ) -> Result<ProgramStatus, OutOfMemory> {
        if self.iterations_left == 0 {
            return Ok(ProgramStatus::Finished);
        }
        let work = ctx.vmm.costs().mutator_work;
        ctx.clock.advance(work * 16);
        let tree = self.build_tree(gc, ctx, self.depth)?;
        // Every 8th tree becomes long-lived; cap the long-lived set.
        if self.iterations_left.is_multiple_of(8) && self.long_lived.len() < 8 {
            self.long_lived.push(tree);
        } else {
            gc.drop_handle(tree);
        }
        self.iterations_left -= 1;
        Ok(ProgramStatus::Running)
    }

    fn name(&self) -> &str {
        "tree-builder"
    }

    fn progress(&self) -> f64 {
        1.0 - self.iterations_left as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heap::CollectKind;
    use simulate::{run, CollectorKind, RunConfig};

    fn run_program(p: Box<dyn Program>, heap: usize) -> simulate::RunResult {
        run(&RunConfig::new(CollectorKind::Bc, heap, 256 << 20), p)
    }

    #[test]
    fn compress_like_is_los_heavy() {
        let r = run_program(Box::new(CompressLike::new(200, 1)), 8 << 20);
        assert!(r.ok(), "oom={} timeout={}", r.oom, r.timed_out);
        // 200 blocks of 16-64 KiB dominate the allocation volume.
        assert!(r.gc.bytes_allocated > 200 * 16_384);
        assert!(r.gc.total_gcs() >= 1);
    }

    #[test]
    fn db_like_completes_with_resident_database() {
        let r = run_program(Box::new(DbLike::new(5_000, 50_000, 2)), 8 << 20);
        assert!(r.ok());
        // Database (5k x 72B) + transaction churn.
        assert!(r.gc.objects_allocated > 55_000);
    }

    #[test]
    fn tree_builder_reclaims_dropped_trees() {
        let r = run_program(Box::new(TreeBuilder::new(400, 10, 3)), 4 << 20);
        assert!(r.ok());
        // 400 trees x 1023 nodes (~10 MiB) but only ~8 trees stay live:
        // collections must have happened in a 4 MiB heap.
        assert!(r.gc.objects_allocated > 400_000);
        assert!(r.gc.total_gcs() >= 2);
    }

    #[test]
    fn tree_structure_survives_collection_on_every_collector() {
        for kind in [
            CollectorKind::Bc,
            CollectorKind::SemiSpace,
            CollectorKind::GenMs,
        ] {
            let mut vmm = vmm::Vmm::new(
                vmm::VmmConfig::builder().memory_bytes(64 << 20).build(),
                simtime::CostModel::default(),
            );
            let mut clock = simtime::Clock::new();
            let pid = vmm.register_process();
            let mut gc = kind.build(8 << 20, telemetry::Tracer::disabled(), &mut vmm, pid);
            let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
            let builder = TreeBuilder::new(1, 8, 0);
            let root = builder.build_tree(gc.as_mut(), &mut ctx, 8).unwrap();
            gc.collect(&mut ctx, CollectKind::Full);
            let nodes = TreeBuilder::count_nodes(gc.as_mut(), &mut ctx, root);
            assert_eq!(nodes, 255, "{kind}: tree mangled by collection");
        }
    }
}
