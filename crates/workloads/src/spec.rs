//! The benchmark catalogue (Table 1) and per-benchmark behaviour knobs.

use crate::synthetic::SyntheticProgram;

/// The shape of one benchmark: Table 1 statistics plus the behavioural
/// parameters of its synthetic analogue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name as the paper prints it.
    pub name: &'static str,
    /// Table 1 "Total Bytes Alloc".
    pub paper_total_alloc: u64,
    /// Table 1 "Min. Heap" (bytes).
    pub paper_min_heap: u64,
    /// Bytes of immortal data allocated up front and kept live throughout
    /// (pseudoJBB's warehouses, db's database, compress's dictionaries).
    pub immortal_bytes: u64,
    /// Steady-state live window, in bytes (objects die FIFO past this).
    pub live_window_bytes: u64,
    /// Fraction of allocations that enter the live window (the rest die
    /// immediately — nursery fodder).
    pub survivor_fraction: f64,
    /// Mean scalar payload, in words.
    pub mean_scalar_words: u16,
    /// Fraction of allocations that are arrays.
    pub array_fraction: f64,
    /// Mean array length, in words.
    pub mean_array_len: u32,
    /// Fraction of allocations that are large objects (> 8180 B).
    pub large_fraction: f64,
    /// Pointer stores per allocation (drives the write barrier).
    pub mutations_per_alloc: f64,
    /// Whole-object reads per allocation (drives the mutator working set).
    pub reads_per_alloc: f64,
}

impl BenchmarkSpec {
    /// Builds the runnable program at `scale` (1.0 = the paper's full
    /// allocation volume; experiments use smaller scales for quick runs —
    /// live sizes and immortal data scale alongside so heap-to-live
    /// geometry is preserved).
    pub fn program(&self, scale: f64, seed: u64) -> SyntheticProgram {
        SyntheticProgram::new(*self, scale, seed)
    }

    /// The paper's minimum heap scaled by the same factor as
    /// [`program`](BenchmarkSpec::program) scales the workload.
    pub fn scaled_min_heap(&self, scale: f64) -> usize {
        (self.paper_min_heap as f64 * scale) as usize
    }
}

/// The nine benchmarks of Table 1, in the paper's order.
pub fn table1() -> Vec<BenchmarkSpec> {
    vec![
        // SPECjvm98 _201_compress: LZW compression over large buffers —
        // dominated by big byte arrays with a small, hot dictionary.
        BenchmarkSpec {
            name: "_201_compress",
            paper_total_alloc: 109_190_172,
            paper_min_heap: 16_777_216,
            immortal_bytes: 3 << 20,
            live_window_bytes: 5 << 20,
            survivor_fraction: 0.10,
            mean_scalar_words: 8,
            array_fraction: 0.30,
            mean_array_len: 512,
            large_fraction: 0.004,
            mutations_per_alloc: 0.2,
            reads_per_alloc: 1.5,
        },
        // _202_jess: expert system — torrents of small, short-lived facts.
        BenchmarkSpec {
            name: "_202_jess",
            paper_total_alloc: 267_602_628,
            paper_min_heap: 12_582_912,
            immortal_bytes: 2 << 20,
            live_window_bytes: 3 << 20,
            survivor_fraction: 0.05,
            mean_scalar_words: 8,
            array_fraction: 0.10,
            mean_array_len: 24,
            large_fraction: 0.0,
            mutations_per_alloc: 0.5,
            reads_per_alloc: 0.8,
        },
        // _205_raytrace: scene graph + per-ray vectors.
        BenchmarkSpec {
            name: "_205_raytrace",
            paper_total_alloc: 92_381_448,
            paper_min_heap: 14_680_064,
            immortal_bytes: 4 << 20,
            live_window_bytes: 3 << 20,
            survivor_fraction: 0.06,
            mean_scalar_words: 6,
            array_fraction: 0.08,
            mean_array_len: 16,
            large_fraction: 0.0,
            mutations_per_alloc: 0.3,
            reads_per_alloc: 1.2,
        },
        // _209_db: an in-memory database read and shuffled intensively.
        BenchmarkSpec {
            name: "_209_db",
            paper_total_alloc: 61_216_580,
            paper_min_heap: 19_922_944,
            immortal_bytes: 9 << 20,
            live_window_bytes: 1 << 20,
            survivor_fraction: 0.04,
            mean_scalar_words: 10,
            array_fraction: 0.15,
            mean_array_len: 32,
            large_fraction: 0.0,
            mutations_per_alloc: 0.4,
            reads_per_alloc: 3.0,
        },
        // _213_javac: compiler — linked ASTs with real medium lifetimes.
        BenchmarkSpec {
            name: "_213_javac",
            paper_total_alloc: 181_468_984,
            paper_min_heap: 19_922_944,
            immortal_bytes: 3 << 20,
            live_window_bytes: 7 << 20,
            survivor_fraction: 0.15,
            mean_scalar_words: 9,
            array_fraction: 0.12,
            mean_array_len: 24,
            large_fraction: 0.001,
            mutations_per_alloc: 0.8,
            reads_per_alloc: 1.0,
        },
        // _228_jack: parser generator — short-lived token objects.
        BenchmarkSpec {
            name: "_228_jack",
            paper_total_alloc: 250_486_124,
            paper_min_heap: 11_534_336,
            immortal_bytes: 2 << 20,
            live_window_bytes: 5 << 20 >> 1, // 2.5 MB
            survivor_fraction: 0.04,
            mean_scalar_words: 7,
            array_fraction: 0.10,
            mean_array_len: 20,
            large_fraction: 0.0,
            mutations_per_alloc: 0.4,
            reads_per_alloc: 0.7,
        },
        // DaCapo ipsixql: XML queries — allocation-heavy, short-lived.
        BenchmarkSpec {
            name: "ipsixql",
            paper_total_alloc: 350_889_840,
            paper_min_heap: 11_534_336,
            immortal_bytes: 2 << 20,
            live_window_bytes: 5 << 20 >> 1,
            survivor_fraction: 0.03,
            mean_scalar_words: 8,
            array_fraction: 0.15,
            mean_array_len: 28,
            large_fraction: 0.0005,
            mutations_per_alloc: 0.4,
            reads_per_alloc: 0.8,
        },
        // DaCapo jython: interpreter — the heaviest allocator of the suite.
        BenchmarkSpec {
            name: "jython",
            paper_total_alloc: 770_632_824,
            paper_min_heap: 11_534_336,
            immortal_bytes: 2 << 20,
            live_window_bytes: 5 << 20 >> 1,
            survivor_fraction: 0.02,
            mean_scalar_words: 7,
            array_fraction: 0.12,
            mean_array_len: 16,
            large_fraction: 0.0,
            mutations_per_alloc: 0.6,
            reads_per_alloc: 0.6,
        },
        // pseudoJBB: "initially allocates a few immortal objects and then
        // allocates only short-lived objects" (§5.3.2) — warehouse data
        // plus transaction churn. The only benchmark with a significant
        // footprint (§5).
        BenchmarkSpec {
            name: "pseudoJBB",
            paper_total_alloc: 233_172_290,
            paper_min_heap: 35_651_584,
            immortal_bytes: 16 << 20,
            live_window_bytes: 6 << 20,
            survivor_fraction: 0.15,
            mean_scalar_words: 10,
            array_fraction: 0.20,
            mean_array_len: 48,
            large_fraction: 0.0008,
            mutations_per_alloc: 0.6,
            reads_per_alloc: 0.4,
        },
    ]
}

/// Looks a benchmark up by name.
pub fn spec(name: &str) -> Option<BenchmarkSpec> {
    table1().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let t = table1();
        assert_eq!(t.len(), 9);
        let total: u64 = t.iter().map(|b| b.paper_total_alloc).sum();
        assert_eq!(total, 2_317_040_890, "Table 1 allocation volumes changed");
        // Paper values spot-checked.
        assert_eq!(spec("_209_db").unwrap().paper_total_alloc, 61_216_580);
        assert_eq!(spec("pseudoJBB").unwrap().paper_min_heap, 35_651_584);
        assert_eq!(spec("jython").unwrap().paper_total_alloc, 770_632_824);
        assert!(spec("_999_nope").is_none());
    }

    #[test]
    fn knobs_are_sane() {
        for b in table1() {
            assert!(
                b.survivor_fraction > 0.0 && b.survivor_fraction < 0.5,
                "{}",
                b.name
            );
            assert!(b.array_fraction >= 0.0 && b.array_fraction < 1.0);
            assert!(
                b.large_fraction < 0.01,
                "{}: too many large objects",
                b.name
            );
            assert!(
                b.immortal_bytes + b.live_window_bytes < b.paper_min_heap,
                "{}: live exceeds the paper's min heap",
                b.name
            );
            assert!(b.mean_scalar_words >= 3);
        }
    }

    #[test]
    fn pseudo_jbb_is_immortal_plus_short_lived() {
        // §5.3.2's description constrains the shape.
        let pj = spec("pseudoJBB").unwrap();
        assert!(pj.immortal_bytes >= 8 << 20);
        assert!(
            pj.live_window_bytes < pj.immortal_bytes / 2,
            "transactions must be small next to the warehouses"
        );
        assert!(pj.survivor_fraction <= 0.2);
    }

    #[test]
    fn scaled_min_heap_scales() {
        let pj = spec("pseudoJBB").unwrap();
        assert_eq!(pj.scaled_min_heap(0.5), 17_825_792);
        assert_eq!(pj.scaled_min_heap(1.0), 35_651_584);
    }
}
