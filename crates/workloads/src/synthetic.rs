//! The synthetic mutator: a seeded allocation/mutation/read loop shaped by
//! a [`BenchmarkSpec`].

use std::collections::VecDeque;

use heap::{AllocKind, GcHeap, Handle, MemCtx, OutOfMemory};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simulate::{Program, ProgramStatus};

use crate::spec::BenchmarkSpec;

/// Allocations per engine step (bounded so the engine can interleave
/// processes and pump the VMM).
const BATCH: usize = 256;

/// One live object the program is holding.
#[derive(Clone, Copy, Debug)]
struct Held {
    handle: Handle,
    /// Reference slots available for linking.
    ref_slots: u32,
    bytes: u32,
}

/// A deterministic synthetic benchmark program. See the
/// [crate docs](crate) for the modelling rationale.
#[derive(Debug)]
pub struct SyntheticProgram {
    spec: BenchmarkSpec,
    name: String,
    rng: StdRng,
    /// Bytes left to allocate.
    remaining: u64,
    total: u64,
    /// The immortal set (allocated during the prelude, never dropped).
    immortal: Vec<Held>,
    immortal_target: u64,
    immortal_bytes: u64,
    /// The FIFO live window.
    window: VecDeque<Held>,
    window_bytes: u64,
    window_target: u64,
    /// Observability counters (distribution tests, reports).
    counts: AllocCounts,
}

/// How the generator's allocations were distributed (for calibration
/// checks and reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocCounts {
    /// Total objects allocated.
    pub total: u64,
    /// Arrays (reference or data).
    pub arrays: u64,
    /// Large objects (> 8180 bytes).
    pub large: u64,
    /// Allocations routed to the live window (survivors).
    pub survivors: u64,
    /// Allocations dropped immediately (short-lived).
    pub short_lived: u64,
}

impl SyntheticProgram {
    /// Builds the program at `scale` of the paper's allocation volume.
    pub fn new(spec: BenchmarkSpec, scale: f64, seed: u64) -> SyntheticProgram {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let total = (spec.paper_total_alloc as f64 * scale) as u64;
        SyntheticProgram {
            name: spec.name.to_string(),
            rng: StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            remaining: total,
            total,
            immortal: Vec::new(),
            immortal_target: (spec.immortal_bytes as f64 * scale) as u64,
            immortal_bytes: 0,
            window: VecDeque::new(),
            window_bytes: 0,
            window_target: (spec.live_window_bytes as f64 * scale) as u64,
            counts: AllocCounts::default(),
            spec,
        }
    }

    /// Draws an allocation kind from the spec's distributions.
    fn draw_kind(&mut self) -> AllocKind {
        if self.spec.large_fraction > 0.0 && self.rng.random::<f64>() < self.spec.large_fraction {
            // A large object: 2–6 pages.
            let len = self.rng.random_range(2_100..6_000);
            return AllocKind::DataArray { len };
        }
        if self.rng.random::<f64>() < self.spec.array_fraction {
            let mean = self.spec.mean_array_len.max(2);
            let len = self.rng.random_range(mean / 2..mean * 2).max(1);
            if self.rng.random::<f64>() < 0.3 {
                AllocKind::RefArray { len }
            } else {
                AllocKind::DataArray { len }
            }
        } else {
            let mean = self.spec.mean_scalar_words.max(3);
            let words = self.rng.random_range(mean / 2..mean * 2).max(2);
            let refs = self.rng.random_range(1..=words.min(4));
            AllocKind::Scalar {
                data_words: words,
                num_refs: refs,
            }
        }
    }

    fn ref_slots(kind: AllocKind) -> u32 {
        match kind {
            AllocKind::Scalar { num_refs, .. } => num_refs as u32,
            AllocKind::RefArray { len } => len,
            AllocKind::DataArray { .. } => 0,
        }
    }

    /// Links `new` from a random holder in the window (builds the old→young
    /// edges the write barrier exists for).
    fn link_from_window(&mut self, gc: &mut dyn GcHeap, ctx: &mut MemCtx<'_>, new: &Held) {
        if self.window.is_empty() {
            return;
        }
        let i = self.rng.random_range(0..self.window.len());
        let src = self.window[i];
        if src.ref_slots > 0 {
            let field = self.rng.random_range(0..src.ref_slots);
            gc.write_ref(ctx, src.handle, field, Some(new.handle));
        }
    }

    fn random_mutation(&mut self, gc: &mut dyn GcHeap, ctx: &mut MemCtx<'_>) {
        let pool_len = self.window.len() + self.immortal.len();
        if pool_len < 2 {
            return;
        }
        let pick = |rng: &mut StdRng, w: &VecDeque<Held>, im: &Vec<Held>| {
            let i = rng.random_range(0..w.len() + im.len());
            if i < w.len() {
                w[i]
            } else {
                im[i - w.len()]
            }
        };
        let src = pick(&mut self.rng, &self.window, &self.immortal);
        let dst = pick(&mut self.rng, &self.window, &self.immortal);
        if src.ref_slots > 0 {
            let field = self.rng.random_range(0..src.ref_slots);
            let clear = self.rng.random::<f64>() < 0.2;
            gc.write_ref(ctx, src.handle, field, (!clear).then_some(dst.handle));
        }
    }

    fn random_read(&mut self, gc: &mut dyn GcHeap, ctx: &mut MemCtx<'_>) {
        // Reads favour the immortal working set (2:1), as a real
        // application's hot data would.
        let use_immortal = !self.immortal.is_empty()
            && (self.window.is_empty() || self.rng.random::<f64>() < 0.67);
        let held = if use_immortal {
            self.immortal[self.rng.random_range(0..self.immortal.len())]
        } else if !self.window.is_empty() {
            self.window[self.rng.random_range(0..self.window.len())]
        } else {
            return;
        };
        gc.read_data(ctx, held.handle);
    }

    /// Allocates one object and routes it to the immortal set, the live
    /// window, or immediate death.
    fn allocate_one(
        &mut self,
        gc: &mut dyn GcHeap,
        ctx: &mut MemCtx<'_>,
    ) -> Result<(), OutOfMemory> {
        let kind = self.draw_kind();
        let bytes = kind.size_bytes();
        self.counts.total += 1;
        if kind.object_kind().is_array() {
            self.counts.arrays += 1;
        }
        if bytes > heap::MAX_SMALL_OBJECT_BYTES {
            self.counts.large += 1;
        }
        // The application's own compute between allocations.
        let work = ctx.vmm.costs().mutator_work;
        ctx.clock.advance(work);
        let handle = gc.alloc(ctx, kind)?;
        let held = Held {
            handle,
            ref_slots: Self::ref_slots(kind),
            bytes,
        };
        self.remaining = self.remaining.saturating_sub(bytes as u64);
        // Prelude: build the immortal set first.
        if self.immortal_bytes < self.immortal_target {
            self.immortal_bytes += bytes as u64;
            self.immortal.push(held);
            return Ok(());
        }
        if self.rng.random::<f64>() < self.spec.survivor_fraction {
            self.counts.survivors += 1;
            self.link_from_window(gc, ctx, &held);
            self.window.push_back(held);
            self.window_bytes += bytes as u64;
            while self.window_bytes > self.window_target {
                let dead = self.window.pop_front().expect("window non-empty");
                self.window_bytes -= dead.bytes as u64;
                gc.drop_handle(dead.handle);
            }
        } else {
            // Short-lived: dies at once (nursery fodder).
            self.counts.short_lived += 1;
            gc.drop_handle(held.handle);
        }
        // Mutations and reads, per the spec's rates.
        if self.rng.random::<f64>() < self.spec.mutations_per_alloc.fract()
            || self.spec.mutations_per_alloc >= 1.0
        {
            let n = self.spec.mutations_per_alloc as usize + 1;
            for _ in 0..n.min(4) {
                self.random_mutation(gc, ctx);
            }
        }
        if self.rng.random::<f64>() < self.spec.reads_per_alloc.fract()
            || self.spec.reads_per_alloc >= 1.0
        {
            let n = self.spec.reads_per_alloc as usize + 1;
            for _ in 0..n.min(4) {
                self.random_read(gc, ctx);
            }
        }
        Ok(())
    }

    /// Current live bytes the program itself is holding (window + immortal).
    pub fn held_bytes(&self) -> u64 {
        self.window_bytes + self.immortal_bytes
    }

    /// The allocation-mix counters accumulated so far.
    pub fn counts(&self) -> AllocCounts {
        self.counts
    }
}

impl Program for SyntheticProgram {
    fn step(
        &mut self,
        gc: &mut dyn GcHeap,
        ctx: &mut MemCtx<'_>,
    ) -> Result<ProgramStatus, OutOfMemory> {
        for _ in 0..BATCH {
            if self.remaining == 0 {
                return Ok(ProgramStatus::Finished);
            }
            self.allocate_one(gc, ctx)?;
        }
        Ok(ProgramStatus::Running)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn progress(&self) -> f64 {
        1.0 - self.remaining as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{spec, table1};
    use simulate::{run, CollectorKind, RunConfig};

    #[test]
    fn program_is_deterministic() {
        let b = spec("_202_jess").unwrap();
        let run_once = |seed| {
            let config = RunConfig::new(CollectorKind::GenMs, 4 << 20, 64 << 20);
            let r = run(&config, Box::new(b.program(0.02, seed)));
            (r.exec_time, r.gc.objects_allocated, r.gc.total_gcs())
        };
        assert_eq!(run_once(7), run_once(7), "same seed, same run");
        assert_ne!(
            run_once(7).1,
            run_once(8).1,
            "different seeds should differ"
        );
    }

    #[test]
    fn allocation_volume_matches_scale() {
        let b = spec("_209_db").unwrap();
        let config = RunConfig::new(CollectorKind::GenMs, 8 << 20, 64 << 20);
        let r = run(&config, Box::new(b.program(0.05, 1)));
        assert!(r.ok());
        let want = (b.paper_total_alloc as f64 * 0.05) as u64;
        let got = r.gc.bytes_allocated;
        let err = (got as f64 - want as f64).abs() / want as f64;
        assert!(err < 0.01, "allocated {got}, wanted ~{want}");
    }

    #[test]
    fn every_benchmark_completes_on_every_collector_at_small_scale() {
        for b in table1() {
            for kind in [
                CollectorKind::Bc,
                CollectorKind::GenMs,
                CollectorKind::SemiSpace,
            ] {
                // Heap: 2x the scaled min heap estimate.
                let heap = (b.scaled_min_heap(0.02) * 4).max(2 << 20);
                let config = RunConfig::new(kind, heap, 256 << 20);
                let r = run(&config, Box::new(b.program(0.02, 11)));
                assert!(
                    r.ok(),
                    "{} on {kind}: oom={} timeout={}",
                    b.name,
                    r.oom,
                    r.timed_out
                );
                assert!(r.gc.objects_allocated > 100);
            }
        }
    }

    #[test]
    fn live_window_respects_target() {
        let b = spec("pseudoJBB").unwrap();
        let p = b.program(0.05, 3);
        // Window target scales: 2 MB * 0.05 = ~105 KB.
        let config = RunConfig::new(CollectorKind::GenMs, 8 << 20, 128 << 20);
        let _ = run(&config, Box::new(b.program(0.05, 3)));
        // held_bytes is only visible pre-run here; construct and step a bit
        // through a raw engine instead.
        assert_eq!(p.held_bytes(), 0);
        assert!(p.progress() < 1e-9);
    }
}

#[cfg(test)]
mod distribution_tests {
    use super::*;
    use crate::spec::table1;
    use simtime::{Clock, CostModel};
    use simulate::CollectorKind;
    use vmm::{Vmm, VmmConfig};

    /// Drives a program to completion against a generously sized heap and
    /// returns its counters.
    fn run_and_count(spec: crate::BenchmarkSpec, scale: f64) -> AllocCounts {
        let mut vmm = Vmm::new(
            VmmConfig::builder().memory_bytes(512 << 20).build(),
            CostModel::default(),
        );
        let mut clock = Clock::new();
        let pid = vmm.register_process();
        let mut gc =
            CollectorKind::GenMs.build(64 << 20, telemetry::Tracer::disabled(), &mut vmm, pid);
        let mut p = spec.program(scale, 99);
        loop {
            let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
            match p.step(gc.as_mut(), &mut ctx).unwrap() {
                ProgramStatus::Running => {}
                ProgramStatus::Finished => break,
            }
        }
        p.counts()
    }

    #[test]
    fn allocation_mix_tracks_the_spec() {
        for spec in table1() {
            let c = run_and_count(spec, 0.01);
            assert!(c.total > 1_000, "{}: too few allocations", spec.name);
            let array_rate = c.arrays as f64 / c.total as f64;
            assert!(
                (array_rate - spec.array_fraction).abs() < 0.05,
                "{}: array rate {array_rate:.3} vs spec {:.3}",
                spec.name,
                spec.array_fraction
            );
            let large_rate = c.large as f64 / c.total as f64;
            assert!(
                (large_rate - spec.large_fraction).abs() < 0.01,
                "{}: large rate {large_rate:.4} vs spec {:.4}",
                spec.name,
                spec.large_fraction
            );
            // Survivor routing only applies after the immortal prelude.
            let routed = c.survivors + c.short_lived;
            if routed > 1_000 {
                let survivor_rate = c.survivors as f64 / routed as f64;
                assert!(
                    (survivor_rate - spec.survivor_fraction).abs() < 0.05,
                    "{}: survivor rate {survivor_rate:.3} vs spec {:.3}",
                    spec.name,
                    spec.survivor_fraction
                );
            }
        }
    }
}
