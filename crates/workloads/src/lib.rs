//! Synthetic benchmark programs calibrated to Table 1 of *Garbage
//! Collection Without Paging*.
//!
//! The paper evaluates on SPECjvm98 (`_201_compress`, `_202_jess`,
//! `_205_raytrace`, `_209_db`, `_213_javac`, `_228_jack`), two DaCapo
//! benchmarks (`ipsixql`, `jython`), and pseudoJBB — "a fixed-workload
//! variant of SPECjbb". Those Java programs (and the Jikes RVM that ran
//! them) are not reproducible inside a deterministic simulator, so this
//! crate provides **synthetic analogues**: seeded allocation-and-mutation
//! programs whose
//!
//! * total allocation volume matches Table 1 exactly (scaled by a runtime
//!   factor for quick runs),
//! * steady-state live size, object-size mix, and lifetime shape are tuned
//!   to the benchmark's published character (e.g. pseudoJBB "initially
//!   allocates a few immortal objects and then allocates only short-lived
//!   objects", §5.3.2; `_201_compress` works through large buffers;
//!   `_209_db` keeps a resident database it reads intensively).
//!
//! What the experiments measure — collector/VMM interaction under
//! allocation load, live-set pressure, and reference locality — survives
//! this substitution; absolute throughput numbers do not (see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use workloads::{spec, table1};
//!
//! let pj = spec("pseudoJBB").unwrap();
//! assert_eq!(pj.paper_total_alloc, 233_172_290);
//! assert_eq!(table1().len(), 9);
//! let mut program = pj.program(0.01, 42); // 1% scale, seeded
//! ```

#![warn(missing_docs)]

pub mod programs;
mod spec;
mod synthetic;

pub use programs::{CompressLike, DbLike, TreeBuilder};
pub use spec::{spec, table1, BenchmarkSpec};
pub use synthetic::{AllocCounts, SyntheticProgram};
