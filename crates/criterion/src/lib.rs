//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the subset of the criterion 0.8 API its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::finish`],
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — per-sample wall-clock means with a
//! min/mean/max summary line — because the workspace's benchmarks report
//! *simulated* time through their own tables; the harness timing is
//! secondary. No warm-up phase, outlier rejection, or plotting.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (an alias of the std hint).
pub use std::hint::black_box;

/// Number of timed samples per benchmark unless overridden.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sampled(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed);
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "bench {id:<48} samples {sample_size:>3}  min {min:>12?}  mean {mean:>12?}  max {max:>12?}"
    );
}

/// The benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_sampled(id, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_sampled(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
