//! Collector-specific behavioural tests, including the paper's core claim
//! about VM-oblivious collectors: their collections touch evicted pages and
//! cascade into page faults.

use collectors::{CopyMs, GenCopy, GenMs, MarkSweep, SemiSpace};
use heap::{AllocKind, CollectKind, GcHeap, Handle, HeapConfig, MemCtx};
use simtime::{Clock, CostModel};
use vmm::{ProcessId, Vmm, VmmConfig};

fn env(memory_bytes: usize) -> (Vmm, Clock, ProcessId, ProcessId) {
    let mut config = VmmConfig::builder().memory_bytes(memory_bytes).build();
    config.low_watermark = 16;
    config.high_watermark = 32;
    let mut vmm = Vmm::new(config, CostModel::default());
    let pid = vmm.register_process();
    let hog = vmm.register_process();
    (vmm, Clock::new(), pid, hog)
}

fn node() -> AllocKind {
    AllocKind::Scalar {
        data_words: 3,
        num_refs: 1,
    }
}

fn build_list<G: GcHeap>(gc: &mut G, ctx: &mut MemCtx<'_>, n: usize) -> Handle {
    let head = gc.alloc(ctx, node()).unwrap();
    let mut cur = gc.dup_handle(head);
    for _ in 1..n {
        let next = gc.alloc(ctx, node()).unwrap();
        gc.write_ref(ctx, cur, 0, Some(next));
        gc.drop_handle(cur);
        cur = next;
    }
    gc.drop_handle(cur);
    head
}

fn walk<G: GcHeap>(gc: &mut G, ctx: &mut MemCtx<'_>, head: Handle) -> usize {
    let mut len = 1;
    let mut cur = gc.dup_handle(head);
    while let Some(next) = gc.read_ref(ctx, cur, 0) {
        gc.drop_handle(cur);
        cur = next;
        len += 1;
    }
    gc.drop_handle(cur);
    len
}

/// §1: "During full-heap collections, most existing garbage collectors
/// touch pages without regard to which pages are resident in memory …
/// visiting these pages during a collection triggers a cascade of page
/// faults". MarkSweep's sweep must fault once its heap is partly evicted.
#[test]
fn oblivious_full_collection_faults_on_evicted_pages() {
    let (mut vmm, mut clock, pid, hog) = env(2 << 20); // 512 frames
    let mut gc = MarkSweep::new(HeapConfig::builder().heap_bytes(1 << 20).build());
    let head = {
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        build_list(&mut gc, &mut ctx, 15_000) // ~300 KiB across ~90 pages
    };
    // Squeeze: pin pages until the collector's heap is partially evicted.
    let mut pinned = 0;
    while vmm.stats(pid).evictions < 30 && vmm.free_frames() > 8 {
        vmm.mlock(hog, vmm::VirtPage::new(pinned), &mut clock);
        pinned += 1;
        vmm.pump(&mut clock);
    }
    assert!(vmm.stats(pid).evictions >= 30, "never evicted enough");
    let faults_before = vmm.stats(pid).major_faults;
    {
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        gc.collect(&mut ctx, CollectKind::Full);
    }
    let collector_faults = vmm.stats(pid).major_faults - faults_before;
    assert!(
        collector_faults >= 20,
        "MarkSweep's collection should cascade into faults, saw {collector_faults}"
    );
    // Data intact regardless.
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
    assert_eq!(walk(&mut gc, &mut ctx, head), 15_000);
}

/// SemiSpace alternates directions: two flips return survivors to the
/// original semispace region.
#[test]
fn semispace_flips_alternate_regions() {
    let (mut vmm, mut clock, pid, _hog) = env(64 << 20);
    let mut gc = SemiSpace::new(HeapConfig::builder().heap_bytes(4 << 20).build());
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
    let head = build_list(&mut gc, &mut ctx, 100);
    let moved0 = gc.stats().objects_moved;
    gc.collect(&mut ctx, CollectKind::Full);
    let moved1 = gc.stats().objects_moved;
    gc.collect(&mut ctx, CollectKind::Full);
    let moved2 = gc.stats().objects_moved;
    // Each flip copies all 100 live objects.
    assert_eq!(moved1 - moved0, 100);
    assert_eq!(moved2 - moved1, 100);
    assert_eq!(walk(&mut gc, &mut ctx, head), 100);
}

/// GenCopy's full collections evacuate the mature space (semispace style),
/// unlike GenMS whose mature objects are marked in place.
#[test]
fn gencopy_major_moves_mature_objects_but_genms_does_not() {
    let (mut vmm, mut clock, pid, _hog) = env(64 << 20);
    // GenCopy: promote, then a major GC moves the promoted objects again.
    let mut gencopy = GenCopy::new(HeapConfig::builder().heap_bytes(4 << 20).build());
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
    let h1 = build_list(&mut gencopy, &mut ctx, 100);
    gencopy.collect(&mut ctx, CollectKind::Minor); // promote
    let after_minor = gencopy.stats().objects_moved;
    gencopy.collect(&mut ctx, CollectKind::Full); // mature semispace copy
    assert_eq!(gencopy.stats().objects_moved, after_minor + 100);
    assert_eq!(walk(&mut gencopy, &mut ctx, h1), 100);
    // GenMS: a major GC marks mature objects in place (no further moves).
    let pid2 = ctx.vmm.register_process();
    let _ = ctx;
    let mut genms = GenMs::new(HeapConfig::builder().heap_bytes(4 << 20).build());
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid2);
    let h2 = build_list(&mut genms, &mut ctx, 100);
    genms.collect(&mut ctx, CollectKind::Minor);
    let after_minor = genms.stats().objects_moved;
    genms.collect(&mut ctx, CollectKind::Full);
    assert_eq!(genms.stats().objects_moved, after_minor);
    assert_eq!(walk(&mut genms, &mut ctx, h2), 100);
}

/// CopyMS's copy space empties at every collection; repeated collections
/// with a stable live set move nothing after the first.
#[test]
fn copyms_steady_state_stops_copying() {
    let (mut vmm, mut clock, pid, _hog) = env(64 << 20);
    let mut gc = CopyMs::new(HeapConfig::builder().heap_bytes(4 << 20).build());
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
    let head = build_list(&mut gc, &mut ctx, 200);
    gc.collect(&mut ctx, CollectKind::Full);
    let moved = gc.stats().objects_moved;
    for _ in 0..3 {
        gc.collect(&mut ctx, CollectKind::Full);
    }
    assert_eq!(gc.stats().objects_moved, moved, "mature objects re-copied");
    assert_eq!(walk(&mut gc, &mut ctx, head), 200);
}

/// Handle churn: thousands of dup/drop cycles neither leak roots nor
/// confuse identity.
#[test]
fn handle_churn_is_stable() {
    let (mut vmm, mut clock, pid, _hog) = env(64 << 20);
    let mut gc = GenMs::new(HeapConfig::builder().heap_bytes(4 << 20).build());
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
    let obj = gc.alloc(&mut ctx, node()).unwrap();
    let mut dups = Vec::new();
    for i in 0..10_000 {
        dups.push(gc.dup_handle(obj));
        if i % 3 == 0 {
            let h = dups.swap_remove(0);
            gc.drop_handle(h);
        }
        if i % 100 == 0 {
            gc.collect(
                &mut ctx,
                if i % 500 == 0 {
                    CollectKind::Full
                } else {
                    CollectKind::Minor
                },
            );
        }
    }
    for &d in &dups {
        assert!(gc.same_object(d, obj));
    }
    for d in dups {
        gc.drop_handle(d);
    }
    gc.drop_handle(obj);
}

/// Large objects keep their identity (LOS objects never move) while
/// everything around them is copied.
#[test]
fn los_objects_are_pinned_across_copying_collections() {
    let (mut vmm, mut clock, pid, _hog) = env(64 << 20);
    let mut gc = SemiSpace::new(HeapConfig::builder().heap_bytes(8 << 20).build());
    let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
    let big = gc
        .alloc(&mut ctx, AllocKind::RefArray { len: 4000 })
        .unwrap();
    let small = gc.alloc(&mut ctx, node()).unwrap();
    gc.write_ref(&mut ctx, big, 0, Some(small));
    gc.write_ref(&mut ctx, big, 3999, Some(big)); // self-reference
    for _ in 0..3 {
        gc.collect(&mut ctx, CollectKind::Full);
    }
    let loaded = gc.read_ref(&mut ctx, big, 3999).expect("self ref");
    assert!(gc.same_object(loaded, big), "large object moved");
    assert!(gc.read_ref(&mut ctx, big, 0).is_some());
}
