//! The baseline garbage collectors of *Garbage Collection Without Paging*.
//!
//! The paper evaluates the bookmarking collector against five collectors
//! shipped with Jikes RVM / MMTk (§5):
//!
//! | Collector | Structure |
//! |-----------|-----------|
//! | [`MarkSweep`]  | whole-heap, segregated-fit free lists |
//! | [`SemiSpace`]  | whole-heap copying with a 2× copy reserve |
//! | [`GenCopy`]    | Appel generational, copying mature space |
//! | [`GenMs`]      | Appel generational, mark-sweep mature space |
//! | [`CopyMs`]     | "a variant of GenMS which performs only whole-heap garbage collections" |
//!
//! The generational collectors also come in the fixed-size-nursery variants
//! of §5.3.2 (4 MB nurseries) via
//! [`NurseryPolicy::FIXED_4MB`](heap::NurseryPolicy::FIXED_4MB).
//!
//! All five are **VM-oblivious**: they never register for paging
//! notifications and touch heap pages without regard to residency — the
//! behaviour whose consequences the paper measures. They share the
//! [`heap`] substrate (object model, spaces, roots, remsets) and implement
//! the mutator-facing [`GcHeap`](heap::GcHeap) trait.

#![warn(missing_docs)]

pub(crate) mod common;
mod copyms;
mod gencopy;
mod genms;
mod marksweep;
mod semispace;

pub use copyms::CopyMs;
pub use gencopy::GenCopy;
pub use genms::GenMs;
pub use marksweep::MarkSweep;
pub use semispace::SemiSpace;

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers shared by the per-collector test modules.

    use heap::{AllocKind, GcHeap, Handle, MemCtx};
    use simtime::{Clock, CostModel};
    use vmm::{ProcessId, Vmm, VmmConfig};

    /// A VMM + clock + registered process for driving a collector.
    pub struct TestEnv {
        pub vmm: Vmm,
        pub clock: Clock,
        pub pid: ProcessId,
    }

    /// An environment with `memory_bytes` of physical memory (ample by
    /// default so paging does not perturb algorithmic tests).
    pub fn env(memory_bytes: usize) -> TestEnv {
        let mut vmm = Vmm::new(
            VmmConfig::builder().memory_bytes(memory_bytes).build(),
            CostModel::default(),
        );
        let pid = vmm.register_process();
        TestEnv {
            vmm,
            clock: Clock::new(),
            pid,
        }
    }

    /// A 3-word scalar whose first field links to the next node.
    pub fn list_kind() -> AllocKind {
        AllocKind::Scalar {
            data_words: 3,
            num_refs: 1,
        }
    }

    /// Builds a singly linked list of `n` nodes, returning the rooted head.
    pub fn make_list<G: GcHeap>(gc: &mut G, ctx: &mut MemCtx<'_>, n: usize, _tag: u32) -> Handle {
        assert!(n >= 1);
        let head = gc.alloc(ctx, list_kind()).expect("alloc list head");
        let mut cur = gc.dup_handle(head);
        for _ in 1..n {
            let node = gc.alloc(ctx, list_kind()).expect("alloc list node");
            gc.write_ref(ctx, cur, 0, Some(node));
            gc.drop_handle(cur);
            cur = node;
        }
        gc.drop_handle(cur);
        head
    }

    /// Walks a list built by [`make_list`], returning its length.
    pub fn list_len<G: GcHeap>(gc: &mut G, ctx: &mut MemCtx<'_>, head: Handle) -> usize {
        let mut len = 1;
        let mut cur = gc.dup_handle(head);
        while let Some(next) = gc.read_ref(ctx, cur, 0) {
            gc.drop_handle(cur);
            cur = next;
            len += 1;
        }
        gc.drop_handle(cur);
        len
    }
}

/// Convenience aliases matching the paper's collector names.
pub mod names {
    /// The paper calls [`crate::MarkSweep`] "MarkSweep".
    pub const MARK_SWEEP: &str = "MarkSweep";
    /// The paper calls [`crate::SemiSpace`] "SemiSpace".
    pub const SEMI_SPACE: &str = "SemiSpace";
    /// The paper calls [`crate::GenCopy`] "GenCopy".
    pub const GEN_COPY: &str = "GenCopy";
    /// The paper calls [`crate::GenMs`] `GenMS`.
    pub const GEN_MS: &str = "GenMS";
    /// The paper calls [`crate::CopyMs`] `CopyMS`.
    pub const COPY_MS: &str = "CopyMS";
}
