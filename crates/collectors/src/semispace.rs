//! Whole-heap copying collection with two semispaces.

use heap::object::HEADER_BYTES;
use heap::{
    Address, AllocKind, BumpSpace, Classified, CollectKind, GcHeap, GcStats, Handle, HeapConfig,
    InjectFault, LargeObjectSpace, MemCtx, OutOfMemory, ShadowSpec, BYTES_PER_PAGE,
};
use simtime::{PauseKind, PauseLog};
use telemetry::{GcPhase, Tracer};
use vmm::Access;

use crate::common::{drain_gray, forward_roots, is_large, Core, Forwarder};

/// The paper's **SemiSpace** baseline: a single-generation copying
/// collector with a 2× copy reserve.
///
/// Allocation bumps through the *from* space; collection Cheney-copies live
/// objects into the *to* space and flips. Large objects are mark-swept in
/// the shared large object space.
///
/// Because half the heap is reserve, SemiSpace's footprint is large — but
/// under moderate pressure it can transiently do well (§5.3.1: "Although
/// SemiSpace outperforms BC at the 80–95MB heap sizes, its execution time
/// goes off the chart soon after"), because LRU eviction takes the dead
/// half while it allocates in the other.
#[derive(Debug)]
pub struct SemiSpace {
    core: Core,
    space_a: BumpSpace,
    space_b: BumpSpace,
    from_is_a: bool,
    los: LargeObjectSpace,
}

impl SemiSpace {
    /// Creates a SemiSpace heap with the given configuration.
    pub fn new(config: HeapConfig) -> SemiSpace {
        let l = config.layout;
        SemiSpace {
            core: Core::new(config),
            space_a: BumpSpace::new(l.space_a.0, l.space_a.1),
            space_b: BumpSpace::new(l.space_b.0, l.space_b.1),
            from_is_a: true,
            los: LargeObjectSpace::new(l.los.0, l.los.1),
        }
    }

    // Semispace jargon, not a conversion constructor.
    #[allow(clippy::wrong_self_convention)]
    fn from_space(&mut self) -> &mut BumpSpace {
        if self.from_is_a {
            &mut self.space_a
        } else {
            &mut self.space_b
        }
    }

    fn los_pages(&self) -> usize {
        let from_extent = if self.from_is_a {
            self.space_a.extent_pages()
        } else {
            self.space_b.extent_pages()
        };
        self.core.pool.used().saturating_sub(from_extent)
    }

    /// Half of the non-LOS budget: the copy reserve bound on from-space.
    fn copy_limit_bytes(&self) -> u64 {
        let pages = self.core.pool.budget().saturating_sub(self.los_pages());
        (pages as u64 * BYTES_PER_PAGE as u64) / 2
    }

    fn alloc_raw(&mut self, kind: AllocKind) -> Option<Address> {
        let size = kind.size_bytes();
        if is_large(kind) {
            return self.los.alloc(&mut self.core.pool, size);
        }
        if self.from_space().used_bytes() as u64 + size as u64 > self.copy_limit_bytes() {
            return None; // trigger collection: preserve the copy reserve
        }
        let pool = &mut self.core.pool;
        if self.from_is_a {
            self.space_a.alloc(pool, size)
        } else {
            self.space_b.alloc(pool, size)
        }
    }

    /// Shadow re-trace: live data sits in `live` (the to-space before the
    /// flip, the new from-space after), everything else in the semispace
    /// regions is condemned.
    fn sanitize_shadow(&mut self, phase: &'static str, condemned: &'static str, marked: bool) {
        let live = if self.from_is_a == (phase == "after-collection") {
            &self.space_a
        } else {
            &self.space_b
        };
        let los = &self.los;
        let spec = ShadowSpec {
            collector: crate::names::SEMI_SPACE,
            phase,
            classify: &|a| {
                if live.contains_allocated(a) || los.is_live_object(a) {
                    Classified::Live
                } else {
                    Classified::Condemned(condemned)
                }
            },
            resident: &|_, _| true,
            // Copied survivors are never marked; only traced LOS objects
            // carry the bit, and the LOS sweep clears it again.
            expect_marked: &move |a| marked && los.region_contains(a),
        };
        self.core.sanitize_shadow_trace(&spec);
    }

    fn sweep_los(&mut self, ctx: &mut MemCtx<'_>) {
        for (obj, _pages) in self.los.objects() {
            if self.core.is_marked(ctx, obj) {
                self.core.clear_mark(ctx, obj);
            } else {
                let _ = self.los.free(&mut self.core.pool, obj);
            }
        }
    }
}

impl Forwarder for SemiSpace {
    fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    fn forward(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address {
        let in_from = if self.from_is_a {
            self.space_a.region_contains(obj)
        } else {
            self.space_b.region_contains(obj)
        };
        if in_from {
            match self.core.header_or_forward(ctx, obj) {
                Err(new) => new,
                Ok(h) => {
                    let size = h.kind.size_bytes();
                    let to = if self.from_is_a {
                        &mut self.space_b
                    } else {
                        &mut self.space_a
                    };
                    let new = to
                        .alloc_forced(&mut self.core.pool, size)
                        .expect("semispace to-region exhausted");
                    self.core.copy_object(ctx, obj, new, size);
                    self.core.queue.push(new);
                    if self.core.san_take_fault(InjectFault::DanglingForward) {
                        // Seeded bug: return the stale from-space address.
                        return obj;
                    }
                    new
                }
            }
        } else if self.los.region_contains(obj) {
            if self.core.try_mark(ctx, obj) {
                self.core.queue.push(obj);
            }
            obj
        } else {
            // Already in to-space.
            obj
        }
    }
}

impl GcHeap for SemiSpace {
    fn alloc(&mut self, ctx: &mut MemCtx<'_>, kind: AllocKind) -> Result<Handle, OutOfMemory> {
        let addr = match self.alloc_raw(kind) {
            Some(a) => a,
            None => {
                self.collect(ctx, CollectKind::Full);
                self.alloc_raw(kind).ok_or(OutOfMemory {
                    requested_bytes: kind.size_bytes(),
                })?
            }
        };
        self.core.init_object(ctx, addr, kind.object_kind());
        Ok(self.core.roots.add(addr))
    }

    fn write_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32, val: Option<Handle>) {
        let obj = self.core.roots.get(src);
        let target = val.map_or(Address::NULL, |h| self.core.roots.get(h));
        self.core
            .write_slot(ctx, heap::object::field_addr(obj, field), target);
    }

    fn read_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32) -> Option<Handle> {
        let obj = self.core.roots.get(src);
        let target = self
            .core
            .read_slot(ctx, heap::object::field_addr(obj, field));
        (!target.is_null()).then(|| self.core.roots.add(target))
    }

    fn read_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(&mut self.core.mem, addr, size, Access::Read);
    }

    fn write_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(
            &mut self.core.mem,
            addr.offset(HEADER_BYTES),
            size.saturating_sub(HEADER_BYTES).max(4),
            Access::Write,
        );
    }

    fn same_object(&self, a: Handle, b: Handle) -> bool {
        self.core.roots.get(a) == self.core.roots.get(b)
    }

    fn dup_handle(&mut self, h: Handle) -> Handle {
        let addr = self.core.roots.get(h);
        self.core.roots.add(addr)
    }

    fn drop_handle(&mut self, h: Handle) {
        self.core.roots.remove(h);
    }

    fn collect(&mut self, ctx: &mut MemCtx<'_>, _kind: CollectKind) {
        // Every SemiSpace collection is whole-heap; `kind` is a no-op hint.
        let pause = self.core.begin_pause(ctx, PauseKind::Compacting);
        self.core.phase_begin(ctx, GcPhase::RootScan);
        forward_roots(self, ctx);
        self.core.phase_end(ctx, GcPhase::RootScan);
        self.core.phase_begin(ctx, GcPhase::Trace);
        drain_gray(self, ctx);
        self.core.phase_end(ctx, GcPhase::Trace);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-trace", "unforwarded from-space ref", true);
        }
        self.core.phase_begin(ctx, GcPhase::Sweep);
        self.sweep_los(ctx);
        // Release the old from-space and flip.
        let pool = &mut self.core.pool;
        if self.from_is_a {
            let _ = self.space_a.release_all(pool);
        } else {
            let _ = self.space_b.release_all(pool);
        }
        self.from_is_a = !self.from_is_a;
        self.core.phase_end(ctx, GcPhase::Sweep);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-collection", "released semispace", false);
        }
        // Both spaces, every time: the released space's collapsed extent
        // clears its tail-poison ledger entry, so the next flip's copy
        // targets are not checked against stale geometry.
        self.core
            .sanitize_physical_checks(ctx, None, &[&self.space_a, &self.space_b]);
        self.core.stats.full_gcs += 1;
        self.core.stats.compacting_gcs += 1;
        self.core.end_pause(ctx, pause);
        let _ = self.core.policy_after_gc(ctx);
    }

    fn handle_vm_events(&mut self, ctx: &mut MemCtx<'_>) {
        let _ = self.core.pump_policy_events(ctx);
    }

    fn stats(&self) -> &GcStats {
        &self.core.stats
    }

    fn pause_log(&self) -> &PauseLog {
        &self.core.pauses
    }

    fn tracer(&self) -> &Tracer {
        &self.core.config.tracer
    }

    fn heap_pages_used(&self) -> usize {
        self.core.pool.used()
    }

    fn heap_pages_peak(&self) -> usize {
        self.core.pool.peak()
    }

    fn name(&self) -> &'static str {
        crate::names::SEMI_SPACE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{env, list_len, make_list, TestEnv};

    #[test]
    fn live_data_survives_the_flip() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = SemiSpace::new(HeapConfig::builder().heap_bytes(1 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let keep = make_list(&mut gc, &mut ctx, 200, 0);
        gc.collect(&mut ctx, CollectKind::Full);
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 200);
        // Objects moved to the other semispace.
        gc.collect(&mut ctx, CollectKind::Full);
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 200);
        assert_eq!(gc.stats().full_gcs, 2);
        assert!(gc.stats().objects_moved >= 400);
    }

    #[test]
    fn copy_reserve_triggers_collection_at_half_heap() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = SemiSpace::new(HeapConfig::builder().heap_bytes(1 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        // Allocate ~600 KiB of garbage in a 1 MiB heap: must collect before
        // exceeding the 512 KiB semispace.
        for _ in 0..150 {
            let h = gc
                .alloc(&mut ctx, AllocKind::DataArray { len: 1000 })
                .unwrap();
            gc.drop_handle(h);
        }
        assert!(gc.stats().full_gcs >= 1);
    }

    #[test]
    fn handles_follow_moved_objects() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = SemiSpace::new(HeapConfig::builder().heap_bytes(1 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let a = gc
            .alloc(
                &mut ctx,
                AllocKind::Scalar {
                    data_words: 2,
                    num_refs: 1,
                },
            )
            .unwrap();
        let b = gc
            .alloc(
                &mut ctx,
                AllocKind::Scalar {
                    data_words: 2,
                    num_refs: 1,
                },
            )
            .unwrap();
        gc.write_ref(&mut ctx, a, 0, Some(b));
        gc.collect(&mut ctx, CollectKind::Full);
        // a's field still reaches b after both moved.
        let loaded = gc.read_ref(&mut ctx, a, 0).expect("field survived");
        // Both handles denote the same (moved) object: loading through
        // either observes the same link structure.
        gc.write_ref(&mut ctx, b, 0, Some(a));
        let via_loaded = gc.read_ref(&mut ctx, loaded, 0);
        assert!(
            via_loaded.is_some(),
            "b.field set via original handle is visible via loaded handle"
        );
    }

    #[test]
    fn los_objects_are_marked_not_copied() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = SemiSpace::new(HeapConfig::builder().heap_bytes(4 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let big = gc
            .alloc(&mut ctx, AllocKind::RefArray { len: 5_000 })
            .unwrap();
        let small = gc
            .alloc(
                &mut ctx,
                AllocKind::Scalar {
                    data_words: 1,
                    num_refs: 0,
                },
            )
            .unwrap();
        gc.write_ref(&mut ctx, big, 4_999, Some(small));
        let moved_before = gc.stats().objects_moved;
        gc.collect(&mut ctx, CollectKind::Full);
        // Only the small object moved; the array stayed put but kept its
        // (updated) reference.
        assert_eq!(gc.stats().objects_moved, moved_before + 1);
        let loaded = gc.read_ref(&mut ctx, big, 4_999);
        assert!(loaded.is_some());
    }
}
