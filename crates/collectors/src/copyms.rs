//! Whole-heap copy-into-mark-sweep collection.

use heap::object::HEADER_BYTES;
use heap::{
    Address, AllocKind, BlockKind, BumpSpace, Classified, CollectKind, GcHeap, GcStats, Handle,
    HeapConfig, LargeObjectSpace, MemCtx, MsSpace, OutOfMemory, ShadowSpec, BYTES_PER_PAGE,
};
use simtime::{PauseKind, PauseLog};
use telemetry::{GcPhase, Tracer};
use vmm::Access;

use crate::common::{drain_gray, forward_roots, is_large, Core, Forwarder};

/// The paper's **CopyMS** baseline: "a variant of GenMS which performs only
/// whole-heap garbage collections" (§5).
///
/// Allocation bumps through a copy space; every collection is a full-heap
/// trace that evacuates copy-space survivors into the segregated-fit
/// mark-sweep mature space and sweeps it. There is no write barrier and no
/// nursery-only collection.
#[derive(Debug)]
pub struct CopyMs {
    core: Core,
    copy_space: BumpSpace,
    ms: MsSpace,
    los: LargeObjectSpace,
    copy_limit: u32,
    collecting: bool,
}

impl CopyMs {
    /// Creates a CopyMS heap with the given configuration.
    pub fn new(config: HeapConfig) -> CopyMs {
        let l = config.layout;
        let mut gc = CopyMs {
            core: Core::new(config),
            copy_space: BumpSpace::new(l.nursery.0, l.nursery.1),
            ms: MsSpace::new(l.space_a.0, l.space_a.1),
            los: LargeObjectSpace::new(l.los.0, l.los.1),
            copy_limit: 0,
            collecting: false,
        };
        gc.recompute_copy_limit();
        gc
    }

    fn recompute_copy_limit(&mut self) {
        let budget = self.core.pool.budget_bytes() as u64;
        let non_copy = self
            .core
            .pool
            .used()
            .saturating_sub(self.copy_space.extent_pages()) as u64
            * BYTES_PER_PAGE as u64;
        let free = budget.saturating_sub(non_copy);
        // Half of free space: the other half is the promotion reserve.
        self.copy_limit = (free / 2).min(u32::MAX as u64) as u32;
    }

    fn alloc_raw(&mut self, kind: AllocKind) -> Option<Address> {
        let size = kind.size_bytes();
        if is_large(kind) {
            return self.los.alloc(&mut self.core.pool, size);
        }
        if self.copy_space.used_bytes() + size > self.copy_limit {
            return None;
        }
        self.copy_space.alloc(&mut self.core.pool, size)
    }

    /// Shadow re-trace: after a whole-heap collection every live object sits
    /// in an allocated mature cell or the LOS; a reachable copy-space address
    /// is a stale (unforwarded) reference.
    fn sanitize_shadow(&mut self, phase: &'static str, condemned: &'static str, marked: bool) {
        let (ms, los) = (&self.ms, &self.los);
        let spec = ShadowSpec {
            collector: crate::names::COPY_MS,
            phase,
            classify: &|a| {
                if ms.is_allocated_cell(a) || los.is_live_object(a) {
                    Classified::Live
                } else {
                    Classified::Condemned(condemned)
                }
            },
            resident: &|_, _| true,
            expect_marked: &move |_| marked,
        };
        self.core.sanitize_shadow_trace(&spec);
    }

    fn sweep(&mut self, ctx: &mut MemCtx<'_>) {
        let mut dead = std::mem::take(self.core.sweep_scratch());
        for sp in self.ms.assigned_sps() {
            dead.clear();
            for cell in self.ms.allocated_cells_iter(sp) {
                if self.core.is_marked(ctx, cell) {
                    self.core.clear_mark(ctx, cell);
                } else {
                    dead.push(cell);
                }
            }
            for &cell in &dead {
                let _ = self.ms.free_cell(&mut self.core.pool, cell);
            }
            if !dead.is_empty() && self.ms.info(sp).assignment.is_some() {
                self.ms.note_partial(sp);
            }
        }
        *self.core.sweep_scratch() = dead;
        for (obj, _pages) in self.los.objects() {
            if self.core.is_marked(ctx, obj) {
                self.core.clear_mark(ctx, obj);
            } else {
                let _ = self.los.free(&mut self.core.pool, obj);
            }
        }
    }
}

impl Forwarder for CopyMs {
    fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    fn forward(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address {
        debug_assert!(self.collecting);
        if self.copy_space.region_contains(obj) {
            match self.core.header_or_forward(ctx, obj) {
                Err(new) => new,
                Ok(h) => {
                    let size = h.kind.size_bytes();
                    let class = self
                        .ms
                        .classes()
                        .class_for(size)
                        .expect("copy-space object fits a cell")
                        .index;
                    let bk = if h.kind.is_array() {
                        BlockKind::Array
                    } else {
                        BlockKind::Scalar
                    };
                    let new = self
                        .ms
                        .alloc_forced(&mut self.core.pool, class, bk)
                        .expect("mature region exhausted");
                    self.core.copy_object(ctx, obj, new, size);
                    let marked = self.core.try_mark(ctx, new);
                    debug_assert!(marked);
                    self.core.queue.push(new);
                    new
                }
            }
        } else {
            if self.core.try_mark(ctx, obj) {
                self.core.queue.push(obj);
            }
            obj
        }
    }
}

impl GcHeap for CopyMs {
    fn alloc(&mut self, ctx: &mut MemCtx<'_>, kind: AllocKind) -> Result<Handle, OutOfMemory> {
        let addr = match self.alloc_raw(kind) {
            Some(a) => a,
            None => {
                self.collect(ctx, CollectKind::Full);
                self.alloc_raw(kind).ok_or(OutOfMemory {
                    requested_bytes: kind.size_bytes(),
                })?
            }
        };
        self.core.init_object(ctx, addr, kind.object_kind());
        Ok(self.core.roots.add(addr))
    }

    fn write_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32, val: Option<Handle>) {
        let obj = self.core.roots.get(src);
        let target = val.map_or(Address::NULL, |h| self.core.roots.get(h));
        self.core
            .write_slot(ctx, heap::object::field_addr(obj, field), target);
    }

    fn read_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32) -> Option<Handle> {
        let obj = self.core.roots.get(src);
        let target = self
            .core
            .read_slot(ctx, heap::object::field_addr(obj, field));
        (!target.is_null()).then(|| self.core.roots.add(target))
    }

    fn read_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(&mut self.core.mem, addr, size, Access::Read);
    }

    fn write_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(
            &mut self.core.mem,
            addr.offset(HEADER_BYTES),
            size.saturating_sub(HEADER_BYTES).max(4),
            Access::Write,
        );
    }

    fn same_object(&self, a: Handle, b: Handle) -> bool {
        self.core.roots.get(a) == self.core.roots.get(b)
    }

    fn dup_handle(&mut self, h: Handle) -> Handle {
        let addr = self.core.roots.get(h);
        self.core.roots.add(addr)
    }

    fn drop_handle(&mut self, h: Handle) {
        self.core.roots.remove(h);
    }

    fn collect(&mut self, ctx: &mut MemCtx<'_>, _kind: CollectKind) {
        // CopyMS performs only whole-heap collections (§5).
        let pause = self.core.begin_pause(ctx, PauseKind::Full);
        self.collecting = true;
        self.core.phase_begin(ctx, GcPhase::RootScan);
        forward_roots(self, ctx);
        self.core.phase_end(ctx, GcPhase::RootScan);
        self.core.phase_begin(ctx, GcPhase::Trace);
        drain_gray(self, ctx);
        self.core.phase_end(ctx, GcPhase::Trace);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-trace", "collected copy space", true);
        }
        self.core.phase_begin(ctx, GcPhase::Sweep);
        self.sweep(ctx);
        let _ = self.copy_space.release_all(&mut self.core.pool);
        self.core.phase_end(ctx, GcPhase::Sweep);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-collection", "swept space", false);
        }
        self.core
            .sanitize_physical_checks(ctx, Some(&self.ms), &[&self.copy_space]);
        self.collecting = false;
        self.core.stats.full_gcs += 1;
        self.recompute_copy_limit();
        self.core.end_pause(ctx, pause);
        if self.core.policy_after_gc(ctx) {
            self.recompute_copy_limit();
        }
    }

    fn handle_vm_events(&mut self, ctx: &mut MemCtx<'_>) {
        if self.core.pump_policy_events(ctx) {
            self.recompute_copy_limit();
        }
    }

    fn stats(&self) -> &GcStats {
        &self.core.stats
    }

    fn pause_log(&self) -> &PauseLog {
        &self.core.pauses
    }

    fn tracer(&self) -> &Tracer {
        &self.core.config.tracer
    }

    fn heap_pages_used(&self) -> usize {
        self.core.pool.used()
    }

    fn heap_pages_peak(&self) -> usize {
        self.core.pool.peak()
    }

    fn name(&self) -> &'static str {
        crate::names::COPY_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{env, list_len, make_list, TestEnv};

    #[test]
    fn every_collection_is_whole_heap() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = CopyMs::new(HeapConfig::builder().heap_bytes(1 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let keep = make_list(&mut gc, &mut ctx, 100, 0);
        // ~1.2 MiB of garbage through a 1 MiB heap forces collection.
        for _ in 0..30_000 {
            let h = gc
                .alloc(
                    &mut ctx,
                    AllocKind::Scalar {
                        data_words: 8,
                        num_refs: 0,
                    },
                )
                .unwrap();
            gc.drop_handle(h);
        }
        let s = gc.stats();
        assert!(s.full_gcs >= 1);
        assert_eq!(s.nursery_gcs, 0, "CopyMS never does nursery-only GCs");
        assert_eq!(s.barrier_records, 0, "CopyMS has no write barrier");
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 100);
    }

    #[test]
    fn survivors_land_in_mark_sweep_cells_and_stay() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = CopyMs::new(HeapConfig::builder().heap_bytes(2 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let keep = make_list(&mut gc, &mut ctx, 64, 0);
        gc.collect(&mut ctx, CollectKind::Full);
        let moved = gc.stats().objects_moved;
        assert!(moved >= 64);
        // Second collection marks them in place: no further copies.
        gc.collect(&mut ctx, CollectKind::Full);
        assert_eq!(gc.stats().objects_moved, moved);
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 64);
    }
}
