//! Shared collector machinery, re-exported from [`heap::gc`].

pub(crate) use heap::gc::{drain_gray, forward_roots, is_large, Core, Forwarder, NurserySizer};
