//! Appel-style generational collection with a mark-sweep mature space —
//! the paper's high-throughput yardstick.

use heap::object::HEADER_BYTES;
use heap::{
    Address, AllocKind, BlockKind, BumpSpace, Classified, CollectKind, GcHeap, GcStats, Handle,
    HeapConfig, InjectFault, LargeObjectSpace, MemCtx, MsSpace, OutOfMemory, ShadowSpec,
    BYTES_PER_PAGE,
};
use simtime::{PauseKind, PauseLog};
use telemetry::{GcPhase, Tracer};
use vmm::Access;

use crate::common::{drain_gray, forward_roots, is_large, Core, Forwarder, NurserySizer};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Minor,
    Major,
}

/// The paper's **GenMS** baseline: bump-pointer nursery, segregated-fit
/// mark-sweep mature space (§5: "Appel-style generational collectors using
/// bump-pointer and mark-sweep mature spaces").
///
/// GenMS "consistently provides high throughput" (§1) and is the collector
/// BC is calibrated against in the no-pressure experiments; under pressure
/// its full-heap collections touch every mature superpage and it suffers
/// the paper's headline pathologies (pauses of seconds to minutes).
#[derive(Debug)]
pub struct GenMs {
    core: Core,
    nursery: BumpSpace,
    ms: MsSpace,
    los: LargeObjectSpace,
    remset: Vec<Address>,
    sizer: NurserySizer,
    nursery_limit: u32,
    phase: Phase,
}

impl GenMs {
    /// Creates a GenMS heap with the given configuration.
    pub fn new(config: HeapConfig) -> GenMs {
        let l = config.layout;
        let sizer = NurserySizer::new(config.nursery);
        let mut gc = GenMs {
            core: Core::new(config),
            nursery: BumpSpace::new(l.nursery.0, l.nursery.1),
            ms: MsSpace::new(l.space_a.0, l.space_a.1),
            los: LargeObjectSpace::new(l.los.0, l.los.1),
            remset: Vec::new(),
            sizer,
            nursery_limit: 0,
            phase: Phase::Idle,
        };
        gc.recompute_nursery_limit();
        gc
    }

    fn free_minus_reserve(&self) -> u32 {
        let budget = self.core.pool.budget_bytes() as u64;
        let non_nursery = self
            .core
            .pool
            .used()
            .saturating_sub(self.nursery.extent_pages()) as u64
            * BYTES_PER_PAGE as u64;
        budget.saturating_sub(non_nursery).min(u32::MAX as u64) as u32
    }

    fn recompute_nursery_limit(&mut self) {
        self.nursery_limit = self.sizer.limit(self.free_minus_reserve());
    }

    fn alloc_raw(&mut self, kind: AllocKind) -> Option<Address> {
        let size = kind.size_bytes();
        if is_large(kind) {
            return self.los.alloc(&mut self.core.pool, size);
        }
        if self.nursery.used_bytes() + size > self.nursery_limit {
            return None;
        }
        self.nursery.alloc(&mut self.core.pool, size)
    }

    /// Copies a nursery survivor into a mature cell of the right class.
    fn promote(&mut self, ctx: &mut MemCtx<'_>, obj: Address, h: heap::Header) -> Address {
        let size = h.kind.size_bytes();
        let class = self
            .ms
            .classes()
            .class_for(size)
            .expect("nursery object fits a cell")
            .index;
        let bk = if h.kind.is_array() {
            BlockKind::Array
        } else {
            BlockKind::Scalar
        };
        let new = self
            .ms
            .alloc_forced(&mut self.core.pool, class, bk)
            .expect("mature region exhausted");
        self.core.copy_object(ctx, obj, new, size);
        new
    }

    /// Shadow re-trace: live data lives in allocated mature cells and live
    /// large objects; a reachable edge into the nursery or a free cell is a
    /// missed remembered-set record (or a stale forward).
    fn sanitize_shadow(&mut self, phase: &'static str, condemned: &'static str, marked: bool) {
        let (ms, los) = (&self.ms, &self.los);
        let spec = ShadowSpec {
            collector: crate::names::GEN_MS,
            phase,
            classify: &|a| {
                if ms.is_allocated_cell(a) || los.is_live_object(a) {
                    Classified::Live
                } else {
                    Classified::Condemned(condemned)
                }
            },
            resident: &|_, _| true,
            expect_marked: &move |_| marked,
        };
        self.core.sanitize_shadow_trace(&spec);
    }

    fn sweep(&mut self, ctx: &mut MemCtx<'_>) {
        let mut dead = std::mem::take(self.core.sweep_scratch());
        for sp in self.ms.assigned_sps() {
            dead.clear();
            for cell in self.ms.allocated_cells_iter(sp) {
                if self.core.is_marked(ctx, cell) {
                    self.core.clear_mark(ctx, cell);
                } else {
                    dead.push(cell);
                }
            }
            for &cell in &dead {
                let _ = self.ms.free_cell(&mut self.core.pool, cell);
            }
            if !dead.is_empty() && self.ms.info(sp).assignment.is_some() {
                self.ms.note_partial(sp);
            }
        }
        *self.core.sweep_scratch() = dead;
        for (obj, _pages) in self.los.objects() {
            if self.core.is_marked(ctx, obj) {
                self.core.clear_mark(ctx, obj);
            } else {
                let _ = self.los.free(&mut self.core.pool, obj);
            }
        }
    }

    fn minor_gc(&mut self, ctx: &mut MemCtx<'_>) {
        let pause = self.core.begin_pause(ctx, PauseKind::Nursery);
        self.phase = Phase::Minor;
        self.core.phase_begin(ctx, GcPhase::RootScan);
        forward_roots(self, ctx);
        self.core.phase_end(ctx, GcPhase::RootScan);
        self.core.phase_begin(ctx, GcPhase::CardScan);
        let slots = std::mem::take(&mut self.remset);
        for slot in slots {
            let target = self.core.read_slot(ctx, slot);
            if self.nursery.region_contains(target) {
                let new = self.forward(ctx, target);
                self.core.write_slot(ctx, slot, new);
            }
        }
        self.core.phase_end(ctx, GcPhase::CardScan);
        self.core.phase_begin(ctx, GcPhase::Trace);
        drain_gray(self, ctx);
        self.core.phase_end(ctx, GcPhase::Trace);
        if self.core.sanitize_full() {
            // Mature objects are unmarked during a minor collection; a
            // reachable nursery edge here means a skipped write barrier.
            self.sanitize_shadow("after-trace", "collected nursery", false);
        }
        let _ = self.nursery.release_all(&mut self.core.pool);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-collection", "released nursery", false);
        }
        self.core
            .sanitize_physical_checks(ctx, Some(&self.ms), &[&self.nursery]);
        self.phase = Phase::Idle;
        self.core.stats.nursery_gcs += 1;
        self.recompute_nursery_limit();
        self.core.end_pause(ctx, pause);
        if self.core.policy_after_gc(ctx) {
            self.recompute_nursery_limit();
        }
    }

    fn major_gc(&mut self, ctx: &mut MemCtx<'_>) {
        let pause = self.core.begin_pause(ctx, PauseKind::Full);
        self.phase = Phase::Major;
        self.core.phase_begin(ctx, GcPhase::RootScan);
        forward_roots(self, ctx);
        self.core.phase_end(ctx, GcPhase::RootScan);
        self.core.phase_begin(ctx, GcPhase::Trace);
        drain_gray(self, ctx);
        self.core.phase_end(ctx, GcPhase::Trace);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-trace", "collected nursery", true);
        }
        self.core.phase_begin(ctx, GcPhase::Sweep);
        self.sweep(ctx);
        let _ = self.nursery.release_all(&mut self.core.pool);
        self.core.phase_end(ctx, GcPhase::Sweep);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-collection", "swept space", false);
        }
        self.core
            .sanitize_physical_checks(ctx, Some(&self.ms), &[&self.nursery]);
        self.remset.clear();
        self.phase = Phase::Idle;
        self.core.stats.full_gcs += 1;
        self.recompute_nursery_limit();
        self.core.end_pause(ctx, pause);
        if self.core.policy_after_gc(ctx) {
            self.recompute_nursery_limit();
        }
    }
}

impl Forwarder for GenMs {
    fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    fn forward(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address {
        match self.phase {
            Phase::Idle => unreachable!("forward outside a collection"),
            Phase::Minor => {
                if !self.nursery.region_contains(obj) {
                    return obj;
                }
                match self.core.header_or_forward(ctx, obj) {
                    Err(new) => new,
                    Ok(h) => {
                        let new = self.promote(ctx, obj, h);
                        self.core.queue.push(new);
                        new
                    }
                }
            }
            Phase::Major => {
                if self.nursery.region_contains(obj) {
                    match self.core.header_or_forward(ctx, obj) {
                        Err(new) => new,
                        Ok(h) => {
                            let new = self.promote(ctx, obj, h);
                            // Survivors must carry a mark or the sweep
                            // below would free them.
                            let marked = self.core.try_mark(ctx, new);
                            debug_assert!(marked);
                            self.core.queue.push(new);
                            new
                        }
                    }
                } else {
                    if self.core.try_mark(ctx, obj) {
                        self.core.queue.push(obj);
                    }
                    obj
                }
            }
        }
    }
}

impl GcHeap for GenMs {
    fn alloc(&mut self, ctx: &mut MemCtx<'_>, kind: AllocKind) -> Result<Handle, OutOfMemory> {
        let addr = match self.alloc_raw(kind) {
            Some(a) => a,
            None => {
                let kind_hint = if is_large(kind) {
                    CollectKind::Full
                } else {
                    CollectKind::Minor
                };
                self.collect(ctx, kind_hint);
                match self.alloc_raw(kind) {
                    Some(a) => a,
                    None => {
                        self.major_gc(ctx);
                        self.alloc_raw(kind).ok_or(OutOfMemory {
                            requested_bytes: kind.size_bytes(),
                        })?
                    }
                }
            }
        };
        self.core.init_object(ctx, addr, kind.object_kind());
        Ok(self.core.roots.add(addr))
    }

    fn write_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32, val: Option<Handle>) {
        let obj = self.core.roots.get(src);
        let target = val.map_or(Address::NULL, |h| self.core.roots.get(h));
        let slot = heap::object::field_addr(obj, field);
        if !self.nursery.region_contains(obj) && self.nursery.region_contains(target) {
            if self.core.san_take_fault(InjectFault::SkipBarrier) {
                // Seeded bug: drop this remembered-set record.
            } else {
                self.remset.push(slot);
                self.core.stats.barrier_records += 1;
                let barrier = ctx.vmm.costs().barrier;
                ctx.clock.advance(barrier);
            }
        }
        self.core.write_slot(ctx, slot, target);
    }

    fn read_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32) -> Option<Handle> {
        let obj = self.core.roots.get(src);
        let target = self
            .core
            .read_slot(ctx, heap::object::field_addr(obj, field));
        (!target.is_null()).then(|| self.core.roots.add(target))
    }

    fn read_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(&mut self.core.mem, addr, size, Access::Read);
    }

    fn write_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(
            &mut self.core.mem,
            addr.offset(HEADER_BYTES),
            size.saturating_sub(HEADER_BYTES).max(4),
            Access::Write,
        );
    }

    fn same_object(&self, a: Handle, b: Handle) -> bool {
        self.core.roots.get(a) == self.core.roots.get(b)
    }

    fn dup_handle(&mut self, h: Handle) -> Handle {
        let addr = self.core.roots.get(h);
        self.core.roots.add(addr)
    }

    fn drop_handle(&mut self, h: Handle) {
        self.core.roots.remove(h);
    }

    fn collect(&mut self, ctx: &mut MemCtx<'_>, kind: CollectKind) {
        match kind {
            CollectKind::Full => self.major_gc(ctx),
            CollectKind::Minor => {
                self.minor_gc(ctx);
                if self.sizer.full_gc_needed(self.free_minus_reserve()) {
                    self.major_gc(ctx);
                }
            }
        }
    }

    fn handle_vm_events(&mut self, ctx: &mut MemCtx<'_>) {
        if self.core.pump_policy_events(ctx) {
            self.recompute_nursery_limit();
        }
    }

    fn stats(&self) -> &GcStats {
        &self.core.stats
    }

    fn pause_log(&self) -> &PauseLog {
        &self.core.pauses
    }

    fn tracer(&self) -> &Tracer {
        &self.core.config.tracer
    }

    fn heap_pages_used(&self) -> usize {
        self.core.pool.used()
    }

    fn heap_pages_peak(&self) -> usize {
        self.core.pool.peak()
    }

    fn name(&self) -> &'static str {
        crate::names::GEN_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{env, list_kind, list_len, make_list, TestEnv};

    #[test]
    fn minor_gcs_promote_into_cells_and_preserve_structure() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = GenMs::new(HeapConfig::builder().heap_bytes(2 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let keep = make_list(&mut gc, &mut ctx, 80, 0);
        gc.collect(&mut ctx, CollectKind::Minor);
        assert_eq!(gc.stats().nursery_gcs, 1);
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 80);
    }

    #[test]
    fn major_gc_keeps_promoted_survivors_marked_through_sweep() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = GenMs::new(HeapConfig::builder().heap_bytes(2 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let keep = make_list(&mut gc, &mut ctx, 60, 0);
        // Full collection straight from the nursery: survivors are promoted
        // *and* swept in the same cycle.
        gc.collect(&mut ctx, CollectKind::Full);
        assert_eq!(gc.stats().full_gcs, 1);
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 60);
        // A second full GC re-traces the now-mature list.
        gc.collect(&mut ctx, CollectKind::Full);
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 60);
    }

    #[test]
    fn mature_garbage_is_reclaimed_by_full_gc_only() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = GenMs::new(HeapConfig::builder().heap_bytes(4 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let dead = make_list(&mut gc, &mut ctx, 500, 0);
        gc.collect(&mut ctx, CollectKind::Minor); // promotes the (still live) list
        let pages_promoted = gc.heap_pages_used();
        gc.drop_handle(dead);
        gc.collect(&mut ctx, CollectKind::Minor); // minor: cannot reclaim mature garbage
        assert_eq!(gc.heap_pages_used(), pages_promoted);
        gc.collect(&mut ctx, CollectKind::Full); // major: reclaims it
        assert!(gc.heap_pages_used() < pages_promoted);
    }

    #[test]
    fn remembered_set_keeps_nursery_referents_alive() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = GenMs::new(HeapConfig::builder().heap_bytes(2 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let old = gc.alloc(&mut ctx, list_kind()).unwrap();
        gc.collect(&mut ctx, CollectKind::Minor);
        let young = gc.alloc(&mut ctx, list_kind()).unwrap();
        gc.write_ref(&mut ctx, old, 0, Some(young));
        assert!(gc.stats().barrier_records >= 1);
        gc.drop_handle(young);
        gc.collect(&mut ctx, CollectKind::Minor);
        assert!(gc.read_ref(&mut ctx, old, 0).is_some());
    }

    #[test]
    fn oom_when_live_set_exceeds_heap() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = GenMs::new(HeapConfig::builder().heap_bytes(192 << 10).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let mut held = Vec::new();
        let mut oom = false;
        for _ in 0..64 {
            match gc.alloc(&mut ctx, AllocKind::DataArray { len: 1500 }) {
                Ok(h) => held.push(h),
                Err(_) => {
                    oom = true;
                    break;
                }
            }
        }
        assert!(oom, "384 KiB live cannot fit a 192 KiB heap");
    }
}
