//! Appel-style generational collection with a copying mature space.

use heap::object::HEADER_BYTES;
use heap::{
    Address, AllocKind, BumpSpace, Classified, CollectKind, GcHeap, GcStats, Handle, HeapConfig,
    LargeObjectSpace, MemCtx, OutOfMemory, ShadowSpec, BYTES_PER_PAGE,
};
use simtime::{PauseKind, PauseLog};
use telemetry::{GcPhase, Tracer};
use vmm::Access;

use crate::common::{drain_gray, forward_roots, is_large, Core, Forwarder, NurserySizer};

/// Which collection is in progress (drives [`GenCopy::forward`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Minor,
    Major,
}

/// The paper's **GenCopy** baseline: an Appel-style generational collector
/// with a bump-pointer nursery and a semispace-copying mature space.
///
/// Pointer stores from outside the nursery into it are remembered in an
/// (unbounded) sequential store buffer, as in MMTk. Nursery collections copy
/// survivors into the mature from-space; full collections copy both
/// generations into the mature to-space and flip.
#[derive(Debug)]
pub struct GenCopy {
    core: Core,
    nursery: BumpSpace,
    mature_a: BumpSpace,
    mature_b: BumpSpace,
    mature_is_a: bool,
    los: LargeObjectSpace,
    /// Remembered slot addresses (mature/LOS slots holding nursery refs).
    remset: Vec<Address>,
    sizer: NurserySizer,
    nursery_limit: u32,
    phase: Phase,
}

impl GenCopy {
    /// Creates a GenCopy heap with the given configuration.
    pub fn new(config: HeapConfig) -> GenCopy {
        let l = config.layout;
        let sizer = NurserySizer::new(config.nursery);
        let mut gc = GenCopy {
            core: Core::new(config),
            nursery: BumpSpace::new(l.nursery.0, l.nursery.1),
            mature_a: BumpSpace::new(l.space_a.0, l.space_a.1),
            mature_b: BumpSpace::new(l.space_b.0, l.space_b.1),
            mature_is_a: true,
            los: LargeObjectSpace::new(l.los.0, l.los.1),
            remset: Vec::new(),
            sizer,
            nursery_limit: 0,
            phase: Phase::Idle,
        };
        gc.recompute_nursery_limit();
        gc
    }

    fn mature_used_bytes(&self) -> u64 {
        if self.mature_is_a {
            self.mature_a.used_bytes() as u64
        } else {
            self.mature_b.used_bytes() as u64
        }
    }

    fn los_pages(&self) -> usize {
        let held = self.nursery.extent_pages()
            + self.mature_a.extent_pages()
            + self.mature_b.extent_pages();
        self.core.pool.used().saturating_sub(held)
    }

    /// Free bytes once the copy reserve (a full mature copy) is set aside.
    fn free_minus_reserve(&self) -> u32 {
        let budget = self.core.pool.budget_bytes() as u64;
        let los = self.los_pages() as u64 * BYTES_PER_PAGE as u64;
        budget
            .saturating_sub(los)
            .saturating_sub(2 * self.mature_used_bytes())
            .min(u32::MAX as u64) as u32
    }

    fn recompute_nursery_limit(&mut self) {
        self.nursery_limit = self.sizer.limit(self.free_minus_reserve());
    }

    fn alloc_raw(&mut self, kind: AllocKind) -> Option<Address> {
        let size = kind.size_bytes();
        if is_large(kind) {
            return self.los.alloc(&mut self.core.pool, size);
        }
        if self.nursery.used_bytes() + size > self.nursery_limit {
            return None;
        }
        self.nursery.alloc(&mut self.core.pool, size)
    }

    /// Shadow re-trace: live data sits in one mature semispace (`live_is_a`
    /// selects which) plus the live large objects; reachable edges anywhere
    /// else — the nursery, the condemned mature space — are bugs.
    fn sanitize_shadow(
        &mut self,
        phase: &'static str,
        live_is_a: bool,
        condemned: &'static str,
        marked_los: bool,
    ) {
        let live = if live_is_a {
            &self.mature_a
        } else {
            &self.mature_b
        };
        let los = &self.los;
        let spec = ShadowSpec {
            collector: crate::names::GEN_COPY,
            phase,
            classify: &|a| {
                if live.contains_allocated(a) || los.is_live_object(a) {
                    Classified::Live
                } else {
                    Classified::Condemned(condemned)
                }
            },
            resident: &|_, _| true,
            expect_marked: &move |a| marked_los && los.region_contains(a),
        };
        self.core.sanitize_shadow_trace(&spec);
    }

    fn minor_gc(&mut self, ctx: &mut MemCtx<'_>) {
        let pause = self.core.begin_pause(ctx, PauseKind::Nursery);
        self.phase = Phase::Minor;
        self.core.phase_begin(ctx, GcPhase::RootScan);
        forward_roots(self, ctx);
        self.core.phase_end(ctx, GcPhase::RootScan);
        // Process the remembered set: update slots whose targets moved.
        self.core.phase_begin(ctx, GcPhase::CardScan);
        let slots = std::mem::take(&mut self.remset);
        for slot in slots {
            let target = self.core.read_slot(ctx, slot);
            if self.nursery.region_contains(target) {
                let new = self.forward(ctx, target);
                self.core.write_slot(ctx, slot, new);
            }
        }
        self.core.phase_end(ctx, GcPhase::CardScan);
        self.core.phase_begin(ctx, GcPhase::Trace);
        drain_gray(self, ctx);
        self.core.phase_end(ctx, GcPhase::Trace);
        if self.core.sanitize_full() {
            // A reachable edge still pointing into the nursery here means
            // some mature-to-nursery store was never remembered.
            self.sanitize_shadow("after-trace", self.mature_is_a, "collected nursery", false);
        }
        let _ = self.nursery.release_all(&mut self.core.pool);
        if self.core.sanitize_full() {
            self.sanitize_shadow(
                "after-collection",
                self.mature_is_a,
                "released nursery",
                false,
            );
        }
        self.core.sanitize_physical_checks(
            ctx,
            None,
            &[&self.nursery, &self.mature_a, &self.mature_b],
        );
        self.phase = Phase::Idle;
        self.core.stats.nursery_gcs += 1;
        self.recompute_nursery_limit();
        self.core.end_pause(ctx, pause);
        if self.core.policy_after_gc(ctx) {
            self.recompute_nursery_limit();
        }
    }

    fn major_gc(&mut self, ctx: &mut MemCtx<'_>) {
        let pause = self.core.begin_pause(ctx, PauseKind::Full);
        self.phase = Phase::Major;
        self.core.phase_begin(ctx, GcPhase::RootScan);
        forward_roots(self, ctx);
        self.core.phase_end(ctx, GcPhase::RootScan);
        self.core.phase_begin(ctx, GcPhase::Trace);
        drain_gray(self, ctx);
        self.core.phase_end(ctx, GcPhase::Trace);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-trace", !self.mature_is_a, "condemned space", true);
        }
        self.core.phase_begin(ctx, GcPhase::Sweep);
        // Sweep the large object space.
        for (obj, _pages) in self.los.objects() {
            if self.core.is_marked(ctx, obj) {
                self.core.clear_mark(ctx, obj);
            } else {
                let _ = self.los.free(&mut self.core.pool, obj);
            }
        }
        // Everything live left the nursery and the old mature space.
        let _ = self.nursery.release_all(&mut self.core.pool);
        let pool = &mut self.core.pool;
        if self.mature_is_a {
            let _ = self.mature_a.release_all(pool);
        } else {
            let _ = self.mature_b.release_all(pool);
        }
        self.mature_is_a = !self.mature_is_a;
        self.remset.clear();
        self.core.phase_end(ctx, GcPhase::Sweep);
        if self.core.sanitize_full() {
            self.sanitize_shadow(
                "after-collection",
                self.mature_is_a,
                "released space",
                false,
            );
        }
        self.core.sanitize_physical_checks(
            ctx,
            None,
            &[&self.nursery, &self.mature_a, &self.mature_b],
        );
        self.phase = Phase::Idle;
        self.core.stats.full_gcs += 1;
        self.recompute_nursery_limit();
        self.core.end_pause(ctx, pause);
        if self.core.policy_after_gc(ctx) {
            self.recompute_nursery_limit();
        }
    }
}

impl Forwarder for GenCopy {
    fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    fn forward(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address {
        match self.phase {
            Phase::Idle => unreachable!("forward outside a collection"),
            Phase::Minor => {
                if !self.nursery.region_contains(obj) {
                    return obj; // minor collections do not trace the mature space
                }
                match self.core.header_or_forward(ctx, obj) {
                    Err(new) => new,
                    Ok(h) => {
                        let size = h.kind.size_bytes();
                        let mature = if self.mature_is_a {
                            &mut self.mature_a
                        } else {
                            &mut self.mature_b
                        };
                        let new = mature
                            .alloc_forced(&mut self.core.pool, size)
                            .expect("mature region exhausted");
                        self.core.copy_object(ctx, obj, new, size);
                        self.core.queue.push(new);
                        new
                    }
                }
            }
            Phase::Major => {
                let movable = self.nursery.region_contains(obj)
                    || (self.mature_is_a && self.mature_a.region_contains(obj))
                    || (!self.mature_is_a && self.mature_b.region_contains(obj));
                if movable {
                    match self.core.header_or_forward(ctx, obj) {
                        Err(new) => new,
                        Ok(h) => {
                            let size = h.kind.size_bytes();
                            let to = if self.mature_is_a {
                                &mut self.mature_b
                            } else {
                                &mut self.mature_a
                            };
                            let new = to
                                .alloc_forced(&mut self.core.pool, size)
                                .expect("mature to-region exhausted");
                            self.core.copy_object(ctx, obj, new, size);
                            self.core.queue.push(new);
                            new
                        }
                    }
                } else if self.los.region_contains(obj) {
                    if self.core.try_mark(ctx, obj) {
                        self.core.queue.push(obj);
                    }
                    obj
                } else {
                    obj // already in the to-space
                }
            }
        }
    }
}

impl GcHeap for GenCopy {
    fn alloc(&mut self, ctx: &mut MemCtx<'_>, kind: AllocKind) -> Result<Handle, OutOfMemory> {
        let addr = match self.alloc_raw(kind) {
            Some(a) => a,
            None => {
                let kind_hint = if is_large(kind) {
                    CollectKind::Full
                } else {
                    CollectKind::Minor
                };
                self.collect(ctx, kind_hint);
                match self.alloc_raw(kind) {
                    Some(a) => a,
                    None => {
                        self.major_gc(ctx);
                        self.alloc_raw(kind).ok_or(OutOfMemory {
                            requested_bytes: kind.size_bytes(),
                        })?
                    }
                }
            }
        };
        self.core.init_object(ctx, addr, kind.object_kind());
        Ok(self.core.roots.add(addr))
    }

    fn write_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32, val: Option<Handle>) {
        let obj = self.core.roots.get(src);
        let target = val.map_or(Address::NULL, |h| self.core.roots.get(h));
        let slot = heap::object::field_addr(obj, field);
        // Boundary write barrier: remember mature→nursery pointers.
        if !self.nursery.region_contains(obj) && self.nursery.region_contains(target) {
            self.remset.push(slot);
            self.core.stats.barrier_records += 1;
            let barrier = ctx.vmm.costs().barrier;
            ctx.clock.advance(barrier);
        }
        self.core.write_slot(ctx, slot, target);
    }

    fn read_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32) -> Option<Handle> {
        let obj = self.core.roots.get(src);
        let target = self
            .core
            .read_slot(ctx, heap::object::field_addr(obj, field));
        (!target.is_null()).then(|| self.core.roots.add(target))
    }

    fn read_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(&mut self.core.mem, addr, size, Access::Read);
    }

    fn write_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(
            &mut self.core.mem,
            addr.offset(HEADER_BYTES),
            size.saturating_sub(HEADER_BYTES).max(4),
            Access::Write,
        );
    }

    fn same_object(&self, a: Handle, b: Handle) -> bool {
        self.core.roots.get(a) == self.core.roots.get(b)
    }

    fn dup_handle(&mut self, h: Handle) -> Handle {
        let addr = self.core.roots.get(h);
        self.core.roots.add(addr)
    }

    fn drop_handle(&mut self, h: Handle) {
        self.core.roots.remove(h);
    }

    fn collect(&mut self, ctx: &mut MemCtx<'_>, kind: CollectKind) {
        match kind {
            CollectKind::Full => self.major_gc(ctx),
            CollectKind::Minor => {
                self.minor_gc(ctx);
                if self.sizer.full_gc_needed(self.free_minus_reserve()) {
                    self.major_gc(ctx);
                }
            }
        }
    }

    fn handle_vm_events(&mut self, ctx: &mut MemCtx<'_>) {
        if self.core.pump_policy_events(ctx) {
            self.recompute_nursery_limit();
        }
    }

    fn stats(&self) -> &GcStats {
        &self.core.stats
    }

    fn pause_log(&self) -> &PauseLog {
        &self.core.pauses
    }

    fn tracer(&self) -> &Tracer {
        &self.core.config.tracer
    }

    fn heap_pages_used(&self) -> usize {
        self.core.pool.used()
    }

    fn heap_pages_peak(&self) -> usize {
        self.core.pool.peak()
    }

    fn name(&self) -> &'static str {
        crate::names::GEN_COPY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{env, list_kind, list_len, make_list, TestEnv};
    use heap::NurseryPolicy;

    fn small_heap() -> GenCopy {
        GenCopy::new(HeapConfig::builder().heap_bytes(2 << 20).build())
    }

    #[test]
    fn nursery_collections_promote_survivors() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = small_heap();
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let keep = make_list(&mut gc, &mut ctx, 50, 0);
        gc.collect(&mut ctx, CollectKind::Minor);
        assert_eq!(gc.stats().nursery_gcs, 1);
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 50);
        assert!(gc.stats().objects_moved >= 50, "survivors were copied out");
    }

    #[test]
    fn write_barrier_remembers_mature_to_nursery_pointers() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = small_heap();
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let old = gc.alloc(&mut ctx, list_kind()).unwrap();
        // Promote `old` to the mature space.
        gc.collect(&mut ctx, CollectKind::Minor);
        assert_eq!(gc.stats().barrier_records, 0);
        // Store a nursery pointer into the mature object.
        let young = gc.alloc(&mut ctx, list_kind()).unwrap();
        gc.write_ref(&mut ctx, old, 0, Some(young));
        assert_eq!(gc.stats().barrier_records, 1);
        gc.drop_handle(young);
        // The nursery object survives only through the remembered set.
        gc.collect(&mut ctx, CollectKind::Minor);
        let via_old = gc.read_ref(&mut ctx, old, 0);
        assert!(
            via_old.is_some(),
            "remset must keep mature→nursery referent alive"
        );
    }

    #[test]
    fn nursery_to_nursery_stores_are_not_remembered() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = small_heap();
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let a = gc.alloc(&mut ctx, list_kind()).unwrap();
        let b = gc.alloc(&mut ctx, list_kind()).unwrap();
        gc.write_ref(&mut ctx, a, 0, Some(b));
        assert_eq!(gc.stats().barrier_records, 0);
    }

    #[test]
    fn sustained_allocation_eventually_runs_full_gcs() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = GenCopy::new(HeapConfig::builder().heap_bytes(1 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        // Hold ~400 KiB live in a 1 MiB heap (the 2x copy reserve makes the
        // mature space tight) and push ~1.2 MiB of garbage through: minor
        // GCs promote, the shrunken reserve forces full GCs.
        let keep = make_list(&mut gc, &mut ctx, 20_000, 0);
        for _ in 0..60_000 {
            let h = gc.alloc(&mut ctx, list_kind()).unwrap();
            gc.drop_handle(h);
        }
        assert!(gc.stats().nursery_gcs >= 1);
        assert!(gc.stats().full_gcs >= 1);
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 20_000);
    }

    #[test]
    fn fixed_nursery_variant_collects_at_4mb() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(128 << 20);
        let mut config = HeapConfig::builder().heap_bytes(64 << 20).build();
        config.nursery = NurseryPolicy::FIXED_4MB;
        let mut gc = GenCopy::new(config);
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        // 5 MB of garbage must trigger exactly one nursery GC (not zero —
        // the Appel policy would have given a ~30 MB nursery here).
        for _ in 0..656 {
            let h = gc
                .alloc(&mut ctx, AllocKind::DataArray { len: 2000 })
                .unwrap();
            gc.drop_handle(h);
        }
        assert_eq!(gc.stats().nursery_gcs, 1);
    }
}
