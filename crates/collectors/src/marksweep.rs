//! Whole-heap mark-sweep collection over segregated-fit superpages.

use heap::object::HEADER_BYTES;
use heap::{
    Address, AllocKind, Classified, CollectKind, GcHeap, GcStats, Handle, Header, HeapConfig,
    InjectFault, LargeObjectSpace, MemCtx, MsSpace, OutOfMemory, ShadowSpec,
};
use simtime::{PauseKind, PauseLog};
use telemetry::{GcPhase, Tracer};
use vmm::Access;

use crate::common::{drain_gray, forward_roots, is_large, Core, Forwarder};

/// The paper's **MarkSweep** baseline: a single-generation, non-moving,
/// free-list collector.
///
/// Every object lives in the segregated-fit [`MsSpace`] (or the large-object
/// space). Collection marks from the roots and then sweeps every allocated
/// cell — touching every superpage in the heap, which is why MarkSweep
/// "can take hours to complete" under paging (§5.3.1).
#[derive(Debug)]
pub struct MarkSweep {
    core: Core,
    ms: MsSpace,
    los: LargeObjectSpace,
}

impl MarkSweep {
    /// Creates a MarkSweep heap with the given configuration.
    pub fn new(config: HeapConfig) -> MarkSweep {
        let l = config.layout;
        MarkSweep {
            core: Core::new(config),
            ms: MsSpace::new(l.space_a.0, l.space_a.1),
            los: LargeObjectSpace::new(l.los.0, l.los.1),
        }
    }

    fn alloc_raw(&mut self, kind: AllocKind) -> Option<Address> {
        let size = kind.size_bytes();
        if is_large(kind) {
            self.los.alloc(&mut self.core.pool, size)
        } else {
            let class = self
                .ms
                .classes()
                .class_for(size)
                .expect("small object")
                .index;
            let bk = if kind.object_kind().is_array() {
                heap::BlockKind::Array
            } else {
                heap::BlockKind::Scalar
            };
            self.ms.alloc(&mut self.core.pool, class, bk)
        }
    }

    /// Shadow re-trace at a phase boundary. `expect_marked` is true after
    /// the trace (every live object is marked) and false after the sweep
    /// (the sweep cleared the survivors' marks).
    fn sanitize_shadow(&mut self, phase: &'static str, expect_marked: bool) {
        let (ms, los) = (&self.ms, &self.los);
        let spec = ShadowSpec {
            collector: crate::names::MARK_SWEEP,
            phase,
            classify: &|a| {
                if ms.is_allocated_cell(a) || los.is_live_object(a) {
                    Classified::Live
                } else {
                    Classified::Condemned("free space")
                }
            },
            resident: &|_, _| true,
            expect_marked: &move |_| expect_marked,
        };
        self.core.sanitize_shadow_trace(&spec);
    }

    fn sweep(&mut self, ctx: &mut MemCtx<'_>) {
        let mut dead = std::mem::take(self.core.sweep_scratch());
        for sp in self.ms.assigned_sps() {
            dead.clear();
            for cell in self.ms.allocated_cells_iter(sp) {
                if self.core.is_marked(ctx, cell) {
                    self.core.clear_mark(ctx, cell);
                } else {
                    dead.push(cell);
                }
            }
            for &cell in &dead {
                // The superpage may become empty and be released here.
                let _pages = self.ms.free_cell(&mut self.core.pool, cell);
            }
            if !dead.is_empty() && self.ms.info(sp).assignment.is_some() {
                self.ms.note_partial(sp);
            }
        }
        *self.core.sweep_scratch() = dead;
        for (obj, _pages) in self.los.objects() {
            if self.core.is_marked(ctx, obj) {
                self.core.clear_mark(ctx, obj);
            } else {
                let _pages = self.los.free(&mut self.core.pool, obj);
            }
        }
    }
}

impl Forwarder for MarkSweep {
    fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    fn forward(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address {
        if self.core.try_mark(ctx, obj) {
            self.core.queue.push(obj);
        }
        obj
    }
}

impl GcHeap for MarkSweep {
    fn alloc(&mut self, ctx: &mut MemCtx<'_>, kind: AllocKind) -> Result<Handle, OutOfMemory> {
        let addr = match self.alloc_raw(kind) {
            Some(a) => a,
            None => {
                self.collect(ctx, CollectKind::Full);
                self.alloc_raw(kind).ok_or(OutOfMemory {
                    requested_bytes: kind.size_bytes(),
                })?
            }
        };
        self.core.init_object(ctx, addr, kind.object_kind());
        // Whole-heap mark-sweep allocates straight from the segregated
        // free lists; charge the bump-vs-freelist gap (see CostModel).
        let extra = ctx.vmm.costs().alloc_freelist_extra;
        ctx.clock.advance(extra);
        Ok(self.core.roots.add(addr))
    }

    fn write_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32, val: Option<Handle>) {
        let obj = self.core.roots.get(src);
        let target = val.map_or(Address::NULL, |h| self.core.roots.get(h));
        let slot = heap::object::field_addr(obj, field);
        self.core.write_slot(ctx, slot, target);
    }

    fn read_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32) -> Option<Handle> {
        let obj = self.core.roots.get(src);
        let slot = heap::object::field_addr(obj, field);
        let target = self.core.read_slot(ctx, slot);
        (!target.is_null()).then(|| self.core.roots.add(target))
    }

    fn read_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(&mut self.core.mem, addr, size, Access::Read);
    }

    fn write_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        let size = self.core.header(ctx, addr).kind.size_bytes();
        ctx.touch(
            &mut self.core.mem,
            addr.offset(HEADER_BYTES),
            size.saturating_sub(HEADER_BYTES).max(4),
            Access::Write,
        );
    }

    fn same_object(&self, a: Handle, b: Handle) -> bool {
        self.core.roots.get(a) == self.core.roots.get(b)
    }

    fn dup_handle(&mut self, h: Handle) -> Handle {
        let addr = self.core.roots.get(h);
        self.core.roots.add(addr)
    }

    fn drop_handle(&mut self, h: Handle) {
        self.core.roots.remove(h);
    }

    fn collect(&mut self, ctx: &mut MemCtx<'_>, _kind: CollectKind) {
        // Single-generation: every collection is whole-heap.
        let pause = self.core.begin_pause(ctx, PauseKind::Full);
        self.core.phase_begin(ctx, GcPhase::RootScan);
        forward_roots(self, ctx);
        self.core.phase_end(ctx, GcPhase::RootScan);
        self.core.phase_begin(ctx, GcPhase::Trace);
        drain_gray(self, ctx);
        self.core.phase_end(ctx, GcPhase::Trace);
        if self.core.sanitize_full() {
            if self.core.san_take_fault(InjectFault::ClearMark) {
                // Seeded bug: un-mark one reachable object post-trace.
                if let Some(obj) = self.core.roots.iter().next() {
                    let w0 = self.core.mem.read_word(obj);
                    self.core.mem.write_word(obj, Header::with_mark(w0, false));
                }
            }
            self.sanitize_shadow("after-trace", true);
        }
        self.core.phase_begin(ctx, GcPhase::Sweep);
        self.sweep(ctx);
        self.core.phase_end(ctx, GcPhase::Sweep);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-collection", false);
        }
        self.core.sanitize_physical_checks(ctx, Some(&self.ms), &[]);
        self.core.stats.full_gcs += 1;
        self.core.end_pause(ctx, pause);
        let _ = self.core.policy_after_gc(ctx);
    }

    fn handle_vm_events(&mut self, ctx: &mut MemCtx<'_>) {
        // Under `Fixed` the queue is always empty (never registered); a
        // sizing policy may consume pressure events here.
        let _ = self.core.pump_policy_events(ctx);
    }

    fn stats(&self) -> &GcStats {
        &self.core.stats
    }

    fn pause_log(&self) -> &PauseLog {
        &self.core.pauses
    }

    fn tracer(&self) -> &Tracer {
        &self.core.config.tracer
    }

    fn heap_pages_used(&self) -> usize {
        self.core.pool.used()
    }

    fn heap_pages_peak(&self) -> usize {
        self.core.pool.peak()
    }

    fn name(&self) -> &'static str {
        crate::names::MARK_SWEEP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{env, list_kind, list_len, make_list, TestEnv};

    #[test]
    fn survivors_survive_and_garbage_is_reclaimed() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = MarkSweep::new(HeapConfig::builder().heap_bytes(1 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let keep = make_list(&mut gc, &mut ctx, 100, 7);
        let dead = make_list(&mut gc, &mut ctx, 100, 9);
        gc.drop_handle(dead);
        let used_before = gc.heap_pages_used();
        gc.collect(&mut ctx, CollectKind::Full);
        assert!(gc.heap_pages_used() <= used_before);
        assert_eq!(gc.stats().full_gcs, 1);
        // The kept list is intact: walk it.
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 100);
    }

    #[test]
    fn allocation_triggers_collection_when_full() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        // 256 KiB heap: filling it forces GCs.
        let mut gc = MarkSweep::new(HeapConfig::builder().heap_bytes(256 << 10).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        for _ in 0..40 {
            // 40 x 8 KiB of garbage needs at least one collection.
            let h = gc
                .alloc(&mut ctx, AllocKind::DataArray { len: 2000 })
                .expect("allocation must succeed after GC");
            gc.drop_handle(h);
        }
        assert!(gc.stats().full_gcs >= 1);
    }

    #[test]
    fn unreclaimable_heap_reports_oom() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = MarkSweep::new(HeapConfig::builder().heap_bytes(64 << 10).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let mut held = Vec::new();
        let mut oom = false;
        for _ in 0..40 {
            match gc.alloc(&mut ctx, AllocKind::DataArray { len: 2000 }) {
                Ok(h) => held.push(h),
                Err(e) => {
                    assert_eq!(e.requested_bytes, 8008);
                    oom = true;
                    break;
                }
            }
        }
        assert!(oom, "a 64 KiB heap cannot hold 40 live 8 KiB arrays");
    }

    #[test]
    fn large_objects_go_to_los_and_are_collected() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = MarkSweep::new(HeapConfig::builder().heap_bytes(4 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let big = gc
            .alloc(&mut ctx, AllocKind::DataArray { len: 10_000 })
            .unwrap();
        let pages_with_big = gc.heap_pages_used();
        gc.drop_handle(big);
        gc.collect(&mut ctx, CollectKind::Full);
        assert!(gc.heap_pages_used() < pages_with_big);
    }

    #[test]
    fn cyclic_garbage_is_reclaimed() {
        let TestEnv {
            mut vmm,
            mut clock,
            pid,
            ..
        } = env(64 << 20);
        let mut gc = MarkSweep::new(HeapConfig::builder().heap_bytes(1 << 20).build());
        let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
        let a = gc.alloc(&mut ctx, list_kind()).unwrap();
        let b = gc.alloc(&mut ctx, list_kind()).unwrap();
        gc.write_ref(&mut ctx, a, 0, Some(b));
        gc.write_ref(&mut ctx, b, 0, Some(a));
        let pages_before_drop = gc.heap_pages_used();
        gc.drop_handle(a);
        gc.drop_handle(b);
        gc.collect(&mut ctx, CollectKind::Full);
        gc.collect(&mut ctx, CollectKind::Full);
        // The cycle is gone; a fresh allocation reuses its cells.
        let c = gc.alloc(&mut ctx, list_kind()).unwrap();
        assert!(gc.heap_pages_used() <= pages_before_drop);
        gc.drop_handle(c);
    }
}
