//! Compacting collection (§3.2, §3.4.1), the completeness fail-safe
//! (§3.5), and the allocation slow path that escalates through them.

use std::collections::BTreeMap;

use heap::gc::{drain_gray, forward_roots, is_large};
use heap::{
    Address, AllocKind, BlockKind, CollectKind, Header, MemCtx, OutOfMemory, SpIndex, WORD,
};
use simtime::PauseKind;
use telemetry::GcPhase;
use vmm::Access;

use crate::collector::{Bookmarking, Phase};

impl Bookmarking {
    /// The allocation slow path: nursery collection, full collection,
    /// compaction (§3.2), fail-safe (§3.5), and finally out-of-memory.
    pub(crate) fn alloc_slow(
        &mut self,
        ctx: &mut MemCtx<'_>,
        kind: AllocKind,
    ) -> Result<Address, OutOfMemory> {
        use heap::GcHeap as _;
        let kind_hint = if is_large(kind) {
            CollectKind::Full
        } else {
            CollectKind::Minor
        };
        self.collect(ctx, kind_hint);
        if let Some(a) = self.alloc_raw_public(kind) {
            return Ok(a);
        }
        self.major_gc(ctx);
        if let Some(a) = self.alloc_raw_public(kind) {
            return Ok(a);
        }
        // "BC performs a two-pass compacting collection whenever a full
        // garbage collection does not free enough pages to satisfy the
        // current allocation request" (§3.2).
        self.compact_gc(ctx);
        if let Some(a) = self.alloc_raw_public(kind) {
            return Ok(a);
        }
        // "In the event that the heap is exhausted, BC preserves
        // completeness by performing a full heap garbage collection
        // (touching evicted pages)" (§3.5).
        if self.options.bookmarking && self.residency.any_evicted() {
            self.failsafe_restore(ctx);
            self.major_gc(ctx);
            if let Some(a) = self.alloc_raw_public(kind) {
                return Ok(a);
            }
            self.compact_gc(ctx);
            if let Some(a) = self.alloc_raw_public(kind) {
                return Ok(a);
            }
        }
        // A pressure-shrunk budget must not fail the program: "While BC
        // expands the heap and causes pages to be evicted when this is
        // necessary for program completion, it ordinarily limits the heap
        // to what can fit into available memory" (§3.3.3). Grow back toward
        // the configured size step by step, collecting between steps.
        let configured = self.configured_heap_bytes / heap::BYTES_PER_PAGE as usize;
        while self.core.pool.budget() < configured {
            let step = (kind.size_bytes() as usize / heap::BYTES_PER_PAGE as usize + 256)
                .min(configured - self.core.pool.budget());
            let grown = self.core.apply_decision(
                ctx,
                heap::SizingDecision {
                    limit_pages: self.core.pool.budget() + step,
                    reason: "failsafe-grow",
                },
            );
            debug_assert!(grown);
            self.recompute_nursery_limit();
            if let Some(a) = self.alloc_raw_public(kind) {
                return Ok(a);
            }
            self.major_gc(ctx);
            if let Some(a) = self.alloc_raw_public(kind) {
                return Ok(a);
            }
        }
        Err(OutOfMemory {
            requested_bytes: kind.size_bytes(),
        })
    }

    /// `alloc_raw` for use from this module (kept private to the collector
    /// module otherwise).
    fn alloc_raw_public(&mut self, kind: AllocKind) -> Option<Address> {
        let size = kind.size_bytes();
        if is_large(kind) {
            return self.los.alloc(&mut self.core.pool, size);
        }
        self.recompute_nursery_limit();
        if self.nursery.used_bytes() + size > self.nursery_limit {
            return None;
        }
        let a = self.nursery.alloc(&mut self.core.pool, size);
        if a.is_some() {
            self.nursery_peak_pages = self.nursery_peak_pages.max(self.nursery.extent_pages());
        }
        a
    }

    // ----- compaction (§3.2 + §3.4.1) ------------------------------------

    /// The two-pass compacting collection.
    ///
    /// Pass 1 is an ordinary (residency-aware) marking phase. A sweep then
    /// frees unmarked resident cells while *keeping* marks, so per-class
    /// live counts — in which every cell on an evicted page conservatively
    /// counts as live ("BC updates the object counts for each size class to
    /// reserve space for every possible object on the evicted pages",
    /// §3.4.1) — can be read straight from the allocation bitmaps. Target
    /// superpages are then chosen: all superpages holding bookmarked
    /// objects or evicted pages, plus the fullest others until capacity
    /// suffices. Pass 2 Cheney-forwards live objects onto the targets;
    /// bookmarked objects already sit on targets and are never moved, so
    /// "BC does not need to update (evicted) pointers to bookmarked
    /// objects".
    pub(crate) fn compact_gc(&mut self, ctx: &mut MemCtx<'_>) {
        let pause = self.core.begin_pause(ctx, PauseKind::Compacting);
        // ---- Pass 1: mark.
        self.core.phase_begin(ctx, GcPhase::CompactPass1);
        self.phase = Phase::Major;
        if self.options.bookmarking && self.residency.any_evicted() {
            self.core.phase_begin(ctx, GcPhase::BookmarkScan);
            self.bookmark_root_scan(ctx);
            self.core.phase_end(ctx, GcPhase::BookmarkScan);
        }
        forward_roots(self, ctx);
        drain_gray(self, ctx);
        // Sweep garbage but keep marks for pass 2's in-place liveness.
        self.sweep_keep_marks(ctx);
        // ---- Select targets.
        self.select_compact_targets();
        self.core.phase_end(ctx, GcPhase::CompactPass1);
        // ---- Pass 2: forward onto targets.
        self.core.phase_begin(ctx, GcPhase::CompactPass2);
        self.phase = Phase::Compact;
        self.visited.clear();
        // Bookmarked objects are pass-2 roots as well: their fields must be
        // re-pointed at moved objects even if no heap root reaches them.
        if self.options.bookmarking && self.residency.any_evicted() {
            self.compact_bookmark_roots(ctx);
        }
        forward_roots(self, ctx);
        drain_gray(self, ctx);
        // ---- Free every non-target superpage wholesale.
        for sp in self.ms.assigned_sps() {
            if !self.compact_targets.contains(&sp.0) {
                self.ms.release_sp(&mut self.core.pool, sp);
            }
        }
        // ---- Clear marks on the survivors.
        for sp in self.ms.assigned_sps() {
            for cell in self.ms.allocated_cells_iter(sp) {
                if self.object_resident(cell) {
                    self.core.clear_mark(ctx, cell);
                }
            }
        }
        for (obj, _pages) in self.los.objects() {
            self.core.clear_mark(ctx, obj);
        }
        let _ = self.nursery.release_all(&mut self.core.pool);
        self.visited.clear();
        self.compact_targets.clear();
        self.target_alloc.clear();
        self.core.phase_end(ctx, GcPhase::CompactPass2);
        if self.core.sanitize_full() {
            self.sanitize_compacted();
        }
        self.core
            .sanitize_physical_checks(ctx, Some(&self.ms), &[&self.nursery]);
        self.phase = Phase::Idle;
        self.core.stats.full_gcs += 1;
        self.core.stats.compacting_gcs += 1;
        self.recompute_nursery_limit();
        self.core.end_pause(ctx, pause);
    }

    /// Shadow re-trace after compaction: survivors sit on target superpages
    /// or the LOS; a reachable edge into a released superpage (or at a
    /// forwarding stub left by pass 2) is a compaction bug. Resident marks
    /// were cleared; evicted objects keep theirs, but the trace stops at
    /// them anyway.
    fn sanitize_compacted(&mut self) {
        use heap::{Classified, ShadowSpec};
        let (ms, los) = (&self.ms, &self.los);
        let residency = &self.residency;
        let bookmarking = self.options.bookmarking;
        let spec = ShadowSpec {
            collector: if bookmarking { "BC" } else { "BC-resize" },
            phase: "after-compaction",
            classify: &|a| {
                if ms.is_allocated_cell(a) || los.is_live_object(a) {
                    Classified::Live
                } else {
                    Classified::Condemned("compacted space")
                }
            },
            resident: &move |a, size| !bookmarking || residency.range_resident(a, size),
            expect_marked: &|_| false,
        };
        self.core.sanitize_shadow_trace(&spec);
    }

    /// Frees unmarked resident cells and large objects, preserving marks on
    /// the survivors.
    fn sweep_keep_marks(&mut self, ctx: &mut MemCtx<'_>) {
        let mut dead = std::mem::take(self.core.sweep_scratch());
        for sp in self.ms.assigned_sps() {
            dead.clear();
            for cell in self.ms.allocated_cells_iter(sp) {
                if !self.object_resident(cell) {
                    continue;
                }
                if !self.core.is_marked(ctx, cell) {
                    dead.push(cell);
                }
            }
            for &cell in &dead {
                let _ = self.ms.free_cell(&mut self.core.pool, cell);
            }
        }
        *self.core.sweep_scratch() = dead;
        for (obj, _pages) in self.los.objects() {
            if !self.core.is_marked(ctx, obj) {
                let _ = self.los.free(&mut self.core.pool, obj);
            }
        }
    }

    /// Chooses the compaction targets (§3.2/§3.4.1).
    fn select_compact_targets(&mut self) {
        self.compact_targets.clear();
        self.target_alloc.clear();
        // Group assigned superpages by (class, kind). The map is ordered so
        // group processing (and therefore target selection) is
        // run-independent.
        // (allocated_cells, superpage, any_evicted) per (class, kind) group.
        type Group = Vec<(u32, SpIndex, bool)>;
        let mut groups: BTreeMap<(u8, BlockKind), Group> = BTreeMap::new();
        for sp in self.ms.assigned_sps() {
            let info = self.ms.info(sp);
            let Some((class, kind)) = info.assignment else {
                continue;
            };
            let forced = info.incoming_bookmarks > 0
                || self
                    .ms
                    .sp_pages(sp)
                    .iter()
                    .any(|&p| !self.residency.page_resident(p));
            groups
                .entry((class, kind))
                .or_default()
                .push((info.live_cells, sp, forced));
        }
        for ((class, kind), mut sps) in groups {
            let cells_per_sp = self.ms.classes().class(class).cells_per_superpage;
            let total_live: u64 = sps.iter().map(|&(live, _, _)| live as u64).sum();
            // Forced targets first, then fullest-first.
            sps.sort_by_key(|&(live, _, forced)| (!forced, std::cmp::Reverse(live)));
            let mut capacity = 0u64;
            let mut chosen = Vec::new();
            for (live, sp, forced) in sps {
                if !forced && capacity >= total_live {
                    break;
                }
                capacity += cells_per_sp as u64;
                chosen.push(sp);
                let _ = live;
            }
            for &sp in &chosen {
                self.compact_targets.insert(sp.0);
            }
            self.target_alloc.insert((class, kind), chosen);
        }
    }

    /// Allocates a pass-2 destination cell on a target superpage.
    fn alloc_on_target(&mut self, class: u8, kind: BlockKind) -> Address {
        if let Some(list) = self.target_alloc.get(&(class, kind)) {
            let list = list.clone();
            for sp in list {
                if let Some(addr) = self.ms.alloc_in_sp(sp, class) {
                    return addr;
                }
            }
        }
        // Capacity proof says this cannot happen; stay safe regardless.
        let addr = self
            .ms
            .alloc_forced(&mut self.core.pool, class, kind)
            .expect("mature region exhausted during compaction");
        let sp = self.ms.sp_of(addr);
        self.compact_targets.insert(sp.0);
        self.target_alloc.entry((class, kind)).or_default().push(sp);
        addr
    }

    /// Pass-2 roots: every resident bookmarked object (all on targets).
    fn compact_bookmark_roots(&mut self, ctx: &mut MemCtx<'_>) {
        for sp in self.ms.assigned_sps() {
            if self.ms.info(sp).incoming_bookmarks == 0 {
                continue;
            }
            for cell in self.ms.allocated_cells_iter(sp) {
                if !self.object_resident(cell) {
                    continue;
                }
                let h = self.core.header(ctx, cell);
                if h.bookmark && self.visited.insert(cell.0) {
                    self.core.queue.push(cell);
                }
            }
        }
        let bookmarked: Vec<u32> = self.los_incoming.keys().copied().collect();
        for addr in bookmarked {
            let obj = Address(addr);
            if self.los.is_live_object(obj) && self.visited.insert(obj.0) {
                self.core.queue.push(obj);
            }
        }
    }

    /// Pass-2 forwarding: move resident, marked, non-target objects onto
    /// target superpages; leave everything else in place.
    pub(crate) fn forward_compact(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address {
        debug_assert!(
            !self.nursery.region_contains(obj),
            "nursery must be empty during compaction"
        );
        if self.los.region_contains(obj) {
            if self.visited.insert(obj.0) {
                self.core.queue.push(obj);
            }
            return obj;
        }
        if !self.ms.region_contains(obj) || !self.object_resident(obj) {
            return obj; // evicted objects are preserved in place
        }
        match self.core.header_or_forward(ctx, obj) {
            Err(new) => new,
            Ok(h) => {
                let sp = self.ms.sp_of(obj);
                if self.compact_targets.contains(&sp.0) {
                    if self.visited.insert(obj.0) {
                        self.core.queue.push(obj);
                    }
                    obj
                } else {
                    let size = h.kind.size_bytes();
                    let class = self
                        .ms
                        .classes()
                        .class_for(size)
                        .expect("cell-sized object")
                        .index;
                    let bk = if h.kind.is_array() {
                        BlockKind::Array
                    } else {
                        BlockKind::Scalar
                    };
                    let new = self.alloc_on_target(class, bk);
                    self.core.copy_object(ctx, obj, new, size);
                    self.core.queue.push(new);
                    new
                }
            }
        }
    }

    // ----- the fail-safe (§3.5) ------------------------------------------

    /// Faults every evicted page back in and discards all bookmark state,
    /// so that an ordinary (now unrestricted) collection can reclaim
    /// everything. "Note that this worst-case situation for bookmarking
    /// collection … is the common case for existing garbage collectors."
    pub(crate) fn failsafe_restore(&mut self, ctx: &mut MemCtx<'_>) {
        let pause = self.core.begin_pause(ctx, PauseKind::FailSafe);
        let evicted: Vec<vmm::VirtPage> = self.residency.evicted_pages().collect();
        for page in evicted {
            ctx.vmm.touch(ctx.pid, page, Access::Read, ctx.clock);
        }
        self.residency.clear();
        // Clear every bookmark bit and counter.
        for sp in self.ms.assigned_sps() {
            self.ms.reset_incoming_bookmarks(sp);
            for cell in self.ms.allocated_cells_iter(sp) {
                ctx.touch(&mut self.core.mem, cell, WORD, Access::Read);
                let w0 = self.core.mem.read_word(cell);
                if Header::is_bookmarked(w0) {
                    self.core
                        .mem
                        .write_word(cell, Header::with_bookmark(w0, false));
                }
            }
        }
        let bookmarked: Vec<u32> = self.los_incoming.keys().copied().collect();
        self.los_incoming.clear();
        for addr in bookmarked {
            let obj = Address(addr);
            if self.los.is_live_object(obj) {
                self.set_bookmark_bit(ctx, obj, false);
            }
        }
        // The reload touches queued MadeResident notifications; they carry
        // no bookmark state anymore.
        ctx.vmm.discard_events(ctx.pid);
        self.core.stats.failsafe_gcs += 1;
        self.core.end_pause(ctx, pause);
    }
}
