//! The collector proper: heap organization, nursery and full collections.

use std::collections::{BTreeMap, HashMap};

use heap::gc::{drain_gray, forward_roots, is_large, Core, Forwarder, NurserySizer};
use heap::object::HEADER_BYTES;
use heap::{
    Address, AllocKind, BlockKind, BumpSpace, CardTable, Classified, CollectKind, GcHeap, GcStats,
    Handle, Header, HeapConfig, LargeObjectSpace, MemCtx, MsSpace, OutOfMemory, ShadowSpec,
    WriteBuffer, BYTES_PER_PAGE, WORD,
};
use simtime::{PauseKind, PauseLog};
use telemetry::{EventKind, GcPhase, Tracer};
use vmm::{Access, ProcessId, Vmm};

use crate::residency::ResidencyMap;

/// Victim-page selection policy — the paper's §7 future work: "we can
/// prefer to evict pages with no pointers, because these pages cannot
/// create false garbage. … We could also prefer to evict pages with as few
/// non-NULL pointers as possible."
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Accept whatever page the virtual memory manager nominates (the
    /// paper's evaluated configuration: the kernel's LRU choice is least
    /// likely to be used again soon).
    #[default]
    KernelChoice,
    /// Veto pointer-rich victims (by touching them, which makes the VMM
    /// nominate another page) until a page with at most `max_pointers`
    /// outgoing non-null references comes up, for up to `max_vetoes`
    /// consecutive notices. Pointer-poor pages set fewer bookmarks and
    /// retain less floating garbage, at the risk the paper names: "evicting
    /// a page that is not the last on the LRU queue may lead to more page
    /// faults in the application".
    PreferPointerFree {
        /// Outgoing-pointer budget under which a victim is accepted.
        max_pointers: u32,
        /// Consecutive vetoes allowed before accepting any victim.
        max_vetoes: u32,
    },
}

/// Construction options for the bookmarking collector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BcOptions {
    /// Whether bookmarking is enabled. When `false` the collector still
    /// discards empty pages and shrinks its heap under pressure, but never
    /// bookmarks or relinquishes pages — the paper's "BC w/ Resizing only"
    /// ablation (§5.3.2).
    pub bookmarking: bool,
    /// Victim-page selection (§7 future work; defaults to the paper's
    /// evaluated kernel-choice behaviour).
    pub victim_policy: VictimPolicy,
    /// Grow the heap budget back toward its configured size once memory
    /// pressure abates (§7: "It is important that a brief spike in memory
    /// pressure not limit throughput by restricting the size of the
    /// heap."). Off by default: the paper's evaluated collector only
    /// shrinks.
    pub regrow: bool,
}

impl BcOptions {
    /// The §5.3.2 ablation: heap resizing without bookmarks.
    pub fn resizing_only() -> BcOptions {
        BcOptions {
            bookmarking: false,
            ..BcOptions::default()
        }
    }

    /// The §7 extensions enabled: pointer-aware victim selection and
    /// post-pressure heap regrowth.
    pub fn with_future_work() -> BcOptions {
        BcOptions {
            bookmarking: true,
            victim_policy: VictimPolicy::PreferPointerFree {
                max_pointers: 8,
                max_vetoes: 4,
            },
            regrow: true,
        }
    }
}

impl Default for BcOptions {
    fn default() -> BcOptions {
        BcOptions {
            bookmarking: true,
            victim_policy: VictimPolicy::default(),
            regrow: false,
        }
    }
}

/// Which collection is in progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    Idle,
    Minor,
    Major,
    /// Second (Cheney) pass of a compacting collection (§3.2).
    Compact,
}

/// A collection deferred to the next safe point (§3.3.2: eviction notices
/// may require "triggering a collection", but notices can arrive in the
/// middle of a mutator operation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum GcRequest {
    None,
    Minor,
    Full,
}

/// The bookmarking collector. See the [crate docs](crate) for the
/// algorithm and [`BcOptions`] for the ablation switch.
#[derive(Debug)]
pub struct Bookmarking {
    pub(crate) core: Core,
    pub(crate) nursery: BumpSpace,
    pub(crate) ms: MsSpace,
    pub(crate) los: LargeObjectSpace,
    pub(crate) wbuf: WriteBuffer,
    pub(crate) cards: CardTable,
    pub(crate) sizer: NurserySizer,
    pub(crate) nursery_limit: u32,
    pub(crate) residency: ResidencyMap,
    /// Incoming-bookmark counters for large objects (the LOS analogue of
    /// the per-superpage counter). Ordered so bookmarked-LOS root
    /// enumeration is run-independent.
    pub(crate) los_incoming: BTreeMap<u32, u32>,
    pub(crate) options: BcOptions,
    pub(crate) phase: Phase,
    pub(crate) gc_requested: GcRequest,
    /// Pass-2 compaction visited set (in-place objects have no stub).
    pub(crate) visited: std::collections::HashSet<u32>,
    /// Target superpages of the in-progress compaction.
    pub(crate) compact_targets: std::collections::HashSet<u32>,
    /// Per-(class, kind) target allocation lists for compaction.
    pub(crate) target_alloc: HashMap<(u8, BlockKind), Vec<heap::SpIndex>>,
    /// The heap size the experiment configured (the budget may shrink
    /// below this under pressure, §3.3.3).
    pub(crate) configured_heap_bytes: usize,
    /// High-water mark of nursery extent, for discardable-page discovery.
    pub(crate) nursery_peak_pages: usize,
    /// Set once a pressure-triggered collection has been requested and not
    /// yet evaluated; throttles repeated requests from one notice burst.
    pub(crate) pressure_gc_ran: bool,
    /// Set when a minor collection failed to relieve pressure: the next
    /// pressure-triggered collection will be a full one.
    pub(crate) pressure_escalate: bool,
    /// Edge counter driving the in-collection event pump.
    pub(crate) gc_tick: u32,
    /// Consecutive pointer-rich victims vetoed (see [`VictimPolicy`]).
    pub(crate) victim_vetoes: u32,
    /// Pages whose eviction completed mid-collection; their §3.4 scan is
    /// deferred to the end of the pause (setting bookmarks mid-trace could
    /// hide objects from the in-flight marking).
    pub(crate) deferred_evicted: Vec<vmm::VirtPage>,
    /// Reusable VM-event buffer: notification pumps drain into it so the
    /// signal-handling paths never allocate.
    pub(crate) event_scratch: Vec<vmm::VmEvent>,
}

impl Bookmarking {
    /// Creates a bookmarking collector.
    ///
    /// Shrink-to-footprint is BC's *baseline* behaviour (§3.3.3), so the
    /// default [`heap::PolicyKind::Fixed`] selector is rewritten to
    /// [`heap::PolicyKind::BcFootprint`] (with the §7 regrow extension
    /// following `options.regrow`); an explicitly chosen policy is kept.
    pub fn new(mut config: HeapConfig, options: BcOptions) -> Bookmarking {
        if config.policy == heap::PolicyKind::Fixed {
            config.policy = heap::PolicyKind::BcFootprint {
                regrow: options.regrow,
            };
        }
        let l = config.layout;
        let sizer = NurserySizer::new(config.nursery);
        let configured_heap_bytes = config.heap_bytes;
        let mut bc = Bookmarking {
            core: Core::new(config),
            nursery: BumpSpace::new(l.nursery.0, l.nursery.1),
            ms: MsSpace::new(l.space_a.0, l.space_a.1),
            los: LargeObjectSpace::new(l.los.0, l.los.1),
            wbuf: WriteBuffer::new(),
            cards: CardTable::new(l.space_a.0, l.los.1),
            sizer,
            nursery_limit: 0,
            residency: ResidencyMap::new(),
            los_incoming: BTreeMap::new(),
            options,
            phase: Phase::Idle,
            gc_requested: GcRequest::None,
            visited: std::collections::HashSet::new(),
            compact_targets: std::collections::HashSet::new(),
            target_alloc: HashMap::new(),
            configured_heap_bytes,
            nursery_peak_pages: 0,
            pressure_gc_ran: false,
            pressure_escalate: false,
            gc_tick: 0,
            victim_vetoes: 0,
            deferred_evicted: Vec::new(),
            event_scratch: Vec::new(),
        };
        bc.recompute_nursery_limit();
        bc
    }

    /// Registers this collector's process for paging notifications — the
    /// cooperation channel of §4.1. Call once before the first allocation.
    pub fn register(&self, vmm: &mut Vmm, pid: ProcessId) {
        vmm.register_notifications(pid);
    }

    /// Whether this instance runs the full algorithm or the resizing-only
    /// ablation.
    pub fn bookmarking_enabled(&self) -> bool {
        self.options.bookmarking
    }

    /// BC's own count of evicted heap pages.
    pub fn evicted_heap_pages(&self) -> usize {
        self.residency.evicted_count()
    }

    /// The current heap budget in bytes (shrinks under pressure, §3.3.3).
    pub fn current_heap_budget(&self) -> usize {
        self.core.pool.budget_bytes()
    }

    // ----- residency helpers -------------------------------------------

    /// Whether the whole object at `addr` (header included) is resident
    /// according to BC's bit array. Resizing-only instances treat all pages
    /// as resident (their collections fault like any other collector's).
    pub(crate) fn object_resident(&self, addr: Address) -> bool {
        if !self.options.bookmarking {
            return true;
        }
        if !self.residency.page_resident(addr.page()) {
            return false;
        }
        // Header page is resident: the size can be read without faulting.
        let w0 = self.core.mem.read_word(addr);
        let w1 = self.core.mem.read_word(addr.offset(WORD));
        let size = match Header::decode_forwarded(w0, w1) {
            Ok(h) => h.kind.size_bytes(),
            Err(_) => return true, // forwarding stubs are header-only
        };
        self.residency.range_resident(addr, size)
    }

    // ----- charged access that pumps paging events ----------------------

    /// Touch + event pump: notifications raised by the touch (protection
    /// faults, reloads) are handled *before* the caller proceeds, so
    /// bookmark-clearing scans observe pristine page contents (§3.4.2).
    pub(crate) fn touch_pumped(
        &mut self,
        ctx: &mut MemCtx<'_>,
        addr: Address,
        len: u32,
        access: Access,
    ) {
        let o = ctx.touch(&mut self.core.mem, addr, len, access);
        if o.events_queued {
            self.process_vm_events(ctx);
        }
    }

    // ----- sizing --------------------------------------------------------

    fn free_minus_reserve(&self) -> u32 {
        let budget = self.core.pool.budget_bytes() as u64;
        let non_nursery = self
            .core
            .pool
            .used()
            .saturating_sub(self.nursery.extent_pages()) as u64
            * BYTES_PER_PAGE as u64;
        budget.saturating_sub(non_nursery).min(u32::MAX as u64) as u32
    }

    pub(crate) fn recompute_nursery_limit(&mut self) {
        self.nursery_limit = self.sizer.limit(self.free_minus_reserve());
    }

    // ----- allocation ----------------------------------------------------

    fn alloc_raw(&mut self, kind: AllocKind) -> Option<Address> {
        let size = kind.size_bytes();
        if is_large(kind) {
            return self.los.alloc(&mut self.core.pool, size);
        }
        if self.nursery.used_bytes() + size > self.nursery_limit {
            return None;
        }
        let addr = self.nursery.alloc(&mut self.core.pool, size);
        if addr.is_some() {
            self.nursery_peak_pages = self.nursery_peak_pages.max(self.nursery.extent_pages());
        }
        addr
    }

    /// Copies a nursery survivor into a mature cell (promotion).
    pub(crate) fn promote(&mut self, ctx: &mut MemCtx<'_>, obj: Address, h: Header) -> Address {
        let size = h.kind.size_bytes();
        let class = self
            .ms
            .classes()
            .class_for(size)
            .expect("nursery object fits a cell")
            .index;
        let bk = if h.kind.is_array() {
            BlockKind::Array
        } else {
            BlockKind::Scalar
        };
        let new = self
            .ms
            .alloc_forced(&mut self.core.pool, class, bk)
            .expect("mature region exhausted");
        self.core.copy_object(ctx, obj, new, size);
        new
    }

    // ----- remembered set (§3.1) ----------------------------------------

    /// Converts a full write buffer into card marks: "it removes entries
    /// for pointers from the mature space and instead marks the card for
    /// the source object in the card table".
    pub(crate) fn process_write_buffer(&mut self, ctx: &mut MemCtx<'_>) {
        let ram_word = ctx.vmm.costs().ram_word;
        let entries = self.wbuf.drain();
        ctx.clock.advance(ram_word * entries.len() as u64);
        for slot in entries {
            self.cards.mark(slot);
        }
    }

    /// Scans the reference fields of `obj` whose slots fall in
    /// `[lo, hi)`, returning `(slot, target)` pairs (charged).
    pub(crate) fn scan_refs_in_range(
        &mut self,
        ctx: &mut MemCtx<'_>,
        obj: Address,
        lo: Address,
        hi: Address,
    ) -> Vec<(Address, Address)> {
        let h = self.core.header(ctx, obj);
        let n = h.kind.num_ref_fields();
        if n == 0 {
            return Vec::new();
        }
        let first_slot = obj.offset(HEADER_BYTES).0;
        let last_slot = first_slot + (n - 1) * WORD;
        let lo = lo.0.max(first_slot);
        let hi = hi.0.min(last_slot + WORD);
        if lo >= hi {
            return Vec::new();
        }
        let costs = ctx.vmm.costs();
        let (scan_object, scan_ref) = (costs.scan_object, costs.scan_ref);
        let count = (hi - lo) / WORD;
        ctx.clock.advance(scan_object + scan_ref * count as u64);
        ctx.touch(&mut self.core.mem, Address(lo), hi - lo, Access::Read);
        let mut out = Vec::new();
        let mut slot = lo - (lo - first_slot) % WORD;
        while slot < hi {
            let target = Address(self.core.mem.read_word(Address(slot)));
            if !target.is_null() {
                out.push((Address(slot), target));
            }
            slot += WORD;
        }
        out
    }

    /// Forwards nursery targets reachable from one dirty card.
    fn scan_card(&mut self, ctx: &mut MemCtx<'_>, card_base: Address) {
        let (lo, hi) = CardTable::card_range(card_base);
        let mut objects: Vec<Address> = Vec::new();
        if self.ms.region_contains(card_base) {
            let sp_extent = self.ms.extent_superpages();
            let sp_of_card =
                (card_base.0 - self.ms.sp_base(heap::SpIndex(0)).0) / heap::BYTES_PER_SUPERPAGE;
            if sp_of_card < sp_extent {
                let sp = heap::SpIndex(sp_of_card);
                objects = self.ms.cells_overlapping_bytes(
                    sp,
                    lo.0 - self.ms.sp_base(sp).0,
                    hi.0 - self.ms.sp_base(sp).0,
                );
            }
        } else if self.los.region_contains(card_base) {
            if let Some((obj, _pages)) = self.los.object_containing(card_base) {
                objects.push(obj);
            }
        }
        for obj in objects {
            let refs = if self.object_resident(obj) {
                self.scan_refs_in_range(ctx, obj, lo, hi)
            } else {
                // A partially evicted object can still hold nursery
                // pointers in slots on its resident pages (stored after
                // the other pages left); scan exactly those. Wholly
                // evicted objects yield nothing — their pages were
                // rescued at eviction if they held nursery pointers.
                self.scan_resident_refs_in_range(ctx, obj, lo, hi)
            };
            for (slot, target) in refs {
                if self.nursery.region_contains(target) {
                    let new = self.forward(ctx, target);
                    self.core.mem.write_word(slot, new.0);
                }
            }
        }
    }

    /// Like [`scan_refs_in_range`](Bookmarking::scan_refs_in_range), but
    /// touches only slots on pages BC's residency map calls resident; the
    /// header of a partially evicted object is read from the swap-bound
    /// image (exactly what the pre-unmap handler saw, §4.1).
    fn scan_resident_refs_in_range(
        &mut self,
        ctx: &mut MemCtx<'_>,
        obj: Address,
        lo: Address,
        hi: Address,
    ) -> Vec<(Address, Address)> {
        let h = match Header::decode_forwarded(
            self.core.mem.read_word(obj),
            self.core.mem.read_word(obj.offset(WORD)),
        ) {
            Ok(h) => h,
            Err(_) => return Vec::new(),
        };
        let n = h.kind.num_ref_fields();
        if n == 0 {
            return Vec::new();
        }
        let first_slot = obj.offset(HEADER_BYTES).0;
        let last_slot = first_slot + (n - 1) * WORD;
        let lo = lo.0.max(first_slot);
        let hi = hi.0.min(last_slot + WORD);
        if lo >= hi {
            return Vec::new();
        }
        let costs = ctx.vmm.costs();
        let (scan_object, scan_ref) = (costs.scan_object, costs.scan_ref);
        ctx.clock.advance(scan_object);
        let mut out = Vec::new();
        let mut slot = lo - (lo - first_slot) % WORD;
        while slot < hi {
            let a = Address(slot);
            if self.residency.page_resident(a.page()) {
                ctx.clock.advance(scan_ref);
                ctx.touch(&mut self.core.mem, a, WORD, Access::Read);
                let target = Address(self.core.mem.read_word(a));
                if !target.is_null() {
                    out.push((a, target));
                }
            }
            slot += WORD;
        }
        out
    }

    // ----- sanitizer -----------------------------------------------------

    /// Shadow re-trace: live data lives in allocated mature cells and live
    /// large objects; the trace stops at evicted objects exactly as BC's
    /// own trace does (their edges are covered by the bookmark-soundness
    /// check instead).
    fn sanitize_shadow(&mut self, phase: &'static str, condemned: &'static str, marked: bool) {
        let (ms, los) = (&self.ms, &self.los);
        let residency = &self.residency;
        let bookmarking = self.options.bookmarking;
        let name: &'static str = if bookmarking { "BC" } else { "BC-resize" };
        let spec = ShadowSpec {
            collector: name,
            phase,
            classify: &|a| {
                if ms.is_allocated_cell(a) || los.is_live_object(a) {
                    Classified::Live
                } else {
                    Classified::Condemned(condemned)
                }
            },
            resident: &move |a, size| !bookmarking || residency.range_resident(a, size),
            expect_marked: &move |_| marked,
        };
        self.core.sanitize_shadow_trace(&spec);
    }

    // ----- collections ---------------------------------------------------

    pub(crate) fn minor_gc(&mut self, ctx: &mut MemCtx<'_>) {
        let pause = self.core.begin_pause(ctx, PauseKind::Nursery);
        // Serve this collection's page demand from the empty-page reserve
        // so the kernel does not run ahead mid-collection (§3.4.3).
        self.discard_reserve(ctx);
        self.phase = Phase::Minor;
        self.core.phase_begin(ctx, GcPhase::RootScan);
        forward_roots(self, ctx);
        self.core.phase_end(ctx, GcPhase::RootScan);
        self.core.phase_begin(ctx, GcPhase::CardScan);
        self.process_remembered_set(ctx);
        self.core.phase_end(ctx, GcPhase::CardScan);
        self.core.phase_begin(ctx, GcPhase::Trace);
        drain_gray(self, ctx);
        self.core.phase_end(ctx, GcPhase::Trace);
        if self.core.sanitize_full() {
            // Mature objects are unmarked during a minor collection; a
            // reachable nursery edge here means a write-barrier record or
            // remembered-set entry went missing.
            self.sanitize_shadow("after-trace", "collected nursery", false);
        }
        let _ = self.nursery.release_all(&mut self.core.pool);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-collection", "released nursery", false);
        }
        self.core
            .sanitize_physical_checks(ctx, Some(&self.ms), &[&self.nursery]);
        self.phase = Phase::Idle;
        self.core.stats.nursery_gcs += 1;
        self.recompute_nursery_limit();
        self.core.end_pause(ctx, pause);
        if self.core.policy_after_gc(ctx) {
            self.recompute_nursery_limit();
        }
        self.finish_deferred_evictions(ctx);
    }

    /// Forwards every recorded mature→nursery slot (§3.1): unprocessed
    /// write-buffer entries first, then the objects named by dirty cards.
    /// Slots on evicted pages are skipped: a page holding a live nursery
    /// pointer is never evicted (the eviction scan rescues it), so a
    /// non-resident slot's store was overwritten before the page left.
    /// Skips are per *slot*, not per object — a spanning object with an
    /// evicted tail can still take stores into its resident head.
    pub(crate) fn process_remembered_set(&mut self, ctx: &mut MemCtx<'_>) {
        let entries = self.wbuf.drain();
        for slot in entries {
            if !self.residency.page_resident(slot.page()) {
                continue;
            }
            let target = self.core.read_slot(ctx, slot);
            if self.nursery.region_contains(target) {
                let new = self.forward(ctx, target);
                self.core.write_slot(ctx, slot, new);
            }
        }
        for card in self.cards.dirty_cards() {
            self.scan_card(ctx, card);
        }
        self.cards.clear();
    }

    /// The bookmark root scan of §3.4.1: treat every resident bookmarked
    /// object as root-referenced, visiting "only those superpages with a
    /// nonzero incoming bookmark count".
    pub(crate) fn bookmark_root_scan(&mut self, ctx: &mut MemCtx<'_>) {
        for sp in self.ms.assigned_sps() {
            if self.ms.info(sp).incoming_bookmarks == 0 {
                continue;
            }
            // Reading the superpage header (always resident, §3.4).
            let base = self.ms.sp_base(sp);
            ctx.touch(&mut self.core.mem, base, 12, Access::Read);
            for cell in self.ms.allocated_cells_iter(sp) {
                if !self.object_resident(cell) {
                    continue;
                }
                let h = self.core.header(ctx, cell);
                if h.bookmark && self.core.try_mark(ctx, cell) {
                    self.core.queue.push(cell);
                }
            }
        }
        // Large objects with incoming bookmarks are roots too.
        let bookmarked: Vec<u32> = self.los_incoming.keys().copied().collect();
        for addr in bookmarked {
            let obj = Address(addr);
            if self.los.is_live_object(obj) && self.core.try_mark(ctx, obj) {
                self.core.queue.push(obj);
            }
        }
    }

    /// Frees unmarked *resident* cells; evicted cells are preserved
    /// unexamined ("a sweep of the memory-resident pages completes the
    /// collection", §3.4.1).
    pub(crate) fn sweep_resident(&mut self, ctx: &mut MemCtx<'_>) {
        let mut dead = std::mem::take(self.core.sweep_scratch());
        for sp in self.ms.assigned_sps() {
            dead.clear();
            for cell in self.ms.allocated_cells_iter(sp) {
                if !self.object_resident(cell) {
                    continue;
                }
                if self.core.is_marked(ctx, cell) {
                    self.core.clear_mark(ctx, cell);
                } else {
                    dead.push(cell);
                }
            }
            for &cell in &dead {
                let _ = self.ms.free_cell(&mut self.core.pool, cell);
            }
            if !dead.is_empty() && self.ms.info(sp).assignment.is_some() {
                self.ms.note_partial(sp);
            }
        }
        *self.core.sweep_scratch() = dead;
        for (obj, _pages) in self.los.objects() {
            if self.core.is_marked(ctx, obj) {
                self.core.clear_mark(ctx, obj);
            } else {
                debug_assert!(
                    !self.los_incoming.contains_key(&obj.0),
                    "bookmarked LOS object was not rooted"
                );
                let _ = self.los.free(&mut self.core.pool, obj);
            }
        }
    }

    pub(crate) fn major_gc(&mut self, ctx: &mut MemCtx<'_>) {
        let pause = self.core.begin_pause(ctx, PauseKind::Full);
        self.discard_reserve(ctx);
        self.phase = Phase::Major;
        if self.options.bookmarking && self.residency.any_evicted() {
            self.core.phase_begin(ctx, GcPhase::BookmarkScan);
            self.bookmark_root_scan(ctx);
            self.core.phase_end(ctx, GcPhase::BookmarkScan);
        }
        self.core.phase_begin(ctx, GcPhase::RootScan);
        forward_roots(self, ctx);
        self.core.phase_end(ctx, GcPhase::RootScan);
        // The remembered set cannot simply be dropped: the trace skips
        // objects with evicted pages, so a recorded mature→nursery slot on
        // a *resident* page of such an object would otherwise keep its
        // (soon dangling) nursery address across the nursery release below.
        self.core.phase_begin(ctx, GcPhase::CardScan);
        self.process_remembered_set(ctx);
        self.core.phase_end(ctx, GcPhase::CardScan);
        self.core.phase_begin(ctx, GcPhase::Trace);
        drain_gray(self, ctx);
        self.core.phase_end(ctx, GcPhase::Trace);
        if self.core.sanitize_full() {
            // Every reachable resident object must be marked — whether the
            // trace reached it through the heap or the bookmark root scan.
            self.sanitize_shadow("after-trace", "collected nursery", true);
        }
        self.core.phase_begin(ctx, GcPhase::Sweep);
        self.sweep_resident(ctx);
        let _ = self.nursery.release_all(&mut self.core.pool);
        self.core.phase_end(ctx, GcPhase::Sweep);
        if self.core.sanitize_full() {
            self.sanitize_shadow("after-collection", "swept space", false);
        }
        self.core
            .sanitize_physical_checks(ctx, Some(&self.ms), &[&self.nursery]);
        self.wbuf.retain_entries(Vec::new());
        self.cards.clear();
        self.phase = Phase::Idle;
        self.core.stats.full_gcs += 1;
        self.recompute_nursery_limit();
        self.core.end_pause(ctx, pause);
        if self.core.policy_after_gc(ctx) {
            self.recompute_nursery_limit();
        }
        self.emit_residency_snapshots(ctx);
        self.finish_deferred_evictions(ctx);
        if self.core.sanitize_full() && self.options.bookmarking {
            self.sanitize_bookmark_soundness();
        }
    }

    /// Emits one [`EventKind::Residency`] event per assigned superpage after
    /// a full collection, so traces can reconstruct the footprint the
    /// collector actually kept resident. A no-op when tracing is disabled.
    fn emit_residency_snapshots(&mut self, ctx: &MemCtx<'_>) {
        if !self.core.config.tracer.enabled() {
            return;
        }
        for sp in self.ms.assigned_sps() {
            let pages = self.ms.sp_pages(sp);
            let resident = pages
                .iter()
                .filter(|&&p| self.residency.page_resident(p))
                .count() as u32;
            self.core.trace_event(
                ctx,
                EventKind::Residency {
                    superpage: pages[0].number(),
                    resident,
                    total: pages.len() as u32,
                },
            );
        }
    }

    /// §7 extension: once pressure has clearly abated, grow the heap budget
    /// back toward its configured size so a transient spike does not
    /// permanently constrain throughput. Runs at safe points; the step and
    /// slack rules live in the policy layer
    /// ([`heap::policy::BcFootprint`]'s idle hook).
    pub(crate) fn maybe_regrow(&mut self, ctx: &mut MemCtx<'_>) {
        if !self.core.policy.idle_active() {
            return;
        }
        if self.core.policy_idle(ctx) {
            self.recompute_nursery_limit();
        }
    }

    /// Runs any collection deferred from a notification handler.
    pub(crate) fn run_deferred_gc(&mut self, ctx: &mut MemCtx<'_>) {
        match std::mem::replace(&mut self.gc_requested, GcRequest::None) {
            GcRequest::None => {}
            GcRequest::Minor => {
                self.minor_gc(ctx);
                self.after_pressure_gc(ctx);
            }
            GcRequest::Full => {
                self.major_gc(ctx);
                self.after_pressure_gc(ctx);
            }
        }
    }
}

impl Forwarder for Bookmarking {
    fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    fn forward(&mut self, ctx: &mut MemCtx<'_>, obj: Address) -> Address {
        // The paper's signal handler keeps running during collections: every
        // few hundred edges, service pending notices and — before the
        // kernel is forced into direct reclaim — feed its free list from
        // the empty-page reserve (§3.4.3: "If pages are scheduled for
        // eviction during a collection, BC discards the pages held in
        // reserve").
        self.gc_tick = self.gc_tick.wrapping_add(1);
        if self.gc_tick.is_multiple_of(128) {
            self.discard_reserve(ctx);
            if ctx.vmm.has_events(ctx.pid) {
                self.pump_events_in_gc(ctx);
            }
        }
        match self.phase {
            Phase::Idle => unreachable!("forward outside a collection"),
            Phase::Minor => {
                if !self.nursery.region_contains(obj) {
                    return obj;
                }
                match self.core.header_or_forward(ctx, obj) {
                    Err(new) => new,
                    Ok(h) => {
                        let new = self.promote(ctx, obj, h);
                        self.core.queue.push(new);
                        new
                    }
                }
            }
            Phase::Major => {
                if self.nursery.region_contains(obj) {
                    match self.core.header_or_forward(ctx, obj) {
                        Err(new) => new,
                        Ok(h) => {
                            let new = self.promote(ctx, obj, h);
                            let marked = self.core.try_mark(ctx, new);
                            debug_assert!(marked);
                            self.core.queue.push(new);
                            new
                        }
                    }
                } else {
                    // The heart of BC: never follow references onto
                    // evicted pages ("BC ignores these during collection").
                    if !self.object_resident(obj) {
                        return obj;
                    }
                    if self.core.try_mark(ctx, obj) {
                        self.core.queue.push(obj);
                    }
                    obj
                }
            }
            Phase::Compact => self.forward_compact(ctx, obj),
        }
    }
}

impl GcHeap for Bookmarking {
    fn alloc(&mut self, ctx: &mut MemCtx<'_>, kind: AllocKind) -> Result<Handle, OutOfMemory> {
        self.run_deferred_gc(ctx);
        let addr = match self.alloc_raw(kind) {
            Some(a) => a,
            None => self.alloc_slow(ctx, kind)?,
        };
        self.core.init_object(ctx, addr, kind.object_kind());
        Ok(self.core.roots.add(addr))
    }

    fn write_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32, val: Option<Handle>) {
        let obj = self.core.roots.get(src);
        let target = val.map_or(Address::NULL, |h| self.core.roots.get(h));
        let slot = heap::object::field_addr(obj, field);
        if !self.nursery.region_contains(obj) && self.nursery.region_contains(target) {
            self.core.stats.barrier_records += 1;
            let barrier = ctx.vmm.costs().barrier;
            ctx.clock.advance(barrier);
            if self.wbuf.record(slot) {
                self.process_write_buffer(ctx);
            }
        }
        // Pump events raised by the touch *before* the store lands, so a
        // reload scan sees the page as it was when evicted.
        self.touch_pumped(ctx, slot, WORD, Access::Write);
        self.core.mem.write_word(slot, target.0);
    }

    fn read_ref(&mut self, ctx: &mut MemCtx<'_>, src: Handle, field: u32) -> Option<Handle> {
        let obj = self.core.roots.get(src);
        let slot = heap::object::field_addr(obj, field);
        self.touch_pumped(ctx, slot, WORD, Access::Read);
        let target = Address(self.core.mem.read_word(slot));
        (!target.is_null()).then(|| self.core.roots.add(target))
    }

    fn read_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        self.touch_pumped(ctx, addr, HEADER_BYTES, Access::Read);
        let size = Header::decode(
            self.core.mem.read_word(addr),
            self.core.mem.read_word(addr.offset(WORD)),
        )
        .kind
        .size_bytes();
        self.touch_pumped(ctx, addr, size, Access::Read);
    }

    fn write_data(&mut self, ctx: &mut MemCtx<'_>, obj: Handle) {
        let addr = self.core.roots.get(obj);
        self.touch_pumped(ctx, addr, HEADER_BYTES, Access::Read);
        let size = Header::decode(
            self.core.mem.read_word(addr),
            self.core.mem.read_word(addr.offset(WORD)),
        )
        .kind
        .size_bytes();
        self.touch_pumped(
            ctx,
            addr.offset(HEADER_BYTES),
            size.saturating_sub(HEADER_BYTES).max(WORD),
            Access::Write,
        );
    }

    fn same_object(&self, a: Handle, b: Handle) -> bool {
        self.core.roots.get(a) == self.core.roots.get(b)
    }

    fn dup_handle(&mut self, h: Handle) -> Handle {
        let addr = self.core.roots.get(h);
        self.core.roots.add(addr)
    }

    fn drop_handle(&mut self, h: Handle) {
        self.core.roots.remove(h);
    }

    fn collect(&mut self, ctx: &mut MemCtx<'_>, kind: CollectKind) {
        match kind {
            CollectKind::Full => self.major_gc(ctx),
            CollectKind::Minor => {
                self.minor_gc(ctx);
                if self.sizer.full_gc_needed(self.free_minus_reserve()) {
                    self.major_gc(ctx);
                }
            }
        }
    }

    fn handle_vm_events(&mut self, ctx: &mut MemCtx<'_>) {
        self.process_vm_events(ctx);
        // The engine calls this between mutator steps: a safe point.
        self.run_deferred_gc(ctx);
        self.maybe_regrow(ctx);
    }

    fn stats(&self) -> &GcStats {
        &self.core.stats
    }

    fn pause_log(&self) -> &PauseLog {
        &self.core.pauses
    }

    fn tracer(&self) -> &Tracer {
        &self.core.config.tracer
    }

    fn heap_pages_used(&self) -> usize {
        self.core.pool.used()
    }

    fn heap_pages_peak(&self) -> usize {
        self.core.pool.peak()
    }

    fn name(&self) -> &'static str {
        if self.options.bookmarking {
            "BC"
        } else {
            "BC-resize"
        }
    }
}
