//! BC's private page-residency bookkeeping (§3.3.1).
//!
//! "To limit overhead due to communication with the virtual memory manager,
//! BC tracks page residency internally. … During garbage collection, the
//! collector uses this bit array to avoid following pointers into pages that
//! are not resident."

use std::collections::BTreeSet;

use heap::Address;
use vmm::VirtPage;

/// The collector-side view of which heap pages are non-resident.
///
/// Pages start (and, after reload, return to) the resident state; BC marks a
/// page non-resident exactly when it relinquishes it (or learns of a hard
/// eviction) and resident again on a `MadeResident` notification.
///
/// The set is ordered so every iteration over evicted pages (bookmark
/// scans, fail-safe restores) proceeds in a fixed, run-independent order —
/// a `HashSet` here made BC's simulated trace order depend on the host
/// process's hash seed.
#[derive(Clone, Debug, Default)]
pub struct ResidencyMap {
    evicted: BTreeSet<VirtPage>,
}

impl ResidencyMap {
    /// A map with every page resident.
    pub fn new() -> ResidencyMap {
        ResidencyMap::default()
    }

    /// Records a page as evicted.
    pub fn mark_evicted(&mut self, page: VirtPage) {
        self.evicted.insert(page);
    }

    /// Records a page as resident again. Returns whether it had been
    /// tracked as evicted.
    pub fn mark_resident(&mut self, page: VirtPage) -> bool {
        self.evicted.remove(&page)
    }

    /// Whether a page is resident according to BC's own bookkeeping.
    pub fn page_resident(&self, page: VirtPage) -> bool {
        !self.evicted.contains(&page)
    }

    /// Whether every page of `[addr, addr + len)` is resident.
    pub fn range_resident(&self, addr: Address, len: u32) -> bool {
        if self.evicted.is_empty() {
            return true;
        }
        let first = addr.page().number();
        let last = Address(addr.0 + len.max(1) - 1).page().number();
        (first..=last).all(|p| !self.evicted.contains(&VirtPage::new(p)))
    }

    /// Number of pages currently tracked as evicted.
    pub fn evicted_count(&self) -> usize {
        self.evicted.len()
    }

    /// Whether any heap page is evicted (fast path: when false, full
    /// collections skip all bookmark machinery).
    pub fn any_evicted(&self) -> bool {
        !self.evicted.is_empty()
    }

    /// The evicted pages, in ascending page order.
    pub fn evicted_pages(&self) -> impl Iterator<Item = VirtPage> + '_ {
        self.evicted.iter().copied()
    }

    /// Forgets all evictions (the §3.5 fail-safe makes everything resident).
    pub fn clear(&mut self) {
        self.evicted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_is_all_resident() {
        let m = ResidencyMap::new();
        assert!(m.page_resident(VirtPage::new(0)));
        assert!(m.range_resident(Address(0), 1 << 20));
        assert!(!m.any_evicted());
        assert_eq!(m.evicted_count(), 0);
    }

    #[test]
    fn evict_and_reload_round_trip() {
        let mut m = ResidencyMap::new();
        m.mark_evicted(VirtPage::new(5));
        assert!(!m.page_resident(VirtPage::new(5)));
        assert!(m.page_resident(VirtPage::new(6)));
        assert!(m.any_evicted());
        assert!(m.mark_resident(VirtPage::new(5)));
        assert!(
            !m.mark_resident(VirtPage::new(5)),
            "second reload is a no-op"
        );
        assert!(m.page_resident(VirtPage::new(5)));
    }

    #[test]
    fn range_residency_spans_pages() {
        let mut m = ResidencyMap::new();
        m.mark_evicted(VirtPage::new(2)); // bytes 8192..12288
        assert!(m.range_resident(Address(0), 8192));
        assert!(!m.range_resident(Address(8000), 400));
        assert!(!m.range_resident(Address(8192), 1));
        assert!(m.range_resident(Address(12288), 4096));
    }

    #[test]
    fn clear_forgets_everything() {
        let mut m = ResidencyMap::new();
        m.mark_evicted(VirtPage::new(1));
        m.mark_evicted(VirtPage::new(2));
        m.clear();
        assert!(!m.any_evicted());
        assert!(m.page_resident(VirtPage::new(1)));
    }
}
