//! The **bookmarking collector** (BC) of *Garbage Collection Without
//! Paging* (Hertz, Feng & Berger, PLDI 2005).
//!
//! BC is a generational collector — bump-pointer nursery, segregated-fit
//! mark-sweep mature space over 16 KiB superpages, page-based large object
//! space — that *cooperates with the virtual memory manager* so that garbage
//! collection almost never touches an evicted page:
//!
//! * **Residency tracking** (§3.3.1): BC keeps its own bit array of page
//!   residency and never follows references onto non-resident pages.
//! * **Discarding empty pages** (§3.3.2): on an eviction notice BC hands the
//!   VMM an empty page (`madvise(MADV_DONTNEED)`) instead of letting a live
//!   one be swapped out, collecting first if necessary.
//! * **Heap footprint shrinking** (§3.3.3): eviction notices tell BC the
//!   heap no longer fits; BC pins its heap budget to the current footprint
//!   rather than growing at the expense of paging.
//! * **Bookmarking** (§3.4): when a non-empty page really must go, BC scans
//!   it, sets a one-bit *bookmark* in every object it references, increments
//!   the target superpages' incoming-bookmark counters, conservatively
//!   bookmarks the page's own objects, and surrenders the page via
//!   `vm_relinquish`. Bookmarked objects serve as extra roots, so full-heap
//!   collections complete without touching evicted pages; bookmarks are
//!   dropped when reloaded pages drive the counters back to zero (§3.4.2).
//! * **Compaction** (§3.2): when mark-sweep cannot satisfy an allocation, a
//!   two-pass compacting collection copies live objects onto a minimal set
//!   of target superpages — which always include superpages holding
//!   bookmarked objects or evicted pages, so evicted pointers stay valid.
//! * **Completeness fail-safe** (§3.5): if the heap is truly exhausted, BC
//!   discards all bookmarks and performs an ordinary full-heap collection
//!   that may touch evicted pages — the common case for other collectors,
//!   the worst case for BC.
//!
//! The [`Bookmarking`] type implements the same [`GcHeap`](heap::GcHeap)
//! interface as the baseline collectors, plus construction options for the
//! paper's ablation: [`BcOptions::resizing_only`] disables bookmarking (the
//! "BC w/ Resizing only" variant of §5.3.2).
//!
//! # Example
//!
//! ```
//! use bookmarking::{BcOptions, Bookmarking};
//! use heap::{AllocKind, GcHeap, HeapConfig, MemCtx};
//! use simtime::{Clock, CostModel};
//! use vmm::{Vmm, VmmConfig};
//!
//! # fn main() -> Result<(), heap::OutOfMemory> {
//! let mut vmm = Vmm::new(VmmConfig::builder().memory_bytes(64 << 20).build(), CostModel::default());
//! let mut clock = Clock::new();
//! let pid = vmm.register_process();
//! let mut bc = Bookmarking::new(HeapConfig::builder().heap_bytes(8 << 20).build(), BcOptions::default());
//! bc.register(&mut vmm, pid);
//! let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
//! let obj = bc.alloc(&mut ctx, AllocKind::Scalar { data_words: 4, num_refs: 2 })?;
//! bc.drop_handle(obj);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod collector;
mod compact;
mod pressure;
mod residency;

#[cfg(test)]
mod tests;

pub use collector::{BcOptions, Bookmarking, VictimPolicy};
pub use residency::ResidencyMap;
