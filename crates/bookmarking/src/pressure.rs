//! Cooperation with the virtual memory manager (§3.3–§3.4): eviction
//! notices, empty-page discarding, heap shrinking, bookmarking, and
//! bookmark clearing.

use heap::{Address, Header, InjectFault, MemCtx, SanitizeError, BYTES_PER_PAGE, WORD};
use telemetry::EventKind;
use vmm::{Access, VirtPage, VmEvent};

use crate::collector::{Bookmarking, GcRequest, VictimPolicy};

/// Pages discarded per eviction notice (§3.4.3: BC "discards all contiguous
/// empty pages recorded on the same word in its bit array" — aggressive
/// batching that limits notification traffic).
const DISCARD_BATCH: usize = 64;

/// Empty pages BC holds back as its reserve (§3.4.3: "it maintains a store
/// of empty pages and begins a collection when these are the only
/// discardable pages remaining. If pages are scheduled for eviction during
/// a collection, BC discards the pages held in reserve"). The reserve
/// absorbs the collector's own mid-collection frame demand, which would
/// otherwise force the kernel to run ahead and hard-evict unscanned pages.
const RESERVE_PAGES: usize = 64;

impl Bookmarking {
    /// In-collection notification servicing: only actions that cannot
    /// disturb the in-flight trace are taken — discarding empty pages
    /// (including the reserve), rescuing must-stay pages, and recording
    /// reloads. Completed evictions are queued for scanning after the
    /// pause ([`finish_deferred_evictions`](Bookmarking::finish_deferred_evictions)).
    pub(crate) fn pump_events_in_gc(&mut self, ctx: &mut MemCtx<'_>) {
        let mut events = std::mem::take(&mut self.event_scratch);
        events.clear();
        ctx.vmm.drain_events_into(ctx.pid, &mut events);
        for &ev in &events {
            let cost = ctx.vmm.costs().notification;
            ctx.clock.advance(cost);
            match ev {
                VmEvent::EvictionScheduled { page } => {
                    self.shrink_to_footprint(ctx);
                    if self.page_is_empty(ctx, page) {
                        ctx.vmm.madvise_dontneed(ctx.pid, &[page], ctx.clock);
                        self.core.stats.pages_discarded += 1;
                        continue;
                    }
                    let _ = self.discard_empties_inner(ctx, DISCARD_BATCH, 0);
                    if self.options.bookmarking && self.must_stay_resident(page) {
                        ctx.vmm.touch(ctx.pid, page, Access::Read, ctx.clock);
                    }
                }
                VmEvent::Evicted { page } => {
                    if self.options.bookmarking {
                        self.deferred_evicted.push(page);
                    }
                }
                VmEvent::MadeResident { page } | VmEvent::ProtectionFault { page } => {
                    self.on_page_resident(ctx, page);
                }
            }
        }
        self.event_scratch = events;
    }

    /// Scans pages whose eviction completed during the last pause (§3.4.3).
    pub(crate) fn finish_deferred_evictions(&mut self, ctx: &mut MemCtx<'_>) {
        if self.deferred_evicted.is_empty() {
            return;
        }
        let pages = std::mem::take(&mut self.deferred_evicted);
        for page in pages {
            if !ctx.vmm.is_resident(ctx.pid, page) {
                self.on_hard_eviction(ctx, page);
            }
        }
    }

    /// Drains and handles all queued paging notifications.
    pub(crate) fn process_vm_events(&mut self, ctx: &mut MemCtx<'_>) {
        let mut events = std::mem::take(&mut self.event_scratch);
        loop {
            events.clear();
            if ctx.vmm.drain_events_into(ctx.pid, &mut events) == 0 {
                break;
            }
            for &ev in &events {
                let cost = ctx.vmm.costs().notification;
                ctx.clock.advance(cost);
                match ev {
                    VmEvent::EvictionScheduled { page } => self.on_eviction_scheduled(ctx, page),
                    VmEvent::Evicted { page } => self.on_hard_eviction(ctx, page),
                    VmEvent::MadeResident { page } | VmEvent::ProtectionFault { page } => {
                        self.on_page_resident(ctx, page);
                    }
                }
            }
        }
        self.event_scratch = events;
    }

    /// §3.3.2/§3.4: the kernel warns that `page` is about to be evicted.
    fn on_eviction_scheduled(&mut self, ctx: &mut MemCtx<'_>, page: VirtPage) {
        // §3.3.3: the notice means the footprint exceeds available memory —
        // stop growing, pin the heap budget to the current footprint.
        self.shrink_to_footprint(ctx);
        // An empty victim can simply be given up.
        if self.page_is_empty(ctx, page) {
            ctx.vmm.madvise_dontneed(ctx.pid, &[page], ctx.clock);
            self.core.stats.pages_discarded += 1;
            return;
        }
        // Prefer handing the VMM an empty page over losing a live one:
        // bookmarking happens only "when a discardable page cannot be
        // found" (§3.3.2).
        let discarded = self.discard_empty_pages(ctx, DISCARD_BATCH);
        if discarded > 0 {
            if !ctx.vmm.under_pressure() {
                self.pressure_gc_ran = false;
                self.pressure_escalate = false;
            }
            if self.options.bookmarking && self.must_stay_resident(page) {
                ctx.vmm.touch(ctx.pid, page, Access::Read, ctx.clock);
            }
            return;
        }
        // No empty pages (or not enough): ask for a collection at the next
        // safe point to create some ("BC triggers a collection and then
        // directs the virtual memory manager to discard a newly-emptied
        // page", §3.3.2).
        if !self.pressure_gc_ran {
            let want = if self.pressure_escalate {
                GcRequest::Full
            } else {
                GcRequest::Minor
            };
            self.gc_requested = self.gc_requested.max(want);
            self.pressure_gc_ran = true;
        }
        if self.options.bookmarking {
            if self.must_stay_resident(page) {
                // Nursery pages, superpage headers, and large-object pages
                // are about to be used again: touching them makes the VMM
                // pick a different victim (§3.4).
                ctx.vmm.touch(ctx.pid, page, Access::Read, ctx.clock);
            } else {
                // Until the requested collection frees memory, the victim
                // must still be evictable without faulting later: bookmark
                // it now and let it go (§3.4, including the preventive
                // bookmarking of §3.4.3).
                self.bookmark_and_relinquish(ctx, page);
            }
        }
    }

    /// §3.4.3: the kernel ran ahead and evicted a page before BC's handler
    /// was scheduled. The paper's kernel raises the notification "just
    /// before any page is scheduled for eviction … whenever its
    /// corresponding page table entry is unmapped" (§4.1), so the handler
    /// observes the page's final contents; this reproduction models that by
    /// scanning the just-evicted page's (still intact, swap-bound) contents
    /// without a fault. Pages that turn out to hold nursery pointers are
    /// the one case that must be faulted back (they would break the
    /// remembered set); they are rare because such pages are rescued when
    /// notices arrive in time.
    fn on_hard_eviction(&mut self, ctx: &mut MemCtx<'_>, page: VirtPage) {
        if !self.options.bookmarking {
            return; // resizing-only instances just take the later faults
        }
        if self.page_is_empty(ctx, page) {
            // Nothing lives there: drop the swap copy too.
            ctx.vmm.madvise_dontneed(ctx.pid, &[page], ctx.clock);
            self.core.stats.pages_discarded += 1;
            return;
        }
        if self.must_stay_resident(page) {
            // Nursery/header/LOS page: bring it straight back.
            ctx.vmm.touch(ctx.pid, page, Access::Read, ctx.clock);
            ctx.vmm.discard_events(ctx.pid);
            return;
        }
        self.bookmark_scan_evicted(ctx, page);
    }

    /// The §3.4 scan applied to a page whose eviction already completed:
    /// reads the page's final contents (on their way to swap) directly,
    /// bookmarks outgoing targets, reserves its free cells, and records it
    /// evicted. Faults the page back in only if it holds nursery pointers.
    fn bookmark_scan_evicted(&mut self, ctx: &mut MemCtx<'_>, page: VirtPage) {
        let addr = Address(page.base_addr());
        if !self.ms.region_contains(addr) || !self.residency.page_resident(page) {
            return;
        }
        let (sp, page_in_sp) = self.ms.page_within_sp(addr);
        if sp.0 >= self.ms.extent_superpages() {
            return;
        }
        let cells = self.ms.cells_overlapping_page(sp, page_in_sp);
        // Nursery pointers force a reload (cannot leave a dangling
        // remembered-set source on swap).
        for &cell in &cells {
            for (_slot, target) in self.readable_refs_raw(ctx, cell) {
                if self.nursery.region_contains(target) {
                    ctx.vmm.touch(ctx.pid, page, Access::Read, ctx.clock);
                    ctx.vmm.discard_events(ctx.pid);
                    return;
                }
            }
        }
        for &cell in &cells {
            let refs = self.readable_refs_raw(ctx, cell);
            for (_slot, target) in refs {
                self.note_bookmark_target(ctx, target);
            }
        }
        // Conservative bookmarks: headers on still-resident neighbour pages
        // are written normally; headers on this page are edited in the
        // swap-bound image (the handler logically ran pre-unmap).
        for &cell in &cells {
            if cell.page() == page || self.residency.page_resident(cell.page()) {
                let w0 = self.core.mem.read_word(cell);
                self.core
                    .mem
                    .write_word(cell, Header::with_bookmark(w0, true));
            }
        }
        let start = page_in_sp * BYTES_PER_PAGE;
        let reserved = self
            .ms
            .reserve_free_cells_in_bytes(sp, start, start + BYTES_PER_PAGE);
        for cell in reserved {
            self.core.mem.write_word(cell, 0);
            self.core.mem.write_word(cell.offset(WORD), 0);
        }
        self.core.stats.pages_bookmark_scanned += 1;
        self.core.trace_event(
            ctx,
            EventKind::BookmarkScanned {
                page: page.number(),
            },
        );
        self.residency.mark_evicted(page);
    }

    /// Like `readable_refs`, but reads the slots directly from the backing
    /// store (used for pages whose eviction just completed: the contents
    /// are exactly what the pre-unmap handler would have seen). Charges
    /// scan costs but performs no residency-dependent touches.
    fn readable_refs_raw(
        &mut self,
        ctx: &mut MemCtx<'_>,
        cell: Address,
    ) -> Vec<(Address, Address)> {
        let h = match Header::decode_forwarded(
            self.core.mem.read_word(cell),
            self.core.mem.read_word(cell.offset(WORD)),
        ) {
            Ok(h) => h,
            Err(_) => return Vec::new(),
        };
        let n = h.kind.num_ref_fields();
        let costs = ctx.vmm.costs();
        let (scan_object, scan_ref) = (costs.scan_object, costs.scan_ref);
        ctx.clock.advance(scan_object + scan_ref * n as u64);
        if n == 0 {
            return Vec::new();
        }
        let lo = cell.offset(heap::object::HEADER_BYTES);
        let mut out = Vec::new();
        for i in 0..n {
            let slot = lo.offset(i * WORD);
            let target = Address(self.core.mem.read_word(slot));
            if !target.is_null() {
                out.push((slot, target));
            }
        }
        out
    }

    /// §3.4.2: a page came back (reload fault, or a touch beat the eviction
    /// of a relinquished page).
    fn on_page_resident(&mut self, ctx: &mut MemCtx<'_>, page: VirtPage) {
        if !self.options.bookmarking {
            return;
        }
        if self.residency.mark_resident(page) {
            self.clear_bookmarks_for(ctx, page);
        }
    }

    /// §3.3.3: an eviction notice means the footprint exceeds available
    /// memory. The sizing arithmetic lives in the shared policy layer
    /// ([`heap::policy`], [`heap::policy::BcFootprint`] by default); this
    /// collector only forwards the signal and refreshes its nursery limit
    /// when the budget moved.
    pub(crate) fn shrink_to_footprint(&mut self, ctx: &MemCtx<'_>) {
        if self.core.policy_pressure(ctx) {
            self.recompute_nursery_limit();
        }
    }

    /// Whether BC must keep this page resident: nursery pages, superpage
    /// header pages, and large-object pages ("BC will not select pages that
    /// it knows will soon be used, such as nursery pages or superpage
    /// headers", §3.4; this reproduction also pins large-object pages — see
    /// DESIGN.md).
    fn must_stay_resident(&self, page: VirtPage) -> bool {
        let addr = Address(page.base_addr());
        if self.nursery.region_contains(addr) {
            return true;
        }
        if self.los.region_contains(addr) {
            return true;
        }
        if self.ms.region_contains(addr)
            && ((addr.0 - self.ms.sp_base(heap::SpIndex(0)).0) / BYTES_PER_PAGE)
                .is_multiple_of(heap::PAGES_PER_SUPERPAGE)
        {
            return true; // a superpage header page
        }
        !self.ms.region_contains(addr) // anything outside the heap proper
    }

    /// Whether a page holds no live data and can be discarded outright.
    fn page_is_empty(&self, _ctx: &mut MemCtx<'_>, page: VirtPage) -> bool {
        let addr = Address(page.base_addr());
        if self.nursery.region_contains(addr) {
            // Nursery pages past the bump pointer are empty.
            return addr.0 >= self.nursery.top().0;
        }
        if self.ms.region_contains(addr) {
            let sp_base = self.ms.sp_base(heap::SpIndex(0)).0;
            let sp = (addr.0 - sp_base) / heap::BYTES_PER_SUPERPAGE;
            if sp >= self.ms.extent_superpages() {
                return true;
            }
            return self.ms.info(heap::SpIndex(sp)).assignment.is_none();
        }
        if self.los.region_contains(addr) {
            return self.los.object_containing(addr).is_none();
        }
        true // space_b and anything else is unused by BC
    }

    /// Finds up to `max` empty resident pages *beyond the reserve* and
    /// discards them (§3.3.2/§3.4.3), returning how many were discarded.
    /// Returning 0 therefore means "only the reserve remains" — the signal
    /// to trigger a collection or start bookmarking.
    pub(crate) fn discard_empty_pages(&mut self, ctx: &mut MemCtx<'_>, max: usize) -> usize {
        self.discard_empties_inner(ctx, max, RESERVE_PAGES)
    }

    /// Dips into the reserve itself: called at the start of every
    /// collection while under pressure, so the collection's own page demand
    /// is served by empty pages rather than by the kernel evicting live
    /// (unscanned) ones.
    pub(crate) fn discard_reserve(&mut self, ctx: &mut MemCtx<'_>) {
        // Release when free frames could not absorb one collection's page
        // demand (promotions can force up to a reserve's worth of fresh
        // frames): waiting for the reclaim watermark itself would let the
        // kernel run ahead mid-pause and steal the very pages the
        // collection is scanning.
        let threshold = ctx.vmm.config().low_watermark + RESERVE_PAGES;
        if ctx.vmm.free_frames() < threshold {
            let _ = self.discard_empties_inner(ctx, RESERVE_PAGES, 0);
        }
    }

    fn discard_empties_inner(
        &mut self,
        ctx: &mut MemCtx<'_>,
        max: usize,
        hold_back: usize,
    ) -> usize {
        let mut pages: Vec<VirtPage> = Vec::new();
        // Free superpages first: wholly empty by construction.
        for sp in self.ms.free_sps() {
            for p in self.ms.sp_pages(sp) {
                if ctx.vmm.is_resident(ctx.pid, p) {
                    pages.push(p);
                }
            }
            if pages.len() >= max + hold_back {
                break;
            }
        }
        // Then nursery pages beyond the bump pointer, up to the historical
        // high-water mark.
        if pages.len() < max + hold_back {
            let base_page = self.nursery.base().page().number();
            let first_free = Address(self.nursery.top().0)
                .align_up(BYTES_PER_PAGE)
                .page()
                .number();
            for p in first_free..base_page + self.nursery_peak_pages as u32 {
                let page = VirtPage::new(p);
                if ctx.vmm.is_resident(ctx.pid, page) {
                    pages.push(page);
                    if pages.len() >= max + hold_back {
                        break;
                    }
                }
            }
        }
        if pages.len() <= hold_back {
            return 0; // only the reserve remains
        }
        pages.truncate((pages.len() - hold_back).min(max));
        ctx.vmm.madvise_dontneed(ctx.pid, &pages, ctx.clock);
        self.core.stats.pages_discarded += pages.len() as u64;
        pages.len()
    }

    /// Runs after a pressure-triggered collection: hand freshly emptied
    /// pages to the VMM; reset the escalation ladder if that relieved the
    /// pressure, otherwise escalate the next request to a full collection.
    pub(crate) fn after_pressure_gc(&mut self, ctx: &mut MemCtx<'_>) {
        let discarded = self.discard_empty_pages(ctx, DISCARD_BATCH * 2);
        if discarded > 0 && !ctx.vmm.under_pressure() {
            // Success: pressure relieved; reset the escalation ladder.
            self.pressure_gc_ran = false;
            self.pressure_escalate = false;
        } else if discarded > 0 || !self.pressure_escalate {
            // Partial progress, or the cheap (minor) rung was tried:
            // escalate to a full collection on the next notice.
            self.pressure_escalate = true;
            self.pressure_gc_ran = false;
        } else {
            // Even a full collection produced nothing discardable: further
            // collections would only rescue scheduled victims by touching
            // them (a livelock). Go quiet and let eviction proceed —
            // bookmarking instances have already processed the victims;
            // resizing-only instances take the faults, as the paper's
            // ablation does (§5.3.2). The ladder resets once discarding
            // succeeds again.
            self.pressure_gc_ran = true;
        }
    }

    // ----- bookmarking (§3.4) -------------------------------------------

    /// The reference fields of `cell` whose slots lie on resident pages.
    ///
    /// The header may live on an evicted page (a multi-page object whose
    /// head left earlier): it is then read from the swap-bound image, which
    /// is exactly what the pre-unmap handler saw (§4.1) — mutators cannot
    /// have changed it without faulting the page back. Slots on evicted
    /// pages are skipped (they were processed at their own eviction), but
    /// slots on *resident* pages after an evicted gap are still scanned:
    /// stores through them need no fault, so they can hold pointers —
    /// including nursery pointers — the earlier evictions never saw.
    fn readable_refs(&mut self, ctx: &mut MemCtx<'_>, cell: Address) -> Vec<(Address, Address)> {
        let h = match Header::decode_forwarded(
            self.core.mem.read_word(cell),
            self.core.mem.read_word(cell.offset(WORD)),
        ) {
            Ok(h) => h,
            Err(_) => return Vec::new(),
        };
        let n = h.kind.num_ref_fields();
        if n == 0 {
            return Vec::new();
        }
        let lo = cell.offset(heap::object::HEADER_BYTES);
        let hi = lo.offset(n * WORD);
        let mut out = Vec::new();
        let costs = ctx.vmm.costs();
        let (scan_object, scan_ref) = (costs.scan_object, costs.scan_ref);
        ctx.clock.advance(scan_object);
        let mut slot = lo;
        while slot < hi {
            if !self.residency.page_resident(slot.page()) {
                slot = slot.offset(WORD);
                continue;
            }
            ctx.touch(&mut self.core.mem, slot, WORD, Access::Read);
            ctx.clock.advance(scan_ref);
            let target = Address(self.core.mem.read_word(slot));
            if !target.is_null() {
                out.push((slot, target));
            }
            slot = slot.offset(WORD);
        }
        out
    }

    /// Scans a victim page, bookmarks the targets of its outgoing
    /// references, conservatively bookmarks its own objects, protects it,
    /// and surrenders it via `vm_relinquish` (§3.4).
    pub(crate) fn bookmark_and_relinquish(&mut self, ctx: &mut MemCtx<'_>, page: VirtPage) {
        debug_assert!(self.options.bookmarking);
        if !ctx.vmm.is_resident(ctx.pid, page) || !self.residency.page_resident(page) {
            return; // already gone or already processed
        }
        let addr = Address(page.base_addr());
        if !self.ms.region_contains(addr) {
            return;
        }
        let (sp, page_in_sp) = self.ms.page_within_sp(addr);
        if sp.0 >= self.ms.extent_superpages() {
            return;
        }
        let cells = self.ms.cells_overlapping_page(sp, page_in_sp);
        // Pass 1: a page holding pointers into the nursery will be needed
        // at the very next nursery collection — rescue it instead. The §7
        // victim-selection extension also counts outgoing pointers here.
        let mut outgoing = 0u32;
        for &cell in &cells {
            for (_slot, target) in self.readable_refs(ctx, cell) {
                if self.nursery.region_contains(target) {
                    ctx.vmm.touch(ctx.pid, page, Access::Read, ctx.clock);
                    return;
                }
                outgoing += 1;
            }
        }
        if let VictimPolicy::PreferPointerFree {
            max_pointers,
            max_vetoes,
        } = self.options.victim_policy
        {
            if outgoing > max_pointers && self.victim_vetoes < max_vetoes {
                // Veto: touching the victim makes the VMM pick another.
                self.victim_vetoes += 1;
                self.core.stats.victims_vetoed += 1;
                ctx.vmm.touch(ctx.pid, page, Access::Read, ctx.clock);
                return;
            }
            self.victim_vetoes = 0;
        }
        // Pass 2: bookmark every outgoing target (§3.4).
        if self.core.san_take_fault(InjectFault::DropBookmark) {
            // Seeded bug: skip the bookmark pass for this page.
        } else {
            for &cell in &cells {
                let refs = self.readable_refs(ctx, cell);
                for (_slot, target) in refs {
                    self.note_bookmark_target(ctx, target);
                }
            }
        }
        // Conservatively bookmark the page's own objects — their incoming
        // references cannot all be found without a heap scan (§3.4: "BC
        // conservatively bookmarks all objects on a page before it is
        // evicted").
        for &cell in &cells {
            if self.residency.page_resident(cell.page()) {
                self.set_bookmark_bit(ctx, cell, true);
            }
        }
        self.core.stats.pages_bookmark_scanned += 1;
        self.core.trace_event(
            ctx,
            EventKind::BookmarkScanned {
                page: page.number(),
            },
        );
        // Take the page's free cells off the free list so the allocator
        // never writes into an evicted page; zero their headers so later
        // scans see inert cells rather than stale garbage.
        let start = page_in_sp * BYTES_PER_PAGE;
        let reserved = self
            .ms
            .reserve_free_cells_in_bytes(sp, start, start + BYTES_PER_PAGE);
        for cell in reserved {
            if self.residency.page_resident(cell.page()) {
                ctx.touch(&mut self.core.mem, cell, 2 * WORD, Access::Write);
                self.core.mem.write_word(cell, 0);
                self.core.mem.write_word(cell.offset(WORD), 0);
            }
        }
        // Guard the race window, then let the page go (§3.4).
        ctx.vmm.mprotect(ctx.pid, &[page], true, ctx.clock);
        ctx.vmm.vm_relinquish(ctx.pid, &[page], ctx.clock);
        self.residency.mark_evicted(page);
        self.core.stats.pages_relinquished += 1;
    }

    /// Sets or clears the bookmark bit in an object's header (charged).
    pub(crate) fn set_bookmark_bit(&mut self, ctx: &mut MemCtx<'_>, obj: Address, on: bool) {
        ctx.touch(&mut self.core.mem, obj, WORD, Access::Write);
        let w0 = self.core.mem.read_word(obj);
        self.core.mem.write_word(obj, Header::with_bookmark(w0, on));
    }

    /// Bookmarks `target` and bumps its superpage's (or large object's)
    /// incoming counter.
    fn note_bookmark_target(&mut self, ctx: &mut MemCtx<'_>, target: Address) {
        if self.ms.region_contains(target) {
            let sp = self.ms.sp_of(target);
            if self.residency.page_resident(target.page()) {
                self.set_bookmark_bit(ctx, target, true);
            }
            // The superpage header is always resident (§3.4), so the
            // counter update never faults.
            self.ms.inc_incoming_bookmarks(sp);
            self.core.stats.bookmarks_set += 1;
            self.core.trace_event(
                ctx,
                EventKind::BookmarkSet {
                    page: target.page().number(),
                },
            );
        } else if self.los.region_contains(target) {
            if let Some((obj, _pages)) = self.los.object_containing(target) {
                self.set_bookmark_bit(ctx, obj, true);
                *self.los_incoming.entry(obj.0).or_insert(0) += 1;
                self.core.stats.bookmarks_set += 1;
                self.core.trace_event(
                    ctx,
                    EventKind::BookmarkSet {
                        page: obj.page().number(),
                    },
                );
            }
        }
        // Nursery targets were excluded by the rescue pass; anything else
        // (space_b) is unused by BC.
    }

    /// The BC-specific half of [`heap::SanitizeLevel::Full`]: every
    /// outgoing reference from an evicted mature page must be summarized by
    /// an incoming-bookmark counter on its target's superpage (or the LOS
    /// incoming map). Without the summary, a later reload would decrement a
    /// counter that was never incremented — or a major collection would
    /// sweep an object only the evicted page still references.
    ///
    /// Observation-only: reads the swap-bound page images raw, exactly as
    /// the eviction scan did. Runs at the end of every major collection.
    pub(crate) fn sanitize_bookmark_soundness(&mut self) {
        let mut pages: Vec<VirtPage> = self.residency.evicted_pages().collect();
        pages.sort_by_key(|p| p.number());
        for page in pages {
            let addr = Address(page.base_addr());
            if !self.ms.region_contains(addr) {
                continue;
            }
            let (sp, page_in_sp) = self.ms.page_within_sp(addr);
            if sp.0 >= self.ms.extent_superpages() {
                continue;
            }
            for cell in self.ms.cells_overlapping_page(sp, page_in_sp) {
                let h = match Header::decode_forwarded(
                    self.core.mem.read_word(cell),
                    self.core.mem.read_word(cell.offset(WORD)),
                ) {
                    Ok(h) => h,
                    Err(_) => continue,
                };
                for i in 0..h.kind.num_ref_fields() {
                    let slot = heap::object::field_addr(cell, i);
                    if slot.page() != page {
                        continue; // processed at that page's own eviction
                    }
                    let target = Address(self.core.mem.read_word(slot));
                    if target.is_null() {
                        continue;
                    }
                    if self.ms.region_contains(target) {
                        let tsp = self.ms.sp_of(target);
                        if tsp.0 < self.ms.extent_superpages()
                            && self.ms.is_allocated_cell(target)
                            && self.ms.info(tsp).incoming_bookmarks == 0
                        {
                            SanitizeError::DroppedBookmark {
                                page: page.number(),
                                slot,
                                target,
                                detail: "target superpage incoming-bookmark counter is zero",
                            }
                            .report();
                        }
                    } else if self.los.region_contains(target) {
                        if let Some((obj, _)) = self.los.object_containing(target) {
                            if !self.los_incoming.contains_key(&obj.0) {
                                SanitizeError::DroppedBookmark {
                                    page: page.number(),
                                    slot,
                                    target,
                                    detail: "large object has no incoming-bookmark entry",
                                }
                                .report();
                            }
                        }
                    }
                }
            }
        }
    }

    // ----- bookmark clearing (§3.4.2) -----------------------------------

    /// A relinquished/evicted page is resident again: decrement the
    /// counters its pointers induced, clearing bookmarks wherever a counter
    /// reaches zero.
    pub(crate) fn clear_bookmarks_for(&mut self, ctx: &mut MemCtx<'_>, page: VirtPage) {
        let addr = Address(page.base_addr());
        if !self.ms.region_contains(addr) {
            return;
        }
        self.core.trace_event(
            ctx,
            EventKind::BookmarkCleared {
                page: page.number(),
            },
        );
        let (sp, page_in_sp) = self.ms.page_within_sp(addr);
        if sp.0 >= self.ms.extent_superpages() {
            return;
        }
        let cells = self.ms.cells_overlapping_page(sp, page_in_sp);
        for &cell in &cells {
            let refs = self.readable_refs(ctx, cell);
            for (_slot, target) in refs {
                if self.ms.region_contains(target) {
                    let tsp = self.ms.sp_of(target);
                    if self.ms.dec_incoming_bookmarks(tsp) == 0 {
                        self.clear_sp_bookmarks(ctx, tsp);
                    }
                } else if self.los.region_contains(target) {
                    if let Some((obj, _)) = self.los.object_containing(target) {
                        if let Some(c) = self.los_incoming.get_mut(&obj.0) {
                            *c = c.saturating_sub(1);
                            if *c == 0 {
                                self.los_incoming.remove(&obj.0);
                                self.set_bookmark_bit(ctx, obj, false);
                                self.core.stats.bookmarks_cleared += 1;
                            }
                        }
                    }
                }
            }
        }
        // "If the reloaded page's superpage also has an incoming bookmark
        // count of zero, then BC clears the bookmarks that it set
        // conservatively when the page was evicted" (§3.4.2).
        if self.ms.info(sp).incoming_bookmarks == 0 {
            for &cell in &cells {
                if self.residency.page_resident(cell.page()) {
                    self.set_bookmark_bit(ctx, cell, false);
                }
            }
        }
    }

    /// Clears every bookmark on a superpage whose incoming counter dropped
    /// to zero ("its objects are only referenced by objects in main
    /// memory", §3.4.2).
    fn clear_sp_bookmarks(&mut self, ctx: &mut MemCtx<'_>, sp: heap::SpIndex) {
        self.core.trace_event(
            ctx,
            EventKind::BookmarkCleared {
                page: self.ms.sp_base(sp).page().number(),
            },
        );
        for cell in self.ms.allocated_cells_iter(sp) {
            if !self.residency.page_resident(cell.page()) {
                continue;
            }
            ctx.touch(&mut self.core.mem, cell, WORD, Access::Read);
            let w0 = self.core.mem.read_word(cell);
            if Header::is_bookmarked(w0) {
                self.core
                    .mem
                    .write_word(cell, Header::with_bookmark(w0, false));
                self.core.stats.bookmarks_cleared += 1;
            }
        }
    }
}
