//! Unit tests for the bookmarking collector.

use heap::{AllocKind, CollectKind, GcHeap, Handle, HeapConfig, MemCtx};
use simtime::{Clock, CostModel};
use vmm::{ProcessId, Vmm, VmmConfig};

use crate::{BcOptions, Bookmarking};

struct Env {
    vmm: Vmm,
    clock: Clock,
    pid: ProcessId,
    /// A memory hog whose mlocked pages squeeze the collector.
    hog: ProcessId,
}

fn env(memory_bytes: usize) -> Env {
    let mut config = VmmConfig::builder().memory_bytes(memory_bytes).build();
    // Small watermarks keep tests brisk and deterministic.
    config.low_watermark = 16;
    config.high_watermark = 32;
    let mut vmm = Vmm::new(config, CostModel::default());
    let pid = vmm.register_process();
    let hog = vmm.register_process();
    Env {
        vmm,
        clock: Clock::new(),
        pid,
        hog,
    }
}

fn bc(env: &mut Env, heap_bytes: usize, options: BcOptions) -> Bookmarking {
    let gc = Bookmarking::new(
        HeapConfig::builder().heap_bytes(heap_bytes).build(),
        options,
    );
    gc.register(&mut env.vmm, env.pid);
    gc
}

fn list_kind() -> AllocKind {
    AllocKind::Scalar {
        data_words: 3,
        num_refs: 1,
    }
}

fn make_list(gc: &mut Bookmarking, ctx: &mut MemCtx<'_>, n: usize) -> Handle {
    let head = gc.alloc(ctx, list_kind()).unwrap();
    let mut cur = gc.dup_handle(head);
    for _ in 1..n {
        let node = gc.alloc(ctx, list_kind()).unwrap();
        gc.write_ref(ctx, cur, 0, Some(node));
        gc.drop_handle(cur);
        cur = node;
    }
    gc.drop_handle(cur);
    head
}

fn list_len(gc: &mut Bookmarking, ctx: &mut MemCtx<'_>, head: Handle) -> usize {
    let mut len = 1;
    let mut cur = gc.dup_handle(head);
    while let Some(next) = gc.read_ref(ctx, cur, 0) {
        gc.drop_handle(cur);
        cur = next;
        len += 1;
    }
    gc.drop_handle(cur);
    len
}

/// Applies `pages` of mlocked pressure from the hog process *gradually*
/// (as the paper's `signalmem` does), pumping the VMM and letting the
/// collector react between increments so eviction notices flow.
fn apply_pressure(e: &mut Env, gc: &mut Bookmarking, pages: u32, base: u32) {
    for p in 0..pages {
        e.vmm
            .mlock(e.hog, vmm::VirtPage::new(base + p), &mut e.clock);
        if p % 4 == 3 {
            step(gc, &mut e.vmm, &mut e.clock, e.pid);
        }
    }
    step(gc, &mut e.vmm, &mut e.clock, e.pid);
}

/// Keeps pinning memory (4 pages at a time) until the collector has
/// relinquished at least `target_evicted` heap pages, or `max_pins` pages
/// are pinned. Models signalmem ratcheting up against BC's give-back.
fn squeeze_until_evicted(
    e: &mut Env,
    gc: &mut Bookmarking,
    target_evicted: usize,
    max_pins: u32,
) -> u32 {
    let mut pinned = 0;
    while gc.evicted_heap_pages() < target_evicted && pinned < max_pins {
        if e.vmm.free_frames() <= 8 {
            // Let the collector catch up rather than OOM the machine.
            step(gc, &mut e.vmm, &mut e.clock, e.pid);
            if e.vmm.free_frames() <= 8 {
                break;
            }
            continue;
        }
        e.vmm.mlock(e.hog, vmm::VirtPage::new(pinned), &mut e.clock);
        pinned += 1;
        if pinned % 4 == 0 {
            step(gc, &mut e.vmm, &mut e.clock, e.pid);
        }
    }
    step(gc, &mut e.vmm, &mut e.clock, e.pid);
    pinned
}

/// One engine step: pump reclaim, let the collector react.
fn step(gc: &mut Bookmarking, vmm: &mut Vmm, clock: &mut Clock, pid: ProcessId) {
    vmm.pump(clock);
    let mut ctx = MemCtx::new(vmm, clock, pid);
    gc.handle_vm_events(&mut ctx);
}

#[test]
fn behaves_like_genms_without_pressure() {
    let mut e = env(64 << 20);
    let mut gc = bc(&mut e, 2 << 20, BcOptions::default());
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    let keep = make_list(&mut gc, &mut ctx, 100);
    gc.collect(&mut ctx, CollectKind::Minor);
    assert_eq!(gc.stats().nursery_gcs, 1);
    assert_eq!(list_len(&mut gc, &mut ctx, keep), 100);
    gc.collect(&mut ctx, CollectKind::Full);
    assert_eq!(list_len(&mut gc, &mut ctx, keep), 100);
    // No pressure: no bookmarks, no discards, no shrinks.
    let s = gc.stats();
    assert_eq!(s.bookmarks_set, 0);
    assert_eq!(s.pages_relinquished, 0);
    assert_eq!(s.heap_shrinks, 0);
    assert_eq!(gc.evicted_heap_pages(), 0);
}

#[test]
fn write_barrier_uses_page_sized_buffer_and_cards() {
    let mut e = env(64 << 20);
    let mut gc = bc(&mut e, 8 << 20, BcOptions::default());
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    // Promote an object, then hammer stores into it so the 1024-slot
    // buffer fills and converts to card marks (§3.1).
    let old = gc
        .alloc(&mut ctx, AllocKind::RefArray { len: 1500 })
        .unwrap();
    gc.collect(&mut ctx, CollectKind::Minor);
    let young = gc.alloc(&mut ctx, list_kind()).unwrap();
    for i in 0..1500 {
        gc.write_ref(&mut ctx, old, i, Some(young));
    }
    assert!(gc.stats().barrier_records >= 1500);
    gc.drop_handle(young);
    // The young object survives via buffer + cards.
    gc.collect(&mut ctx, CollectKind::Minor);
    assert!(gc.read_ref(&mut ctx, old, 0).is_some());
    assert!(gc.read_ref(&mut ctx, old, 1499).is_some());
}

#[test]
fn compaction_defragments_superpages() {
    let mut e = env(64 << 20);
    let mut gc = bc(&mut e, 4 << 20, BcOptions::default());
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    // Allocate 5 KiB objects (3 per superpage) and drop two of every
    // three: after mark-sweep, each superpage is 1/3 full.
    let kind = AllocKind::DataArray { len: 1200 }; // 4808 B -> 5456 B class
    let mut all = Vec::new();
    for _ in 0..120 {
        all.push(gc.alloc(&mut ctx, kind).unwrap());
    }
    gc.collect(&mut ctx, CollectKind::Full); // promote all 120: ~40 packed superpages
                                             // Now drop two of every three and sweep: each superpage is 1/3 full.
    let mut keep = Vec::new();
    for (i, h) in all.into_iter().enumerate() {
        if i % 3 == 0 {
            keep.push(h);
        } else {
            gc.drop_handle(h);
        }
    }
    gc.collect(&mut ctx, CollectKind::Full);
    let pages_fragmented = gc.heap_pages_used();
    gc.compact_gc(&mut ctx);
    let pages_compacted = gc.heap_pages_used();
    assert!(
        pages_compacted + 8 < pages_fragmented,
        "compaction freed nothing: {pages_fragmented} -> {pages_compacted}"
    );
    assert_eq!(gc.stats().compacting_gcs, 1);
    // Every kept object survived the move.
    for &h in &keep {
        gc.read_data(&mut ctx, h);
    }
}

#[test]
fn pressure_discards_empty_pages_and_shrinks_heap() {
    let mut e = env(4 << 20); // 1024 frames
    let mut gc = bc(&mut e, 2 << 20, BcOptions::default());
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        // Build then drop a large structure so free superpages exist.
        let junk = make_list(&mut gc, &mut ctx, 20_000);
        gc.drop_handle(junk);
        gc.collect(&mut ctx, CollectKind::Full);
    }
    let budget_before = gc.current_heap_budget();
    // Pin all but ~10 frames: the collector must give memory back.
    let pin = 1024 - 10 - e.vmm.stats(e.pid).resident as u32;
    apply_pressure(&mut e, &mut gc, pin, 0);
    for _ in 0..50 {
        step(&mut gc, &mut e.vmm, &mut e.clock, e.pid);
    }
    let s = gc.stats();
    assert!(s.pages_discarded > 0, "no empty pages discarded: {s:?}");
    assert!(s.heap_shrinks > 0, "heap budget never shrunk");
    assert!(gc.current_heap_budget() < budget_before);
}

/// Under severe pressure with live data, BC must bookmark and relinquish
/// pages — and subsequent full collections must not fault.
#[test]
fn bookmarking_keeps_full_collections_in_memory() {
    let mut e = env(2 << 20); // 512 frames total
    let mut gc = bc(&mut e, 1 << 20, BcOptions::default());
    let keep = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        make_list(&mut gc, &mut ctx, 15_000) // ~300 KiB live
    };
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        gc.collect(&mut ctx, CollectKind::Full); // promote everything to the mature space
    }
    // Ratchet pressure until live pages start leaving memory.
    squeeze_until_evicted(&mut e, &mut gc, 10, 480);
    assert!(
        gc.evicted_heap_pages() > 0,
        "pressure never forced evictions: {:?}",
        gc.stats()
    );
    assert!(gc.stats().bookmarks_set > 0, "no bookmarks were set");
    // A full collection now must not touch evicted pages.
    let faults_before = e.vmm.stats(e.pid).major_faults;
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        gc.collect(&mut ctx, CollectKind::Full);
    }
    let faults_after = e.vmm.stats(e.pid).major_faults;
    assert_eq!(
        faults_after, faults_before,
        "BC's full collection faulted on evicted pages"
    );
    assert!(
        gc.evicted_heap_pages() > 0,
        "collection reloaded evicted pages"
    );
    // The data is still structurally intact (walking it *will* fault —
    // that's mutator paging, which BC does not eliminate).
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    assert_eq!(list_len(&mut gc, &mut ctx, keep), 15_000);
}

#[test]
fn bookmarks_clear_when_pages_reload() {
    let mut e = env(2 << 20);
    let mut gc = bc(&mut e, 1 << 20, BcOptions::default());
    let keep = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let keep = make_list(&mut gc, &mut ctx, 15_000);
        gc.collect(&mut ctx, CollectKind::Full);
        keep
    };
    let pin = squeeze_until_evicted(&mut e, &mut gc, 10, 480);
    assert!(gc.stats().bookmarks_set > 0);
    // Release the pressure and walk the whole list: every page reloads.
    for p in 0..pin {
        e.vmm.munlock(e.hog, vmm::VirtPage::new(p), &mut e.clock);
    }
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        assert_eq!(list_len(&mut gc, &mut ctx, keep), 15_000);
    }
    for _ in 0..20 {
        step(&mut gc, &mut e.vmm, &mut e.clock, e.pid);
    }
    assert_eq!(
        gc.evicted_heap_pages(),
        0,
        "every page reloaded, none should be tracked evicted"
    );
    assert!(
        gc.stats().bookmarks_cleared > 0,
        "reloads must clear bookmarks (§3.4.2)"
    );
}

#[test]
fn resizing_only_variant_discards_but_never_bookmarks() {
    let mut e = env(2 << 20);
    let mut gc = bc(&mut e, 1 << 20, BcOptions::resizing_only());
    assert!(!gc.bookmarking_enabled());
    assert_eq!(gc.name(), "BC-resize");
    let keep = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let keep = make_list(&mut gc, &mut ctx, 15_000);
        gc.collect(&mut ctx, CollectKind::Full);
        keep
    };
    // Resizing-only never relinquishes: ratchet adaptively until the VMM
    // has no choice but to evict the collector's pages.
    let mut pinned = 0u32;
    for _ in 0..3000 {
        if e.vmm.stats(e.pid).evictions > 0 && pinned > 300 {
            break;
        }
        if e.vmm.free_frames() > 8 && pinned < 495 {
            e.vmm.mlock(e.hog, vmm::VirtPage::new(pinned), &mut e.clock);
            pinned += 1;
        }
        step(&mut gc, &mut e.vmm, &mut e.clock, e.pid);
    }
    let s = *gc.stats();
    assert_eq!(s.bookmarks_set, 0);
    assert_eq!(s.pages_relinquished, 0);
    // It still resizes/discards under pressure.
    assert!(s.heap_shrinks > 0 || s.pages_discarded > 0);
    // Its full collections fault on evicted pages (like the baselines).
    let evictions = e.vmm.stats(e.pid).evictions;
    assert!(evictions > 0, "VMM should have evicted collector pages");
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    assert_eq!(list_len(&mut gc, &mut ctx, keep), 15_000);
}

#[test]
fn failsafe_reclaims_bookmarked_garbage_when_heap_exhausted() {
    let mut e = env(2 << 20);
    let mut gc = bc(&mut e, 512 << 10, BcOptions::default());
    // Live list fills much of the heap.
    let keep = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let keep = make_list(&mut gc, &mut ctx, 10_000); // ~200 KiB
        gc.collect(&mut ctx, CollectKind::Full);
        keep
    };
    // Squeeze hard so pages get bookmarked and evicted.
    squeeze_until_evicted(&mut e, &mut gc, 20, 480);
    // Now drop the list (it is garbage, but bookmarked/evicted objects
    // cannot be reclaimed without the fail-safe) and allocate a large
    // amount of fresh data.
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        gc.drop_handle(keep);
        let mut held = Vec::new();
        for _ in 0..40 {
            match gc.alloc(&mut ctx, AllocKind::DataArray { len: 2000 }) {
                Ok(h) => held.push(h),
                Err(_) => break,
            }
        }
        // Either the fail-safe ran (reclaiming the evicted garbage), or
        // the allocations all fit without it.
        assert!(
            gc.stats().failsafe_gcs > 0 || held.len() == 40,
            "neither fail-safe nor success: {:?}",
            gc.stats()
        );
    }
}

#[test]
fn deferred_gc_runs_at_safe_points_not_in_handlers() {
    let mut e = env(2 << 20);
    let mut gc = bc(&mut e, 1 << 20, BcOptions::default());
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let junk = make_list(&mut gc, &mut ctx, 10_000);
        gc.drop_handle(junk);
    }
    let gcs_before = gc.stats().total_gcs();
    // Squeeze: the dropped junk means a collection will produce
    // discardable pages, so the GC must get requested and run.
    let mut pinned = 0u32;
    for _ in 0..3000 {
        if gc.stats().total_gcs() > gcs_before {
            break;
        }
        if e.vmm.free_frames() > 8 && pinned < 495 {
            e.vmm.mlock(e.hog, vmm::VirtPage::new(pinned), &mut e.clock);
            pinned += 1;
        }
        step(&mut gc, &mut e.vmm, &mut e.clock, e.pid);
    }
    assert!(
        gc.stats().total_gcs() > gcs_before,
        "pressure should have triggered a collection at a safe point"
    );
}

#[test]
fn survives_interleaved_pressure_and_mutation() {
    // A stress test: mutate continuously while pressure ratchets up.
    let mut e = env(4 << 20);
    let mut gc = bc(&mut e, 2 << 20, BcOptions::default());
    let keep = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        make_list(&mut gc, &mut ctx, 20_000)
    };
    let mut pinned = 0u32;
    for round in 0..40 {
        {
            let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
            for _ in 0..500 {
                let h = gc.alloc(&mut ctx, list_kind()).unwrap();
                gc.drop_handle(h);
            }
        }
        if round % 4 == 0 && pinned < 600 {
            apply_pressure(&mut e, &mut gc, 20, pinned);
            pinned += 20;
        }
        step(&mut gc, &mut e.vmm, &mut e.clock, e.pid);
    }
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    assert_eq!(list_len(&mut gc, &mut ctx, keep), 20_000);
}

#[test]
fn regrowth_restores_budget_after_transient_pressure() {
    let mut e = env(4 << 20); // 1024 frames
    let opts = BcOptions {
        regrow: true,
        ..Default::default()
    };
    let mut gc = bc(&mut e, 2 << 20, opts);
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let junk = make_list(&mut gc, &mut ctx, 20_000);
        gc.drop_handle(junk);
        gc.collect(&mut ctx, CollectKind::Full);
    }
    let configured = gc.current_heap_budget();
    // Transient spike: pin almost everything, let BC shrink...
    let pin = 1024 - 10 - e.vmm.stats(e.pid).resident as u32;
    apply_pressure(&mut e, &mut gc, pin, 0);
    assert!(gc.current_heap_budget() < configured, "never shrank");
    assert!(gc.stats().heap_shrinks > 0);
    // ...then the hog exits, returning its memory, and BC gets safe points.
    let pages: Vec<vmm::VirtPage> = (0..pin).map(vmm::VirtPage::new).collect();
    for &p in &pages {
        e.vmm.munlock(e.hog, p, &mut e.clock);
    }
    e.vmm.madvise_dontneed(e.hog, &pages, &mut e.clock);
    for _ in 0..200 {
        step(&mut gc, &mut e.vmm, &mut e.clock, e.pid);
    }
    assert!(
        gc.stats().heap_regrows > 0,
        "never regrew: {:?}",
        gc.stats()
    );
    assert_eq!(
        gc.current_heap_budget(),
        configured,
        "budget should recover fully"
    );
}

#[test]
fn default_options_never_regrow() {
    let mut e = env(4 << 20);
    let mut gc = bc(&mut e, 2 << 20, BcOptions::default());
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let junk = make_list(&mut gc, &mut ctx, 20_000);
        gc.drop_handle(junk);
        gc.collect(&mut ctx, CollectKind::Full);
    }
    let pin = 1024 - 10 - e.vmm.stats(e.pid).resident as u32;
    apply_pressure(&mut e, &mut gc, pin, 0);
    let shrunk = gc.current_heap_budget();
    let pages: Vec<vmm::VirtPage> = (0..pin).map(vmm::VirtPage::new).collect();
    for &p in &pages {
        e.vmm.munlock(e.hog, p, &mut e.clock);
    }
    e.vmm.madvise_dontneed(e.hog, &pages, &mut e.clock);
    for _ in 0..100 {
        step(&mut gc, &mut e.vmm, &mut e.clock, e.pid);
    }
    // The paper's evaluated collector only shrinks (§3.3.3).
    assert_eq!(gc.current_heap_budget(), shrunk);
    assert_eq!(gc.stats().heap_regrows, 0);
}

#[test]
fn pointer_free_victim_policy_vetoes_pointerful_pages() {
    use crate::VictimPolicy;
    let mut e = env(2 << 20);
    let opts = BcOptions {
        victim_policy: VictimPolicy::PreferPointerFree {
            max_pointers: 0,
            max_vetoes: 2,
        },
        ..Default::default()
    };
    let mut gc = bc(&mut e, 1 << 20, opts);
    let keep = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let keep = make_list(&mut gc, &mut ctx, 15_000); // pointer-rich pages
        gc.collect(&mut ctx, CollectKind::Full);
        keep
    };
    squeeze_until_evicted(&mut e, &mut gc, 10, 480);
    // With max_pointers = 0, every list page is pointer-rich: vetoes fire.
    assert!(
        gc.stats().victims_vetoed > 0,
        "policy never vetoed: {:?}",
        gc.stats()
    );
    // The veto cap keeps eviction making progress anyway.
    assert!(gc.evicted_heap_pages() > 0);
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    assert_eq!(list_len(&mut gc, &mut ctx, keep), 15_000);
}

/// §3.4.1 compaction with evicted pages: superpages holding bookmarked
/// objects or evicted pages are compaction targets and are never moved, so
/// evicted pointers to them stay valid.
#[test]
fn compaction_preserves_evicted_pages_and_their_referents() {
    let mut e = env(2 << 20);
    let mut gc = bc(&mut e, 1 << 20, BcOptions::default());
    // Fragmented mature space with live data.
    let keep = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let keep = make_list(&mut gc, &mut ctx, 12_000);
        gc.collect(&mut ctx, CollectKind::Full);
        let junk = make_list(&mut gc, &mut ctx, 6_000);
        gc.collect(&mut ctx, CollectKind::Full);
        gc.drop_handle(junk);
        gc.collect(&mut ctx, CollectKind::Full); // sweep: fragmentation remains
        keep
    };
    // Evict some pages.
    squeeze_until_evicted(&mut e, &mut gc, 8, 480);
    let evicted_before = gc.evicted_heap_pages();
    assert!(evicted_before > 0);
    // Compact while pages are out.
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let faults_before = e_stats_faults(&ctx);
        gc.compact_gc(&mut ctx);
        let faults_after = e_stats_faults(&ctx);
        assert_eq!(
            faults_after, faults_before,
            "compaction touched evicted pages"
        );
    }
    assert_eq!(gc.stats().compacting_gcs, 1);
    assert!(
        gc.evicted_heap_pages() > 0,
        "compaction must not reload evicted pages"
    );
    // Everything still reachable (walking reloads pages — mutator faults).
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    assert_eq!(list_len(&mut gc, &mut ctx, keep), 12_000);
}

fn e_stats_faults(ctx: &MemCtx<'_>) -> u64 {
    ctx.vmm.stats(ctx.pid).major_faults
}

/// The fail-safe (§3.5) restores every page and clears all bookmark state;
/// the heap is fully collectable afterwards.
#[test]
fn failsafe_restores_residency_and_clears_bookmarks() {
    let mut e = env(2 << 20);
    let mut gc = bc(&mut e, 1 << 20, BcOptions::default());
    let keep = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let keep = make_list(&mut gc, &mut ctx, 15_000);
        gc.collect(&mut ctx, CollectKind::Full);
        keep
    };
    squeeze_until_evicted(&mut e, &mut gc, 10, 480);
    assert!(gc.evicted_heap_pages() > 0);
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        gc.failsafe_restore(&mut ctx);
    }
    assert_eq!(
        gc.evicted_heap_pages(),
        0,
        "fail-safe must reload everything"
    );
    assert_eq!(gc.stats().failsafe_gcs, 1);
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    gc.collect(&mut ctx, CollectKind::Full);
    assert_eq!(list_len(&mut gc, &mut ctx, keep), 15_000);
}

/// Bookmarks can target large objects: their incoming counters live in the
/// LOS analogue of the superpage header (§3.4), and full collections treat
/// bookmarked large objects as roots.
#[test]
fn bookmarks_target_large_objects_and_keep_them_alive() {
    let mut e = env(2 << 20);
    let mut gc = bc(&mut e, 1 << 20, BcOptions::default());
    let (_keep, big) = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        // A mature object pointing at a large object.
        let holder = gc.alloc(&mut ctx, list_kind()).unwrap();
        let big = gc
            .alloc(&mut ctx, AllocKind::DataArray { len: 3_000 })
            .unwrap();
        gc.write_ref(&mut ctx, holder, 0, Some(big)); // via ref field
                                                      // (list_kind has one ref field; store the big array there.)
        gc.collect(&mut ctx, CollectKind::Full);
        // Pad the heap so pressure has something to evict.
        let pad = make_list(&mut gc, &mut ctx, 12_000);
        gc.collect(&mut ctx, CollectKind::Full);
        ((holder, pad), big)
    };
    squeeze_until_evicted(&mut e, &mut gc, 10, 480);
    assert!(gc.evicted_heap_pages() > 0);
    // Whatever was evicted, a full collection must keep the large object
    // alive (either root-reachable or bookmark-rooted) without faulting.
    let faults = e.vmm.stats(e.pid).major_faults;
    {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        gc.collect(&mut ctx, CollectKind::Full);
    }
    assert_eq!(e.vmm.stats(e.pid).major_faults, faults);
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    gc.read_data(&mut ctx, big); // would panic if the array were collected
}

/// §3.1: the write buffer holds at most one page of entries; overflow
/// converts to card marks rather than growing without bound.
#[test]
fn write_buffer_is_bounded_by_one_page() {
    let mut e = env(64 << 20);
    let mut gc = bc(&mut e, 8 << 20, BcOptions::default());
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    let old = gc
        .alloc(&mut ctx, AllocKind::RefArray { len: 1024 })
        .unwrap();
    gc.collect(&mut ctx, CollectKind::Minor); // promote
                                              // 3000 mature→nursery stores: ~3x the buffer capacity.
    let young = gc.alloc(&mut ctx, list_kind()).unwrap();
    for i in 0..3_000u32 {
        gc.write_ref(&mut ctx, old, i % 1024, Some(young));
    }
    assert!(gc.stats().barrier_records >= 3_000);
    // The referent still survives a nursery collection through the cards.
    gc.drop_handle(young);
    gc.collect(&mut ctx, CollectKind::Minor);
    assert!(gc.read_ref(&mut ctx, old, 1023).is_some());
}

/// The §7 bundle (`with_future_work`) composes: pointer-aware victim
/// selection plus regrowth, with correctness intact under pressure.
#[test]
fn future_work_options_compose() {
    let opts = BcOptions::with_future_work();
    assert!(opts.bookmarking);
    assert!(opts.regrow);
    assert!(matches!(
        opts.victim_policy,
        crate::VictimPolicy::PreferPointerFree { .. }
    ));
    let mut e = env(2 << 20);
    let mut gc = bc(&mut e, 1 << 20, opts);
    let keep = {
        let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
        let keep = make_list(&mut gc, &mut ctx, 15_000);
        gc.collect(&mut ctx, CollectKind::Full);
        keep
    };
    squeeze_until_evicted(&mut e, &mut gc, 5, 480);
    let mut ctx = MemCtx::new(&mut e.vmm, &mut e.clock, e.pid);
    assert_eq!(list_len(&mut gc, &mut ctx, keep), 15_000);
}
