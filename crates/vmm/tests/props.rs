//! Property tests: the virtual memory manager preserves its core
//! invariants under arbitrary operation sequences.

// Property suites run hundreds of cases; far too slow under Miri's
// interpreter. The Miri CI job covers the plain unit tests instead.
#![cfg(not(miri))]

use proptest::prelude::*;
use simtime::{Clock, CostModel};
use vmm::{Access, PageState, VirtPage, Vmm, VmmConfig};

#[derive(Clone, Debug)]
enum Op {
    Touch(u8, u32, bool),
    Mlock(u8, u32),
    Munlock(u8, u32),
    Discard(u8, u32),
    Relinquish(u8, u32),
    Protect(u8, u32),
    Pump,
}

fn op_strategy(pages: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..2u8, 0..pages, any::<bool>()).prop_map(|(p, g, w)| Op::Touch(p, g, w)),
        (0..2u8, 0..pages).prop_map(|(p, g)| Op::Mlock(p, g)),
        (0..2u8, 0..pages).prop_map(|(p, g)| Op::Munlock(p, g)),
        (0..2u8, 0..pages).prop_map(|(p, g)| Op::Discard(p, g)),
        (0..2u8, 0..pages).prop_map(|(p, g)| Op::Relinquish(p, g)),
        (0..2u8, 0..pages).prop_map(|(p, g)| Op::Protect(p, g)),
        Just(Op::Pump),
    ]
}

fn run_ops(frames: usize, notify_p0: bool, ops: &[Op]) -> (Vmm, Vec<vmm::ProcessId>) {
    let config = VmmConfig::builder()
        .frames(frames)
        .low_watermark(4)
        .high_watermark(8)
        .build();
    let mut vmm = Vmm::new(config, CostModel::default());
    let p0 = vmm.register_process();
    let p1 = vmm.register_process();
    if notify_p0 {
        vmm.register_notifications(p0);
    }
    let pids = [p0, p1];
    let mut clock = Clock::new();
    for op in ops {
        match *op {
            Op::Touch(p, g, w) => {
                let access = if w { Access::Write } else { Access::Read };
                vmm.touch(pids[p as usize], VirtPage::new(g), access, &mut clock);
            }
            Op::Mlock(p, g) => {
                // Never lock more than half the machine (a real mlock
                // would hit RLIMIT_MEMLOCK / ENOMEM).
                if vmm.free_frames() > frames / 2 {
                    vmm.mlock(pids[p as usize], VirtPage::new(g), &mut clock);
                }
            }
            Op::Munlock(p, g) => vmm.munlock(pids[p as usize], VirtPage::new(g), &mut clock),
            Op::Discard(p, g) => {
                vmm.madvise_dontneed(pids[p as usize], &[VirtPage::new(g)], &mut clock);
            }
            Op::Relinquish(p, g) => {
                vmm.vm_relinquish(pids[p as usize], &[VirtPage::new(g)], &mut clock);
            }
            Op::Protect(p, g) => {
                vmm.mprotect(pids[p as usize], &[VirtPage::new(g)], true, &mut clock);
            }
            Op::Pump => vmm.pump(&mut clock),
        }
        // Invariant after *every* operation: frame conservation.
        let resident = vmm.total_resident();
        assert_eq!(
            resident + vmm.free_frames(),
            frames,
            "frames leaked or double-counted after {op:?}"
        );
    }
    (vmm, pids.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// resident + free == total, always.
    #[test]
    fn frame_conservation(ops in proptest::collection::vec(op_strategy(96), 1..400),
                          notify in any::<bool>()) {
        let _ = run_ops(64, notify, &ops);
    }

    /// mlocked pages are never evicted, whatever else happens.
    #[test]
    fn locked_pages_stay_resident(ops in proptest::collection::vec(op_strategy(48), 1..300)) {
        let (mut vmm, pids) = run_ops(64, true, &ops);
        let mut clock = Clock::new();
        // Lock three pages, then churn hard.
        for g in 200..203u32 {
            vmm.mlock(pids[0], VirtPage::new(g), &mut clock);
        }
        for g in 0..120u32 {
            vmm.touch(pids[1], VirtPage::new(g), Access::Write, &mut clock);
            vmm.pump(&mut clock);
        }
        for g in 200..203u32 {
            prop_assert!(vmm.is_resident(pids[0], VirtPage::new(g)));
        }
    }

    /// Evicted contents are a swap copy: the state machine never reports a
    /// page both resident and evicted, and a discarded page always
    /// zero-fills.
    #[test]
    fn discard_always_zero_fills(ops in proptest::collection::vec(op_strategy(48), 1..200),
                                 page in 0..48u32) {
        let (mut vmm, pids) = run_ops(64, false, &ops);
        let mut clock = Clock::new();
        // madvise refuses locked pages (as EINVAL would); unlock first.
        vmm.munlock(pids[0], VirtPage::new(page), &mut clock);
        vmm.madvise_dontneed(pids[0], &[VirtPage::new(page)], &mut clock);
        prop_assert_eq!(vmm.page_state(pids[0], VirtPage::new(page)), PageState::Unmapped);
        let o = vmm.touch(pids[0], VirtPage::new(page), Access::Read, &mut clock);
        prop_assert!(o.zero_filled);
        prop_assert!(!o.major_fault);
    }

    /// Notifications are only ever delivered to registered processes.
    #[test]
    fn unregistered_processes_get_no_events(ops in proptest::collection::vec(op_strategy(96), 1..400)) {
        let (mut vmm, pids) = run_ops(64, true, &ops);
        let mut events = Vec::new();
        vmm.drain_events_into(pids[1], &mut events);
        prop_assert!(events.is_empty());
    }
}
