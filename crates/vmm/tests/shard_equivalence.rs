//! Shard-equivalence harness.
//!
//! A deterministic, LCG-driven operation sequence exercises every public
//! entry point of the VMM (touches, pumps, relinquish, madvise, mprotect,
//! mlock/munlock, event draining) across three processes — one notifying,
//! two oblivious — and folds every observable output into a single FNV-1a
//! fingerprint: touch outcomes, simulated time after each operation, every
//! drained event, per-process statistics, final page states, and the free
//! frame count.
//!
//! `EXPECTED_FINGERPRINT` was captured from the pre-shard (single frame
//! pool, single LRU) implementation. The sharded VMM configured with **one
//! shard must reproduce it bit-for-bit** — the shard refactor is required
//! to be pure code motion at `shards = 1`. A second test checks that
//! multi-shard configurations are deterministic (same fingerprint on every
//! run), even though their fingerprint legitimately differs from the
//! 1-shard value once eviction order becomes per-shard.

use simtime::{Clock, CostModel};
use vmm::{Access, PageState, ProcessId, VirtPage, Vmm, VmmConfig};

/// Fingerprint of the op sequence on the pre-refactor VMM (captured before
/// the shard split; see module docs). Any drift here means simulated
/// *behaviour* changed, not just implementation.
const EXPECTED_FINGERPRINT: u64 = 0xa051_dbcc_d2ee_20ce;

const STEPS: u64 = 4000;
const PROCS: u64 = 3;
const PAGES: u64 = 48;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
}

/// Minimal xorshift-free LCG (MMIX constants); deterministic across runs.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state >> 33
}

fn build_vmm(shards: usize) -> Vmm {
    let config = VmmConfig::builder()
        .frames(64)
        .low_watermark(4)
        .high_watermark(8)
        .batch(4)
        .shards(shards)
        .build();
    Vmm::new(config, CostModel::default())
}

/// Runs the scripted sequence and returns the behaviour fingerprint.
fn run_sequence(vmm: &mut Vmm) -> u64 {
    let mut clock = Clock::new();
    let mut fp = Fnv::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;

    let pids: Vec<ProcessId> = (0..PROCS).map(|_| vmm.register_process()).collect();
    vmm.register_notifications(pids[0]);

    let mut scratch: Vec<vmm::VmEvent> = Vec::new();
    for step in 0..STEPS {
        let pid = pids[(lcg(&mut rng) % PROCS) as usize];
        let page = VirtPage::from((lcg(&mut rng) % PAGES) as u32);
        match lcg(&mut rng) % 100 {
            0..=69 => {
                let access = if lcg(&mut rng).is_multiple_of(2) {
                    Access::Read
                } else {
                    Access::Write
                };
                let o = vmm.touch(pid, page, access, &mut clock);
                fp.byte(o.major_fault as u8);
                fp.byte(o.zero_filled as u8);
                fp.byte(o.protection_fault as u8);
                fp.byte(o.events_queued as u8);
            }
            70..=79 => vmm.pump(&mut clock),
            80..=84 => {
                let extra = VirtPage::from((lcg(&mut rng) % PAGES) as u32);
                vmm.vm_relinquish(pid, &[page, extra], &mut clock);
            }
            85..=89 => vmm.madvise_dontneed(pid, &[page], &mut clock),
            90..=92 => {
                let protect = lcg(&mut rng).is_multiple_of(2);
                vmm.mprotect(pid, &[page], protect, &mut clock);
            }
            93..=94 => {
                // Keep the lockable range small so pinning can never
                // exhaust the 64-frame pool.
                let low = VirtPage::from((lcg(&mut rng) % 4) as u32);
                if lcg(&mut rng).is_multiple_of(2) {
                    vmm.mlock(pid, low, &mut clock);
                } else {
                    vmm.munlock(pid, low, &mut clock);
                }
            }
            _ => {
                scratch.clear();
                vmm.drain_events_into(pid, &mut scratch);
                for e in &scratch {
                    fp.str(&format!("{e:?}"));
                }
            }
        }
        fp.u64(clock.now().0);
        if step % 256 == 0 {
            fp.u64(vmm.free_frames() as u64);
            fp.u64(vmm.total_resident() as u64);
        }
    }

    for &pid in &pids {
        let s = vmm.stats(pid);
        for v in [
            s.touches,
            s.major_faults,
            s.minor_faults,
            s.evictions,
            s.hard_evictions,
            s.discards,
            s.relinquished,
            s.notices,
            s.resident,
            s.peak_resident,
            s.locked,
        ] {
            fp.u64(v);
        }
        scratch.clear();
        vmm.drain_events_into(pid, &mut scratch);
        for e in &scratch {
            fp.str(&format!("{e:?}"));
        }
        for p in 0..PAGES {
            let state = vmm.page_state(pid, VirtPage::from(p as u32));
            fp.byte(match state {
                PageState::Unmapped => 0,
                PageState::Resident => 1,
                PageState::Evicted => 2,
            });
        }
    }
    fp.u64(vmm.free_frames() as u64);
    fp.u64(clock.now().0);
    fp.0
}

#[test]
fn one_shard_matches_pre_refactor_fingerprint() {
    let got = run_sequence(&mut build_vmm(1));
    assert_eq!(
        got, EXPECTED_FINGERPRINT,
        "1-shard VMM behaviour drifted from the pre-refactor fingerprint \
         (got {got:#018x}); the shard layer must be pure code motion at \
         shards = 1"
    );
}

#[test]
fn multi_shard_runs_are_deterministic() {
    for shards in [2usize, 4, 7] {
        let a = run_sequence(&mut build_vmm(shards));
        let b = run_sequence(&mut build_vmm(shards));
        assert_eq!(a, b, "shards = {shards} produced nondeterministic runs");
    }
}
