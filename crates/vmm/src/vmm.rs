//! The virtual memory manager proper.
//!
//! Since the multi-tenant redesign the manager is a façade over
//! [`Shard`]s: the frame pool, both LRU lists, and the reclaim queues are
//! partitioned, processes are assigned to shards round-robin by id, and
//! each shard runs the Linux 2.4 reclaim state machine over its own
//! partition. With one shard (the default) the behaviour is bit-for-bit
//! identical to the historical unsharded manager — pinned by the
//! `shard_equivalence` integration test — while `N` shards bound every
//! reclaim scan to `1/N` of the tenants. Under global pressure a shard
//! that runs dry steals frames from its siblings (free frames first, then
//! direct reclaim on their lists), so over-committed tenants can still
//! make progress; stolen frames migrate between shards permanently, like
//! pages migrating between NUMA zones.

use std::collections::VecDeque;
use std::fmt;

use simtime::{Clock, CostModel};
use telemetry::{EventKind, Tracer};

use crate::config::VmmConfig;
use crate::events::VmEvent;
use crate::lists::LazyQueue;
use crate::page::{
    Access, ListTag, PageInfo, PageKey, PageState, ProcessId, TouchOutcome, VirtPage,
};
use crate::stats::VmStats;

/// Sentinel for [`Process::last_touched`]: no page is cached.
const NO_TOUCH_CACHE: u32 = u32::MAX;

/// Hard capacity of the process table ([`ProcessId`] is a `u32` index).
pub const MAX_PROCESSES: usize = u32::MAX as usize;

/// Error returned by [`Vmm::try_register_process`] when the process table
/// is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessTableFull;

impl fmt::Display for ProcessTableFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "process table full ({MAX_PROCESSES} processes)")
    }
}

impl std::error::Error for ProcessTableFull {}

/// Pages per page-table chunk: 4 MiB of simulated address space.
const PT_CHUNK: usize = 1024;

/// A two-level page table: a directory of on-demand 4 MiB chunks.
///
/// The heap layout scatters its regions across a ~3 GiB virtual span, so a
/// dense `Vec<PageInfo>` indexed by raw page number costs megabytes of
/// zero-filled host memory per process the moment a high region (e.g. the
/// second semispace) is touched — ruinous for thousand-tenant fleets,
/// where the tables dwarf every other allocation. Chunking keeps a lookup
/// at two indexed loads while allocating only the spans a process actually
/// uses. Entries in an allocated chunk default to an unmapped page, which
/// is indistinguishable from the page being absent altogether.
#[derive(Debug, Default)]
struct PageTable {
    chunks: Vec<Option<Box<[PageInfo; PT_CHUNK]>>>,
}

impl PageTable {
    /// The entry for page-number `idx`, materialising its chunk if needed.
    fn entry(&mut self, idx: usize) -> &mut PageInfo {
        let (c, o) = (idx / PT_CHUNK, idx % PT_CHUNK);
        if c >= self.chunks.len() {
            self.chunks.resize_with(c + 1, || None);
        }
        &mut self.chunks[c].get_or_insert_with(|| Box::new([PageInfo::default(); PT_CHUNK]))[o]
    }

    fn get(&self, idx: usize) -> Option<&PageInfo> {
        self.chunks
            .get(idx / PT_CHUNK)?
            .as_ref()
            .map(|c| &c[idx % PT_CHUNK])
    }

    fn get_mut(&mut self, idx: usize) -> Option<&mut PageInfo> {
        self.chunks
            .get_mut(idx / PT_CHUNK)?
            .as_mut()
            .map(|c| &mut c[idx % PT_CHUNK])
    }
}

/// One simulated process known to the manager.
#[derive(Debug)]
struct Process {
    /// Two-level page table indexed by virtual page number.
    pages: PageTable,
    /// Whether this process registered for paging notifications (§4.1:
    /// "When the application begins, it registers itself with the operating
    /// system so that it will receive notification of paging events").
    notify: bool,
    /// The queued real-time-signal mailbox.
    events: VecDeque<VmEvent>,
    /// Whether this process currently sits on its shard's notification
    /// queue. Set when the first event is queued, cleared on drain, so the
    /// queue holds each process at most once and event delivery stays
    /// O(processes-with-events), not O(processes).
    queued_notify: bool,
    stats: VmStats,
    /// The page number of the most recent fast-path touch, or
    /// [`NO_TOUCH_CACHE`]. While set, the page is guaranteed resident,
    /// unprotected, and on the active list, so consecutive touches to the
    /// same page skip every state check. Any operation that could break
    /// that invariant must call [`Process::forget_touch_cache`].
    last_touched: u32,
}

impl Default for Process {
    fn default() -> Process {
        Process {
            pages: PageTable::default(),
            notify: false,
            events: VecDeque::new(),
            queued_notify: false,
            stats: VmStats::default(),
            last_touched: NO_TOUCH_CACHE,
        }
    }
}

impl Process {
    fn page(&mut self, page: VirtPage) -> &mut PageInfo {
        self.pages.entry(page.index())
    }

    fn page_ref(&self, page: VirtPage) -> Option<&PageInfo> {
        self.pages.get(page.index())
    }

    /// Drops the consecutive-touch cache if it refers to `page`.
    fn forget_touch_cache(&mut self, page: VirtPage) {
        if self.last_touched == page.number() {
            self.last_touched = NO_TOUCH_CACHE;
        }
    }
}

/// Queues `event` for `proc`, enqueuing the process on its shard's
/// notification queue the first time its mailbox goes non-empty.
fn queue_event(
    notified: &mut VecDeque<ProcessId>,
    pid: ProcessId,
    proc: &mut Process,
    event: VmEvent,
) {
    proc.events.push_back(event);
    if !proc.queued_notify {
        proc.queued_notify = true;
        notified.push_back(pid);
    }
}

/// One partition of the physical frame pool with its own reclaim state:
/// active/inactive lists, pending-notice and relinquish queues, watermarks,
/// and the notification queue of its resident processes.
#[derive(Debug)]
struct Shard {
    free_frames: usize,
    active: LazyQueue,
    inactive: LazyQueue,
    /// Live-entry counts (the lazy queues may hold stale duplicates).
    active_count: usize,
    inactive_count: usize,
    /// Pages awaiting eviction after a notice, with the pump sequence number
    /// at which the notice was sent; they get one full pump of grace.
    pending: VecDeque<(PageKey, u64)>,
    /// Pages surrendered via `vm_relinquish`: first in line for eviction.
    relinquish_queue: VecDeque<PageKey>,
    pump_seq: u64,
    /// Processes of this shard with queued events (lazy-deleted FIFO).
    notified: VecDeque<ProcessId>,
    low_watermark: usize,
    high_watermark: usize,
    batch: usize,
    clock_scan_limit: usize,
}

impl Shard {
    /// The `index`-th of `count` partitions of `config`: frames split as
    /// evenly as possible, watermarks divided (rounding up so every shard
    /// keeps a reclaim reserve). With `count == 1` every parameter equals
    /// the global configuration.
    fn new(config: &VmmConfig, index: usize, count: usize) -> Shard {
        let frames = config.frames / count + usize::from(index < config.frames % count);
        Shard {
            free_frames: frames,
            active: LazyQueue::new(),
            inactive: LazyQueue::new(),
            active_count: 0,
            inactive_count: 0,
            pending: VecDeque::new(),
            relinquish_queue: VecDeque::new(),
            pump_seq: 0,
            notified: VecDeque::new(),
            low_watermark: config.low_watermark.div_ceil(count),
            high_watermark: config.high_watermark.div_ceil(count),
            batch: config.batch,
            clock_scan_limit: config.clock_scan_limit,
        }
    }

    /// One background-reclaim pass over this shard (see [`Vmm::pump`]).
    fn pump(
        &mut self,
        procs: &mut [Process],
        costs: &CostModel,
        tracer: &Tracer,
        clock: &mut Clock,
    ) {
        self.pump_seq += 1;
        if self.free_frames >= self.low_watermark {
            self.cancel_pending(procs);
            return;
        }
        let target = self.high_watermark;
        // Phase 1: relinquished pages are first in line.
        while self.free_frames < target {
            let Some(key) = self.relinquish_queue.pop_front() else {
                break;
            };
            if page_flag(procs, key, |p| p.relinquished && p.evictable()) {
                self.evict(key, procs, costs, tracer, clock, false);
            }
        }
        // Phase 2: pending evictions past their grace period.
        let seq = self.pump_seq;
        while self.free_frames < target {
            match self.pending.front() {
                Some(&(_, noticed_at)) if noticed_at < seq => {}
                _ => break,
            }
            let (key, _) = self.pending.pop_front().unwrap();
            if page_flag(procs, key, |p| p.pending_eviction && p.evictable()) {
                self.evict(key, procs, costs, tracer, clock, false);
            }
        }
        // Phase 3 + 4: refill inactive, then scan it.
        let mut scheduled = 0usize;
        let mut scan_budget = self.batch * 4;
        while self.free_frames + scheduled < target && scan_budget > 0 {
            scan_budget -= 1;
            self.refill_inactive(procs);
            let Some(key) = self.pop_inactive(procs) else {
                break;
            };
            if !procs[key.pid.index()].notify {
                self.evict(key, procs, costs, tracer, clock, false);
                continue;
            }
            // Notifying process: queue a notice, give one pump of grace.
            {
                let info = procs[key.pid.index()].page(key.page);
                info.pending_eviction = true;
                // Keep an inactive tag so a rescue-touch repromotes cleanly.
                info.list = ListTag::Inactive;
            }
            self.inactive_count += 1;
            self.pending.push_back((key, seq));
            let proc = &mut procs[key.pid.index()];
            proc.stats.notices += 1;
            queue_event(
                &mut self.notified,
                key.pid,
                proc,
                VmEvent::EvictionScheduled { page: key.page },
            );
            clock.advance(costs.notification);
            tracer.emit(
                key.pid.as_u32(),
                clock.now(),
                EventKind::EvictionScheduled {
                    page: key.page.number(),
                },
            );
            scheduled += 1;
        }
    }

    /// Takes one frame from this shard, running direct reclaim over its own
    /// lists if none is free. Returns `false` if the shard cannot supply a
    /// frame (the caller may then steal from sibling shards).
    fn try_acquire(
        &mut self,
        procs: &mut [Process],
        costs: &CostModel,
        tracer: &Tracer,
        clock: &mut Clock,
    ) -> bool {
        if self.free_frames == 0 {
            self.direct_reclaim(procs, costs, tracer, clock);
        }
        if self.free_frames == 0 {
            return false;
        }
        self.free_frames -= 1;
        true
    }

    /// Direct reclaim: synchronously frees one frame when allocation finds
    /// none free. Preference order: relinquished pages, pages past their
    /// notice grace, then the inactive tail — where even a notifying
    /// process's page may be *hard-evicted* (notice delivered after the
    /// fact), modelling the kernel running ahead of the collector (§3.4.3).
    fn direct_reclaim(
        &mut self,
        procs: &mut [Process],
        costs: &CostModel,
        tracer: &Tracer,
        clock: &mut Clock,
    ) {
        // Relinquished pages first.
        while self.free_frames == 0 {
            let Some(key) = self.relinquish_queue.pop_front() else {
                break;
            };
            if page_flag(procs, key, |p| p.relinquished && p.evictable()) {
                self.evict(key, procs, costs, tracer, clock, false);
            }
        }
        // Then pages whose notice has been delivered (even this pump: the
        // kernel cannot wait under direct reclaim).
        while self.free_frames == 0 {
            let Some((key, _)) = self.pending.pop_front() else {
                break;
            };
            if page_flag(procs, key, |p| p.pending_eviction && p.evictable()) {
                self.evict(key, procs, costs, tracer, clock, false);
            }
        }
        // Finally the inactive tail, hard-evicting if necessary. Several
        // clock passes may be needed: the first pass over a hot working
        // set only clears referenced bits (second chance), so allow enough
        // scans to age every resident page before giving up (the façade
        // then tries the sibling shards).
        let mut empty_scans = 0usize;
        while self.free_frames == 0 && empty_scans < 256 {
            self.refill_inactive(procs);
            let Some(key) = self.pop_inactive(procs) else {
                empty_scans += 1;
                continue;
            };
            let hard = procs[key.pid.index()].notify;
            self.evict(key, procs, costs, tracer, clock, hard);
        }
    }

    /// Moves unreferenced active pages to the inactive list (clock pass).
    fn refill_inactive(&mut self, procs: &mut [Process]) {
        let want = (self.batch * 2).max(self.high_watermark);
        if self.inactive_count >= want {
            return;
        }
        let mut scanned = 0;
        while self.inactive_count < want && scanned < self.clock_scan_limit {
            scanned += 1;
            let key = {
                match self.active.pop_front_valid(|k| {
                    procs[k.pid.index()]
                        .page_ref(k.page)
                        .is_some_and(|p| p.list == ListTag::Active)
                }) {
                    Some(k) => k,
                    None => break,
                }
            };
            let (evictable, referenced) = {
                let info = procs[key.pid.index()].page(key.page);
                (info.evictable(), info.referenced)
            };
            if !evictable {
                let proc = &mut procs[key.pid.index()];
                proc.forget_touch_cache(key.page);
                proc.page(key.page).list = ListTag::None;
                self.active_count -= 1;
                continue;
            }
            if referenced {
                // Second chance. (The touch cache stays valid: the page
                // remains on the active list, and a cached touch re-sets
                // the referenced bit just as the fast path does.)
                procs[key.pid.index()].page(key.page).referenced = false;
                self.active.rotate_to_back(key);
            } else {
                let proc = &mut procs[key.pid.index()];
                proc.forget_touch_cache(key.page);
                proc.page(key.page).list = ListTag::Inactive;
                self.active_count -= 1;
                self.inactive_count += 1;
                self.inactive.push_back(key);
            }
        }
    }

    /// Pops the oldest valid entry of the inactive FIFO and untags it.
    /// Pages already pending eviction are skipped (their queue entry is
    /// dropped; the `pending` queue owns them now).
    fn pop_inactive(&mut self, procs: &mut [Process]) -> Option<PageKey> {
        let key = self.inactive.pop_front_valid(|k| {
            procs[k.pid.index()].page_ref(k.page).is_some_and(|p| {
                p.list == ListTag::Inactive
                    && p.evictable()
                    && !p.pending_eviction
                    && !p.relinquished
            })
        })?;
        procs[key.pid.index()].page(key.page).list = ListTag::None;
        self.inactive_count -= 1;
        Some(key)
    }

    /// Evicts a resident page to swap.
    fn evict(
        &mut self,
        key: PageKey,
        procs: &mut [Process],
        costs: &CostModel,
        tracer: &Tracer,
        clock: &mut Clock,
        hard: bool,
    ) {
        let (dirty, list) = {
            let proc = &mut procs[key.pid.index()];
            proc.forget_touch_cache(key.page);
            let info = proc.page(key.page);
            debug_assert!(info.evictable());
            let dirty = info.dirty;
            let list = info.list;
            *info = PageInfo {
                state: PageState::Evicted,
                dirty,
                ..PageInfo::default()
            };
            (dirty, list)
        };
        match list {
            ListTag::Active => self.active_count -= 1,
            ListTag::Inactive => self.inactive_count -= 1,
            ListTag::None => {}
        }
        self.free_frames += 1;
        clock.advance(if dirty {
            costs.evict_dirty
        } else {
            costs.evict_clean
        });
        let proc = &mut procs[key.pid.index()];
        proc.stats.evictions += 1;
        proc.stats.note_nonresident();
        if hard {
            proc.stats.hard_evictions += 1;
        }
        // §4.1: registered processes are notified of every eviction of
        // their pages ("whenever its corresponding page table entry is
        // unmapped") — including evictions that followed a granted grace
        // period, and direct-reclaim evictions where the kernel ran ahead.
        if proc.notify {
            queue_event(
                &mut self.notified,
                key.pid,
                proc,
                VmEvent::Evicted { page: key.page },
            );
        }
        tracer.emit(
            key.pid.as_u32(),
            clock.now(),
            EventKind::Evicted {
                page: key.page.number(),
                hard,
            },
        );
    }

    /// Clears stale pending flags when pressure abates, returning pages to
    /// normal inactive-list standing.
    fn cancel_pending(&mut self, procs: &mut [Process]) {
        while let Some((key, _)) = self.pending.pop_front() {
            let still_pending = {
                let info = procs[key.pid.index()].page(key.page);
                let was = info.pending_eviction;
                info.pending_eviction = false;
                was && info.list == ListTag::Inactive
            };
            if still_pending {
                // Its original queue entry may have been dropped; re-add.
                self.inactive.push_back(key);
            }
        }
    }
}

fn page_flag(procs: &[Process], key: PageKey, test: impl Fn(&PageInfo) -> bool) -> bool {
    procs[key.pid.index()].page_ref(key.page).is_some_and(test)
}

/// The simulated virtual memory manager.
///
/// See the [crate docs](crate) for the model. All state mutation goes through
/// a small set of entry points — [`touch`](Vmm::touch), [`pump`](Vmm::pump),
/// and the cooperation system calls — each of which charges simulated time to
/// the caller's [`Clock`].
#[derive(Debug)]
pub struct Vmm {
    config: VmmConfig,
    costs: CostModel,
    processes: Vec<Process>,
    shards: Vec<Shard>,
    /// Structured-event sink shared with the collectors (disabled by
    /// default: emitting is then a single branch).
    tracer: Tracer,
}

impl Vmm {
    /// Creates a manager with `config.frames` physical frames, all free,
    /// partitioned into `config.shards` shards.
    pub fn new(config: VmmConfig, costs: CostModel) -> Vmm {
        let count = config.shards.max(1);
        let shards = (0..count).map(|i| Shard::new(&config, i, count)).collect();
        Vmm {
            config,
            costs,
            processes: Vec::new(),
            shards,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the telemetry tracer; VMM-side events (faults, evictions,
    /// discards, relinquishments, protection traps) are stamped with the
    /// owning process's id and the acting clock's simulated time.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The shard a process's pages live on (round-robin by id).
    fn shard_of(&self, pid: ProcessId) -> usize {
        pid.index() % self.shards.len()
    }

    /// Registers a new process and returns its id, or
    /// [`ProcessTableFull`] once [`MAX_PROCESSES`] ids are in use.
    pub fn try_register_process(&mut self) -> Result<ProcessId, ProcessTableFull> {
        if self.processes.len() >= MAX_PROCESSES {
            return Err(ProcessTableFull);
        }
        self.processes.push(Process::default());
        Ok(ProcessId::new((self.processes.len() - 1) as u32))
    }

    /// Registers a new process and returns its id.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if the process table is full
    /// ([`MAX_PROCESSES`] processes); use
    /// [`try_register_process`](Vmm::try_register_process) to handle that
    /// case gracefully.
    pub fn register_process(&mut self) -> ProcessId {
        match self.try_register_process() {
            Ok(pid) => pid,
            Err(e) => panic!("register_process: {e}"),
        }
    }

    /// Opts `pid` into paging-event notifications (eviction notices,
    /// residency notices, protection faults). The bookmarking collector
    /// registers; the oblivious baseline collectors do not.
    pub fn register_notifications(&mut self, pid: ProcessId) {
        self.processes[pid.index()].notify = true;
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The configuration in force.
    pub fn config(&self) -> &VmmConfig {
        &self.config
    }

    /// Currently free physical frames, across all shards.
    pub fn free_frames(&self) -> usize {
        self.shards.iter().map(|s| s.free_frames).sum()
    }

    /// Whether background reclaim would run at the next [`pump`](Vmm::pump)
    /// (on any shard).
    pub fn under_pressure(&self) -> bool {
        self.shards.iter().any(|s| s.free_frames < s.low_watermark)
    }

    /// Paging statistics for `pid`.
    pub fn stats(&self, pid: ProcessId) -> &VmStats {
        &self.processes[pid.index()].stats
    }

    /// Residency state of a page.
    pub fn page_state(&self, pid: ProcessId, page: VirtPage) -> PageState {
        self.processes[pid.index()]
            .page_ref(page)
            .map_or(PageState::Unmapped, |p| p.state)
    }

    /// Whether a page is backed by a physical frame (the `mincore` analogue).
    pub fn is_resident(&self, pid: ProcessId, page: VirtPage) -> bool {
        self.page_state(pid, page) == PageState::Resident
    }

    /// Appends `pid`'s queued notifications to `out` (which is *not*
    /// cleared) and returns how many were drained. The per-delivery cost is
    /// O(events): no allocation, and a process with an empty mailbox costs
    /// one index.
    pub fn drain_events_into(&mut self, pid: ProcessId, out: &mut Vec<VmEvent>) -> usize {
        let proc = &mut self.processes[pid.index()];
        proc.queued_notify = false;
        let n = proc.events.len();
        out.extend(proc.events.drain(..));
        n
    }

    /// Drops all queued notifications for `pid` without reading them.
    /// Collectors use this after a deliberate reload touch whose
    /// `MadeResident` notice carries no information they need.
    pub fn discard_events(&mut self, pid: ProcessId) {
        let proc = &mut self.processes[pid.index()];
        proc.queued_notify = false;
        proc.events.clear();
    }

    /// Pops the id of the next process with undelivered events, or `None`
    /// if every mailbox is empty. Processes appear at most once and in the
    /// order their first event was queued (per shard; shards are visited
    /// in index order), so a delivery loop
    /// `while let Some(pid) = vmm.next_notified() { ... }` is O(events)
    /// regardless of how many idle tenants are registered.
    pub fn next_notified(&mut self) -> Option<ProcessId> {
        for shard in &mut self.shards {
            while let Some(pid) = shard.notified.pop_front() {
                // Lazy deletion: a direct `drain_events_into` call may
                // already have emptied this mailbox.
                if self.processes[pid.index()].queued_notify {
                    return Some(pid);
                }
            }
        }
        None
    }

    /// Whether `pid` has notifications waiting.
    pub fn has_events(&self, pid: ProcessId) -> bool {
        !self.processes[pid.index()].events.is_empty()
    }

    /// Upper bound on the processes [`next_notified`](Vmm::next_notified)
    /// would visit right now (lazily-deleted entries inflate the count but
    /// pop in O(1)). Delivery loops use this as a batch budget so that
    /// events queued *while* delivering — e.g. evictions forced by a
    /// collector's own response — wait for the next batch instead of
    /// extending the current one forever.
    pub fn notified_backlog(&self) -> usize {
        self.shards.iter().map(|s| s.notified.len()).sum()
    }

    /// Touches one page, simulating the MMU and fault paths.
    ///
    /// * Unmapped page: demand-zero fill (minor fault; the caller must zero
    ///   its backing store — see [`TouchOutcome::zero_filled`]).
    /// * Evicted page: major fault, ~5 ms by default; queues
    ///   [`VmEvent::MadeResident`] for notifying owners.
    /// * Protected page: queues [`VmEvent::ProtectionFault`], removes the
    ///   protection, and proceeds.
    /// * Pending-eviction page: the touch rescues it ("BC touches the page
    ///   that has been scheduled in order to prevent its eviction", §3.4).
    ///
    /// The touch sets the referenced bit and, for writes, the dirty bit, and
    /// promotes inactive pages to the active list.
    /// The overwhelmingly common case — the page is resident, unprotected,
    /// and already on the active list — is a single page-info lookup, one
    /// clock advance, and an early return; every other case takes the
    /// outlined [`touch_slow`](Vmm::touch_slow) path.
    #[zero_alloc::zero_alloc]
    pub fn touch(
        &mut self,
        pid: ProcessId,
        page: VirtPage,
        access: Access,
        clock: &mut Clock,
    ) -> TouchOutcome {
        let ram_word = self.costs.ram_word;
        let proc = &mut self.processes[pid.index()];
        proc.stats.touches += 1;
        // Consecutive touches to the same page: the cache certifies the
        // fast-path invariant, so skip even the state checks. The cached
        // page always has `pending_eviction`/`relinquished` clear (both
        // setters move the page to the inactive list and drop the cache).
        if proc.last_touched == page.number() {
            let info = proc.pages.entry(page.index());
            debug_assert!(
                info.state == PageState::Resident
                    && !info.protected
                    && info.list == ListTag::Active,
                "stale touch cache for {page}"
            );
            info.referenced = true;
            if access == Access::Write {
                info.dirty = true;
            }
            clock.advance(ram_word);
            return TouchOutcome {
                events_queued: !proc.events.is_empty(),
                ..TouchOutcome::default()
            };
        }
        if let Some(info) = proc.pages.get_mut(page.index()) {
            if info.state == PageState::Resident && !info.protected && info.list == ListTag::Active
            {
                info.referenced = true;
                if access == Access::Write {
                    info.dirty = true;
                }
                // A touch rescues a page from any scheduled eviction.
                info.pending_eviction = false;
                info.relinquished = false;
                proc.last_touched = page.number();
                clock.advance(ram_word);
                return TouchOutcome {
                    events_queued: !proc.events.is_empty(),
                    ..TouchOutcome::default()
                };
            }
        }
        self.touch_slow(pid, page, access, clock)
    }

    /// The uncommon touch cases: faults (demand-zero, major), protection
    /// traps, and list promotion. Outlined so the fast path above stays
    /// small enough to inline.
    #[cold]
    #[inline(never)]
    fn touch_slow(
        &mut self,
        pid: ProcessId,
        page: VirtPage,
        access: Access,
        clock: &mut Clock,
    ) -> TouchOutcome {
        let home = self.shard_of(pid);
        let mut outcome = TouchOutcome::default();
        let state = self.processes[pid.index()].page(page).state;
        match state {
            PageState::Resident => {}
            PageState::Unmapped => {
                self.acquire_frame(home, clock);
                let proc = &mut self.processes[pid.index()];
                proc.page(page).state = PageState::Resident;
                proc.stats.minor_faults += 1;
                proc.stats.note_resident();
                clock.advance(self.costs.minor_fault);
                outcome.zero_filled = true;
                self.tracer.emit(
                    pid.as_u32(),
                    clock.now(),
                    EventKind::Fault {
                        page: page.number(),
                        major: false,
                    },
                );
            }
            PageState::Evicted => {
                self.acquire_frame(home, clock);
                let (shard, proc) = (&mut self.shards[home], &mut self.processes[pid.index()]);
                let info = proc.page(page);
                info.state = PageState::Resident;
                info.dirty = false;
                proc.stats.major_faults += 1;
                proc.stats.note_resident();
                clock.advance(self.costs.major_fault);
                outcome.major_fault = true;
                if proc.notify {
                    queue_event(
                        &mut shard.notified,
                        pid,
                        proc,
                        VmEvent::MadeResident { page },
                    );
                }
                self.tracer.emit(
                    pid.as_u32(),
                    clock.now(),
                    EventKind::Fault {
                        page: page.number(),
                        major: true,
                    },
                );
                self.tracer.emit(
                    pid.as_u32(),
                    clock.now(),
                    EventKind::MadeResident {
                        page: page.number(),
                    },
                );
            }
        }
        {
            let (shard, proc) = (&mut self.shards[home], &mut self.processes[pid.index()]);
            if proc.page(page).protected {
                proc.page(page).protected = false;
                proc.stats.minor_faults += 1;
                clock.advance(self.costs.minor_fault);
                outcome.protection_fault = true;
                if proc.notify {
                    queue_event(
                        &mut shard.notified,
                        pid,
                        proc,
                        VmEvent::ProtectionFault { page },
                    );
                }
                self.tracer.emit(
                    pid.as_u32(),
                    clock.now(),
                    EventKind::ProtectionTrap {
                        page: page.number(),
                    },
                );
            }
        }
        let key = PageKey { pid, page };
        let ram_word = self.costs.ram_word;
        let (shard, proc) = (&mut self.shards[home], &mut self.processes[pid.index()]);
        let info = proc.page(page);
        info.referenced = true;
        if access == Access::Write {
            info.dirty = true;
        }
        // A touch rescues a page from any scheduled eviction.
        info.pending_eviction = false;
        info.relinquished = false;
        let locked = info.locked;
        // The page ends up resident and unprotected; if it also ends up on
        // the active list the fast-path invariant holds and the touch cache
        // may certify it. (Locked pages live on no list and stay uncached.)
        let on_active_list = match info.list {
            ListTag::Active => true,
            ListTag::Inactive => {
                info.list = ListTag::Active;
                shard.inactive_count -= 1;
                shard.active_count += 1;
                shard.active.push_back(key);
                true
            }
            ListTag::None => {
                if !locked {
                    info.list = ListTag::Active;
                    shard.active_count += 1;
                    shard.active.push_back(key);
                    true
                } else {
                    false
                }
            }
        };
        proc.last_touched = if on_active_list {
            page.number()
        } else {
            NO_TOUCH_CACHE
        };
        clock.advance(ram_word);
        outcome.events_queued = !proc.events.is_empty();
        outcome
    }

    /// Takes one frame on behalf of shard `home`, stealing from sibling
    /// shards under global pressure: the home shard's free pool and direct
    /// reclaim first, then the richest sibling's free pool, then direct
    /// reclaim on each sibling in index order (deterministic).
    ///
    /// # Panics
    ///
    /// Panics if no shard can supply a frame (every resident page locked).
    fn acquire_frame(&mut self, home: usize, clock: &mut Clock) {
        if self.shards[home].try_acquire(&mut self.processes, &self.costs, &self.tracer, clock) {
            return;
        }
        if self.shards.len() > 1 {
            // Steal the richest sibling's free frame (ties: lowest index).
            let mut best: Option<(usize, usize)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                if i != home
                    && shard.free_frames > 0
                    && best.is_none_or(|(free, _)| shard.free_frames > free)
                {
                    best = Some((shard.free_frames, i));
                }
            }
            if let Some((_, i)) = best {
                self.shards[i].free_frames -= 1;
                return;
            }
            // No free frame anywhere: direct-reclaim the siblings.
            for i in 0..self.shards.len() {
                if i == home {
                    continue;
                }
                if self.shards[i].try_acquire(&mut self.processes, &self.costs, &self.tracer, clock)
                {
                    return;
                }
            }
        }
        panic!("out of physical memory: no evictable pages remain");
    }

    /// Touches every page overlapping `[addr, addr + len)`.
    ///
    /// Returns the combined outcome (fields OR-ed together).
    pub fn touch_range(
        &mut self,
        pid: ProcessId,
        addr: u32,
        len: u32,
        access: Access,
        clock: &mut Clock,
    ) -> TouchOutcome {
        debug_assert!(len > 0);
        let first = VirtPage::containing(addr).number();
        let last = VirtPage::containing(addr + len - 1).number();
        let mut combined = TouchOutcome::default();
        for p in first..=last {
            let o = self.touch(pid, VirtPage::new(p), access, clock);
            combined.major_fault |= o.major_fault;
            combined.zero_filled |= o.zero_filled;
            combined.protection_fault |= o.protection_fault;
            combined.events_queued |= o.events_queued;
        }
        combined
    }

    /// `madvise(MADV_DONTNEED)`: discards pages without write-back.
    ///
    /// Resident frames are freed immediately; evicted copies are dropped.
    /// The contents do not survive — the next touch is a demand-zero fill.
    /// This is how collectors return empty heap pages to the system (§3.3.2).
    /// Locked pages are skipped.
    pub fn madvise_dontneed(&mut self, pid: ProcessId, pages: &[VirtPage], clock: &mut Clock) {
        clock.advance(self.costs.syscall);
        let home = self.shard_of(pid);
        for &page in pages {
            let (was_resident, was_locked, list) = {
                let info = self.processes[pid.index()].page(page);
                (info.is_resident(), info.locked, info.list)
            };
            if was_locked {
                continue;
            }
            let shard = &mut self.shards[home];
            match list {
                ListTag::Active => shard.active_count -= 1,
                ListTag::Inactive => shard.inactive_count -= 1,
                ListTag::None => {}
            }
            let proc = &mut self.processes[pid.index()];
            proc.forget_touch_cache(page);
            *proc.page(page) = PageInfo::default();
            proc.stats.discards += 1;
            if was_resident {
                proc.stats.note_nonresident();
                shard.free_frames += 1;
            }
            self.tracer.emit(
                pid.as_u32(),
                clock.now(),
                EventKind::Discard {
                    page: page.number(),
                },
            );
        }
    }

    /// `mlock`: makes a page resident and pins it (never evicted).
    ///
    /// Used by the `signalmem` pressure driver (§5.1: it maps a large array,
    /// touches the pages, "and then pins them in memory with mlock").
    pub fn mlock(&mut self, pid: ProcessId, page: VirtPage, clock: &mut Clock) {
        clock.advance(self.costs.syscall);
        self.touch(pid, page, Access::Write, clock);
        let home = self.shard_of(pid);
        self.processes[pid.index()].forget_touch_cache(page);
        let info = self.processes[pid.index()].page(page);
        if !info.locked {
            info.locked = true;
            // Locked pages live on neither LRU list.
            let list = info.list;
            info.list = ListTag::None;
            let shard = &mut self.shards[home];
            match list {
                ListTag::Active => shard.active_count -= 1,
                ListTag::Inactive => shard.inactive_count -= 1,
                ListTag::None => {}
            }
            self.processes[pid.index()].stats.locked += 1;
        }
    }

    /// `munlock`: unpins a page, returning it to the active list.
    pub fn munlock(&mut self, pid: ProcessId, page: VirtPage, clock: &mut Clock) {
        clock.advance(self.costs.syscall);
        let home = self.shard_of(pid);
        self.processes[pid.index()].forget_touch_cache(page);
        let info = self.processes[pid.index()].page(page);
        if info.locked {
            info.locked = false;
            let resident = info.is_resident();
            if resident {
                info.list = ListTag::Active;
                let shard = &mut self.shards[home];
                shard.active_count += 1;
                shard.active.push_back(PageKey { pid, page });
            }
            self.processes[pid.index()].stats.locked -= 1;
        }
    }

    /// `mprotect(PROT_NONE)` / restore: when `protect` is true, the next
    /// touch of each page raises a [`VmEvent::ProtectionFault`].
    ///
    /// BC protects pages after bookmark-scanning them so that a touch before
    /// the eviction completes cannot go unnoticed (§3.4).
    pub fn mprotect(
        &mut self,
        pid: ProcessId,
        pages: &[VirtPage],
        protect: bool,
        clock: &mut Clock,
    ) {
        clock.advance(self.costs.syscall);
        let proc = &mut self.processes[pid.index()];
        for &page in pages {
            proc.forget_touch_cache(page);
            proc.page(page).protected = protect;
        }
    }

    /// The paper's new system call: voluntarily surrenders pages.
    ///
    /// "This call allows user processes to voluntarily surrender a list of
    /// pages. The virtual memory manager places these relinquished pages at
    /// the end of the inactive queue from which they are quickly swapped
    /// out" (§3.4). Relinquished pages are evicted at the next reclaim pass
    /// (or immediately under direct reclaim) without a further notice.
    pub fn vm_relinquish(&mut self, pid: ProcessId, pages: &[VirtPage], clock: &mut Clock) {
        clock.advance(self.costs.syscall);
        let home = self.shard_of(pid);
        for &page in pages {
            let skip = {
                let info = self.processes[pid.index()].page(page);
                !info.is_resident() || info.locked
            };
            if skip {
                continue;
            }
            let list = {
                let proc = &mut self.processes[pid.index()];
                proc.forget_touch_cache(page);
                let info = proc.page(page);
                let list = info.list;
                info.relinquished = true;
                info.pending_eviction = false;
                info.referenced = false;
                info.list = ListTag::Inactive;
                list
            };
            let shard = &mut self.shards[home];
            match list {
                ListTag::Active => shard.active_count -= 1,
                ListTag::Inactive => shard.inactive_count -= 1,
                ListTag::None => {}
            }
            shard.inactive_count += 1;
            shard.relinquish_queue.push_back(PageKey { pid, page });
            self.processes[pid.index()].stats.relinquished += 1;
            self.tracer.emit(
                pid.as_u32(),
                clock.now(),
                EventKind::Relinquish {
                    page: page.number(),
                },
            );
        }
    }

    /// One background-reclaim pass (the `kswapd` analogue) over every
    /// shard, in index order.
    ///
    /// The driving engine calls this between mutator steps. For each shard
    /// whose free frames are below its low watermark the pass:
    ///
    /// 1. evicts relinquished pages,
    /// 2. evicts pages whose eviction notice was delivered at an *earlier*
    ///    pump (they had a grace period to be rescued or surrendered),
    /// 3. refills the inactive list from the active list via the clock
    ///    algorithm, and
    /// 4. walks the inactive FIFO: pages of non-notifying processes are
    ///    evicted on the spot; pages of notifying processes get an
    ///    [`VmEvent::EvictionScheduled`] notice and one pump of grace,
    ///
    /// stopping once free-plus-scheduled frames reach the shard's high
    /// watermark. If pressure has abated, leftover scheduled evictions are
    /// cancelled — the discarded pages substituted for the scheduled
    /// victims (§3.3.2).
    pub fn pump(&mut self, clock: &mut Clock) {
        for i in 0..self.shards.len() {
            self.shards[i].pump(&mut self.processes, &self.costs, &self.tracer, clock);
        }
    }

    /// Total resident pages across all processes (for invariant checks).
    pub fn total_resident(&self) -> usize {
        self.processes
            .iter()
            .map(|p| p.stats.resident as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Nanos;

    fn small_vmm(frames: usize) -> (Vmm, Clock) {
        let config = VmmConfig::builder()
            .frames(frames)
            .low_watermark(4)
            .high_watermark(8)
            .batch(4)
            .build();
        (Vmm::new(config, CostModel::default()), Clock::new())
    }

    /// Drains a process's mailbox into a fresh vector (test convenience).
    fn take(vmm: &mut Vmm, pid: ProcessId) -> Vec<VmEvent> {
        let mut out = Vec::new();
        vmm.drain_events_into(pid, &mut out);
        out
    }

    #[test]
    fn first_touch_is_demand_zero() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        let o = vmm.touch(pid, VirtPage::new(3), Access::Read, &mut clock);
        assert!(o.zero_filled && !o.major_fault);
        assert!(vmm.is_resident(pid, VirtPage::new(3)));
        assert_eq!(vmm.stats(pid).minor_faults, 1);
        assert_eq!(vmm.free_frames(), 31);
        // Second touch: no fault.
        let before = clock.now();
        let o = vmm.touch(pid, VirtPage::new(3), Access::Read, &mut clock);
        assert!(!o.zero_filled && !o.major_fault);
        assert_eq!(clock.now() - before, CostModel::default().ram_word);
    }

    #[test]
    fn frame_exhaustion_triggers_direct_reclaim_and_major_fault_on_return() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        for p in 0..20 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        // 20 pages touched with 16 frames: at least 4 evictions.
        assert!(vmm.stats(pid).evictions >= 4);
        // Find an evicted page and fault it back.
        let evicted = (0..20)
            .map(VirtPage::new)
            .find(|&p| vmm.page_state(pid, p) == PageState::Evicted)
            .expect("an evicted page");
        let before = vmm.stats(pid).major_faults;
        let o = vmm.touch(pid, evicted, Access::Read, &mut clock);
        assert!(o.major_fault);
        assert_eq!(vmm.stats(pid).major_faults, before + 1);
    }

    #[test]
    fn clock_algorithm_gives_second_chance_to_referenced_pages() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        for p in 0..16 {
            vmm.touch(pid, VirtPage::new(p), Access::Read, &mut clock);
        }
        // Keep page 0 hot while allocating new pages.
        for p in 16..32 {
            vmm.touch(pid, VirtPage::new(0), Access::Read, &mut clock);
            vmm.touch(pid, VirtPage::new(p), Access::Read, &mut clock);
        }
        assert!(
            vmm.is_resident(pid, VirtPage::new(0)),
            "hot page was evicted despite its referenced bit"
        );
    }

    #[test]
    fn mlocked_pages_are_never_evicted() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pin = vmm.register_process();
        let app = vmm.register_process();
        for p in 0..8 {
            vmm.mlock(pin, VirtPage::new(p), &mut clock);
        }
        for p in 0..32 {
            vmm.touch(app, VirtPage::new(p), Access::Write, &mut clock);
        }
        for p in 0..8 {
            assert!(
                vmm.is_resident(pin, VirtPage::new(p)),
                "locked page evicted"
            );
        }
        assert_eq!(vmm.stats(pin).evictions, 0);
        assert!(vmm.stats(app).evictions >= 24);
    }

    #[test]
    fn notifying_process_receives_notice_with_grace() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        // free = 2 < low watermark 4: pump schedules evictions with notices.
        vmm.pump(&mut clock);
        let events = take(&mut vmm, pid);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, VmEvent::EvictionScheduled { .. })),
            "expected eviction notices, got {events:?}"
        );
        assert!(vmm.stats(pid).notices > 0);
        // Nothing evicted yet (grace period).
        assert_eq!(vmm.stats(pid).evictions, 0);
        // Next pump follows through.
        vmm.pump(&mut clock);
        assert!(vmm.stats(pid).evictions > 0, "grace period never ended");
    }

    #[test]
    fn touch_rescues_page_from_scheduled_eviction() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        vmm.pump(&mut clock);
        let noticed: Vec<VirtPage> = take(&mut vmm, pid).into_iter().map(|e| e.page()).collect();
        assert!(!noticed.is_empty());
        for &p in &noticed {
            vmm.touch(pid, p, Access::Read, &mut clock);
        }
        vmm.pump(&mut clock);
        for &p in &noticed {
            assert!(
                vmm.is_resident(pid, p),
                "rescued page {p} was evicted anyway"
            );
        }
    }

    #[test]
    fn relinquished_pages_evict_first_without_notice() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        vmm.vm_relinquish(pid, &[VirtPage::new(2), VirtPage::new(5)], &mut clock);
        assert_eq!(vmm.stats(pid).relinquished, 2);
        vmm.pump(&mut clock);
        assert_eq!(vmm.page_state(pid, VirtPage::new(2)), PageState::Evicted);
        assert_eq!(vmm.page_state(pid, VirtPage::new(5)), PageState::Evicted);
        let events = take(&mut vmm, pid);
        assert!(!events
            .iter()
            .any(|e| matches!(e, VmEvent::EvictionScheduled { page } if *page == VirtPage::new(2) || *page == VirtPage::new(5))));
    }

    #[test]
    fn madvise_dontneed_frees_frames_and_zero_fills_on_return() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        vmm.touch(pid, VirtPage::new(1), Access::Write, &mut clock);
        let free_before = vmm.free_frames();
        vmm.madvise_dontneed(pid, &[VirtPage::new(1)], &mut clock);
        assert_eq!(vmm.free_frames(), free_before + 1);
        assert_eq!(vmm.page_state(pid, VirtPage::new(1)), PageState::Unmapped);
        let o = vmm.touch(pid, VirtPage::new(1), Access::Read, &mut clock);
        assert!(o.zero_filled, "discarded page must zero-fill on next touch");
        assert!(!o.major_fault, "discard must not write to swap");
    }

    #[test]
    fn mprotect_raises_fault_event_once() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        vmm.touch(pid, VirtPage::new(4), Access::Write, &mut clock);
        vmm.mprotect(pid, &[VirtPage::new(4)], true, &mut clock);
        let o = vmm.touch(pid, VirtPage::new(4), Access::Read, &mut clock);
        assert!(o.protection_fault);
        assert!(matches!(
            take(&mut vmm, pid).as_slice(),
            [VmEvent::ProtectionFault { page }] if *page == VirtPage::new(4)
        ));
        let o = vmm.touch(pid, VirtPage::new(4), Access::Read, &mut clock);
        assert!(!o.protection_fault);
    }

    #[test]
    fn reload_of_evicted_page_notifies_owner() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        vmm.vm_relinquish(pid, &[VirtPage::new(0)], &mut clock);
        vmm.pump(&mut clock);
        assert_eq!(vmm.page_state(pid, VirtPage::new(0)), PageState::Evicted);
        take(&mut vmm, pid);
        vmm.touch(pid, VirtPage::new(0), Access::Read, &mut clock);
        let events = take(&mut vmm, pid);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, VmEvent::MadeResident { page } if *page == VirtPage::new(0))),
            "expected MadeResident, got {events:?}"
        );
    }

    #[test]
    fn major_fault_charges_milliseconds() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        for p in 0..20 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        let evicted = (0..20)
            .map(VirtPage::new)
            .find(|&p| vmm.page_state(pid, p) == PageState::Evicted)
            .unwrap();
        let before = clock.now();
        vmm.touch(pid, evicted, Access::Read, &mut clock);
        assert!(clock.now() - before >= Nanos::from_millis(5));
    }

    #[test]
    fn pressure_relief_cancels_scheduled_evictions() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        vmm.pump(&mut clock);
        let noticed: Vec<VirtPage> = take(&mut vmm, pid)
            .iter()
            .map(super::super::events::VmEvent::page)
            .collect();
        assert!(!noticed.is_empty());
        let discard: Vec<VirtPage> = (0..14)
            .map(VirtPage::new)
            .filter(|p| !noticed.contains(p))
            .take(8)
            .collect();
        vmm.madvise_dontneed(pid, &discard, &mut clock);
        vmm.pump(&mut clock);
        vmm.pump(&mut clock);
        for &p in &noticed {
            assert!(
                vmm.is_resident(pid, p),
                "page {p} evicted even though pressure was relieved"
            );
        }
    }

    #[test]
    fn touch_range_spans_pages() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        // 100 bytes starting 50 bytes before a page boundary: 2 pages.
        let o = vmm.touch_range(pid, 4096 - 50, 100, Access::Write, &mut clock);
        assert!(o.zero_filled);
        assert!(vmm.is_resident(pid, VirtPage::new(0)));
        assert!(vmm.is_resident(pid, VirtPage::new(1)));
        assert!(!vmm.is_resident(pid, VirtPage::new(2)));
    }

    #[test]
    fn non_notifying_process_gets_no_events() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        for p in 0..20 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        vmm.pump(&mut clock);
        vmm.pump(&mut clock);
        assert!(take(&mut vmm, pid).is_empty());
        assert_eq!(vmm.stats(pid).notices, 0);
        assert!(vmm.stats(pid).evictions > 0);
    }

    #[test]
    fn repeat_touch_fast_path_charges_one_ram_word_and_no_list_churn() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        vmm.touch(pid, VirtPage::new(7), Access::Write, &mut clock);
        // The page is now resident, unprotected, and on the active list.
        let raw_len = vmm.shards[0].active.raw_len();
        let active = vmm.shards[0].active_count;
        let inactive = vmm.shards[0].inactive_count;
        let before = clock.now();
        let o = vmm.touch(pid, VirtPage::new(7), Access::Read, &mut clock);
        assert_eq!(clock.now() - before, CostModel::default().ram_word);
        assert!(!o.zero_filled && !o.major_fault && !o.protection_fault);
        assert_eq!(
            vmm.shards[0].active.raw_len(),
            raw_len,
            "fast path re-queued the page"
        );
        assert_eq!(vmm.shards[0].active_count, active);
        assert_eq!(vmm.shards[0].inactive_count, inactive);
        // And again via the last-touched cache: same cost, same lists.
        let before = clock.now();
        vmm.touch(pid, VirtPage::new(7), Access::Read, &mut clock);
        assert_eq!(clock.now() - before, CostModel::default().ram_word);
        assert_eq!(vmm.shards[0].active.raw_len(), raw_len);
    }

    #[test]
    fn touch_counter_counts_every_access() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        for _ in 0..5 {
            vmm.touch(pid, VirtPage::new(0), Access::Read, &mut clock);
        }
        vmm.touch(pid, VirtPage::new(1), Access::Write, &mut clock);
        assert_eq!(vmm.stats(pid).touches, 6);
    }

    #[test]
    fn mprotect_invalidates_touch_cache() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        // Prime the last-touched cache on page 4, then protect it.
        vmm.touch(pid, VirtPage::new(4), Access::Write, &mut clock);
        vmm.touch(pid, VirtPage::new(4), Access::Read, &mut clock);
        vmm.mprotect(pid, &[VirtPage::new(4)], true, &mut clock);
        let o = vmm.touch(pid, VirtPage::new(4), Access::Read, &mut clock);
        assert!(
            o.protection_fault,
            "cached fast path skipped the protection check"
        );
    }

    #[test]
    fn relinquish_invalidates_touch_cache() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        // Prime the cache on page 3, relinquish it, then touch it again:
        // the slow path must run so the rescue clears `relinquished`.
        vmm.touch(pid, VirtPage::new(3), Access::Read, &mut clock);
        vmm.touch(pid, VirtPage::new(3), Access::Read, &mut clock);
        vmm.vm_relinquish(pid, &[VirtPage::new(3)], &mut clock);
        vmm.touch(pid, VirtPage::new(3), Access::Read, &mut clock);
        vmm.pump(&mut clock);
        assert!(
            vmm.is_resident(pid, VirtPage::new(3)),
            "relinquished page evicted despite the rescuing touch"
        );
        assert_eq!(vmm.stats(pid).evictions, 0);
    }

    #[test]
    fn eviction_invalidates_touch_cache() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        // Prime the cache on the page most likely to be evicted (page 0,
        // coldest), then overflow memory so it gets swapped out.
        vmm.touch(pid, VirtPage::new(0), Access::Write, &mut clock);
        vmm.touch(pid, VirtPage::new(0), Access::Read, &mut clock);
        for p in 1..32 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        let evicted = (0..32)
            .map(VirtPage::new)
            .find(|&p| vmm.page_state(pid, p) == PageState::Evicted)
            .expect("an evicted page");
        let before = vmm.stats(pid).major_faults;
        let o = vmm.touch(pid, evicted, Access::Read, &mut clock);
        assert!(o.major_fault, "evicted page must fault on touch");
        assert_eq!(vmm.stats(pid).major_faults, before + 1);
    }

    #[test]
    fn registration_survives_the_old_u8_boundary() {
        // Before the u32 widening the process table wrapped (silently
        // truncating ids) at 256 entries; registering past that boundary
        // must now hand out distinct, working ids.
        let config = VmmConfig::builder().frames(4096).build();
        let mut vmm = Vmm::new(config, CostModel::default());
        let mut clock = Clock::new();
        let pids: Vec<ProcessId> = (0..300).map(|_| vmm.register_process()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            assert_eq!(pid.index(), i, "ids must be dense and distinct");
        }
        // The tenants past the boundary are fully functional.
        for &pid in &pids[250..] {
            let o = vmm.touch(pid, VirtPage::new(0), Access::Write, &mut clock);
            assert!(o.zero_filled);
            assert_eq!(vmm.stats(pid).touches, 1);
        }
        assert_eq!(
            vmm.stats(pids[299]).resident,
            1,
            "per-process stats must not alias across the old boundary"
        );
    }

    #[test]
    fn notification_queue_visits_only_processes_with_events() {
        let (mut vmm, mut clock) = small_vmm(64);
        // Many idle tenants around one busy notifying tenant.
        let pids: Vec<ProcessId> = (0..32).map(|_| vmm.register_process()).collect();
        let busy = pids[5];
        vmm.register_notifications(busy);
        for p in 0..62 {
            vmm.touch(busy, VirtPage::new(p), Access::Write, &mut clock);
        }
        // Push the busy tenant's pages out: pump under pressure until a
        // notice lands.
        for _ in 0..4 {
            vmm.pump(&mut clock);
        }
        assert!(vmm.has_events(busy), "pressure never produced a notice");
        let mut visited = Vec::new();
        let mut scratch = Vec::new();
        while let Some(pid) = vmm.next_notified() {
            visited.push(pid);
            vmm.drain_events_into(pid, &mut scratch);
        }
        assert_eq!(
            visited,
            vec![busy],
            "delivery must visit only the process with events, once"
        );
        assert!(!scratch.is_empty());
        // Draining directly leaves a stale queue entry; it must be skipped.
        for p in 62..80 {
            vmm.touch(busy, VirtPage::new(p), Access::Write, &mut clock);
        }
        vmm.pump(&mut clock);
        if vmm.has_events(busy) {
            scratch.clear();
            vmm.drain_events_into(busy, &mut scratch);
            assert_eq!(vmm.next_notified(), None, "stale entry must be skipped");
        }
    }

    #[test]
    fn sharded_vmm_steals_frames_under_global_pressure() {
        // Two shards, 32 frames each. The shard-0 tenant's working set
        // (56 pages, all locked so shard 0 can never reclaim locally)
        // exceeds its partition: the overflow must be satisfied by
        // stealing shard 1's free frames rather than panicking.
        let config = VmmConfig::builder()
            .frames(64)
            .low_watermark(2)
            .high_watermark(4)
            .batch(4)
            .shards(2)
            .build();
        let mut vmm = Vmm::new(config, CostModel::default());
        let mut clock = Clock::new();
        let a = vmm.register_process(); // shard 0
        let _b = vmm.register_process(); // shard 1 (idle)
        for p in 0..56 {
            vmm.mlock(a, VirtPage::new(p), &mut clock);
        }
        assert_eq!(vmm.stats(a).resident, 56);
        assert_eq!(vmm.stats(a).evictions, 0, "locked pages must not evict");
        assert_eq!(vmm.free_frames(), 8);
    }

    #[test]
    fn sharded_vmm_reclaims_sibling_shards_when_no_free_frames_remain() {
        // Shard 0's tenant locks most of its partition; shard 1's tenant
        // fills the rest of physical memory with evictable pages. Further
        // shard-0 allocations must direct-reclaim shard 1's pages.
        let config = VmmConfig::builder()
            .frames(64)
            .low_watermark(2)
            .high_watermark(4)
            .batch(4)
            .shards(2)
            .build();
        let mut vmm = Vmm::new(config, CostModel::default());
        let mut clock = Clock::new();
        let a = vmm.register_process(); // shard 0
        let b = vmm.register_process(); // shard 1
        for p in 0..60 {
            vmm.touch(b, VirtPage::new(p), Access::Write, &mut clock);
        }
        for p in 0..16 {
            vmm.touch(a, VirtPage::new(p), Access::Write, &mut clock);
        }
        assert_eq!(vmm.stats(a).resident, 16, "shard 0 tenant must progress");
        assert!(
            vmm.stats(b).evictions > 0,
            "overflow must be served by reclaiming the sibling shard"
        );
        assert_eq!(vmm.stats(a).evictions, 0);
    }
}

#[cfg(test)]
mod race_tests {
    use super::*;
    use crate::page::{Access, PageState, VirtPage};
    use simtime::CostModel;

    fn vmm16() -> (Vmm, Clock) {
        let config = VmmConfig::builder()
            .frames(16)
            .low_watermark(4)
            .high_watermark(8)
            .build();
        (Vmm::new(config, CostModel::default()), Clock::new())
    }

    fn take(vmm: &mut Vmm, pid: ProcessId) -> Vec<VmEvent> {
        let mut out = Vec::new();
        vmm.drain_events_into(pid, &mut out);
        out
    }

    /// The §3.4 race guard: a relinquished-and-protected page touched
    /// before its eviction raises a protection fault, is rescued, and is
    /// never evicted behind the toucher's back.
    #[test]
    fn protected_relinquished_page_touched_before_eviction_is_rescued() {
        let (mut vmm, mut clock) = vmm16();
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..10 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        // BC's sequence: protect, then relinquish.
        vmm.mprotect(pid, &[VirtPage::new(3)], true, &mut clock);
        vmm.vm_relinquish(pid, &[VirtPage::new(3)], &mut clock);
        // The mutator wins the race: it touches before any reclaim pass.
        let o = vmm.touch(pid, VirtPage::new(3), Access::Read, &mut clock);
        assert!(o.protection_fault, "the guard must fire");
        assert!(!o.major_fault, "the page never left memory");
        // Even under subsequent pressure the rescued page stays put until
        // the LRU genuinely ages it out again.
        vmm.pump(&mut clock);
        assert_eq!(vmm.page_state(pid, VirtPage::new(3)), PageState::Resident);
    }

    /// Eviction clears the protection: a reload is a plain major fault plus
    /// a MadeResident notification, not a protection fault.
    #[test]
    fn protection_does_not_survive_eviction() {
        let (mut vmm, mut clock) = vmm16();
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..10 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        vmm.mprotect(pid, &[VirtPage::new(5)], true, &mut clock);
        vmm.vm_relinquish(pid, &[VirtPage::new(5)], &mut clock);
        // Create pressure so the reclaim pass actually runs.
        for p in 10..14 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
        }
        vmm.pump(&mut clock);
        assert_eq!(vmm.page_state(pid, VirtPage::new(5)), PageState::Evicted);
        take(&mut vmm, pid);
        let o = vmm.touch(pid, VirtPage::new(5), Access::Read, &mut clock);
        assert!(o.major_fault);
        assert!(!o.protection_fault);
        let events = take(&mut vmm, pid);
        assert!(events
            .iter()
            .any(|e| matches!(e, VmEvent::MadeResident { page } if *page == VirtPage::new(5))));
    }

    /// Every eviction of a registered process's page produces an event
    /// (§4.1): nothing leaves memory silently.
    #[test]
    fn no_silent_evictions_for_registered_processes() {
        let (mut vmm, mut clock) = vmm16();
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..24 {
            vmm.touch(pid, VirtPage::new(p), Access::Write, &mut clock);
            vmm.pump(&mut clock);
        }
        for _ in 0..4 {
            vmm.pump(&mut clock);
        }
        let evictions = vmm.stats(pid).evictions;
        assert!(evictions > 0);
        let evicted_events = take(&mut vmm, pid)
            .iter()
            .filter(|e| matches!(e, VmEvent::Evicted { .. }))
            .count() as u64;
        assert_eq!(
            evicted_events, evictions,
            "every eviction must be announced"
        );
    }
}
