//! The virtual memory manager proper.

use std::collections::VecDeque;

use simtime::{Clock, CostModel};
use telemetry::{EventKind, Tracer};

use crate::config::VmmConfig;
use crate::events::VmEvent;
use crate::lists::LazyQueue;
use crate::page::{
    Access, ListTag, PageInfo, PageKey, PageState, ProcessId, TouchOutcome, VirtPage,
};
use crate::stats::VmStats;

/// Sentinel for [`Process::last_touched`]: no page is cached.
const NO_TOUCH_CACHE: u32 = u32::MAX;

/// One simulated process known to the manager.
#[derive(Debug)]
struct Process {
    /// Dense page table indexed by virtual page number.
    pages: Vec<PageInfo>,
    /// Whether this process registered for paging notifications (§4.1:
    /// "When the application begins, it registers itself with the operating
    /// system so that it will receive notification of paging events").
    notify: bool,
    /// The queued real-time-signal mailbox.
    events: VecDeque<VmEvent>,
    stats: VmStats,
    /// The page number of the most recent fast-path touch, or
    /// [`NO_TOUCH_CACHE`]. While set, the page is guaranteed resident,
    /// unprotected, and on the active list, so consecutive touches to the
    /// same page skip every state check. Any operation that could break
    /// that invariant must call [`Process::forget_touch_cache`].
    last_touched: u32,
}

impl Default for Process {
    fn default() -> Process {
        Process {
            pages: Vec::new(),
            notify: false,
            events: VecDeque::new(),
            stats: VmStats::default(),
            last_touched: NO_TOUCH_CACHE,
        }
    }
}

impl Process {
    fn page(&mut self, page: VirtPage) -> &mut PageInfo {
        let idx = page.0 as usize;
        if idx >= self.pages.len() {
            self.pages.resize(idx + 1, PageInfo::default());
        }
        &mut self.pages[idx]
    }

    fn page_ref(&self, page: VirtPage) -> Option<&PageInfo> {
        self.pages.get(page.0 as usize)
    }

    /// Drops the consecutive-touch cache if it refers to `page`.
    fn forget_touch_cache(&mut self, page: VirtPage) {
        if self.last_touched == page.0 {
            self.last_touched = NO_TOUCH_CACHE;
        }
    }
}

/// The simulated virtual memory manager.
///
/// See the [crate docs](crate) for the model. All state mutation goes through
/// a small set of entry points — [`touch`](Vmm::touch), [`pump`](Vmm::pump),
/// and the cooperation system calls — each of which charges simulated time to
/// the caller's [`Clock`].
#[derive(Debug)]
pub struct Vmm {
    config: VmmConfig,
    costs: CostModel,
    processes: Vec<Process>,
    free_frames: usize,
    active: LazyQueue,
    inactive: LazyQueue,
    /// Live-entry counts (the lazy queues may hold stale duplicates).
    active_count: usize,
    inactive_count: usize,
    /// Pages awaiting eviction after a notice, with the pump sequence number
    /// at which the notice was sent; they get one full pump of grace.
    pending: VecDeque<(PageKey, u64)>,
    /// Pages surrendered via `vm_relinquish`: first in line for eviction.
    relinquish_queue: VecDeque<PageKey>,
    pump_seq: u64,
    /// Structured-event sink shared with the collectors (disabled by
    /// default: emitting is then a single branch).
    tracer: Tracer,
}

impl Vmm {
    /// Creates a manager with `config.frames` physical frames, all free.
    pub fn new(config: VmmConfig, costs: CostModel) -> Vmm {
        Vmm {
            free_frames: config.frames,
            config,
            costs,
            processes: Vec::new(),
            active: LazyQueue::new(),
            inactive: LazyQueue::new(),
            active_count: 0,
            inactive_count: 0,
            pending: VecDeque::new(),
            relinquish_queue: VecDeque::new(),
            pump_seq: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the telemetry tracer; VMM-side events (faults, evictions,
    /// discards, relinquishments, protection traps) are stamped with the
    /// owning process's id and the acting clock's simulated time.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Registers a new process and returns its id.
    ///
    /// # Panics
    ///
    /// Panics after 255 processes.
    pub fn register_process(&mut self) -> ProcessId {
        assert!(
            self.processes.len() < u8::MAX as usize,
            "too many processes"
        );
        self.processes.push(Process::default());
        ProcessId((self.processes.len() - 1) as u8)
    }

    /// Opts `pid` into paging-event notifications (eviction notices,
    /// residency notices, protection faults). The bookmarking collector
    /// registers; the oblivious baseline collectors do not.
    pub fn register_notifications(&mut self, pid: ProcessId) {
        self.processes[pid.0 as usize].notify = true;
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The configuration in force.
    pub fn config(&self) -> &VmmConfig {
        &self.config
    }

    /// Currently free physical frames.
    pub fn free_frames(&self) -> usize {
        self.free_frames
    }

    /// Whether background reclaim would run at the next [`pump`](Vmm::pump).
    pub fn under_pressure(&self) -> bool {
        self.free_frames < self.config.low_watermark
    }

    /// Paging statistics for `pid`.
    pub fn stats(&self, pid: ProcessId) -> &VmStats {
        &self.processes[pid.0 as usize].stats
    }

    /// Residency state of a page.
    pub fn page_state(&self, pid: ProcessId, page: VirtPage) -> PageState {
        self.processes[pid.0 as usize]
            .page_ref(page)
            .map(|p| p.state)
            .unwrap_or(PageState::Unmapped)
    }

    /// Whether a page is backed by a physical frame (the `mincore` analogue).
    pub fn is_resident(&self, pid: ProcessId, page: VirtPage) -> bool {
        self.page_state(pid, page) == PageState::Resident
    }

    /// Drains the queued notifications for `pid`.
    pub fn take_events(&mut self, pid: ProcessId) -> Vec<VmEvent> {
        self.processes[pid.0 as usize].events.drain(..).collect()
    }

    /// Whether `pid` has notifications waiting.
    pub fn has_events(&self, pid: ProcessId) -> bool {
        !self.processes[pid.0 as usize].events.is_empty()
    }

    /// Touches one page, simulating the MMU and fault paths.
    ///
    /// * Unmapped page: demand-zero fill (minor fault; the caller must zero
    ///   its backing store — see [`TouchOutcome::zero_filled`]).
    /// * Evicted page: major fault, ~5 ms by default; queues
    ///   [`VmEvent::MadeResident`] for notifying owners.
    /// * Protected page: queues [`VmEvent::ProtectionFault`], removes the
    ///   protection, and proceeds.
    /// * Pending-eviction page: the touch rescues it ("BC touches the page
    ///   that has been scheduled in order to prevent its eviction", §3.4).
    ///
    /// The touch sets the referenced bit and, for writes, the dirty bit, and
    /// promotes inactive pages to the active list.
    /// The overwhelmingly common case — the page is resident, unprotected,
    /// and already on the active list — is a single page-info lookup, one
    /// clock advance, and an early return; every other case takes the
    /// outlined [`touch_slow`](Vmm::touch_slow) path.
    pub fn touch(
        &mut self,
        pid: ProcessId,
        page: VirtPage,
        access: Access,
        clock: &mut Clock,
    ) -> TouchOutcome {
        let ram_word = self.costs.ram_word;
        let proc = &mut self.processes[pid.0 as usize];
        proc.stats.touches += 1;
        // Consecutive touches to the same page: the cache certifies the
        // fast-path invariant, so skip even the state checks. The cached
        // page always has `pending_eviction`/`relinquished` clear (both
        // setters move the page to the inactive list and drop the cache).
        if proc.last_touched == page.0 {
            let info = &mut proc.pages[page.0 as usize];
            debug_assert!(
                info.state == PageState::Resident
                    && !info.protected
                    && info.list == ListTag::Active,
                "stale touch cache for {page}"
            );
            info.referenced = true;
            if access == Access::Write {
                info.dirty = true;
            }
            clock.advance(ram_word);
            return TouchOutcome {
                events_queued: !proc.events.is_empty(),
                ..TouchOutcome::default()
            };
        }
        if let Some(info) = proc.pages.get_mut(page.0 as usize) {
            if info.state == PageState::Resident && !info.protected && info.list == ListTag::Active
            {
                info.referenced = true;
                if access == Access::Write {
                    info.dirty = true;
                }
                // A touch rescues a page from any scheduled eviction.
                info.pending_eviction = false;
                info.relinquished = false;
                proc.last_touched = page.0;
                clock.advance(ram_word);
                return TouchOutcome {
                    events_queued: !proc.events.is_empty(),
                    ..TouchOutcome::default()
                };
            }
        }
        self.touch_slow(pid, page, access, clock)
    }

    /// The uncommon touch cases: faults (demand-zero, major), protection
    /// traps, and list promotion. Outlined so the fast path above stays
    /// small enough to inline.
    #[cold]
    #[inline(never)]
    fn touch_slow(
        &mut self,
        pid: ProcessId,
        page: VirtPage,
        access: Access,
        clock: &mut Clock,
    ) -> TouchOutcome {
        let mut outcome = TouchOutcome::default();
        let state = self.processes[pid.0 as usize].page(page).state;
        match state {
            PageState::Resident => {}
            PageState::Unmapped => {
                self.acquire_frame(clock);
                let proc = &mut self.processes[pid.0 as usize];
                proc.page(page).state = PageState::Resident;
                proc.stats.minor_faults += 1;
                proc.stats.note_resident();
                clock.advance(self.costs.minor_fault);
                outcome.zero_filled = true;
                self.tracer.emit(
                    pid.0,
                    clock.now(),
                    EventKind::Fault {
                        page: page.0,
                        major: false,
                    },
                );
            }
            PageState::Evicted => {
                self.acquire_frame(clock);
                let proc = &mut self.processes[pid.0 as usize];
                let info = proc.page(page);
                info.state = PageState::Resident;
                info.dirty = false;
                proc.stats.major_faults += 1;
                proc.stats.note_resident();
                clock.advance(self.costs.major_fault);
                outcome.major_fault = true;
                if proc.notify {
                    proc.events.push_back(VmEvent::MadeResident { page });
                }
                self.tracer.emit(
                    pid.0,
                    clock.now(),
                    EventKind::Fault {
                        page: page.0,
                        major: true,
                    },
                );
                self.tracer
                    .emit(pid.0, clock.now(), EventKind::MadeResident { page: page.0 });
            }
        }
        {
            let proc = &mut self.processes[pid.0 as usize];
            if proc.page(page).protected {
                proc.page(page).protected = false;
                proc.stats.minor_faults += 1;
                clock.advance(self.costs.minor_fault);
                outcome.protection_fault = true;
                if proc.notify {
                    proc.events.push_back(VmEvent::ProtectionFault { page });
                }
                self.tracer.emit(
                    pid.0,
                    clock.now(),
                    EventKind::ProtectionTrap { page: page.0 },
                );
            }
        }
        let key = PageKey { pid, page };
        let ram_word = self.costs.ram_word;
        let proc = &mut self.processes[pid.0 as usize];
        let info = proc.page(page);
        info.referenced = true;
        if access == Access::Write {
            info.dirty = true;
        }
        // A touch rescues a page from any scheduled eviction.
        info.pending_eviction = false;
        info.relinquished = false;
        let locked = info.locked;
        // The page ends up resident and unprotected; if it also ends up on
        // the active list the fast-path invariant holds and the touch cache
        // may certify it. (Locked pages live on no list and stay uncached.)
        let on_active_list = match info.list {
            ListTag::Active => true,
            ListTag::Inactive => {
                info.list = ListTag::Active;
                self.inactive_count -= 1;
                self.active_count += 1;
                self.active.push_back(key);
                true
            }
            ListTag::None => {
                if !locked {
                    info.list = ListTag::Active;
                    self.active_count += 1;
                    self.active.push_back(key);
                    true
                } else {
                    false
                }
            }
        };
        proc.last_touched = if on_active_list {
            page.0
        } else {
            NO_TOUCH_CACHE
        };
        clock.advance(ram_word);
        outcome.events_queued = !proc.events.is_empty();
        outcome
    }

    /// Touches every page overlapping `[addr, addr + len)`.
    ///
    /// Returns the combined outcome (fields OR-ed together).
    pub fn touch_range(
        &mut self,
        pid: ProcessId,
        addr: u32,
        len: u32,
        access: Access,
        clock: &mut Clock,
    ) -> TouchOutcome {
        debug_assert!(len > 0);
        let first = VirtPage::containing(addr).0;
        let last = VirtPage::containing(addr + len - 1).0;
        let mut combined = TouchOutcome::default();
        for p in first..=last {
            let o = self.touch(pid, VirtPage(p), access, clock);
            combined.major_fault |= o.major_fault;
            combined.zero_filled |= o.zero_filled;
            combined.protection_fault |= o.protection_fault;
            combined.events_queued |= o.events_queued;
        }
        combined
    }

    /// `madvise(MADV_DONTNEED)`: discards pages without write-back.
    ///
    /// Resident frames are freed immediately; evicted copies are dropped.
    /// The contents do not survive — the next touch is a demand-zero fill.
    /// This is how collectors return empty heap pages to the system (§3.3.2).
    /// Locked pages are skipped.
    pub fn madvise_dontneed(&mut self, pid: ProcessId, pages: &[VirtPage], clock: &mut Clock) {
        clock.advance(self.costs.syscall);
        for &page in pages {
            let (was_resident, was_locked, list) = {
                let info = self.processes[pid.0 as usize].page(page);
                (info.is_resident(), info.locked, info.list)
            };
            if was_locked {
                continue;
            }
            match list {
                ListTag::Active => self.active_count -= 1,
                ListTag::Inactive => self.inactive_count -= 1,
                ListTag::None => {}
            }
            let proc = &mut self.processes[pid.0 as usize];
            proc.forget_touch_cache(page);
            *proc.page(page) = PageInfo::default();
            proc.stats.discards += 1;
            if was_resident {
                proc.stats.note_nonresident();
                self.free_frames += 1;
            }
            self.tracer
                .emit(pid.0, clock.now(), EventKind::Discard { page: page.0 });
        }
    }

    /// `mlock`: makes a page resident and pins it (never evicted).
    ///
    /// Used by the `signalmem` pressure driver (§5.1: it maps a large array,
    /// touches the pages, "and then pins them in memory with mlock").
    pub fn mlock(&mut self, pid: ProcessId, page: VirtPage, clock: &mut Clock) {
        clock.advance(self.costs.syscall);
        self.touch(pid, page, Access::Write, clock);
        self.processes[pid.0 as usize].forget_touch_cache(page);
        let info = self.processes[pid.0 as usize].page(page);
        if !info.locked {
            info.locked = true;
            // Locked pages live on neither LRU list.
            let list = info.list;
            info.list = ListTag::None;
            match list {
                ListTag::Active => self.active_count -= 1,
                ListTag::Inactive => self.inactive_count -= 1,
                ListTag::None => {}
            }
            self.processes[pid.0 as usize].stats.locked += 1;
        }
    }

    /// `munlock`: unpins a page, returning it to the active list.
    pub fn munlock(&mut self, pid: ProcessId, page: VirtPage, clock: &mut Clock) {
        clock.advance(self.costs.syscall);
        self.processes[pid.0 as usize].forget_touch_cache(page);
        let info = self.processes[pid.0 as usize].page(page);
        if info.locked {
            info.locked = false;
            let resident = info.is_resident();
            if resident {
                info.list = ListTag::Active;
                self.active_count += 1;
                self.active.push_back(PageKey { pid, page });
            }
            self.processes[pid.0 as usize].stats.locked -= 1;
        }
    }

    /// `mprotect(PROT_NONE)` / restore: when `protect` is true, the next
    /// touch of each page raises a [`VmEvent::ProtectionFault`].
    ///
    /// BC protects pages after bookmark-scanning them so that a touch before
    /// the eviction completes cannot go unnoticed (§3.4).
    pub fn mprotect(
        &mut self,
        pid: ProcessId,
        pages: &[VirtPage],
        protect: bool,
        clock: &mut Clock,
    ) {
        clock.advance(self.costs.syscall);
        let proc = &mut self.processes[pid.0 as usize];
        for &page in pages {
            proc.forget_touch_cache(page);
            proc.page(page).protected = protect;
        }
    }

    /// The paper's new system call: voluntarily surrenders pages.
    ///
    /// "This call allows user processes to voluntarily surrender a list of
    /// pages. The virtual memory manager places these relinquished pages at
    /// the end of the inactive queue from which they are quickly swapped
    /// out" (§3.4). Relinquished pages are evicted at the next reclaim pass
    /// (or immediately under direct reclaim) without a further notice.
    pub fn vm_relinquish(&mut self, pid: ProcessId, pages: &[VirtPage], clock: &mut Clock) {
        clock.advance(self.costs.syscall);
        for &page in pages {
            let skip = {
                let info = self.processes[pid.0 as usize].page(page);
                !info.is_resident() || info.locked
            };
            if skip {
                continue;
            }
            let list = {
                let proc = &mut self.processes[pid.0 as usize];
                proc.forget_touch_cache(page);
                let info = proc.page(page);
                let list = info.list;
                info.relinquished = true;
                info.pending_eviction = false;
                info.referenced = false;
                info.list = ListTag::Inactive;
                list
            };
            match list {
                ListTag::Active => self.active_count -= 1,
                ListTag::Inactive => self.inactive_count -= 1,
                ListTag::None => {}
            }
            self.inactive_count += 1;
            self.relinquish_queue.push_back(PageKey { pid, page });
            self.processes[pid.0 as usize].stats.relinquished += 1;
            self.tracer
                .emit(pid.0, clock.now(), EventKind::Relinquish { page: page.0 });
        }
    }

    /// One background-reclaim pass (the `kswapd` analogue).
    ///
    /// The driving engine calls this between mutator steps. When free frames
    /// are below the low watermark the pass:
    ///
    /// 1. evicts relinquished pages,
    /// 2. evicts pages whose eviction notice was delivered at an *earlier*
    ///    pump (they had a grace period to be rescued or surrendered),
    /// 3. refills the inactive list from the active list via the clock
    ///    algorithm, and
    /// 4. walks the inactive FIFO: pages of non-notifying processes are
    ///    evicted on the spot; pages of notifying processes get an
    ///    [`VmEvent::EvictionScheduled`] notice and one pump of grace,
    ///
    /// stopping once free-plus-scheduled frames reach the high watermark.
    /// If pressure has abated, leftover scheduled evictions are cancelled —
    /// the discarded pages substituted for the scheduled victims (§3.3.2).
    pub fn pump(&mut self, clock: &mut Clock) {
        self.pump_seq += 1;
        if self.free_frames >= self.config.low_watermark {
            self.cancel_pending();
            return;
        }
        let target = self.config.high_watermark;
        // Phase 1: relinquished pages are first in line.
        while self.free_frames < target {
            let Some(key) = self.relinquish_queue.pop_front() else {
                break;
            };
            if self.page_flag(key, |p| p.relinquished && p.evictable()) {
                self.evict(key, clock, false);
            }
        }
        // Phase 2: pending evictions past their grace period.
        let seq = self.pump_seq;
        while self.free_frames < target {
            match self.pending.front() {
                Some(&(_, noticed_at)) if noticed_at < seq => {}
                _ => break,
            }
            let (key, _) = self.pending.pop_front().unwrap();
            if self.page_flag(key, |p| p.pending_eviction && p.evictable()) {
                self.evict(key, clock, false);
            }
        }
        // Phase 3 + 4: refill inactive, then scan it.
        let mut scheduled = 0usize;
        let mut scan_budget = self.config.batch * 4;
        while self.free_frames + scheduled < target && scan_budget > 0 {
            scan_budget -= 1;
            self.refill_inactive();
            let Some(key) = self.pop_inactive() else {
                break;
            };
            if !self.processes[key.pid.0 as usize].notify {
                self.evict(key, clock, false);
                continue;
            }
            // Notifying process: queue a notice, give one pump of grace.
            {
                let info = self.processes[key.pid.0 as usize].page(key.page);
                info.pending_eviction = true;
                // Keep an inactive tag so a rescue-touch repromotes cleanly.
                info.list = ListTag::Inactive;
            }
            self.inactive_count += 1;
            self.pending.push_back((key, seq));
            let proc = &mut self.processes[key.pid.0 as usize];
            proc.stats.notices += 1;
            proc.events
                .push_back(VmEvent::EvictionScheduled { page: key.page });
            clock.advance(self.costs.notification);
            self.tracer.emit(
                key.pid.0,
                clock.now(),
                EventKind::EvictionScheduled { page: key.page.0 },
            );
            scheduled += 1;
        }
    }

    /// Direct reclaim: synchronously frees one frame when allocation finds
    /// none free. Preference order: relinquished pages, pages past their
    /// notice grace, then the inactive tail — where even a notifying
    /// process's page may be *hard-evicted* (notice delivered after the
    /// fact), modelling the kernel running ahead of the collector (§3.4.3).
    fn acquire_frame(&mut self, clock: &mut Clock) {
        if self.free_frames == 0 {
            self.direct_reclaim(clock);
        }
        assert!(
            self.free_frames > 0,
            "out of physical memory: every frame is locked or in use"
        );
        self.free_frames -= 1;
    }

    fn direct_reclaim(&mut self, clock: &mut Clock) {
        // Relinquished pages first.
        while self.free_frames == 0 {
            let Some(key) = self.relinquish_queue.pop_front() else {
                break;
            };
            if self.page_flag(key, |p| p.relinquished && p.evictable()) {
                self.evict(key, clock, false);
            }
        }
        // Then pages whose notice has been delivered (even this pump: the
        // kernel cannot wait under direct reclaim).
        while self.free_frames == 0 {
            let Some((key, _)) = self.pending.pop_front() else {
                break;
            };
            if self.page_flag(key, |p| p.pending_eviction && p.evictable()) {
                self.evict(key, clock, false);
            }
        }
        // Finally the inactive tail, hard-evicting if necessary. Several
        // clock passes may be needed: the first pass over a hot working
        // set only clears referenced bits (second chance), so allow enough
        // scans to age every resident page before declaring OOM.
        let mut empty_scans = 0usize;
        while self.free_frames == 0 {
            self.refill_inactive();
            let Some(key) = self.pop_inactive() else {
                empty_scans += 1;
                assert!(
                    empty_scans < 256,
                    "out of physical memory: no evictable pages remain"
                );
                continue;
            };
            let hard = self.processes[key.pid.0 as usize].notify;
            self.evict(key, clock, hard);
        }
    }

    /// Moves unreferenced active pages to the inactive list (clock pass).
    fn refill_inactive(&mut self) {
        let want = (self.config.batch * 2).max(self.config.high_watermark);
        if self.inactive_count >= want {
            return;
        }
        let mut scanned = 0;
        while self.inactive_count < want && scanned < self.config.clock_scan_limit {
            scanned += 1;
            let key = {
                let procs = &self.processes;
                match self.active.pop_front_valid(|k| {
                    procs[k.pid.0 as usize]
                        .page_ref(k.page)
                        .map(|p| p.list == ListTag::Active)
                        .unwrap_or(false)
                }) {
                    Some(k) => k,
                    None => break,
                }
            };
            let (evictable, referenced) = {
                let info = self.processes[key.pid.0 as usize].page(key.page);
                (info.evictable(), info.referenced)
            };
            if !evictable {
                let proc = &mut self.processes[key.pid.0 as usize];
                proc.forget_touch_cache(key.page);
                proc.page(key.page).list = ListTag::None;
                self.active_count -= 1;
                continue;
            }
            if referenced {
                // Second chance. (The touch cache stays valid: the page
                // remains on the active list, and a cached touch re-sets
                // the referenced bit just as the fast path does.)
                self.processes[key.pid.0 as usize].page(key.page).referenced = false;
                self.active.rotate_to_back(key);
            } else {
                let proc = &mut self.processes[key.pid.0 as usize];
                proc.forget_touch_cache(key.page);
                proc.page(key.page).list = ListTag::Inactive;
                self.active_count -= 1;
                self.inactive_count += 1;
                self.inactive.push_back(key);
            }
        }
    }

    /// Pops the oldest valid entry of the inactive FIFO and untags it.
    /// Pages already pending eviction are skipped (their queue entry is
    /// dropped; the `pending` queue owns them now).
    fn pop_inactive(&mut self) -> Option<PageKey> {
        let procs = &self.processes;
        let key = self.inactive.pop_front_valid(|k| {
            procs[k.pid.0 as usize]
                .page_ref(k.page)
                .map(|p| {
                    p.list == ListTag::Inactive
                        && p.evictable()
                        && !p.pending_eviction
                        && !p.relinquished
                })
                .unwrap_or(false)
        })?;
        self.processes[key.pid.0 as usize].page(key.page).list = ListTag::None;
        self.inactive_count -= 1;
        Some(key)
    }

    /// Evicts a resident page to swap.
    fn evict(&mut self, key: PageKey, clock: &mut Clock, hard: bool) {
        let (dirty, list) = {
            let proc = &mut self.processes[key.pid.0 as usize];
            proc.forget_touch_cache(key.page);
            let info = proc.page(key.page);
            debug_assert!(info.evictable());
            let dirty = info.dirty;
            let list = info.list;
            *info = PageInfo {
                state: PageState::Evicted,
                dirty,
                ..PageInfo::default()
            };
            (dirty, list)
        };
        match list {
            ListTag::Active => self.active_count -= 1,
            ListTag::Inactive => self.inactive_count -= 1,
            ListTag::None => {}
        }
        self.free_frames += 1;
        clock.advance(if dirty {
            self.costs.evict_dirty
        } else {
            self.costs.evict_clean
        });
        let proc = &mut self.processes[key.pid.0 as usize];
        proc.stats.evictions += 1;
        proc.stats.note_nonresident();
        if hard {
            proc.stats.hard_evictions += 1;
        }
        // §4.1: registered processes are notified of every eviction of
        // their pages ("whenever its corresponding page table entry is
        // unmapped") — including evictions that followed a granted grace
        // period, and direct-reclaim evictions where the kernel ran ahead.
        if proc.notify {
            proc.events.push_back(VmEvent::Evicted { page: key.page });
        }
        self.tracer.emit(
            key.pid.0,
            clock.now(),
            EventKind::Evicted {
                page: key.page.0,
                hard,
            },
        );
    }

    /// Clears stale pending flags when pressure abates, returning pages to
    /// normal inactive-list standing.
    fn cancel_pending(&mut self) {
        while let Some((key, _)) = self.pending.pop_front() {
            let still_pending = {
                let info = self.processes[key.pid.0 as usize].page(key.page);
                let was = info.pending_eviction;
                info.pending_eviction = false;
                was && info.list == ListTag::Inactive
            };
            if still_pending {
                // Its original queue entry may have been dropped; re-add.
                self.inactive.push_back(key);
            }
        }
    }

    fn page_flag(&self, key: PageKey, test: impl Fn(&PageInfo) -> bool) -> bool {
        self.processes[key.pid.0 as usize]
            .page_ref(key.page)
            .map(test)
            .unwrap_or(false)
    }

    /// Total resident pages across all processes (for invariant checks).
    pub fn total_resident(&self) -> usize {
        self.processes
            .iter()
            .map(|p| p.stats.resident as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Nanos;

    fn small_vmm(frames: usize) -> (Vmm, Clock) {
        let mut config = VmmConfig::with_frames(frames);
        config.low_watermark = 4;
        config.high_watermark = 8;
        config.batch = 4;
        (Vmm::new(config, CostModel::default()), Clock::new())
    }

    #[test]
    fn first_touch_is_demand_zero() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        let o = vmm.touch(pid, VirtPage(3), Access::Read, &mut clock);
        assert!(o.zero_filled && !o.major_fault);
        assert!(vmm.is_resident(pid, VirtPage(3)));
        assert_eq!(vmm.stats(pid).minor_faults, 1);
        assert_eq!(vmm.free_frames(), 31);
        // Second touch: no fault.
        let before = clock.now();
        let o = vmm.touch(pid, VirtPage(3), Access::Read, &mut clock);
        assert!(!o.zero_filled && !o.major_fault);
        assert_eq!(clock.now() - before, CostModel::default().ram_word);
    }

    #[test]
    fn frame_exhaustion_triggers_direct_reclaim_and_major_fault_on_return() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        for p in 0..20 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        // 20 pages touched with 16 frames: at least 4 evictions.
        assert!(vmm.stats(pid).evictions >= 4);
        // Find an evicted page and fault it back.
        let evicted = (0..20)
            .map(VirtPage)
            .find(|&p| vmm.page_state(pid, p) == PageState::Evicted)
            .expect("an evicted page");
        let before = vmm.stats(pid).major_faults;
        let o = vmm.touch(pid, evicted, Access::Read, &mut clock);
        assert!(o.major_fault);
        assert_eq!(vmm.stats(pid).major_faults, before + 1);
    }

    #[test]
    fn clock_algorithm_gives_second_chance_to_referenced_pages() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        for p in 0..16 {
            vmm.touch(pid, VirtPage(p), Access::Read, &mut clock);
        }
        // Keep page 0 hot while allocating new pages.
        for p in 16..32 {
            vmm.touch(pid, VirtPage(0), Access::Read, &mut clock);
            vmm.touch(pid, VirtPage(p), Access::Read, &mut clock);
        }
        assert!(
            vmm.is_resident(pid, VirtPage(0)),
            "hot page was evicted despite its referenced bit"
        );
    }

    #[test]
    fn mlocked_pages_are_never_evicted() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pin = vmm.register_process();
        let app = vmm.register_process();
        for p in 0..8 {
            vmm.mlock(pin, VirtPage(p), &mut clock);
        }
        for p in 0..32 {
            vmm.touch(app, VirtPage(p), Access::Write, &mut clock);
        }
        for p in 0..8 {
            assert!(vmm.is_resident(pin, VirtPage(p)), "locked page evicted");
        }
        assert_eq!(vmm.stats(pin).evictions, 0);
        assert!(vmm.stats(app).evictions >= 24);
    }

    #[test]
    fn notifying_process_receives_notice_with_grace() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        // free = 2 < low watermark 4: pump schedules evictions with notices.
        vmm.pump(&mut clock);
        let events = vmm.take_events(pid);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, VmEvent::EvictionScheduled { .. })),
            "expected eviction notices, got {events:?}"
        );
        assert!(vmm.stats(pid).notices > 0);
        // Nothing evicted yet (grace period).
        assert_eq!(vmm.stats(pid).evictions, 0);
        // Next pump follows through.
        vmm.pump(&mut clock);
        assert!(vmm.stats(pid).evictions > 0, "grace period never ended");
    }

    #[test]
    fn touch_rescues_page_from_scheduled_eviction() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        vmm.pump(&mut clock);
        let noticed: Vec<VirtPage> = vmm.take_events(pid).into_iter().map(|e| e.page()).collect();
        assert!(!noticed.is_empty());
        for &p in &noticed {
            vmm.touch(pid, p, Access::Read, &mut clock);
        }
        vmm.pump(&mut clock);
        for &p in &noticed {
            assert!(
                vmm.is_resident(pid, p),
                "rescued page {p} was evicted anyway"
            );
        }
    }

    #[test]
    fn relinquished_pages_evict_first_without_notice() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        vmm.vm_relinquish(pid, &[VirtPage(2), VirtPage(5)], &mut clock);
        assert_eq!(vmm.stats(pid).relinquished, 2);
        vmm.pump(&mut clock);
        assert_eq!(vmm.page_state(pid, VirtPage(2)), PageState::Evicted);
        assert_eq!(vmm.page_state(pid, VirtPage(5)), PageState::Evicted);
        let events = vmm.take_events(pid);
        assert!(!events
            .iter()
            .any(|e| matches!(e, VmEvent::EvictionScheduled { page } if *page == VirtPage(2) || *page == VirtPage(5))));
    }

    #[test]
    fn madvise_dontneed_frees_frames_and_zero_fills_on_return() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        vmm.touch(pid, VirtPage(1), Access::Write, &mut clock);
        let free_before = vmm.free_frames();
        vmm.madvise_dontneed(pid, &[VirtPage(1)], &mut clock);
        assert_eq!(vmm.free_frames(), free_before + 1);
        assert_eq!(vmm.page_state(pid, VirtPage(1)), PageState::Unmapped);
        let o = vmm.touch(pid, VirtPage(1), Access::Read, &mut clock);
        assert!(o.zero_filled, "discarded page must zero-fill on next touch");
        assert!(!o.major_fault, "discard must not write to swap");
    }

    #[test]
    fn mprotect_raises_fault_event_once() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        vmm.touch(pid, VirtPage(4), Access::Write, &mut clock);
        vmm.mprotect(pid, &[VirtPage(4)], true, &mut clock);
        let o = vmm.touch(pid, VirtPage(4), Access::Read, &mut clock);
        assert!(o.protection_fault);
        assert!(matches!(
            vmm.take_events(pid).as_slice(),
            [VmEvent::ProtectionFault { page }] if *page == VirtPage(4)
        ));
        let o = vmm.touch(pid, VirtPage(4), Access::Read, &mut clock);
        assert!(!o.protection_fault);
    }

    #[test]
    fn reload_of_evicted_page_notifies_owner() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        vmm.vm_relinquish(pid, &[VirtPage(0)], &mut clock);
        vmm.pump(&mut clock);
        assert_eq!(vmm.page_state(pid, VirtPage(0)), PageState::Evicted);
        vmm.take_events(pid);
        vmm.touch(pid, VirtPage(0), Access::Read, &mut clock);
        let events = vmm.take_events(pid);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, VmEvent::MadeResident { page } if *page == VirtPage(0))),
            "expected MadeResident, got {events:?}"
        );
    }

    #[test]
    fn major_fault_charges_milliseconds() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        for p in 0..20 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        let evicted = (0..20)
            .map(VirtPage)
            .find(|&p| vmm.page_state(pid, p) == PageState::Evicted)
            .unwrap();
        let before = clock.now();
        vmm.touch(pid, evicted, Access::Read, &mut clock);
        assert!(clock.now() - before >= Nanos::from_millis(5));
    }

    #[test]
    fn pressure_relief_cancels_scheduled_evictions() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        vmm.pump(&mut clock);
        let noticed: Vec<VirtPage> = vmm.take_events(pid).iter().map(|e| e.page()).collect();
        assert!(!noticed.is_empty());
        let discard: Vec<VirtPage> = (0..14)
            .map(VirtPage)
            .filter(|p| !noticed.contains(p))
            .take(8)
            .collect();
        vmm.madvise_dontneed(pid, &discard, &mut clock);
        vmm.pump(&mut clock);
        vmm.pump(&mut clock);
        for &p in &noticed {
            assert!(
                vmm.is_resident(pid, p),
                "page {p} evicted even though pressure was relieved"
            );
        }
    }

    #[test]
    fn touch_range_spans_pages() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        // 100 bytes starting 50 bytes before a page boundary: 2 pages.
        let o = vmm.touch_range(pid, 4096 - 50, 100, Access::Write, &mut clock);
        assert!(o.zero_filled);
        assert!(vmm.is_resident(pid, VirtPage(0)));
        assert!(vmm.is_resident(pid, VirtPage(1)));
        assert!(!vmm.is_resident(pid, VirtPage(2)));
    }

    #[test]
    fn non_notifying_process_gets_no_events() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        for p in 0..20 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        vmm.pump(&mut clock);
        vmm.pump(&mut clock);
        assert!(vmm.take_events(pid).is_empty());
        assert_eq!(vmm.stats(pid).notices, 0);
        assert!(vmm.stats(pid).evictions > 0);
    }

    #[test]
    fn repeat_touch_fast_path_charges_one_ram_word_and_no_list_churn() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        vmm.touch(pid, VirtPage(7), Access::Write, &mut clock);
        // The page is now resident, unprotected, and on the active list.
        let raw_len = vmm.active.raw_len();
        let active = vmm.active_count;
        let inactive = vmm.inactive_count;
        let before = clock.now();
        let o = vmm.touch(pid, VirtPage(7), Access::Read, &mut clock);
        assert_eq!(clock.now() - before, CostModel::default().ram_word);
        assert!(!o.zero_filled && !o.major_fault && !o.protection_fault);
        assert_eq!(
            vmm.active.raw_len(),
            raw_len,
            "fast path re-queued the page"
        );
        assert_eq!(vmm.active_count, active);
        assert_eq!(vmm.inactive_count, inactive);
        // And again via the last-touched cache: same cost, same lists.
        let before = clock.now();
        vmm.touch(pid, VirtPage(7), Access::Read, &mut clock);
        assert_eq!(clock.now() - before, CostModel::default().ram_word);
        assert_eq!(vmm.active.raw_len(), raw_len);
    }

    #[test]
    fn touch_counter_counts_every_access() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        for _ in 0..5 {
            vmm.touch(pid, VirtPage(0), Access::Read, &mut clock);
        }
        vmm.touch(pid, VirtPage(1), Access::Write, &mut clock);
        assert_eq!(vmm.stats(pid).touches, 6);
    }

    #[test]
    fn mprotect_invalidates_touch_cache() {
        let (mut vmm, mut clock) = small_vmm(32);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        // Prime the last-touched cache on page 4, then protect it.
        vmm.touch(pid, VirtPage(4), Access::Write, &mut clock);
        vmm.touch(pid, VirtPage(4), Access::Read, &mut clock);
        vmm.mprotect(pid, &[VirtPage(4)], true, &mut clock);
        let o = vmm.touch(pid, VirtPage(4), Access::Read, &mut clock);
        assert!(
            o.protection_fault,
            "cached fast path skipped the protection check"
        );
    }

    #[test]
    fn relinquish_invalidates_touch_cache() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..14 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        // Prime the cache on page 3, relinquish it, then touch it again:
        // the slow path must run so the rescue clears `relinquished`.
        vmm.touch(pid, VirtPage(3), Access::Read, &mut clock);
        vmm.touch(pid, VirtPage(3), Access::Read, &mut clock);
        vmm.vm_relinquish(pid, &[VirtPage(3)], &mut clock);
        vmm.touch(pid, VirtPage(3), Access::Read, &mut clock);
        vmm.pump(&mut clock);
        assert!(
            vmm.is_resident(pid, VirtPage(3)),
            "relinquished page evicted despite the rescuing touch"
        );
        assert_eq!(vmm.stats(pid).evictions, 0);
    }

    #[test]
    fn eviction_invalidates_touch_cache() {
        let (mut vmm, mut clock) = small_vmm(16);
        let pid = vmm.register_process();
        // Prime the cache on the page most likely to be evicted (page 0,
        // coldest), then overflow memory so it gets swapped out.
        vmm.touch(pid, VirtPage(0), Access::Write, &mut clock);
        vmm.touch(pid, VirtPage(0), Access::Read, &mut clock);
        for p in 1..32 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        let evicted = (0..32)
            .map(VirtPage)
            .find(|&p| vmm.page_state(pid, p) == PageState::Evicted)
            .expect("an evicted page");
        let before = vmm.stats(pid).major_faults;
        let o = vmm.touch(pid, evicted, Access::Read, &mut clock);
        assert!(o.major_fault, "evicted page must fault on touch");
        assert_eq!(vmm.stats(pid).major_faults, before + 1);
    }
}

#[cfg(test)]
mod race_tests {
    use super::*;
    use crate::page::{Access, PageState, VirtPage};
    use simtime::CostModel;

    fn vmm16() -> (Vmm, Clock) {
        let mut config = VmmConfig::with_frames(16);
        config.low_watermark = 4;
        config.high_watermark = 8;
        (Vmm::new(config, CostModel::default()), Clock::new())
    }

    /// The §3.4 race guard: a relinquished-and-protected page touched
    /// before its eviction raises a protection fault, is rescued, and is
    /// never evicted behind the toucher's back.
    #[test]
    fn protected_relinquished_page_touched_before_eviction_is_rescued() {
        let (mut vmm, mut clock) = vmm16();
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..10 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        // BC's sequence: protect, then relinquish.
        vmm.mprotect(pid, &[VirtPage(3)], true, &mut clock);
        vmm.vm_relinquish(pid, &[VirtPage(3)], &mut clock);
        // The mutator wins the race: it touches before any reclaim pass.
        let o = vmm.touch(pid, VirtPage(3), Access::Read, &mut clock);
        assert!(o.protection_fault, "the guard must fire");
        assert!(!o.major_fault, "the page never left memory");
        // Even under subsequent pressure the rescued page stays put until
        // the LRU genuinely ages it out again.
        vmm.pump(&mut clock);
        assert_eq!(vmm.page_state(pid, VirtPage(3)), PageState::Resident);
    }

    /// Eviction clears the protection: a reload is a plain major fault plus
    /// a MadeResident notification, not a protection fault.
    #[test]
    fn protection_does_not_survive_eviction() {
        let (mut vmm, mut clock) = vmm16();
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..10 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        vmm.mprotect(pid, &[VirtPage(5)], true, &mut clock);
        vmm.vm_relinquish(pid, &[VirtPage(5)], &mut clock);
        // Create pressure so the reclaim pass actually runs.
        for p in 10..14 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
        }
        vmm.pump(&mut clock);
        assert_eq!(vmm.page_state(pid, VirtPage(5)), PageState::Evicted);
        vmm.take_events(pid);
        let o = vmm.touch(pid, VirtPage(5), Access::Read, &mut clock);
        assert!(o.major_fault);
        assert!(!o.protection_fault);
        let events = vmm.take_events(pid);
        assert!(events
            .iter()
            .any(|e| matches!(e, VmEvent::MadeResident { page } if *page == VirtPage(5))));
    }

    /// Every eviction of a registered process's page produces an event
    /// (§4.1): nothing leaves memory silently.
    #[test]
    fn no_silent_evictions_for_registered_processes() {
        let (mut vmm, mut clock) = vmm16();
        let pid = vmm.register_process();
        vmm.register_notifications(pid);
        for p in 0..24 {
            vmm.touch(pid, VirtPage(p), Access::Write, &mut clock);
            vmm.pump(&mut clock);
        }
        for _ in 0..4 {
            vmm.pump(&mut clock);
        }
        let evictions = vmm.stats(pid).evictions;
        assert!(evictions > 0);
        let evicted_events = vmm
            .take_events(pid)
            .iter()
            .filter(|e| matches!(e, VmEvent::Evicted { .. }))
            .count() as u64;
        assert_eq!(
            evicted_events, evictions,
            "every eviction must be announced"
        );
    }
}
