//! A virtual memory manager simulator for *Garbage Collection Without
//! Paging* (PLDI 2005).
//!
//! The paper extends the Linux 2.4.20 kernel (~600 lines, §4.1) so that the
//! garbage collector and the virtual memory manager can cooperate:
//!
//! * the kernel **notifies** a registered runtime (via queued, lossless
//!   real-time signals) just before any of its pages is scheduled for
//!   eviction from the inactive list, and when pages become resident again;
//! * the runtime can **discard** empty pages (`madvise(MADV_DONTNEED)`);
//! * a new **`vm_relinquish`** system call lets the runtime voluntarily
//!   surrender a list of pages, which are placed at the end of the inactive
//!   queue "from which they are quickly swapped out";
//! * `mprotect` guards relinquished pages against the touched-before-evicted
//!   race (§3.4).
//!
//! Reproducing that on a present-day host would need kernel patches or
//! `userfaultfd`/`mincore` plumbing that is host-fragile and
//! non-deterministic. This crate instead **simulates** the same manager: a
//! global approximate-LRU replacement policy — an *active list* managed by a
//! clock algorithm and an *inactive list* that is a FIFO queue, exactly the
//! structure of the Linux 2.4 VM the paper describes — over a fixed number of
//! physical frames shared by any number of simulated processes, with the full
//! cooperation API above. Every touch charges simulated time through
//! [`simtime`], so paging costs are modelled faithfully (major fault ≈ 5 ms
//! vs RAM word ≈ 2 ns).
//!
//! # Example
//!
//! ```
//! use simtime::{Clock, CostModel};
//! use vmm::{Access, Vmm, VmmConfig};
//!
//! let config = VmmConfig::builder().frames(64).build();
//! let mut vmm = Vmm::new(config, CostModel::default());
//! let mut clock = Clock::new();
//! let pid = vmm.register_process();
//! // First touch demand-zero-maps the page.
//! let outcome = vmm.touch(pid, 7.into(), Access::Write, &mut clock);
//! assert!(outcome.zero_filled);
//! assert!(vmm.is_resident(pid, 7.into()));
//! ```

#![warn(missing_docs)]

mod config;
mod events;
mod lists;
mod page;
mod stats;
#[allow(clippy::module_inception)]
mod vmm;

pub use config::{VmmConfig, VmmConfigBuilder};
pub use events::VmEvent;
pub use page::{Access, PageKey, PageState, ProcessId, TouchOutcome, VirtPage, PAGE_BYTES};
pub use stats::VmStats;
pub use vmm::{ProcessTableFull, Vmm, MAX_PROCESSES};
