//! Kernel-to-runtime notifications.
//!
//! The paper's kernel extension delivers notifications as **queued Linux
//! real-time signals**, chosen because "unlike other notification methods,
//! these signals cannot be lost due to other process activity" (§4.1). The
//! simulator models each registered process's signal queue as an unbounded
//! FIFO drained by
//! [`Vmm::drain_events_into`](crate::Vmm::drain_events_into); processes
//! with waiting events are discoverable in O(events) via
//! [`Vmm::next_notified`](crate::Vmm::next_notified).

use crate::VirtPage;

/// One queued notification from the virtual memory manager to a registered
/// runtime. All events refer to pages of the receiving process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmEvent {
    /// A page has been scheduled for eviction from the inactive list
    /// ("the kernel notifies the runtime system just before any page is
    /// scheduled for eviction ... whenever its corresponding page table
    /// entry is unmapped", §4.1).
    ///
    /// The runtime may rescue the page by touching it, free memory instead
    /// by discarding an empty page, or bookmark the page's outgoing
    /// references and surrender it via `vm_relinquish`. If it does nothing,
    /// the page is evicted at the next reclaim pass.
    EvictionScheduled {
        /// The victim page.
        page: VirtPage,
    },
    /// A page was evicted without a prior grace period because the reclaim
    /// scan could not otherwise free enough frames (the kernel "operates
    /// asynchronously from the collector, meaning that it can run ahead of
    /// the collector and evict a page before BC can even be scheduled to run
    /// and process the page", §3.4.3).
    Evicted {
        /// The evicted page.
        page: VirtPage,
    },
    /// An evicted page was loaded back into memory (§3.3.2: signals are sent
    /// when a page is "scheduled for eviction or loaded back into memory").
    /// BC clears bookmarks in response (§3.4.2).
    MadeResident {
        /// The reloaded page.
        page: VirtPage,
    },
    /// A protected page was touched. BC protects relinquished pages so that
    /// a touch before the eviction completes cannot go unnoticed (§3.4);
    /// the protection has been removed by the time this event is observed.
    ProtectionFault {
        /// The faulting page.
        page: VirtPage,
    },
}

impl VmEvent {
    /// The page this event refers to.
    pub fn page(&self) -> VirtPage {
        match *self {
            VmEvent::EvictionScheduled { page }
            | VmEvent::Evicted { page }
            | VmEvent::MadeResident { page }
            | VmEvent::ProtectionFault { page } => page,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_page_accessor_covers_all_variants() {
        let p = VirtPage::new(9);
        for ev in [
            VmEvent::EvictionScheduled { page: p },
            VmEvent::Evicted { page: p },
            VmEvent::MadeResident { page: p },
            VmEvent::ProtectionFault { page: p },
        ] {
            assert_eq!(ev.page(), p);
        }
    }
}
