//! Per-process paging statistics.

/// Counters for one process's interaction with the virtual memory manager.
///
/// The experiment harness diffs these around collector pauses to attribute
/// faults to the mutator or the collector, and reads `resident` /
/// `peak_resident` for footprint reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Major faults (page read back from swap).
    pub major_faults: u64,
    /// Minor faults (demand-zero fills and protection faults).
    pub minor_faults: u64,
    /// Pages of this process evicted to swap.
    pub evictions: u64,
    /// Pages evicted *without* the notification grace period (the kernel ran
    /// ahead of the collector, §3.4.3).
    pub hard_evictions: u64,
    /// Pages discarded via `madvise(MADV_DONTNEED)`.
    pub discards: u64,
    /// Pages surrendered via `vm_relinquish`.
    pub relinquished: u64,
    /// Eviction notices queued to this process.
    pub notices: u64,
    /// Currently resident pages.
    pub resident: u64,
    /// High-water mark of `resident`.
    pub peak_resident: u64,
    /// Currently mlocked pages (subset of `resident`).
    pub locked: u64,
    /// Total `touch` calls by this process (every simulated memory access,
    /// fast path or slow). Denominator for touches/sec in `simperf`.
    pub touches: u64,
}

impl VmStats {
    /// Records a page becoming resident.
    pub(crate) fn note_resident(&mut self) {
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
    }

    /// Records a page leaving residency.
    pub(crate) fn note_nonresident(&mut self) {
        debug_assert!(self.resident > 0);
        self.resident -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = VmStats::default();
        s.note_resident();
        s.note_resident();
        s.note_nonresident();
        s.note_resident();
        assert_eq!(s.resident, 2);
        assert_eq!(s.peak_resident, 2);
        s.note_resident();
        s.note_resident();
        assert_eq!(s.peak_resident, 4);
    }
}
