//! Tunables of the simulated virtual memory manager.

use crate::PAGE_BYTES;

/// Configuration for a [`Vmm`](crate::Vmm).
///
/// Defaults mirror the Linux 2.4 reclaim behaviour the paper built on:
/// reclaim begins when free frames fall under a low watermark and proceeds in
/// `SWAP_CLUSTER`-sized batches until a high watermark is reached, "to hide
/// disk latency" (§3.4.3: "the virtual memory manager schedules page
/// evictions in large batches ... the size of available memory can fluctuate
/// wildly").
///
/// Build configurations with [`VmmConfig::builder`]:
///
/// ```
/// use vmm::VmmConfig;
///
/// let config = VmmConfig::builder()
///     .memory_bytes(143 * 1024 * 1024) // Fig. 6a
///     .build();
/// assert_eq!(config.frames, 143 * 256);
/// assert_eq!(config.shards, 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmmConfig {
    /// Number of physical frames (each [`PAGE_BYTES`] large).
    pub frames: usize,
    /// Background reclaim starts when free frames drop below this.
    pub low_watermark: usize,
    /// Reclaim continues until this many frames are free (or scheduled).
    pub high_watermark: usize,
    /// Pages evicted per reclaim batch (Linux's `SWAP_CLUSTER_MAX`).
    pub batch: usize,
    /// Maximum active-list pages scanned per clock pass.
    pub clock_scan_limit: usize,
    /// Number of shards the frame pool and LRU lists are split into.
    ///
    /// Processes are assigned to shards round-robin by id; each shard runs
    /// the Linux 2.4 reclaim state machine over its own frame partition,
    /// stealing frames from sibling shards only under global pressure. One
    /// shard (the default) is bit-for-bit identical to the unsharded
    /// manager.
    pub shards: usize,
}

impl VmmConfig {
    /// Starts building a configuration; unset knobs take the documented
    /// defaults (1 GiB of memory, proportional watermarks, one shard).
    pub fn builder() -> VmmConfigBuilder {
        VmmConfigBuilder::default()
    }

    /// Total physical memory, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.frames * PAGE_BYTES
    }
}

impl Default for VmmConfig {
    /// 1 GiB of physical memory, matching the paper's testbed (§5.1).
    fn default() -> VmmConfig {
        VmmConfig::builder().build()
    }
}

/// Builder for [`VmmConfig`], mirroring `HeapConfig::builder()` in the heap
/// crate. Watermarks and batch sizes default proportionally to the frame
/// count: low = max(8, frames/64), high = 2×low, batch = 32.
#[derive(Clone, Debug, Default)]
pub struct VmmConfigBuilder {
    frames: Option<usize>,
    low_watermark: Option<usize>,
    high_watermark: Option<usize>,
    batch: Option<usize>,
    clock_scan_limit: Option<usize>,
    shards: Option<usize>,
}

impl VmmConfigBuilder {
    /// Sets the physical memory size in frames.
    pub fn frames(mut self, frames: usize) -> VmmConfigBuilder {
        self.frames = Some(frames);
        self
    }

    /// Sets the physical memory size in bytes (rounded down to whole
    /// frames).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one page.
    pub fn memory_bytes(mut self, bytes: usize) -> VmmConfigBuilder {
        assert!(bytes >= PAGE_BYTES, "physical memory below one page");
        self.frames = Some(bytes / PAGE_BYTES);
        self
    }

    /// Overrides the low watermark (reclaim trigger).
    pub fn low_watermark(mut self, frames: usize) -> VmmConfigBuilder {
        self.low_watermark = Some(frames);
        self
    }

    /// Overrides the high watermark (reclaim target).
    pub fn high_watermark(mut self, frames: usize) -> VmmConfigBuilder {
        self.high_watermark = Some(frames);
        self
    }

    /// Overrides the reclaim batch size.
    pub fn batch(mut self, pages: usize) -> VmmConfigBuilder {
        self.batch = Some(pages);
        self
    }

    /// Overrides the clock-pass scan limit.
    pub fn clock_scan_limit(mut self, pages: usize) -> VmmConfigBuilder {
        self.clock_scan_limit = Some(pages);
        self
    }

    /// Splits the frame pool and LRU lists into `shards` partitions (see
    /// [`VmmConfig::shards`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn shards(mut self, shards: usize) -> VmmConfigBuilder {
        assert!(shards > 0, "a Vmm needs at least one shard");
        self.shards = Some(shards);
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> VmmConfig {
        let frames = self.frames.unwrap_or((1 << 30) / PAGE_BYTES);
        let low = self.low_watermark.unwrap_or((frames / 64).max(8));
        VmmConfig {
            frames,
            low_watermark: low,
            high_watermark: self.high_watermark.unwrap_or(low * 2),
            batch: self.batch.unwrap_or(32),
            clock_scan_limit: self.clock_scan_limit.unwrap_or(256),
            shards: self.shards.unwrap_or(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_one_gigabyte_one_shard() {
        let c = VmmConfig::default();
        assert_eq!(c.memory_bytes(), 1 << 30);
        assert_eq!(c.frames, 262_144);
        assert_eq!(c.shards, 1);
    }

    #[test]
    fn watermarks_scale_with_frames() {
        let c = VmmConfig::builder().frames(64_000).build();
        assert_eq!(c.low_watermark, 1_000);
        assert_eq!(c.high_watermark, 2_000);
        assert!(c.low_watermark < c.high_watermark);
    }

    #[test]
    fn small_memories_keep_minimum_watermarks() {
        let c = VmmConfig::builder().frames(64).build();
        assert_eq!(c.low_watermark, 8);
        assert_eq!(c.high_watermark, 16);
    }

    #[test]
    fn builder_overrides_stick() {
        let c = VmmConfig::builder()
            .frames(128)
            .low_watermark(4)
            .high_watermark(8)
            .batch(4)
            .clock_scan_limit(32)
            .shards(4)
            .build();
        assert_eq!(
            c,
            VmmConfig {
                frames: 128,
                low_watermark: 4,
                high_watermark: 8,
                batch: 4,
                clock_scan_limit: 32,
                shards: 4,
            }
        );
    }

    #[test]
    #[should_panic(expected = "below one page")]
    fn sub_page_memory_is_rejected() {
        let _ = VmmConfig::builder().memory_bytes(100);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = VmmConfig::builder().shards(0);
    }
}
