//! Tunables of the simulated virtual memory manager.

use crate::PAGE_BYTES;

/// Configuration for a [`Vmm`](crate::Vmm).
///
/// Defaults mirror the Linux 2.4 reclaim behaviour the paper built on:
/// reclaim begins when free frames fall under a low watermark and proceeds in
/// `SWAP_CLUSTER`-sized batches until a high watermark is reached, "to hide
/// disk latency" (§3.4.3: "the virtual memory manager schedules page
/// evictions in large batches ... the size of available memory can fluctuate
/// wildly").
///
/// # Example
///
/// ```
/// use vmm::VmmConfig;
///
/// let config = VmmConfig::with_memory_bytes(143 * 1024 * 1024); // Fig. 6a
/// assert_eq!(config.frames, 143 * 256);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmmConfig {
    /// Number of physical frames (each [`PAGE_BYTES`] large).
    pub frames: usize,
    /// Background reclaim starts when free frames drop below this.
    pub low_watermark: usize,
    /// Reclaim continues until this many frames are free (or scheduled).
    pub high_watermark: usize,
    /// Pages evicted per reclaim batch (Linux's `SWAP_CLUSTER_MAX`).
    pub batch: usize,
    /// Maximum active-list pages scanned per clock pass.
    pub clock_scan_limit: usize,
}

impl VmmConfig {
    /// A configuration with `frames` physical frames and proportional
    /// watermarks (low = max(8, frames/64), high = 2×low).
    pub fn with_frames(frames: usize) -> VmmConfig {
        let low = (frames / 64).max(8);
        VmmConfig {
            frames,
            low_watermark: low,
            high_watermark: low * 2,
            batch: 32,
            clock_scan_limit: 256,
        }
    }

    /// A configuration sized in bytes of physical memory (rounded down to
    /// whole frames).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one page.
    pub fn with_memory_bytes(bytes: usize) -> VmmConfig {
        assert!(bytes >= PAGE_BYTES, "physical memory below one page");
        VmmConfig::with_frames(bytes / PAGE_BYTES)
    }

    /// Total physical memory, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.frames * PAGE_BYTES
    }
}

impl Default for VmmConfig {
    /// 1 GiB of physical memory, matching the paper's testbed (§5.1).
    fn default() -> VmmConfig {
        VmmConfig::with_memory_bytes(1 << 30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_one_gigabyte() {
        let c = VmmConfig::default();
        assert_eq!(c.memory_bytes(), 1 << 30);
        assert_eq!(c.frames, 262_144);
    }

    #[test]
    fn watermarks_scale_with_frames() {
        let c = VmmConfig::with_frames(64_000);
        assert_eq!(c.low_watermark, 1_000);
        assert_eq!(c.high_watermark, 2_000);
        assert!(c.low_watermark < c.high_watermark);
    }

    #[test]
    fn small_memories_keep_minimum_watermarks() {
        let c = VmmConfig::with_frames(64);
        assert_eq!(c.low_watermark, 8);
        assert_eq!(c.high_watermark, 16);
    }

    #[test]
    #[should_panic(expected = "below one page")]
    fn sub_page_memory_is_rejected() {
        let _ = VmmConfig::with_memory_bytes(100);
    }
}
