//! Page identities and per-page state.

use core::fmt;

/// Size of one virtual-memory page, in bytes (4 KiB, as on the paper's
/// x86 testbed).
pub const PAGE_BYTES: usize = 4096;

/// Identifies one simulated process sharing the physical memory.
///
/// The paper's multi-JVM experiment (Figure 7) runs two JVM processes plus
/// the `signalmem` pressure driver against one [`Vmm`](crate::Vmm); the
/// `fig7_scale` extension multiplexes thousands. The field is private and
/// 32 bits wide so that tenant counts can grow without silent truncation:
/// construct ids with [`ProcessId::new`] (or receive them from
/// [`Vmm::register_process`](crate::Vmm::register_process)) and read them
/// back with [`ProcessId::as_u32`] / [`ProcessId::index`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Wraps a raw process number.
    pub const fn new(raw: u32) -> ProcessId {
        ProcessId(raw)
    }

    /// The raw process number.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The process number as a table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ProcessId {
    fn from(n: u32) -> ProcessId {
        ProcessId(n)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A virtual page number within one process's address space.
///
/// The field is private: construct pages with [`VirtPage::new`] /
/// [`VirtPage::containing`] (or `u32::into`) and read the page number back
/// with [`VirtPage::number`], so a future widening cannot silently truncate
/// at call sites.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtPage(u32);

impl VirtPage {
    /// Wraps a raw virtual page number.
    pub const fn new(n: u32) -> VirtPage {
        VirtPage(n)
    }

    /// The raw virtual page number.
    pub const fn number(self) -> u32 {
        self.0
    }

    /// The page number as a page-table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The page containing byte address `addr`.
    pub const fn containing(addr: u32) -> VirtPage {
        VirtPage(addr / PAGE_BYTES as u32)
    }

    /// The first byte address of this page.
    pub const fn base_addr(self) -> u32 {
        self.0 * PAGE_BYTES as u32
    }
}

impl From<u32> for VirtPage {
    fn from(n: u32) -> VirtPage {
        VirtPage(n)
    }
}

impl fmt::Display for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Globally unique page identity: `(process, virtual page)`.
///
/// The simulated kernel carries the paper's reverse-mapping patch (§4.1,
/// "to maintain information about process ownership of pages"), so every
/// physical page knows its owner; `PageKey` is that mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageKey {
    /// Owning process.
    pub pid: ProcessId,
    /// Virtual page within the owner's address space.
    pub page: VirtPage,
}

impl fmt::Display for PageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.pid, self.page)
    }
}

/// Kind of memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load; leaves the page clean if it was clean.
    Read,
    /// A store; marks the page dirty (dirty pages cost more to evict).
    Write,
}

/// Residency state of a virtual page.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PageState {
    /// Never touched (or discarded): the next touch is a demand-zero fill.
    #[default]
    Unmapped,
    /// Backed by a physical frame.
    Resident,
    /// Swapped out; contents preserved on the swap device. The next touch
    /// is a major fault.
    Evicted,
}

/// What happened during a [`Vmm::touch`](crate::Vmm::touch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// The page was read back from swap (a major fault was charged).
    pub major_fault: bool,
    /// The page was freshly demand-zero mapped; the caller's backing store
    /// for it must be zeroed (contents of a discarded page do not survive).
    pub zero_filled: bool,
    /// The page was protected; a [`VmEvent::ProtectionFault`] was queued for
    /// the owner and the protection was removed.
    ///
    /// [`VmEvent::ProtectionFault`]: crate::VmEvent::ProtectionFault
    pub protection_fault: bool,
    /// Events were queued for the owning process during this touch (the
    /// caller should pump the runtime's signal handler).
    pub events_queued: bool,
}

/// Which LRU list a page currently believes it is on (lazy-deletion tag).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum ListTag {
    #[default]
    None,
    Active,
    Inactive,
}

/// Full bookkeeping for one virtual page.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PageInfo {
    pub state: PageState,
    /// Clock-algorithm referenced bit.
    pub referenced: bool,
    /// Needs write-back if evicted.
    pub dirty: bool,
    /// `mlock`ed: never considered for eviction (signalmem uses this).
    pub locked: bool,
    /// `mprotect`ed: the next touch raises a protection fault upcall.
    pub protected: bool,
    /// Scheduled for eviction; a notice has been queued to the owner and the
    /// page will be evicted at the next reclaim pass unless rescued.
    pub pending_eviction: bool,
    /// Voluntarily surrendered via `vm_relinquish`: evict without notice.
    pub relinquished: bool,
    pub list: ListTag,
}

impl PageInfo {
    pub(crate) fn is_resident(&self) -> bool {
        self.state == PageState::Resident
    }

    /// Whether the reclaim scan may evict this page right now.
    pub(crate) fn evictable(&self) -> bool {
        self.is_resident() && !self.locked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_page_address_round_trip() {
        let p = VirtPage::containing(8192);
        assert_eq!(p, VirtPage::new(2));
        assert_eq!(p.base_addr(), 8192);
        assert_eq!(p.number(), 2);
        assert_eq!(VirtPage::containing(8191), VirtPage::new(1));
        assert_eq!(VirtPage::containing(0), VirtPage::new(0));
    }

    #[test]
    fn process_id_round_trips_past_the_old_u8_range() {
        let pid = ProcessId::new(70_000);
        assert_eq!(pid.as_u32(), 70_000);
        assert_eq!(pid.index(), 70_000usize);
    }

    #[test]
    fn display_formats_are_nonempty() {
        let key = PageKey {
            pid: ProcessId::new(1),
            page: VirtPage::new(42),
        };
        assert_eq!(key.to_string(), "pid1/p42");
    }

    #[test]
    fn default_page_is_unmapped_and_unlisted() {
        let info = PageInfo::default();
        assert_eq!(info.state, PageState::Unmapped);
        assert!(!info.is_resident());
        assert!(!info.evictable());
        assert_eq!(info.list, ListTag::None);
    }

    #[test]
    fn locked_pages_are_not_evictable() {
        let info = PageInfo {
            state: PageState::Resident,
            locked: true,
            ..PageInfo::default()
        };
        assert!(!info.evictable());
        let unlocked = PageInfo {
            locked: false,
            ..info
        };
        assert!(unlocked.evictable());
    }
}
