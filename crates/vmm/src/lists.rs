//! The two LRU lists of the Linux 2.4 replacement policy.
//!
//! "User pages are either kept in the active list (managed by the clock
//! algorithm) or the inactive list (a FIFO queue)" (§4.1). Both lists here
//! use lazy deletion: entries are validated against the page table's list
//! tag when popped, so mid-list removals (page discarded, promoted, locked)
//! are O(1).

use std::collections::VecDeque;

use crate::page::PageKey;

/// A FIFO of page keys with lazy deletion.
///
/// Pushing the same page twice is allowed; stale entries are skipped when
/// popping, using a caller-supplied validity check (typically "the page
/// table still tags this page as being on this list").
#[derive(Clone, Debug, Default)]
pub(crate) struct LazyQueue {
    queue: VecDeque<PageKey>,
}

impl LazyQueue {
    pub fn new() -> LazyQueue {
        LazyQueue::default()
    }

    /// Number of entries, *including* stale ones. An upper bound on live
    /// entries; used only for scan budgeting.
    #[allow(dead_code)] // exercised by tests; kept for diagnostics
    pub fn raw_len(&self) -> usize {
        self.queue.len()
    }

    pub fn push_back(&mut self, key: PageKey) {
        self.queue.push_back(key);
    }

    /// Pops the oldest entry for which `valid` holds, discarding stale
    /// entries along the way.
    pub fn pop_front_valid(&mut self, mut valid: impl FnMut(PageKey) -> bool) -> Option<PageKey> {
        while let Some(key) = self.queue.pop_front() {
            if valid(key) {
                return Some(key);
            }
        }
        None
    }

    /// Re-inserts a popped entry at the back (clock "second chance").
    pub fn rotate_to_back(&mut self, key: PageKey) {
        self.queue.push_back(key);
    }

    /// Drops every entry (used on reset only).
    #[cfg(test)]
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{ProcessId, VirtPage};

    fn key(n: u32) -> PageKey {
        PageKey {
            pid: ProcessId::new(0),
            page: VirtPage::new(n),
        }
    }

    #[test]
    fn pops_in_fifo_order() {
        let mut q = LazyQueue::new();
        q.push_back(key(1));
        q.push_back(key(2));
        q.push_back(key(3));
        assert_eq!(q.pop_front_valid(|_| true), Some(key(1)));
        assert_eq!(q.pop_front_valid(|_| true), Some(key(2)));
        assert_eq!(q.pop_front_valid(|_| true), Some(key(3)));
        assert_eq!(q.pop_front_valid(|_| true), None);
    }

    #[test]
    fn skips_stale_entries() {
        let mut q = LazyQueue::new();
        q.push_back(key(1));
        q.push_back(key(2));
        q.push_back(key(1)); // duplicate: the first entry is now stale
        let mut first_seen = false;
        let got = q.pop_front_valid(|k| {
            if k == key(1) && !first_seen {
                first_seen = true;
                false // treat the first copy as stale
            } else {
                true
            }
        });
        assert_eq!(got, Some(key(2)));
        assert_eq!(q.raw_len(), 1);
    }

    #[test]
    fn rotate_gives_second_chance() {
        let mut q = LazyQueue::new();
        q.push_back(key(1));
        q.push_back(key(2));
        let first = q.pop_front_valid(|_| true).unwrap();
        q.rotate_to_back(first);
        assert_eq!(q.pop_front_valid(|_| true), Some(key(2)));
        assert_eq!(q.pop_front_valid(|_| true), Some(key(1)));
    }

    #[test]
    fn clear_empties() {
        let mut q = LazyQueue::new();
        q.push_back(key(1));
        q.clear();
        assert_eq!(q.raw_len(), 0);
        assert_eq!(q.pop_front_valid(|_| true), None);
    }
}
