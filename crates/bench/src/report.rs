//! Plain-text table rendering and small statistics helpers.

use simtime::Nanos;

/// A fixed-width text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Free-form caption printed above the table.
    pub caption: String,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            caption: String::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Looks up a cell by row label (first column) and column header.
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        let row = self.rows.iter().find(|r| r[0] == row_label)?;
        Some(&row[col])
    }

    /// Renders as CSV (RFC-4180-style quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.caption.is_empty() {
            out.push_str(&self.caption);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a simulated duration for a table cell.
pub fn fmt_time(t: Nanos) -> String {
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_padded_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a  "));
        assert_eq!(t.cell("a", "value"), Some("1"));
        assert_eq!(t.cell("zzz", "value"), None);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["plain", "has,comma"]);
        t.row(vec!["has\"quote", "x"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"has,comma\"");
        assert_eq!(lines[2], "\"has\"\"quote\",x");
    }

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
