//! Reproduction harness for every table and figure in *Garbage Collection
//! Without Paging* (§5).
//!
//! Each `figN_*` function runs one experiment at a configurable workload
//! [`Params::scale`] and renders a plain-text table mirroring the paper's
//! plot. Absolute numbers differ from the paper (the substrate is a
//! simulator, not a 2005 Pentium M — see DESIGN.md); the claims under test
//! are the *shapes*: who wins, by roughly what factor, and where the
//! crossovers fall.
//!
//! The `figures` binary is the command-line front end:
//!
//! ```text
//! cargo run --release -p bench --bin figures -- all
//! cargo run --release -p bench --bin figures -- fig4 --scale 0.25
//! ```

#![warn(missing_docs)]

pub mod pool;
pub mod pressure_figs;
pub mod report;

use simulate::{min_heap_search, CollectorKind, SanitizeLevel};
use workloads::{table1, BenchmarkSpec};

pub use pool::{default_jobs, parallel_map};
pub use report::{fmt_time, geomean, Table};

/// How many sweep points each figure evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepDepth {
    /// Every point the paper plots (the `figures` binary default).
    Full,
    /// A thinned sweep — endpoints plus the interesting middle — for
    /// `cargo bench` and smoke tests.
    Quick,
}

/// Experiment sizing.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Workload volume relative to the paper (1.0 = Table 1 volumes).
    /// Heaps, live sets, and memory sizes scale alongside, so the
    /// heap-to-live and memory-to-heap geometry is preserved.
    pub scale: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Sweep thinning.
    pub sweep: SweepDepth,
    /// Worker threads for the experiment matrix (`figures --jobs N`).
    /// Results are assembled by cell index, so any value produces output
    /// byte-identical to `jobs: 1`.
    pub jobs: usize,
    /// Sanitizer level applied to every figure run (`figures --sanitize`).
    /// Verification only: any level produces output byte-identical to
    /// `Off`, or aborts with a `sanitize:` panic on an invariant breach.
    pub sanitize: SanitizeLevel,
    /// Simulated GC workers for the packet tracer (`figures
    /// --gc-threads N`). 1 (the default) reproduces the sequential tracer
    /// byte-for-byte; the `fig_parallel` figure sweeps its own axis and
    /// ignores this knob.
    pub gc_threads: usize,
}

impl Params {
    /// Tiny runs for tests and `cargo bench` (~1 % volume, thinned sweeps).
    pub fn quick() -> Params {
        Params {
            scale: 0.01,
            seed: 42,
            sweep: SweepDepth::Quick,
            jobs: pool::default_jobs(),
            sanitize: SanitizeLevel::Off,
            gc_threads: 1,
        }
    }

    /// The default for figure generation (10 % volume, full sweeps —
    /// minutes, not hours, with the same qualitative shapes).
    pub fn standard() -> Params {
        Params {
            scale: 0.1,
            seed: 42,
            sweep: SweepDepth::Full,
            jobs: pool::default_jobs(),
            sanitize: SanitizeLevel::Off,
            gc_threads: 1,
        }
    }

    /// Thins a sweep according to [`Params::sweep`]: keeps the first, an
    /// early-middle, and the last point in Quick mode.
    pub fn thin<T: Copy>(&self, points: &[T]) -> Vec<T> {
        match self.sweep {
            SweepDepth::Full => points.to_vec(),
            SweepDepth::Quick => {
                let n = points.len();
                if n <= 3 {
                    points.to_vec()
                } else {
                    vec![points[0], points[n / 2], points[n - 1]]
                }
            }
        }
    }
}

/// Scales a paper-sized byte count.
pub fn scaled(params: &Params, paper_bytes: usize) -> usize {
    ((paper_bytes as f64 * params.scale) as usize).max(1 << 20)
}

/// Reproduces **Table 1**: per-benchmark total allocation and minimum heap.
///
/// Total bytes allocated match the paper by construction (scaled);
/// minimum heaps are *measured* by binary search with the bookmarking
/// collector, then rescaled for comparison against the paper's column.
pub fn table1_report(params: &Params) -> Table {
    let mut t = Table::new(vec![
        "Benchmark",
        "Paper bytes alloc",
        "Measured (rescaled)",
        "Paper min heap",
        "Measured min heap (rescaled)",
    ]);
    let benchmarks = table1();
    let scale = params.scale;
    let seed = params.seed;
    let sanitize = params.sanitize;
    let gc_threads = params.gc_threads;
    // One worker per benchmark: the search and the confirming run are a
    // self-contained deterministic cell. (The min-heap binary search stays
    // unsanitized — it is a probe, and its result feeds the sanitized runs.)
    let cells = pool::parallel_map(params.jobs, &benchmarks, |_, b| {
        let spec = *b;
        let mk = move || -> Box<dyn simulate::Program> { Box::new(spec.program(scale, seed)) };
        let lo =
            (((b.immortal_bytes + b.live_window_bytes) as f64 * scale) as usize).max(256 << 10);
        let hi = ((b.paper_min_heap as f64 * scale) as usize * 8).max(8 << 20);
        let min = min_heap_search(CollectorKind::Bc, 512 << 20, &mk, lo, hi, 256 << 10);
        // Run once at a comfortable heap to confirm the allocation volume.
        let mut config = simulate::RunConfig::new(CollectorKind::Bc, hi, 512 << 20);
        config.sanitize = sanitize;
        config.gc_threads = gc_threads;
        let run = simulate::run(&config, mk());
        (run.gc.bytes_allocated, min)
    });
    for (b, (bytes_allocated, min)) in benchmarks.iter().zip(cells) {
        t.row(vec![
            b.name.to_string(),
            format!("{}", b.paper_total_alloc),
            format!("{:.0}", bytes_allocated as f64 / scale),
            format!("{}", b.paper_min_heap),
            min.map_or_else(|| "-".into(), |m| format!("{:.0}", m as f64 / scale)),
        ]);
    }
    t
}

/// Reproduces **Figure 2**: geometric mean of execution time relative to
/// BC, across all benchmarks, as a function of heap size (no memory
/// pressure).
///
/// Heap sizes are multiples of each benchmark's *measured* GenMS minimum
/// heap (the paper plots relative heap sizes). Collectors that exhaust a
/// heap report "-" and drop out of that column's mean, as in the paper's
/// plot where curves only span the heaps their collector can run in.
pub fn fig2_report(params: &Params) -> Table {
    let multipliers = params.thin(&[1.25, 1.5, 2.0, 2.5, 3.0]);
    let multipliers: &[f64] = &multipliers;
    let benchmarks = table1();
    let scale = params.scale;
    let seed = params.seed;
    // Per-benchmark base heaps (GenMS minimum): one search per benchmark.
    let bases = pool::parallel_map(params.jobs, &benchmarks, |_, b| {
        let spec = *b;
        let mk = move || -> Box<dyn simulate::Program> { Box::new(spec.program(scale, seed)) };
        let lo =
            (((b.immortal_bytes + b.live_window_bytes) as f64 * scale) as usize).max(256 << 10);
        let hi = ((b.paper_min_heap as f64 * scale) as usize * 8).max(8 << 20);
        min_heap_search(CollectorKind::GenMs, 512 << 20, &mk, lo, hi, 256 << 10).unwrap_or(hi / 2)
    });
    // The full (collector × multiplier × benchmark) matrix as a flat cell
    // list; every cell runs exactly once, and the BC row doubles as the
    // denominator for every other collector's ratio.
    let kinds = CollectorKind::FIGURE2;
    let mut cells: Vec<(CollectorKind, usize, usize)> = Vec::new();
    for &kind in &kinds {
        for mi in 0..multipliers.len() {
            for bi in 0..benchmarks.len() {
                cells.push((kind, mi, bi));
            }
        }
    }
    let times = pool::parallel_map(params.jobs, &cells, |_, &(kind, mi, bi)| {
        let heap = (bases[bi] as f64 * multipliers[mi]) as usize;
        let r = run_bench(kind, &benchmarks[bi], heap, 512 << 20, params);
        if r.ok() {
            r.exec_time.as_nanos() as f64
        } else {
            f64::NAN
        }
    });
    let cell_time = |kind: CollectorKind, mi: usize, bi: usize| -> f64 {
        let ki = kinds.iter().position(|&k| k == kind).expect("known kind");
        times[(ki * multipliers.len() + mi) * benchmarks.len() + bi]
    };
    let mut t = Table::new(
        std::iter::once("Collector".to_string())
            .chain(multipliers.iter().map(|m| format!("{m}x min heap")))
            .collect(),
    );
    for kind in kinds {
        let mut row = vec![kind.label().to_string()];
        for mi in 0..multipliers.len() {
            let mut ratios = Vec::new();
            for bi in 0..benchmarks.len() {
                let ratio = cell_time(kind, mi, bi) / cell_time(CollectorKind::Bc, mi, bi);
                if ratio.is_finite() {
                    ratios.push(ratio);
                }
            }
            row.push(if ratios.is_empty() {
                "-".into()
            } else {
                format!("{:.3}", geomean(&ratios))
            });
        }
        t.row(row);
    }
    t
}

/// Per-phase GC pause histograms, derived from the telemetry subsystem.
///
/// Runs each pressure-figure collector once on pseudoJBB under dynamic
/// memory pressure with an unbounded trace sink, then aggregates the
/// phase spans (root scan, trace, sweep, compaction passes, bookmark
/// scan) into one histogram row per collector and phase. This is the
/// paper's pause story at sub-collection granularity: BC's phases stay
/// short under pressure because they never touch evicted pages.
pub fn phases_report(params: &Params) -> Table {
    let mut t = Table::new(vec![
        "Collector",
        "Phase",
        "Count",
        "Mean",
        "p50",
        "p90",
        "Max",
        "Total",
    ]);
    let benchmarks = table1();
    let b = *benchmarks
        .iter()
        .find(|b| b.name == "pseudoJBB")
        .unwrap_or(&benchmarks[0]);
    let heap = scaled(params, 100 << 20);
    let memory = scaled(params, 224 << 20);
    let available = scaled(params, 93 << 20);
    let scale = params.scale;
    let seed = params.seed;
    // One traced run per collector. The tracer is thread-local state
    // (`Rc`-based), so each worker builds its own and reduces the trace to
    // finished rows before returning.
    let kinds = CollectorKind::PRESSURE;
    let rows = pool::parallel_map(params.jobs, &kinds, |_, &kind| {
        let tracer = telemetry::Tracer::unbounded();
        let mut config =
            simulate::experiments::dynamic_pressure_config(kind, heap, memory, available, scale);
        config.tracer = tracer.clone();
        config.sanitize = params.sanitize;
        config.gc_threads = params.gc_threads;
        let result = simulate::run(&config, Box::new(b.program(scale, seed)));
        let _ = result; // the table reports the trace, not the run summary
        let agg = telemetry::aggregate(&tracer.snapshot(), simtime::Nanos::ZERO);
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (phase, hist) in &agg.phases {
            rows.push(vec![
                kind.label().to_string(),
                phase.name().to_string(),
                format!("{}", hist.count()),
                fmt_time(hist.mean()),
                fmt_time(hist.percentile(50.0)),
                fmt_time(hist.percentile(90.0)),
                fmt_time(hist.max()),
                fmt_time(hist.total()),
            ]);
        }
        // Heap-sizing decisions (count-only rows): how often this run's
        // sizing policy shrank and regrew the budget. Packet-tracer
        // counters ride along so `--gc-threads N` runs show their work
        // distribution in the same table.
        for (label, count) in [
            ("heap-shrinks", agg.counts.heap_shrinks),
            ("heap-grows", agg.counts.heap_grows),
            ("trace-packets", agg.counts.trace_packets),
            ("trace-steals", agg.counts.trace_steals),
        ] {
            rows.push(vec![
                kind.label().to_string(),
                label.to_string(),
                format!("{count}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        rows
    });
    for row in rows.into_iter().flatten() {
        t.row(row);
    }
    t
}

/// Runs one benchmark once.
pub fn run_bench(
    kind: CollectorKind,
    b: &BenchmarkSpec,
    heap_bytes: usize,
    memory_bytes: usize,
    params: &Params,
) -> simulate::RunResult {
    let mut config = simulate::RunConfig::new(kind, heap_bytes, memory_bytes);
    config.sanitize = params.sanitize;
    config.gc_threads = params.gc_threads;
    simulate::run(&config, Box::new(b.program(params.scale, params.seed)))
}
