//! Reproduction harness for every table and figure in *Garbage Collection
//! Without Paging* (§5).
//!
//! Each `figN_*` function runs one experiment at a configurable workload
//! [`Params::scale`] and renders a plain-text table mirroring the paper's
//! plot. Absolute numbers differ from the paper (the substrate is a
//! simulator, not a 2005 Pentium M — see DESIGN.md); the claims under test
//! are the *shapes*: who wins, by roughly what factor, and where the
//! crossovers fall.
//!
//! The `figures` binary is the command-line front end:
//!
//! ```text
//! cargo run --release -p bench --bin figures -- all
//! cargo run --release -p bench --bin figures -- fig4 --scale 0.25
//! ```

#![warn(missing_docs)]

pub mod pressure_figs;
pub mod report;

use simulate::{min_heap_search, CollectorKind};
use workloads::{table1, BenchmarkSpec};

pub use report::{fmt_time, geomean, Table};

/// How many sweep points each figure evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepDepth {
    /// Every point the paper plots (the `figures` binary default).
    Full,
    /// A thinned sweep — endpoints plus the interesting middle — for
    /// `cargo bench` and smoke tests.
    Quick,
}

/// Experiment sizing.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Workload volume relative to the paper (1.0 = Table 1 volumes).
    /// Heaps, live sets, and memory sizes scale alongside, so the
    /// heap-to-live and memory-to-heap geometry is preserved.
    pub scale: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Sweep thinning.
    pub sweep: SweepDepth,
}

impl Params {
    /// Tiny runs for tests and `cargo bench` (~1 % volume, thinned sweeps).
    pub fn quick() -> Params {
        Params {
            scale: 0.01,
            seed: 42,
            sweep: SweepDepth::Quick,
        }
    }

    /// The default for figure generation (10 % volume, full sweeps —
    /// minutes, not hours, with the same qualitative shapes).
    pub fn standard() -> Params {
        Params {
            scale: 0.1,
            seed: 42,
            sweep: SweepDepth::Full,
        }
    }

    /// Thins a sweep according to [`Params::sweep`]: keeps the first, an
    /// early-middle, and the last point in Quick mode.
    pub fn thin<T: Copy>(&self, points: &[T]) -> Vec<T> {
        match self.sweep {
            SweepDepth::Full => points.to_vec(),
            SweepDepth::Quick => {
                let n = points.len();
                if n <= 3 {
                    points.to_vec()
                } else {
                    vec![points[0], points[n / 2], points[n - 1]]
                }
            }
        }
    }
}

/// Scales a paper-sized byte count.
pub fn scaled(params: &Params, paper_bytes: usize) -> usize {
    ((paper_bytes as f64 * params.scale) as usize).max(1 << 20)
}

/// Reproduces **Table 1**: per-benchmark total allocation and minimum heap.
///
/// Total bytes allocated match the paper by construction (scaled);
/// minimum heaps are *measured* by binary search with the bookmarking
/// collector, then rescaled for comparison against the paper's column.
pub fn table1_report(params: &Params) -> Table {
    let mut t = Table::new(vec![
        "Benchmark",
        "Paper bytes alloc",
        "Measured (rescaled)",
        "Paper min heap",
        "Measured min heap (rescaled)",
    ]);
    for b in table1() {
        let make = || -> Box<dyn simulate::Program> { Box::new(b.program(0.0, 0)) };
        let _ = make; // the search builds its own programs below
        let scale = params.scale;
        let seed = params.seed;
        let mk = move || -> Box<dyn simulate::Program> { Box::new(b.program(scale, seed)) };
        let lo =
            (((b.immortal_bytes + b.live_window_bytes) as f64 * scale) as usize).max(256 << 10);
        let hi = ((b.paper_min_heap as f64 * scale) as usize * 8).max(8 << 20);
        let min = min_heap_search(CollectorKind::Bc, 512 << 20, &mk, lo, hi, 256 << 10);
        // Run once at a comfortable heap to confirm the allocation volume.
        let run = simulate::run(
            &simulate::RunConfig::new(CollectorKind::Bc, hi, 512 << 20),
            mk(),
        );
        t.row(vec![
            b.name.to_string(),
            format!("{}", b.paper_total_alloc),
            format!("{:.0}", run.gc.bytes_allocated as f64 / scale),
            format!("{}", b.paper_min_heap),
            min.map(|m| format!("{:.0}", m as f64 / scale))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

/// Reproduces **Figure 2**: geometric mean of execution time relative to
/// BC, across all benchmarks, as a function of heap size (no memory
/// pressure).
///
/// Heap sizes are multiples of each benchmark's *measured* GenMS minimum
/// heap (the paper plots relative heap sizes). Collectors that exhaust a
/// heap report "-" and drop out of that column's mean, as in the paper's
/// plot where curves only span the heaps their collector can run in.
pub fn fig2_report(params: &Params) -> Table {
    let multipliers = params.thin(&[1.25, 1.5, 2.0, 2.5, 3.0]);
    let multipliers: &[f64] = &multipliers;
    let benchmarks = table1();
    // Per-benchmark base heaps (GenMS minimum).
    let mut bases = Vec::new();
    for b in &benchmarks {
        let scale = params.scale;
        let seed = params.seed;
        let spec = *b;
        let mk = move || -> Box<dyn simulate::Program> { Box::new(spec.program(scale, seed)) };
        let lo =
            (((b.immortal_bytes + b.live_window_bytes) as f64 * scale) as usize).max(256 << 10);
        let hi = ((b.paper_min_heap as f64 * scale) as usize * 8).max(8 << 20);
        let base = min_heap_search(CollectorKind::GenMs, 512 << 20, &mk, lo, hi, 256 << 10)
            .unwrap_or(hi / 2);
        bases.push(base);
    }
    // exec[collector][multiplier][benchmark]
    let mut t = Table::new(
        std::iter::once("Collector".to_string())
            .chain(multipliers.iter().map(|m| format!("{m}x min heap")))
            .collect(),
    );
    let mut bc_times: Vec<Vec<f64>> = Vec::new(); // [mult][bench]
    for (mi, &mult) in multipliers.iter().enumerate() {
        bc_times.push(Vec::new());
        for (bi, b) in benchmarks.iter().enumerate() {
            let heap = (bases[bi] as f64 * mult) as usize;
            let r = run_bench(CollectorKind::Bc, b, heap, 512 << 20, params);
            bc_times[mi].push(if r.ok() {
                r.exec_time.as_nanos() as f64
            } else {
                f64::NAN
            });
        }
    }
    for kind in CollectorKind::FIGURE2 {
        let mut cells = vec![kind.label().to_string()];
        for (mi, &mult) in multipliers.iter().enumerate() {
            let mut ratios = Vec::new();
            for (bi, b) in benchmarks.iter().enumerate() {
                let heap = (bases[bi] as f64 * mult) as usize;
                let time = if kind == CollectorKind::Bc {
                    bc_times[mi][bi]
                } else {
                    let r = run_bench(kind, b, heap, 512 << 20, params);
                    if r.ok() {
                        r.exec_time.as_nanos() as f64
                    } else {
                        f64::NAN
                    }
                };
                let ratio = time / bc_times[mi][bi];
                if ratio.is_finite() {
                    ratios.push(ratio);
                }
            }
            cells.push(if ratios.is_empty() {
                "-".into()
            } else {
                format!("{:.3}", geomean(&ratios))
            });
        }
        t.row(cells);
    }
    t
}

/// Per-phase GC pause histograms, derived from the telemetry subsystem.
///
/// Runs each pressure-figure collector once on pseudoJBB under dynamic
/// memory pressure with an unbounded trace sink, then aggregates the
/// phase spans (root scan, trace, sweep, compaction passes, bookmark
/// scan) into one histogram row per collector and phase. This is the
/// paper's pause story at sub-collection granularity: BC's phases stay
/// short under pressure because they never touch evicted pages.
pub fn phases_report(params: &Params) -> Table {
    let mut t = Table::new(vec![
        "Collector",
        "Phase",
        "Count",
        "Mean",
        "p50",
        "p90",
        "Max",
        "Total",
    ]);
    let benchmarks = table1();
    let b = benchmarks
        .iter()
        .find(|b| b.name == "pseudoJBB")
        .unwrap_or(&benchmarks[0]);
    let heap = scaled(params, 100 << 20);
    let memory = scaled(params, 224 << 20);
    let available = scaled(params, 93 << 20);
    for kind in CollectorKind::PRESSURE {
        let tracer = telemetry::Tracer::unbounded();
        let mut config = simulate::experiments::dynamic_pressure_config(
            kind,
            heap,
            memory,
            available,
            params.scale,
        );
        config.tracer = tracer.clone();
        let scale = params.scale;
        let seed = params.seed;
        let result = simulate::run(&config, Box::new(b.program(scale, seed)));
        let agg = telemetry::aggregate(&tracer.snapshot(), simtime::Nanos::ZERO);
        for (phase, hist) in &agg.phases {
            t.row(vec![
                kind.label().to_string(),
                phase.name().to_string(),
                format!("{}", hist.count()),
                fmt_time(hist.mean()),
                fmt_time(hist.percentile(50.0)),
                fmt_time(hist.percentile(90.0)),
                fmt_time(hist.max()),
                fmt_time(hist.total()),
            ]);
        }
        let _ = result; // the table reports the trace, not the run summary
    }
    t
}

/// Runs one benchmark once.
pub fn run_bench(
    kind: CollectorKind,
    b: &BenchmarkSpec,
    heap_bytes: usize,
    memory_bytes: usize,
    params: &Params,
) -> simulate::RunResult {
    let config = simulate::RunConfig::new(kind, heap_bytes, memory_bytes);
    simulate::run(&config, Box::new(b.program(params.scale, params.seed)))
}
