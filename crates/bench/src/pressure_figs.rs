//! The memory-pressure experiments: Figures 3–7.
//!
//! All of these run the pseudoJBB analogue (the paper: "This benchmark is
//! widely considered to be the most representative of a server workload and
//! is the only one of our benchmarks with a significant memory footprint").

use simtime::{bmu_curve, Nanos};
use simulate::experiments::{
    dynamic_pressure_config, run_fleet, steady_pressure_config, FleetConfig, FleetResult,
};
use simulate::{run, run_multi, CollectorKind, PolicyKind, Program, RunConfig, RunResult};
use workloads::spec;

use crate::pool::parallel_map;
use crate::report::Table;
use crate::{scaled, Params};

fn pseudo_jbb(params: &Params) -> impl Fn() -> Box<dyn Program> + '_ {
    let b = spec("pseudoJBB").expect("pseudoJBB spec");
    let scale = params.scale;
    let seed = params.seed;
    move || Box::new(b.program(scale, seed))
}

fn cell_time(r: &RunResult) -> String {
    if r.ok() {
        r.exec_time.to_string()
    } else if r.oom {
        "OOM".into()
    } else {
        "timeout".into()
    }
}

fn cell_pause(r: &RunResult) -> String {
    if r.pauses.count == 0 {
        "-".into()
    } else {
        r.pauses.mean.to_string()
    }
}

/// **Figure 3**: steady memory pressure. For each heap size, signalmem
/// immediately pins memory "equal to 60 % of the heap size"; physical
/// memory is sized so the run would otherwise just fit (§5.3.1).
///
/// Returns (a) execution-time and (b) average-pause tables, heap sizes in
/// columns (paper-equivalent sizes shown), collectors in rows.
pub fn fig3_report(params: &Params) -> (Table, Table) {
    // The paper sweeps pseudoJBB heaps from ~60 MB to ~180 MB.
    let paper_heaps = params.thin(&[60 << 20, 90 << 20, 120 << 20, 150 << 20, 180 << 20]);
    let headers: Vec<String> = std::iter::once("Collector".to_string())
        .chain(paper_heaps.iter().map(|h| format!("{}MB heap", h >> 20)))
        .collect();
    let mut ta = Table::new(headers.clone());
    ta.caption = "Figure 3a: execution time under steady pressure (60% of heap pinned)".into();
    let mut tb = Table::new(headers);
    tb.caption = "Figure 3b: average GC pause under steady pressure".into();
    let make = pseudo_jbb(params);
    let kinds = CollectorKind::PRESSURE;
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| paper_heaps.iter().map(move |&h| (kind, h)))
        .collect();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, paper_heap)| {
        let heap = scaled(params, paper_heap);
        // Figure 3's caption: "available memory is sufficient to hold
        // only 40% of the heap" — signalmem pins 60% of the heap out of
        // a machine sized just above the heap itself.
        let memory = heap + scaled(params, 8 << 20);
        let mut config = steady_pressure_config(kind, heap, memory, 0.6);
        config.sanitize = params.sanitize;
        config.gc_threads = params.gc_threads;
        run(&config, make())
    });
    for (ki, &kind) in kinds.iter().enumerate() {
        let row = &results[ki * paper_heaps.len()..(ki + 1) * paper_heaps.len()];
        let mut ra = vec![kind.label().to_string()];
        let mut rb = vec![kind.label().to_string()];
        for r in row {
            ra.push(cell_time(r));
            rb.push(cell_pause(r));
        }
        ta.row(ra);
        tb.row(rb);
    }
    (ta, tb)
}

/// The available-memory x-axis of the dynamic-pressure figures
/// (paper-equivalent bytes; the paper's plots span roughly 93–160 MB of
/// available memory).
pub const DYNAMIC_AVAILABLE: [usize; 9] = [
    160 << 20,
    143 << 20,
    125 << 20,
    109 << 20,
    93 << 20,
    77 << 20,
    60 << 20,
    44 << 20,
    36 << 20,
];

/// Paper-equivalent heap for the dynamic-pressure runs (Figure 7 uses
/// 77 MB heaps; Figures 4–6 are reported at a comparable fixed heap).
const DYNAMIC_PAPER_HEAP: usize = 100 << 20;
/// Paper-equivalent physical memory for the dynamic-pressure runs.
const DYNAMIC_PAPER_MEMORY: usize = 224 << 20;

fn dynamic_run(params: &Params, kind: CollectorKind, paper_available: usize) -> RunResult {
    let heap = scaled(params, DYNAMIC_PAPER_HEAP);
    let memory = scaled(params, DYNAMIC_PAPER_MEMORY);
    let target = scaled(params, paper_available);
    let make = pseudo_jbb(params);
    let mut config = dynamic_pressure_config(kind, heap, memory, target, params.scale);
    config.sanitize = params.sanitize;
    config.gc_threads = params.gc_threads;
    run(&config, make())
}

fn dynamic_table(
    params: &Params,
    kinds: &[CollectorKind],
    caption: &str,
    cell: impl Fn(&RunResult) -> String,
) -> Table {
    let sweep = params.thin(&DYNAMIC_AVAILABLE);
    let headers: Vec<String> = std::iter::once("Collector".to_string())
        .chain(sweep.iter().map(|a| format!("{}MB avail", a >> 20)))
        .collect();
    let mut t = Table::new(headers);
    t.caption = caption.into();
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| sweep.iter().map(move |&avail| (kind, avail)))
        .collect();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, avail)| {
        dynamic_run(params, kind, avail)
    });
    for (ki, &kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.label().to_string()];
        for r in &results[ki * sweep.len()..(ki + 1) * sweep.len()] {
            row.push(cell(r));
        }
        t.row(row);
    }
    t
}

/// **Figure 4**: average GC pause time under dynamically increasing memory
/// pressure (signalmem: 30 MB, then 1 MB/100 ms).
pub fn fig4_report(params: &Params) -> Table {
    dynamic_table(
        params,
        &CollectorKind::PRESSURE,
        "Figure 4: average GC pause under dynamic pressure (paper-equivalent available memory)",
        cell_pause,
    )
}

/// **Figure 5a**: execution time under dynamic pressure, including the
/// resizing-only BC ablation ("BC w/Resizing only").
pub fn fig5a_report(params: &Params) -> Table {
    let kinds = [
        CollectorKind::Bc,
        CollectorKind::BcResizeOnly,
        CollectorKind::SemiSpace,
        CollectorKind::GenCopy,
        CollectorKind::GenMs,
        CollectorKind::CopyMs,
    ];
    dynamic_table(
        params,
        &kinds,
        "Figure 5a: execution time under dynamic pressure",
        cell_time,
    )
}

/// **Figure 5b**: execution time for the fixed-size-nursery (4 MB)
/// generational variants.
pub fn fig5b_report(params: &Params) -> Table {
    let kinds = [
        CollectorKind::Bc,
        CollectorKind::GenCopyFixed,
        CollectorKind::GenMsFixed,
    ];
    dynamic_table(
        params,
        &kinds,
        "Figure 5b: execution time, fixed-size (4MB) nursery variants",
        cell_time,
    )
}

/// **Figure 6**: bounded mutator utilization under dynamic pressure, at
/// moderate (paper: 143 MB) and heavy (paper: 93 MB) available memory.
///
/// Returns one table per availability level: collectors in rows, window
/// sizes in columns, utilization in cells.
pub fn fig6_report(params: &Params) -> Vec<Table> {
    let kinds = [
        CollectorKind::Bc,
        CollectorKind::BcResizeOnly,
        CollectorKind::MarkSweep,
        CollectorKind::SemiSpace,
        CollectorKind::GenMs,
        CollectorKind::CopyMs,
    ];
    let mut out = Vec::new();
    let levels: &[(usize, &str)] = if params.sweep == crate::SweepDepth::Quick {
        &[(36 << 20, "93MB-equivalent (heavy)")]
    } else {
        &[
            (60 << 20, "143MB-equivalent (moderate)"),
            (36 << 20, "93MB-equivalent (heavy)"),
        ]
    };
    for &(avail, label) in levels {
        // Evaluate BMU at fixed fractions of each run's length so rows are
        // comparable; report the absolute windows of the BC run.
        let results = parallel_map(params.jobs, &kinds, |_, &kind| {
            dynamic_run(params, kind, avail)
        });
        let rows: Vec<(CollectorKind, RunResult)> = kinds.iter().copied().zip(results).collect();
        let windows: Vec<Nanos> = {
            // Span from sub-pause windows up to the slowest run's length,
            // as the paper's log-scale x-axis does (its windows reach
            // 10-minute scales for the thrashing collectors).
            let max_exec = rows
                .iter()
                .map(|(_, r)| r.exec_time)
                .max()
                .unwrap_or(Nanos::from_secs(1));
            [0.00001, 0.0001, 0.001, 0.01, 0.1, 0.3, 1.0]
                .iter()
                .map(|f| Nanos((max_exec.as_nanos() as f64 * f) as u64))
                .collect()
        };
        let headers: Vec<String> = std::iter::once("Collector".to_string())
            .chain(windows.iter().map(|w| format!("w={w}")))
            .collect();
        let mut t = Table::new(headers);
        t.caption =
            format!("Figure 6 ({label} paper-equivalent available): bounded mutator utilization");
        for (kind, r) in rows {
            let curve = bmu_curve(&r.pause_records, r.exec_time, 64);
            let mut row = vec![kind.label().to_string()];
            for &w in &windows {
                // Utilization at the smallest evaluated window >= w.
                let u = curve
                    .iter()
                    .find(|p| p.window >= w)
                    .or(curve.last())
                    .map_or(0.0, |p| p.utilization);
                row.push(format!("{u:.3}"));
            }
            t.row(row);
        }
        out.push(t);
    }
    out
}

/// The sizing policies the policy figure compares, in reporting order.
pub const POLICY_MATRIX: [PolicyKind; 3] = [
    PolicyKind::Fixed,
    PolicyKind::BcFootprint { regrow: false },
    PolicyKind::MemBalancer,
];

/// **Policy figure**: every pressure collector × heap-sizing policy under
/// Figure 5's dynamic pressure, as a total-memory × end-to-end-time Pareto
/// table.
///
/// Each collector's rows are its three policies; `pareto` marks rows no
/// other same-collector policy dominates (≤ on both the execution-time and
/// peak-heap axes, < on at least one). Failed runs (OOM/timeout) never earn
/// the marker and cannot dominate.
pub fn fig_policy_report(params: &Params) -> Table {
    let mut t = Table::new(vec![
        "Collector",
        "Policy",
        "Time",
        "Peak heap (pages)",
        "Major faults",
        "GCs",
        "Shrinks",
        "Grows",
        "Pareto",
    ]);
    t.caption =
        "Policy figure: total memory x end-to-end time under dynamic pressure (fig5 setup)".into();
    let runs = fig_policy_runs(params);
    for group in runs.chunks(POLICY_MATRIX.len()) {
        for (pi, (kind, policy, r)) in group.iter().enumerate() {
            let dominated = r.ok()
                && group
                    .iter()
                    .enumerate()
                    .any(|(oi, (_, _, o))| oi != pi && o.ok() && dominates(o, r));
            t.row(vec![
                kind.label().to_string(),
                policy.label().to_string(),
                cell_time(r),
                format!("{}", r.metrics.heap_pages_peak),
                format!("{}", r.vm.major_faults),
                format!("{}", r.gc.total_gcs()),
                format!("{}", r.gc.heap_shrinks),
                format!("{}", r.gc.heap_regrows),
                if !r.ok() {
                    "-".into()
                } else if dominated {
                    "".into()
                } else {
                    "*".into()
                },
            ]);
        }
    }
    t
}

/// The raw runs behind [`fig_policy_report`]: the policy matrix for every
/// Figure 5a collector, grouped collector-major in [`POLICY_MATRIX`]
/// order.
pub fn fig_policy_runs(params: &Params) -> Vec<(CollectorKind, PolicyKind, RunResult)> {
    let kinds = [
        CollectorKind::Bc,
        CollectorKind::BcResizeOnly,
        CollectorKind::SemiSpace,
        CollectorKind::GenCopy,
        CollectorKind::GenMs,
        CollectorKind::CopyMs,
    ];
    let make = pseudo_jbb(params);
    let cells: Vec<(CollectorKind, PolicyKind)> = kinds
        .iter()
        .flat_map(|&kind| POLICY_MATRIX.iter().map(move |&p| (kind, p)))
        .collect();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, policy)| {
        let heap = scaled(params, DYNAMIC_PAPER_HEAP);
        let memory = scaled(params, DYNAMIC_PAPER_MEMORY);
        let target = scaled(params, 36 << 20);
        let mut config = dynamic_pressure_config(kind, heap, memory, target, params.scale);
        config.policy = Some(policy);
        config.sanitize = params.sanitize;
        config.gc_threads = params.gc_threads;
        simulate::run(&config, make())
    });
    cells
        .into_iter()
        .zip(results)
        .map(|((kind, policy), r)| (kind, policy, r))
        .collect()
}

/// Whether run `a` Pareto-dominates run `b` on (execution time, peak heap):
/// no worse on both axes and strictly better on at least one.
pub fn dominates(a: &RunResult, b: &RunResult) -> bool {
    let (ta, tb) = (a.exec_time, b.exec_time);
    let (pa, pb) = (a.metrics.heap_pages_peak, b.metrics.heap_pages_peak);
    ta <= tb && pa <= pb && (ta < tb || pa < pb)
}

/// **Figure 7**: two simultaneous pseudoJBB JVMs, 77 MB heaps each, as
/// physical memory shrinks. Reports (a) total elapsed time and (b) average
/// GC pause across both instances.
pub fn fig7_report(params: &Params) -> (Table, Table) {
    let paper_memory = params.thin(&[256 << 20, 224 << 20, 192 << 20, 160 << 20]);
    let headers: Vec<String> = std::iter::once("Collector".to_string())
        .chain(paper_memory.iter().map(|m| format!("{}MB RAM", m >> 20)))
        .collect();
    let mut ta = Table::new(headers.clone());
    ta.caption = "Figure 7a: total elapsed time, two pseudoJBB instances (77MB heaps)".into();
    let mut tb = Table::new(headers);
    tb.caption = "Figure 7b: average GC pause, two pseudoJBB instances".into();
    let make = pseudo_jbb(params);
    let kinds = CollectorKind::PRESSURE;
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| paper_memory.iter().map(move |&m| (kind, m)))
        .collect();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, mem)| {
        let heap = scaled(params, 77 << 20);
        let memory = scaled(params, mem);
        let mut config = RunConfig::new(kind, heap, memory);
        config.sanitize = params.sanitize;
        config.gc_threads = params.gc_threads;
        run_multi(&config, vec![make(), make()])
    });
    for (ki, &kind) in kinds.iter().enumerate() {
        let mut ra = vec![kind.label().to_string()];
        let mut rb = vec![kind.label().to_string()];
        for result in &results[ki * paper_memory.len()..(ki + 1) * paper_memory.len()] {
            ra.push(result.total_elapsed.to_string());
            let total_pause: u64 = result.jvms.iter().map(|r| r.pauses.total.as_nanos()).sum();
            let count: u64 = result.jvms.iter().map(|r| r.pauses.count).sum();
            rb.push(match total_pause.checked_div(count) {
                None => "-".into(),
                Some(mean) => Nanos(mean).to_string(),
            });
        }
        ta.row(ra);
        tb.row(rb);
    }
    (ta, tb)
}

/// The GC-worker axis of the parallel-tracing figure.
pub const PARALLEL_THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// The raw runs behind [`fig_parallel_report`]: every Figure 5a collector
/// × GC-worker count in [`PARALLEL_THREADS`], under Figure 4/5's dynamic
/// pressure at the heavy (93 MB paper-equivalent) availability, grouped
/// collector-major.
///
/// The worker axis is never thinned: it *is* the figure's x-axis, and the
/// golden test pins the whole pause-vs-workers curve.
pub fn fig_parallel_runs(params: &Params) -> Vec<(CollectorKind, usize, RunResult)> {
    let kinds = [
        CollectorKind::Bc,
        CollectorKind::BcResizeOnly,
        CollectorKind::SemiSpace,
        CollectorKind::GenCopy,
        CollectorKind::GenMs,
        CollectorKind::CopyMs,
    ];
    let make = pseudo_jbb(params);
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| PARALLEL_THREADS.iter().map(move |&n| (kind, n)))
        .collect();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, threads)| {
        let heap = scaled(params, DYNAMIC_PAPER_HEAP);
        let memory = scaled(params, DYNAMIC_PAPER_MEMORY);
        let target = scaled(params, 93 << 20);
        let mut config = dynamic_pressure_config(kind, heap, memory, target, params.scale);
        config.sanitize = params.sanitize;
        config.gc_threads = threads;
        run(&config, make())
    });
    cells
        .into_iter()
        .zip(results)
        .map(|((kind, threads), r)| (kind, threads, r))
        .collect()
}

/// **Parallel-tracing figure**: average GC pause as a function of the
/// simulated GC-worker count, for every Figure 5a collector under dynamic
/// memory pressure. The pause a collection charges is the *critical path*
/// over workers (the longest per-worker trace time), so trace-heavy pauses
/// shrink as workers are added while fault-dominated pauses do not — the
/// same distinction the paper draws between CPU work and paging stalls.
///
/// A second block of rows reports the packet-scheduler counters (packets
/// drained / packets stolen) at each worker count: steals are zero at one
/// worker by construction and grow with the worker count as the
/// work-stealing scheduler balances the packet queue.
pub fn fig_parallel_report(params: &Params) -> Table {
    let headers: Vec<String> = std::iter::once("Collector".to_string())
        .chain(PARALLEL_THREADS.iter().map(|n| format!("{n} workers")))
        .collect();
    let mut t = Table::new(headers);
    t.caption =
        "Parallel tracing: average GC pause vs simulated GC workers (fig4 dynamic pressure)".into();
    let runs = fig_parallel_runs(params);
    for group in runs.chunks(PARALLEL_THREADS.len()) {
        let mut pauses = vec![group[0].0.label().to_string()];
        let mut packets = vec![format!("{} packets/steals", group[0].0.label())];
        for (_, _, r) in group {
            pauses.push(cell_pause(r));
            packets.push(format!("{}/{}", r.gc.trace_packets, r.gc.trace_steals));
        }
        t.row(pauses);
        t.row(packets);
    }
    t
}

/// The tenancy axis of the scaled multiple-JVM experiment: from the
/// paper's handful of simultaneous JVMs up to thousands of mutators.
pub const FLEET_PROCS: [usize; 4] = [4, 64, 512, 2048];

/// One `fig7_scale` cell: `n` tenants of `kind` splitting a constant
/// aggregate pseudoJBB workload over a fixed machine, time-sliced by the
/// round-robin [`simulate::Scheduler`] over a sharded VMM (one shard per
/// 256 tenants).
///
/// At `n = 4` every tenant is a paper-sized Figure 7 instance; the sweep
/// holds total allocation volume, total heap, and physical memory constant
/// while splitting the traffic ever finer, so differences along the axis
/// are scheduling and paging effects, not workload growth.
pub fn fleet_run(params: &Params, kind: CollectorKind, n: usize) -> FleetResult {
    let b = spec("pseudoJBB").expect("pseudoJBB spec");
    let per_scale = (params.scale * FLEET_PROCS[0] as f64 / n as f64).min(1.0);
    let heap_total = scaled(params, 4 * (77 << 20));
    let tenant_heap = (heap_total / n).max(512 << 10);
    let memory = scaled(params, 256 << 20);
    let mut config = FleetConfig::new(kind, n, tenant_heap, memory);
    config.sanitize = params.sanitize;
    let seed = params.seed;
    run_fleet(&config, &move |i| {
        Box::new(b.program(
            per_scale,
            seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    })
}

/// Per-tenant fairness statistics of one fleet run: (min, median, max)
/// touches per tenant, and the largest single tenant's share of all
/// evictions ("-" when nothing was evicted).
fn fleet_fairness(r: &FleetResult) -> (u64, u64, u64, String) {
    let mut touches: Vec<u64> = r.tenants.iter().map(|t| t.vm.touches).collect();
    touches.sort_unstable();
    let min = touches.first().copied().unwrap_or(0);
    let median = touches.get(touches.len() / 2).copied().unwrap_or(0);
    let max = touches.last().copied().unwrap_or(0);
    let total_evictions: u64 = r.tenants.iter().map(|t| t.vm.evictions).sum();
    let share = if total_evictions == 0 {
        "-".into()
    } else {
        let top = r.tenants.iter().map(|t| t.vm.evictions).max().unwrap_or(0);
        format!("{:.3}", top as f64 / total_evictions as f64)
    };
    (min, median, max, share)
}

/// **Figure 7 (scaled)**: the multiple-JVM experiment pushed from the
/// paper's simultaneous JVMs to thousands of time-sliced mutators over
/// one sharded VMM. Rows are collector × tenancy; cells report elapsed
/// time, completions, the per-tenant touch spread (fairness), the largest
/// tenant's eviction share, and how many notification deliveries the pump
/// made (O(events), however many tenants idle).
pub fn fig7_scale_report(params: &Params) -> Table {
    let procs = params.thin(&FLEET_PROCS);
    let kinds = CollectorKind::PRESSURE;
    let mut t = Table::new(vec![
        "Collector",
        "Procs",
        "Elapsed",
        "Done",
        "Touch min",
        "Touch med",
        "Touch max",
        "Evict share",
        "Deliveries",
    ]);
    t.caption =
        "Figure 7 (scaled): N simultaneous mutators, constant total workload, sharded VMM".into();
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| procs.iter().map(move |&n| (kind, n)))
        .collect();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, n)| {
        fleet_run(params, kind, n)
    });
    for ((kind, n), r) in cells.iter().zip(&results) {
        let (min, median, max, share) = fleet_fairness(r);
        t.row(vec![
            kind.label().to_string(),
            format!("{n}"),
            if r.timed_out {
                "timeout".into()
            } else {
                r.total_elapsed.to_string()
            },
            format!("{}/{}", r.completed(), n),
            format!("{min}"),
            format!("{median}"),
            format!("{max}"),
            share,
            format!("{}", r.deliveries),
        ]);
    }
    t
}
