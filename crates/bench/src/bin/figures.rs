//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures <table1|fig2|fig3|fig4|fig5a|fig5b|fig6|fig7|fig7_scale|fig_policy|fig_parallel|phases|all>
//!         [--scale F] [--seed N] [--jobs N] [--quick] [--csv DIR]
//!         [--sanitize off|checks|full] [--gc-threads N]
//! ```
//!
//! `--jobs N` fans the run matrix across N worker threads (default: all
//! cores). Output is byte-identical for every N — each figure cell is an
//! independent deterministic simulation, assembled by cell index.
//!
//! `--sanitize full` shadow-verifies every collection of every run; output
//! stays byte-identical to `off` unless a collector invariant is broken,
//! which aborts with a `sanitize:` panic.
//!
//! `--gc-threads N` traces every run with N simulated GC workers (work
//! packets with deterministic stealing; pauses charge the critical path).
//! The default 1 is byte-identical to the sequential tracer. `fig_parallel`
//! sweeps its own worker axis and ignores the flag.

use bench::pressure_figs::{
    fig3_report, fig4_report, fig5a_report, fig5b_report, fig6_report, fig7_report,
    fig7_scale_report, fig_parallel_report, fig_policy_report,
};
use bench::{fig2_report, phases_report, table1_report, Params, Table};
use simulate::SanitizeLevel;

/// Writes a figure's table(s) as CSV into the chosen directory.
fn emit_csv(dir: &Option<String>, name: &str, tables: &[&Table]) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create csv dir");
    for (i, t) in tables.iter().enumerate() {
        let suffix = if tables.len() > 1 {
            format!("_{}", (b'a' + i as u8) as char)
        } else {
            String::new()
        };
        let path = format!("{dir}/{name}{suffix}.csv");
        std::fs::write(&path, t.to_csv()).expect("write csv");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = String::from("all");
    let mut params = Params::standard();
    let mut csv_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                params.scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                params.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--jobs" => {
                i += 1;
                params.jobs = args[i].parse().expect("--jobs takes an integer");
            }
            "--quick" => {
                // Preserve flags that are orthogonal to the sizing preset.
                let (jobs, sanitize) = (params.jobs, params.sanitize);
                params = Params::quick();
                params.jobs = jobs;
                params.sanitize = sanitize;
            }
            "--sanitize" => {
                i += 1;
                params.sanitize = SanitizeLevel::parse(&args[i]).unwrap_or_else(|| {
                    eprintln!(
                        "unknown sanitize level '{}' (try off, checks, full)",
                        args[i]
                    );
                    std::process::exit(2);
                });
            }
            "--gc-threads" => {
                i += 1;
                params.gc_threads = args[i].parse().expect("--gc-threads takes an integer");
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args[i].clone());
            }
            other if !other.starts_with('-') => which = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    eprintln!(
        "# workload scale {} (1.0 = the paper's volumes), seed {}, jobs {}, sanitize {}",
        params.scale, params.seed, params.jobs, params.sanitize
    );
    let run = |name: &str| which == "all" || which == name;
    if run("table1") {
        println!("== Table 1: benchmark memory statistics ==");
        let t = table1_report(&params);
        println!("{t}");
        emit_csv(&csv_dir, "table1", &[&t]);
    }
    if run("fig2") {
        println!("== Figure 2: geomean execution time relative to BC (no pressure) ==");
        let t = fig2_report(&params);
        println!("{t}");
        emit_csv(&csv_dir, "fig2", &[&t]);
    }
    if run("fig3") {
        let (a, b) = fig3_report(&params);
        println!("{a}");
        println!("{b}");
        emit_csv(&csv_dir, "fig3", &[&a, &b]);
    }
    if run("fig4") {
        let t = fig4_report(&params);
        println!("{t}");
        emit_csv(&csv_dir, "fig4", &[&t]);
    }
    if run("fig5a") {
        let t = fig5a_report(&params);
        println!("{t}");
        emit_csv(&csv_dir, "fig5a", &[&t]);
    }
    if run("fig5b") {
        let t = fig5b_report(&params);
        println!("{t}");
        emit_csv(&csv_dir, "fig5b", &[&t]);
    }
    if run("fig6") {
        let ts = fig6_report(&params);
        for t in &ts {
            println!("{t}");
        }
        let refs: Vec<&Table> = ts.iter().collect();
        emit_csv(&csv_dir, "fig6", &refs);
    }
    if run("fig7") {
        let (a, b) = fig7_report(&params);
        println!("{a}");
        println!("{b}");
        emit_csv(&csv_dir, "fig7", &[&a, &b]);
    }
    if run("fig7_scale") {
        let t = fig7_scale_report(&params);
        println!("{t}");
        emit_csv(&csv_dir, "fig7_scale", &[&t]);
    }
    if run("fig_policy") {
        let t = fig_policy_report(&params);
        println!("{t}");
        emit_csv(&csv_dir, "fig_policy", &[&t]);
    }
    if run("fig_parallel") {
        let t = fig_parallel_report(&params);
        println!("{t}");
        emit_csv(&csv_dir, "fig_parallel", &[&t]);
    }
    if run("phases") {
        println!("== Per-phase GC pause histograms (dynamic pressure, from telemetry) ==");
        let t = phases_report(&params);
        println!("{t}");
        emit_csv(&csv_dir, "phases", &[&t]);
    }
    if ![
        "table1",
        "fig2",
        "fig3",
        "fig4",
        "fig5a",
        "fig5b",
        "fig6",
        "fig7",
        "fig7_scale",
        "fig_policy",
        "fig_parallel",
        "phases",
        "all",
    ]
    .contains(&which.as_str())
    {
        eprintln!("unknown figure '{which}'");
        std::process::exit(2);
    }
}
