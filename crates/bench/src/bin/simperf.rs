//! Simulator performance tracker: times a fixed workload mix on the host
//! clock and writes `BENCH_simperf.json`, so the harness's wall-clock
//! trajectory (touches/sec above all) is visible from PR to PR.
//!
//! ```text
//! simperf [--quick] [--scale F] [--seed N] [--jobs N] [--out PATH]
//! ```
//!
//! The mix covers the three run shapes the figures use: calm fig2-style
//! cells (hot-path throughput), fig5a-style dynamic-pressure cells
//! (eviction/fault machinery), and fig7-style multi-JVM cells (shared-VMM
//! scheduling). Each group fans out through the same worker pool as the
//! `figures` binary; per-group wall-clock therefore reflects `--jobs`.

use std::time::Instant;

use bench::{default_jobs, parallel_map, scaled, Params, SweepDepth};
use simtime::Nanos;
use simulate::experiments::{dynamic_pressure, multi_jvm};
use simulate::{run, CollectorKind, Program, RunConfig, RunResult};
use workloads::spec;

/// One workload group's accumulated counters.
struct GroupPerf {
    name: &'static str,
    cells: usize,
    wall: std::time::Duration,
    sim_time: Nanos,
    touches: u64,
    major_faults: u64,
    minor_faults: u64,
}

impl GroupPerf {
    fn new(name: &'static str) -> GroupPerf {
        GroupPerf {
            name,
            cells: 0,
            wall: std::time::Duration::ZERO,
            sim_time: Nanos::ZERO,
            touches: 0,
            major_faults: 0,
            minor_faults: 0,
        }
    }

    fn absorb(&mut self, r: &RunResult) {
        self.cells += 1;
        self.sim_time = self.sim_time.max(r.exec_time);
        self.touches += r.vm.touches;
        self.major_faults += r.vm.major_faults;
        self.minor_faults += r.vm.minor_faults;
    }

    fn touches_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.touches as f64 / secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"cells\":{},\"wall_ms\":{:.3},",
                "\"sim_time_ns\":{},\"touches\":{},\"touches_per_sec\":{:.0},",
                "\"major_faults\":{},\"minor_faults\":{}}}"
            ),
            self.name,
            self.cells,
            self.wall.as_secs_f64() * 1e3,
            self.sim_time.as_nanos(),
            self.touches,
            self.touches_per_sec(),
            self.major_faults,
            self.minor_faults,
        )
    }
}

fn pseudo_jbb(params: &Params) -> impl Fn() -> Box<dyn Program> + Sync {
    let b = spec("pseudoJBB").expect("pseudoJBB spec");
    let scale = params.scale;
    let seed = params.seed;
    move || Box::new(b.program(scale, seed))
}

/// Calm fig2-style cells: every Figure 2 collector on pseudoJBB, ample
/// memory. Dominated by the `Vmm::touch` fast path.
fn no_pressure(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("fig2_no_pressure");
    let make = pseudo_jbb(params);
    let heap = scaled(params, 100 << 20);
    let kinds = CollectorKind::FIGURE2;
    let start = Instant::now();
    let results = parallel_map(params.jobs, &kinds, |_, &kind| {
        run(&RunConfig::new(kind, heap, 512 << 20), make())
    });
    g.wall = start.elapsed();
    for r in &results {
        g.absorb(r);
    }
    g
}

/// Fig5a-style dynamic-pressure cells: the paging machinery under load.
fn dynamic(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("fig5a_dynamic_pressure");
    let make = pseudo_jbb(params);
    let heap = scaled(params, 100 << 20);
    let memory = scaled(params, 224 << 20);
    let kinds = CollectorKind::PRESSURE;
    let avails = params.thin(&[160 << 20, 93 << 20, 36 << 20]);
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&k| avails.iter().map(move |&a| (k, a)))
        .collect();
    let start = Instant::now();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, avail)| {
        let target = scaled(params, avail);
        dynamic_pressure(kind, heap, memory, target, params.scale, &make)
    });
    g.wall = start.elapsed();
    for r in &results {
        g.absorb(r);
    }
    g
}

/// Fig7-style multi-JVM cells: two instances sharing the VMM.
fn multi(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("fig7_multi_jvm");
    let make = pseudo_jbb(params);
    let heap = scaled(params, 77 << 20);
    let kinds = CollectorKind::PRESSURE;
    let memories = params.thin(&[256 << 20, 192 << 20]);
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&k| memories.iter().map(move |&m| (k, m)))
        .collect();
    let start = Instant::now();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, mem)| {
        multi_jvm(kind, heap, scaled(params, mem), &make)
    });
    g.wall = start.elapsed();
    for m in &results {
        for r in &m.jvms {
            g.absorb(r);
        }
        g.sim_time = g.sim_time.max(m.total_elapsed);
    }
    g
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = Params {
        scale: 0.05,
        seed: 42,
        sweep: SweepDepth::Quick,
        jobs: default_jobs(),
    };
    let mut out_path = String::from("BENCH_simperf.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => params.scale = 0.01,
            "--scale" => {
                i += 1;
                params.scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                params.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--jobs" => {
                i += 1;
                params.jobs = args[i].parse().expect("--jobs takes an integer");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    eprintln!(
        "# simperf: scale {}, seed {}, jobs {}",
        params.scale, params.seed, params.jobs
    );
    let total_start = Instant::now();
    let groups = [no_pressure(&params), dynamic(&params), multi(&params)];
    let total_wall = total_start.elapsed();
    let touches: u64 = groups.iter().map(|g| g.touches).sum();
    for g in &groups {
        eprintln!(
            "  {:<24} {:>4} cells  {:>9.1} ms  {:>13} touches  {:>12.0} touches/s",
            g.name,
            g.cells,
            g.wall.as_secs_f64() * 1e3,
            g.touches,
            g.touches_per_sec(),
        );
    }
    let json = format!(
        concat!(
            "{{\"schema\":\"simperf-v1\",\"jobs\":{},\"scale\":{},\"seed\":{},",
            "\"total_wall_ms\":{:.3},\"total_touches\":{},",
            "\"total_touches_per_sec\":{:.0},\"figures\":[{}]}}\n"
        ),
        params.jobs,
        params.scale,
        params.seed,
        total_wall.as_secs_f64() * 1e3,
        touches,
        touches as f64 / total_wall.as_secs_f64().max(1e-9),
        groups
            .iter()
            .map(|g| g.to_json())
            .collect::<Vec<_>>()
            .join(","),
    );
    std::fs::write(&out_path, &json).expect("write simperf json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
