//! Simulator performance tracker: times a fixed workload mix on the host
//! clock and writes `BENCH_simperf.json`, so the harness's wall-clock
//! trajectory (touches/sec above all) is visible from PR to PR.
//!
//! ```text
//! simperf [--quick] [--scale F] [--seed N] [--jobs N] [--out PATH]
//!         [--baseline PATH] [--max-regression F] [--sanitize LEVEL]
//!         [--gc-threads N]
//! ```
//!
//! The mix covers the run shapes the figures use — calm fig2-style
//! cells (hot-path throughput), fig5a-style dynamic-pressure cells
//! (eviction/fault machinery), fig7-style multi-JVM cells (shared-VMM
//! scheduling), and fig7_scale-style fleet cells (sharded VMM plus the
//! time-slice scheduler at up to thousands of tenants) — plus two
//! collector-hot-path groups: `full_heap_trace`
//! (a tight heap, so the tracing loop dominates) and `alloc_rate` (a roomy
//! heap, so the allocation fast paths dominate) — `policy_pareto`,
//! the fig_policy collector × heap-sizing-policy matrix — and
//! `parallel_trace`, the tight-heap trace shape run through the packet
//! scheduler at 1/4/16 simulated GC workers, so the host cost of the
//! work-stealing machinery is tracked from PR to PR. Each group fans out
//! through the same worker pool as the `figures` binary; per-group
//! wall-clock therefore reflects `--jobs`.
//!
//! With `--baseline PATH`, each group's wall-clock is compared against the
//! committed baseline after the run; any group slower than
//! `--max-regression` times its baseline (default 2.0) fails the process.
//! The `SIMPERF_MAX_REGRESSION` environment variable overrides the factor
//! — the knob for noisy CI runners. Groups whose baseline wall-clock is
//! under 50 ms are skipped (too small to compare meaningfully).

use std::time::Instant;

use bench::pressure_figs::{fig_policy_runs, FLEET_PROCS};
use bench::{default_jobs, parallel_map, scaled, Params, SweepDepth};
use simtime::Nanos;
use simulate::experiments::{dynamic_pressure_config, run_fleet, FleetConfig};
use simulate::{run, run_multi, CollectorKind, Program, RunConfig, RunResult, SanitizeLevel};
use workloads::spec;

/// One workload group's accumulated counters.
struct GroupPerf {
    name: &'static str,
    cells: usize,
    wall: std::time::Duration,
    sim_time: Nanos,
    touches: u64,
    major_faults: u64,
    minor_faults: u64,
    objects_traced: u64,
    objects_allocated: u64,
}

impl GroupPerf {
    fn new(name: &'static str) -> GroupPerf {
        GroupPerf {
            name,
            cells: 0,
            wall: std::time::Duration::ZERO,
            sim_time: Nanos::ZERO,
            touches: 0,
            major_faults: 0,
            minor_faults: 0,
            objects_traced: 0,
            objects_allocated: 0,
        }
    }

    fn absorb(&mut self, r: &RunResult) {
        self.cells += 1;
        self.sim_time = self.sim_time.max(r.exec_time);
        self.touches += r.vm.touches;
        self.major_faults += r.vm.major_faults;
        self.minor_faults += r.vm.minor_faults;
        self.objects_traced += r.gc.objects_traced;
        self.objects_allocated += r.gc.objects_allocated;
    }

    fn per_sec(&self, count: u64) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            count as f64 / secs
        } else {
            0.0
        }
    }

    fn touches_per_sec(&self) -> f64 {
        self.per_sec(self.touches)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"cells\":{},\"wall_ms\":{:.3},",
                "\"sim_time_ns\":{},\"touches\":{},\"touches_per_sec\":{:.0},",
                "\"major_faults\":{},\"minor_faults\":{},",
                "\"objects_traced\":{},\"objects_traced_per_sec\":{:.0},",
                "\"allocs\":{},\"allocs_per_sec\":{:.0}}}"
            ),
            self.name,
            self.cells,
            self.wall.as_secs_f64() * 1e3,
            self.sim_time.as_nanos(),
            self.touches,
            self.touches_per_sec(),
            self.major_faults,
            self.minor_faults,
            self.objects_traced,
            self.per_sec(self.objects_traced),
            self.objects_allocated,
            self.per_sec(self.objects_allocated),
        )
    }
}

fn pseudo_jbb(params: &Params) -> impl Fn() -> Box<dyn Program> + Sync {
    let b = spec("pseudoJBB").expect("pseudoJBB spec");
    let scale = params.scale;
    let seed = params.seed;
    move || Box::new(b.program(scale, seed))
}

/// Calm fig2-style cells: every Figure 2 collector on pseudoJBB, ample
/// memory. Dominated by the `Vmm::touch` fast path.
fn no_pressure(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("fig2_no_pressure");
    let make = pseudo_jbb(params);
    let heap = scaled(params, 100 << 20);
    let kinds = CollectorKind::FIGURE2;
    let start = Instant::now();
    let results = parallel_map(params.jobs, &kinds, |_, &kind| {
        let mut config = RunConfig::new(kind, heap, 512 << 20);
        config.sanitize = params.sanitize;
        config.gc_threads = params.gc_threads;
        run(&config, make())
    });
    g.wall = start.elapsed();
    for r in &results {
        g.absorb(r);
    }
    g
}

/// Fig5a-style dynamic-pressure cells: the paging machinery under load.
fn dynamic(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("fig5a_dynamic_pressure");
    let make = pseudo_jbb(params);
    let heap = scaled(params, 100 << 20);
    let memory = scaled(params, 224 << 20);
    let kinds = CollectorKind::PRESSURE;
    let avails = params.thin(&[160 << 20, 93 << 20, 36 << 20]);
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&k| avails.iter().map(move |&a| (k, a)))
        .collect();
    let start = Instant::now();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, avail)| {
        let target = scaled(params, avail);
        let mut config = dynamic_pressure_config(kind, heap, memory, target, params.scale);
        config.sanitize = params.sanitize;
        config.gc_threads = params.gc_threads;
        run(&config, make())
    });
    g.wall = start.elapsed();
    for r in &results {
        g.absorb(r);
    }
    g
}

/// Full-heap-collection-dominated cells: whole-heap collectors on
/// pseudoJBB in a heap a small multiple of the live set, ample memory.
/// Nearly all simulated work is mark/trace/sweep, so this group's
/// `objects_traced_per_sec` tracks the host cost of the tracing loop.
fn full_heap_trace(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("full_heap_trace");
    let b = spec("pseudoJBB").expect("pseudoJBB spec");
    let live = ((b.immortal_bytes + b.live_window_bytes) as f64 * params.scale) as usize;
    let heap = (live * 2).max(768 << 10);
    let make = pseudo_jbb(params);
    let kinds = [
        CollectorKind::MarkSweep,
        CollectorKind::Bc,
        CollectorKind::GenMs,
    ];
    let start = Instant::now();
    let results = parallel_map(params.jobs, &kinds, |_, &kind| {
        let mut config = RunConfig::new(kind, heap, 512 << 20);
        config.sanitize = params.sanitize;
        config.gc_threads = params.gc_threads;
        run(&config, make())
    });
    g.wall = start.elapsed();
    for r in &results {
        g.absorb(r);
    }
    g
}

/// Parallel-tracing cells: the `full_heap_trace` tight-heap shape run
/// through the packet scheduler at 1, 4, and 16 simulated GC workers.
/// The simulated results differ only in pause accounting, but the host
/// pays for packet management, worker selection, and stealing — this
/// group pins that overhead so the scheduler cannot silently slow the
/// tracing loop down.
fn parallel_trace(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("parallel_trace");
    let b = spec("pseudoJBB").expect("pseudoJBB spec");
    let live = ((b.immortal_bytes + b.live_window_bytes) as f64 * params.scale) as usize;
    let heap = (live * 2).max(768 << 10);
    let make = pseudo_jbb(params);
    let kinds = [
        CollectorKind::MarkSweep,
        CollectorKind::Bc,
        CollectorKind::GenMs,
    ];
    let threads = [1usize, 4, 16];
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&k| threads.iter().map(move |&t| (k, t)))
        .collect();
    let start = Instant::now();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, gc_threads)| {
        let mut config = RunConfig::new(kind, heap, 512 << 20);
        config.sanitize = params.sanitize;
        config.gc_threads = gc_threads;
        run(&config, make())
    });
    g.wall = start.elapsed();
    for r in &results {
        g.absorb(r);
    }
    g
}

/// Allocation-rate cells: a roomy heap and ample memory, so almost all
/// simulated work is the mutator allocating. This group's
/// `allocs_per_sec` tracks the host cost of the allocation fast paths
/// (nursery bump, mark-sweep allocation runs).
fn alloc_rate(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("alloc_rate");
    let make = pseudo_jbb(params);
    let heap = scaled(params, 400 << 20);
    let kinds = CollectorKind::FIGURE2;
    let start = Instant::now();
    let results = parallel_map(params.jobs, &kinds, |_, &kind| {
        let mut config = RunConfig::new(kind, heap, 512 << 20);
        config.sanitize = params.sanitize;
        run(&config, make())
    });
    g.wall = start.elapsed();
    for r in &results {
        g.absorb(r);
    }
    g
}

/// Policy-matrix cells: every fig5a collector under each heap-sizing
/// policy (fixed / bc-footprint / membalancer), dynamic pressure. Covers
/// the policy layer's hot paths — sizing hooks after every collection,
/// VMM notification pumping, shrink/regrow bookkeeping — so the baseline
/// gate catches wall-clock regressions in that machinery.
fn policy_pareto(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("policy_pareto");
    let start = Instant::now();
    let runs = fig_policy_runs(params);
    g.wall = start.elapsed();
    for (_, _, r) in &runs {
        g.absorb(r);
    }
    g
}

/// Fig7-style multi-JVM cells: two instances sharing the VMM.
fn multi(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("fig7_multi_jvm");
    let make = pseudo_jbb(params);
    let heap = scaled(params, 77 << 20);
    let kinds = CollectorKind::PRESSURE;
    let memories = params.thin(&[256 << 20, 192 << 20]);
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&k| memories.iter().map(move |&m| (k, m)))
        .collect();
    let start = Instant::now();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, mem)| {
        let mut config = RunConfig::new(kind, heap, scaled(params, mem));
        config.sanitize = params.sanitize;
        config.gc_threads = params.gc_threads;
        run_multi(&config, vec![make(), make()])
    });
    g.wall = start.elapsed();
    for m in &results {
        for r in &m.jvms {
            g.absorb(r);
        }
        g.sim_time = g.sim_time.max(m.total_elapsed);
    }
    g
}

/// Fig7_scale-style fleet cells: hundreds to thousands of tenants
/// time-sliced over one sharded VMM. Exercises the scheduler loop, the
/// sharded frame pools, and the O(events) notification delivery —
/// machinery no other group touches. Unlike the figure (which restricts
/// memory to reproduce the thrash regime, making its cells orders of
/// magnitude slower in simulated faults), this group gives the fleet
/// ample memory: the wall-clock then tracks the per-tenant scheduling and
/// touch machinery itself. Two collectors suffice for a tracker; the
/// figure sweeps all five.
fn fleet(params: &Params) -> GroupPerf {
    let mut g = GroupPerf::new("fig7_scale_fleet");
    let b = spec("pseudoJBB").expect("pseudoJBB spec");
    let kinds = [CollectorKind::Bc, CollectorKind::SemiSpace];
    let procs = params.thin(&FLEET_PROCS);
    let cells: Vec<(CollectorKind, usize)> = kinds
        .iter()
        .flat_map(|&k| procs.iter().map(move |&n| (k, n)))
        .collect();
    let start = Instant::now();
    let results = parallel_map(params.jobs, &cells, |_, &(kind, n)| {
        let per_scale = (params.scale * FLEET_PROCS[0] as f64 / n as f64).min(1.0);
        let mut config = FleetConfig::new(kind, n, 512 << 10, n * (1 << 20));
        config.sanitize = params.sanitize;
        let seed = params.seed;
        run_fleet(&config, &move |i| {
            Box::new(b.program(
                per_scale,
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        })
    });
    g.wall = start.elapsed();
    for f in &results {
        g.cells += 1;
        g.sim_time = g.sim_time.max(f.total_elapsed);
        for t in &f.tenants {
            g.touches += t.vm.touches;
            g.major_faults += t.vm.major_faults;
            g.minor_faults += t.vm.minor_faults;
            g.objects_traced += t.gc.objects_traced;
            g.objects_allocated += t.gc.objects_allocated;
        }
    }
    g
}

/// Extracts `(name, wall_ms)` per group from a simperf JSON document.
/// Hand-rolled (the workspace carries no JSON dependency); anchors on the
/// `{"name":"` that opens each group object.
fn parse_group_walls(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(p) = rest.find("{\"name\":\"") {
        rest = &rest[p + 9..];
        let Some(q) = rest.find('"') else { break };
        let name = rest[..q].to_string();
        let Some(w) = rest[q..].find("\"wall_ms\":") else {
            break;
        };
        let tail = &rest[q + w + 10..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        if let Ok(ms) = tail[..end].parse::<f64>() {
            out.push((name, ms));
        }
        rest = tail;
    }
    out
}

/// Fails (exit 1) when any group regressed past `max_regression` times its
/// baseline wall-clock. Groups absent from either side, and groups whose
/// baseline ran under `MIN_COMPARABLE_MS`, are skipped.
fn check_against_baseline(baseline_json: &str, fresh: &[GroupPerf], max_regression: f64) {
    const MIN_COMPARABLE_MS: f64 = 50.0;
    let base = parse_group_walls(baseline_json);
    let mut failed = false;
    for g in fresh {
        let Some((_, base_ms)) = base.iter().find(|(n, _)| n == g.name) else {
            eprintln!("  {:<24} no baseline entry, skipped", g.name);
            continue;
        };
        let fresh_ms = g.wall.as_secs_f64() * 1e3;
        if *base_ms < MIN_COMPARABLE_MS {
            eprintln!(
                "  {:<24} baseline {base_ms:.1} ms under {MIN_COMPARABLE_MS} ms, skipped",
                g.name
            );
            continue;
        }
        let ratio = fresh_ms / base_ms;
        let verdict = if ratio > max_regression {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!(
            "  {:<24} {fresh_ms:>9.1} ms vs baseline {base_ms:>9.1} ms ({ratio:.2}x) {verdict}",
            g.name
        );
    }
    if failed {
        eprintln!("simperf: wall-clock regression beyond {max_regression}x; see above");
        eprintln!("         (override the threshold with SIMPERF_MAX_REGRESSION=<factor>)");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = Params {
        scale: 0.05,
        seed: 42,
        sweep: SweepDepth::Quick,
        jobs: default_jobs(),
        sanitize: SanitizeLevel::Off,
        gc_threads: 1,
    };
    let mut out_path = String::from("BENCH_simperf.json");
    let mut baseline_path: Option<String> = None;
    let mut max_regression = 2.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => params.scale = 0.01,
            "--scale" => {
                i += 1;
                params.scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                params.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--jobs" => {
                i += 1;
                params.jobs = args[i].parse().expect("--jobs takes an integer");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--baseline" => {
                i += 1;
                baseline_path = Some(args[i].clone());
            }
            "--max-regression" => {
                i += 1;
                max_regression = args[i].parse().expect("--max-regression takes a float");
            }
            "--sanitize" => {
                i += 1;
                params.sanitize =
                    SanitizeLevel::parse(&args[i]).expect("--sanitize takes off, checks, or full");
            }
            "--gc-threads" => {
                i += 1;
                params.gc_threads = args[i].parse().expect("--gc-threads takes an integer");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Ok(v) = std::env::var("SIMPERF_MAX_REGRESSION") {
        max_regression = v.parse().expect("SIMPERF_MAX_REGRESSION takes a float");
    }
    eprintln!(
        "# simperf: scale {}, seed {}, jobs {}, sanitize {}",
        params.scale, params.seed, params.jobs, params.sanitize
    );
    let total_start = Instant::now();
    let groups = [
        no_pressure(&params),
        dynamic(&params),
        multi(&params),
        fleet(&params),
        full_heap_trace(&params),
        parallel_trace(&params),
        alloc_rate(&params),
        policy_pareto(&params),
    ];
    let total_wall = total_start.elapsed();
    let touches: u64 = groups.iter().map(|g| g.touches).sum();
    for g in &groups {
        eprintln!(
            concat!(
                "  {:<24} {:>4} cells  {:>9.1} ms  {:>13} touches  ",
                "{:>12.0} touches/s  {:>11.0} traced/s  {:>11.0} allocs/s"
            ),
            g.name,
            g.cells,
            g.wall.as_secs_f64() * 1e3,
            g.touches,
            g.touches_per_sec(),
            g.per_sec(g.objects_traced),
            g.per_sec(g.objects_allocated),
        );
    }
    let json = format!(
        concat!(
            "{{\"schema\":\"simperf-v1\",\"jobs\":{},\"scale\":{},\"seed\":{},",
            "\"total_wall_ms\":{:.3},\"total_touches\":{},",
            "\"total_touches_per_sec\":{:.0},\"figures\":[{}]}}\n"
        ),
        params.jobs,
        params.scale,
        params.seed,
        total_wall.as_secs_f64() * 1e3,
        touches,
        touches as f64 / total_wall.as_secs_f64().max(1e-9),
        groups
            .iter()
            .map(GroupPerf::to_json)
            .collect::<Vec<_>>()
            .join(","),
    );
    std::fs::write(&out_path, &json).expect("write simperf json");
    eprintln!("wrote {out_path}");
    println!("{json}");
    if let Some(path) = baseline_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        eprintln!("# baseline check against {path} (max {max_regression}x)");
        check_against_baseline(&baseline, &groups, max_regression);
    }
}
