//! A minimal scoped-thread worker pool for the experiment harness.
//!
//! Every figure cell (collector × benchmark × heap × pressure scenario) is
//! an independent, deterministic simulation, so the run matrix fans out
//! across threads with no synchronization beyond a shared work counter.
//! Results land in per-cell slots indexed by the item's position, which is
//! what makes parallel output **byte-identical** to a serial run: assembly
//! order is the slice order, never completion order.
//!
//! Std-only by design (`std::thread::scope` + atomics), matching the
//! repository's vendored-shim policy of no external dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item, using up to `jobs` worker threads, and
/// returns the results **in item order**.
///
/// `f` receives `(index, &item)` and must be callable from any worker
/// (`Sync`); per-run state that is not `Send` — tracers, programs, the
/// simulator itself — is constructed inside `f`, never shared. With
/// `jobs <= 1` (or one item) everything runs on the calling thread, making
/// `--jobs 1` an exact serial replay.
///
/// # Panics
///
/// Propagates the first worker panic after all threads join (via
/// `std::thread::scope`).
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    // Each worker keeps (index, result) pairs locally; the
                    // scan index is the only shared state.
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker panicked") {
                debug_assert!(slots[i].is_none(), "cell {i} claimed twice");
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("worker filled every slot"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_regardless_of_jobs() {
        let items: Vec<usize> = (0..64).collect();
        let serial = parallel_map(1, &items, |i, &x| (i, x * x));
        for jobs in [2, 4, 16, 100] {
            let parallel = parallel_map(jobs, &items, |i, &x| (i, x * x));
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = parallel_map(8, &[], |_, x: &u32| *x);
        assert!(none.is_empty());
        let one = parallel_map(8, &[7u32], |i, x| x + i as u32);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn every_index_is_processed_exactly_once() {
        let counts: Vec<std::sync::atomic::AtomicUsize> =
            (0..200).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..200).collect();
        parallel_map(8, &items, |i, _| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }
}
