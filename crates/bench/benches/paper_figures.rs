//! `cargo bench` front end for the paper's tables and figures.
//!
//! Each Criterion benchmark regenerates one table/figure at a small
//! workload scale and prints it, so `cargo bench --workspace` leaves the
//! full set of reproduced results in the bench output. For
//! publication-scale runs use the dedicated binary:
//!
//! ```text
//! cargo run --release -p bench --bin figures -- all --scale 0.25
//! ```

use criterion::{criterion_group, criterion_main, Criterion};

use bench::pressure_figs::{
    fig3_report, fig4_report, fig5a_report, fig5b_report, fig6_report, fig7_report,
};
use bench::{fig2_report, table1_report, Params};

fn quick() -> Params {
    Params::quick()
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("min_heaps", |b| {
        b.iter(|| {
            let t = table1_report(&quick());
            println!("{t}");
            t
        });
    });
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("no_pressure_geomean", |b| {
        b.iter(|| {
            let t = fig2_report(&quick());
            println!("{t}");
            t
        });
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("steady_pressure", |b| {
        b.iter(|| {
            let (a, p) = fig3_report(&quick());
            println!("{a}\n{p}");
            (a, p)
        });
    });
    group.finish();
}

fn bench_fig4_5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_5");
    group.sample_size(10);
    group.bench_function("dynamic_pressure", |b| {
        b.iter(|| {
            let f4 = fig4_report(&quick());
            let f5a = fig5a_report(&quick());
            let f5b = fig5b_report(&quick());
            println!("{f4}\n{f5a}\n{f5b}");
            (f4, f5a, f5b)
        });
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("bmu_curves", |b| {
        b.iter(|| {
            let ts = fig6_report(&quick());
            for t in &ts {
                println!("{t}");
            }
            ts
        });
    });
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("multi_jvm", |b| {
        b.iter(|| {
            let (a, p) = fig7_report(&quick());
            println!("{a}\n{p}");
            (a, p)
        });
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig2,
    bench_fig3,
    bench_fig4_5,
    bench_fig6,
    bench_fig7
);
criterion_main!(figures);
