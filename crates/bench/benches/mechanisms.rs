//! Criterion micro-benchmarks of the collector mechanisms: allocation,
//! the write barrier, nursery collection, full collection, and BC's
//! eviction-time bookmark scan.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bookmarking::{BcOptions, Bookmarking};
use heap::{AllocKind, CollectKind, GcHeap, HeapConfig, MemCtx};
use simtime::{Clock, CostModel};
use simulate::CollectorKind;
use vmm::{Vmm, VmmConfig};

fn fresh(kind: CollectorKind) -> (Vmm, Clock, vmm::ProcessId, Box<dyn GcHeap>) {
    let mut vmm = Vmm::new(
        VmmConfig::builder().memory_bytes(256 << 20).build(),
        CostModel::default(),
    );
    let clock = Clock::new();
    let pid = vmm.register_process();
    let gc = kind.build(32 << 20, telemetry::Tracer::disabled(), &mut vmm, pid);
    (vmm, clock, pid, gc)
}

fn bench_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc");
    for kind in [
        CollectorKind::Bc,
        CollectorKind::GenMs,
        CollectorKind::SemiSpace,
    ] {
        group.bench_function(kind.label(), |b| {
            let (mut vmm, mut clock, pid, mut gc) = fresh(kind);
            b.iter(|| {
                let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
                let h = gc
                    .alloc(
                        &mut ctx,
                        AllocKind::Scalar {
                            data_words: 6,
                            num_refs: 2,
                        },
                    )
                    .unwrap();
                gc.drop_handle(black_box(h));
            });
        });
    }
    group.finish();
}

fn bench_write_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_barrier");
    for kind in [CollectorKind::Bc, CollectorKind::GenMs] {
        group.bench_function(kind.label(), |b| {
            let (mut vmm, mut clock, pid, mut gc) = fresh(kind);
            let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
            let old = gc.alloc(&mut ctx, AllocKind::RefArray { len: 64 }).unwrap();
            gc.collect(&mut ctx, CollectKind::Minor); // promote `old`
            let young = gc
                .alloc(
                    &mut ctx,
                    AllocKind::Scalar {
                        data_words: 2,
                        num_refs: 1,
                    },
                )
                .unwrap();
            let mut i = 0u32;
            b.iter(|| {
                let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
                gc.write_ref(&mut ctx, old, i % 64, Some(young));
                i = i.wrapping_add(1);
            });
        });
    }
    group.finish();
}

fn bench_nursery_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("nursery_gc_1000_live");
    group.sample_size(20);
    for kind in [
        CollectorKind::Bc,
        CollectorKind::GenMs,
        CollectorKind::GenCopy,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let (mut vmm, mut clock, pid, mut gc) = fresh(kind);
                let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
                let held: Vec<_> = (0..1000)
                    .map(|_| {
                        gc.alloc(
                            &mut ctx,
                            AllocKind::Scalar {
                                data_words: 8,
                                num_refs: 2,
                            },
                        )
                        .unwrap()
                    })
                    .collect();
                gc.collect(&mut ctx, CollectKind::Minor);
                black_box(held);
            });
        });
    }
    group.finish();
}

fn bench_full_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_gc_10k_live");
    group.sample_size(10);
    for kind in [
        CollectorKind::Bc,
        CollectorKind::GenMs,
        CollectorKind::MarkSweep,
        CollectorKind::SemiSpace,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let (mut vmm, mut clock, pid, mut gc) = fresh(kind);
                let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
                let held: Vec<_> = (0..10_000)
                    .map(|_| {
                        gc.alloc(
                            &mut ctx,
                            AllocKind::Scalar {
                                data_words: 8,
                                num_refs: 2,
                            },
                        )
                        .unwrap()
                    })
                    .collect();
                gc.collect(&mut ctx, CollectKind::Full);
                black_box(held);
            });
        });
    }
    group.finish();
}

fn bench_bookmark_scan(c: &mut Criterion) {
    // The §3.4 eviction path: scan a victim page, set bookmarks, relinquish.
    c.bench_function("bookmark_scan_and_relinquish_page", |b| {
        b.iter(|| {
            let mut vmm = Vmm::new(
                VmmConfig::builder().memory_bytes(8 << 20).build(),
                CostModel::default(),
            );
            let mut clock = Clock::new();
            let pid = vmm.register_process();
            let hog = vmm.register_process();
            let mut bc = Bookmarking::new(
                HeapConfig::builder().heap_bytes(2 << 20).build(),
                BcOptions::default(),
            );
            bc.register(&mut vmm, pid);
            let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
            let held: Vec<_> = (0..2_000)
                .map(|_| {
                    bc.alloc(
                        &mut ctx,
                        AllocKind::Scalar {
                            data_words: 8,
                            num_refs: 2,
                        },
                    )
                    .unwrap()
                })
                .collect();
            bc.collect(&mut ctx, CollectKind::Full);
            // Squeeze until pages are relinquished.
            let mut pinned = 0;
            while bc.evicted_heap_pages() == 0 && pinned < 2040 {
                if vmm.free_frames() > 8 {
                    vmm.mlock(hog, vmm::VirtPage::new(pinned), &mut clock);
                    pinned += 1;
                }
                vmm.pump(&mut clock);
                let mut ctx = MemCtx::new(&mut vmm, &mut clock, pid);
                bc.handle_vm_events(&mut ctx);
            }
            black_box((held, bc.evicted_heap_pages()));
        });
    });
}

criterion_group!(
    benches,
    bench_alloc,
    bench_write_barrier,
    bench_nursery_gc,
    bench_full_gc,
    bench_bookmark_scan
);
criterion_main!(benches);
