//! Ablation benchmarks for the design choices DESIGN.md calls out and the
//! paper's §7 future-work extensions:
//!
//! * victim-page selection: kernel choice (evaluated in the paper) vs. the
//!   §7 pointer-free preference;
//! * heap regrowth after transient pressure (§7);
//! * swap-device speed: the paper's disk (~5 ms faults) vs. an SSD-like
//!   device (~100 µs) — how much of BC's advantage survives when faults
//!   are only ~50x (not ~10⁶x) a RAM access.
//!
//! Each bench prints a small comparison table alongside its timing.

use criterion::{criterion_group, criterion_main, Criterion};

use bookmarking::{BcOptions, VictimPolicy};
use simtime::{CostModel, Nanos};
use simulate::{run, CollectorKind, Program, RunConfig, RunResult};
use workloads::spec;

const SCALE: f64 = 0.02;

fn pseudo_jbb() -> impl Fn() -> Box<dyn Program> {
    let b = spec("pseudoJBB").unwrap();
    move || Box::new(b.program(SCALE, 42))
}

fn eq(paper: usize) -> usize {
    (paper as f64 * SCALE) as usize
}

fn describe(label: &str, r: &RunResult) {
    println!(
        "  {label:<28} exec {:>9}  mean pause {:>9}  faults {:>6}  bookmarks {:>7}  vetoes {:>4}  regrows {:>3}",
        r.exec_time.to_string(),
        r.pauses.mean.to_string(),
        r.vm.major_faults,
        r.gc.bookmarks_set,
        r.gc.victims_vetoed,
        r.gc.heap_regrows,
    );
}

/// Runs BC under dynamic pressure with explicit options (bypassing
/// `CollectorKind` to reach the §7 knobs).
fn run_bc_with(options: BcOptions, target_avail: usize) -> RunResult {
    use bookmarking::Bookmarking;
    use heap::HeapConfig;
    use simulate::{Engine, JvmProcess, Signalmem, SignalmemConfig};
    use vmm::{Vmm, VmmConfig};

    let heap = eq(100 << 20);
    let memory = eq(224 << 20);
    let mut vmm = Vmm::new(
        VmmConfig::builder().memory_bytes(memory).build(),
        CostModel::default(),
    );
    let pid = vmm.register_process();
    let bc = Bookmarking::new(HeapConfig::builder().heap_bytes(heap).build(), options);
    bc.register(&mut vmm, pid);
    let make = pseudo_jbb();
    let mut engine = Engine::new(vmm);
    engine.jvms.push(JvmProcess::new(pid, Box::new(bc), make()));
    let mut pressure =
        SignalmemConfig::dynamic(memory.saturating_sub(target_avail), Nanos::from_millis(1));
    pressure.initial_pages = ((pressure.initial_pages as f64) * SCALE) as usize;
    pressure.step_pages = ((pressure.step_pages as f64) * SCALE).max(1.0) as usize;
    pressure.interval = Nanos((pressure.interval.as_nanos() as f64 * SCALE * 0.2) as u64);
    let sm_pid = engine.vmm.register_process();
    engine.signalmem = Some(Signalmem::new(pressure, sm_pid));
    engine.run_to_completion();
    let jvm = &engine.jvms[0];
    RunResult {
        collector: CollectorKind::Bc,
        benchmark: jvm.program.name().to_string(),
        exec_time: jvm.finish_time.unwrap_or(jvm.clock.now()),
        oom: jvm.failed.is_some(),
        timed_out: engine.timed_out(),
        pauses: jvm.gc.pause_log().stats(),
        pause_records: jvm.gc.pause_log().records().to_vec(),
        gc: *jvm.gc.stats(),
        vm: *engine.vmm.stats(jvm.pid),
        metrics: jvm.gc.metrics(engine.vmm.stats(jvm.pid)),
    }
}

fn bench_victim_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_victim_policy");
    group.sample_size(10);
    group.bench_function("kernel_choice_vs_pointer_free", |b| {
        b.iter(|| {
            println!("== ablation: victim selection (paper-equivalent 44MB available) ==");
            let kernel = run_bc_with(BcOptions::default(), eq(44 << 20));
            describe("kernel choice (paper)", &kernel);
            let opts = BcOptions {
                victim_policy: VictimPolicy::PreferPointerFree {
                    max_pointers: 8,
                    max_vetoes: 4,
                },
                ..Default::default()
            };
            let ptr_free = run_bc_with(opts, eq(44 << 20));
            describe("prefer pointer-free (§7)", &ptr_free);
            (kernel.exec_time, ptr_free.exec_time)
        });
    });
    group.finish();
}

fn bench_regrowth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_regrowth");
    group.sample_size(10);
    group.bench_function("shrink_only_vs_regrow", |b| {
        b.iter(|| {
            println!("== ablation: heap regrowth after a transient spike ==");
            let fixed = run_bc_with(BcOptions::default(), eq(80 << 20));
            describe("shrink-only (paper)", &fixed);
            let opts = BcOptions {
                regrow: true,
                ..Default::default()
            };
            let regrow = run_bc_with(opts, eq(80 << 20));
            describe("regrow enabled (§7)", &regrow);
            (fixed.gc.total_gcs(), regrow.gc.total_gcs())
        });
    });
    group.finish();
}

fn bench_swap_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_swap_device");
    group.sample_size(10);
    group.bench_function("disk_vs_ssd", |b| {
        b.iter(|| {
            println!("== ablation: swap-device speed (GenMS, heavy pressure) ==");
            let make = pseudo_jbb();
            let heap = eq(100 << 20);
            let memory = eq(224 << 20);
            // The 2x2 (device x collector) grid fans out across workers;
            // results come back in grid order, so the printout is stable.
            let mut grid: Vec<(&str, Nanos, CollectorKind)> = Vec::new();
            for (label, fault) in [
                ("disk (5ms, paper)", Nanos::from_millis(5)),
                ("ssd (100us)", Nanos::from_micros(100)),
            ] {
                for kind in [CollectorKind::Bc, CollectorKind::GenMs] {
                    grid.push((label, fault, kind));
                }
            }
            let results =
                bench::parallel_map(bench::default_jobs(), &grid, |_, &(_, fault, kind)| {
                    let mut config = RunConfig::new(kind, heap, memory);
                    config.costs.major_fault = fault;
                    config.pressure = Some({
                        let mut p = simulate::SignalmemConfig::dynamic(
                            memory.saturating_sub(eq(60 << 20)),
                            Nanos::from_millis(1),
                        );
                        p.initial_pages = ((p.initial_pages as f64) * SCALE) as usize;
                        p.step_pages = ((p.step_pages as f64) * SCALE).max(1.0) as usize;
                        p.interval = Nanos((p.interval.as_nanos() as f64 * SCALE * 0.2) as u64);
                        p
                    });
                    run(&config, make())
                });
            let mut out = Vec::new();
            for ((label, _, kind), r) in grid.iter().zip(&results) {
                println!(
                    "  {label:<20} {:<8} exec {:>9}  mean pause {:>9}  faults {:>6}",
                    kind.label(),
                    r.exec_time.to_string(),
                    r.pauses.mean.to_string(),
                    r.vm.major_faults
                );
                out.push(r.exec_time);
            }
            out
        });
    });
    group.finish();
}

criterion_group!(
    ablations,
    bench_victim_policy,
    bench_regrowth,
    bench_swap_device
);
criterion_main!(ablations);
