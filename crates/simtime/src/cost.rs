//! The memory-hierarchy cost model.

use crate::Nanos;

/// Simulated cost of every chargeable event in the system.
///
/// The defaults model the paper's testbed (§5.1: 1.6 GHz Pentium M, 1 GB RAM,
/// local swap) at the granularity the paper's argument needs: resident memory
/// operations cost nanoseconds while a major fault costs milliseconds — the
/// *"approximately six orders of magnitude"* gap of §1 that makes paging
/// catastrophic.
///
/// All costs are plain public fields so experiments can build ablated models
/// (e.g. a faster SSD-like swap device) by mutating a default:
///
/// ```
/// use simtime::{CostModel, Nanos};
///
/// let mut ssd = CostModel::default();
/// ssd.major_fault = Nanos::from_micros(100); // ~50x faster than disk
/// assert!(ssd.major_fault < CostModel::default().major_fault);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// One word (4 B) access in resident RAM — mutator or collector.
    pub ram_word: Nanos,
    /// Fixed overhead of allocating one object (bump or free-list pop),
    /// excluding the per-word touch of its memory.
    pub alloc_object: Nanos,
    /// Fixed overhead of the collector visiting one object during tracing
    /// (mark test + enqueue), excluding per-reference work.
    pub scan_object: Nanos,
    /// Cost of processing one reference slot during tracing.
    pub scan_ref: Nanos,
    /// Copy/compact cost per byte moved.
    pub copy_byte: Nanos,
    /// Write-barrier bookkeeping per recorded pointer store.
    pub barrier: Nanos,
    /// Fixed cost of starting/finishing one collection (stack scan, flip).
    pub gc_setup: Nanos,
    /// A minor (protection/soft) fault: kernel upcall + signal delivery.
    pub minor_fault: Nanos,
    /// A major fault: page read from the swap device. The paper's premise is
    /// that this dwarfs `ram_word` by ~10⁶.
    pub major_fault: Nanos,
    /// Synchronous share of evicting one dirty page (write-back setup).
    /// The device-level transfer itself is overlapped, as in Linux.
    pub evict_dirty: Nanos,
    /// Synchronous share of evicting one clean page (unmap only).
    pub evict_clean: Nanos,
    /// Handling one eviction/residency notification (signal handler entry),
    /// excluding any page scanning the handler performs.
    pub notification: Nanos,
    /// One system call (`madvise`, `mprotect`, `vm_relinquish`, `mlock`).
    pub syscall: Nanos,
    /// Application compute between allocations (charged per allocation by
    /// the workload generators). Calibrated so a full-scale pseudoJBB run
    /// takes tens of simulated seconds, as on the paper's testbed.
    pub mutator_work: Nanos,
    /// Extra per-allocation cost of a non-generational free-list allocator
    /// over bump allocation: free-list search plus the mutator-locality gap
    /// the paper observes for whole-heap mark-sweep ("MarkSweep averages a
    /// 20% slowdown", §5.2). Charged only by collectors that allocate
    /// directly into the segregated-fit space.
    pub alloc_freelist_extra: Nanos,
    /// Transferring one work packet between simulated GC workers (a steal):
    /// CAS on the victim's deque plus the cache-line transfer of the packet
    /// header. Charged to the thief's worker time only when a steal actually
    /// happens, so single-threaded tracing never pays it.
    pub steal_packet: Nanos,
}

impl CostModel {
    /// The ratio between a major fault and a resident word access.
    ///
    /// The paper's premise (§1) is that this is roughly 10⁶.
    pub fn fault_to_ram_ratio(&self) -> f64 {
        self.major_fault.as_nanos() as f64 / self.ram_word.as_nanos().max(1) as f64
    }

    /// A cost model in which paging is free.
    ///
    /// Useful for isolating algorithmic costs in tests: with zero-cost faults
    /// every collector degenerates to its no-pressure behaviour.
    pub fn free_paging() -> CostModel {
        CostModel {
            minor_fault: Nanos::ZERO,
            major_fault: Nanos::ZERO,
            evict_dirty: Nanos::ZERO,
            evict_clean: Nanos::ZERO,
            ..CostModel::default()
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            ram_word: Nanos(2),
            alloc_object: Nanos(40),
            scan_object: Nanos(300),
            scan_ref: Nanos(30),
            copy_byte: Nanos(3),
            barrier: Nanos(8),
            gc_setup: Nanos::from_micros(200),
            minor_fault: Nanos::from_micros(3),
            major_fault: Nanos::from_millis(5),
            evict_dirty: Nanos::from_micros(40),
            evict_clean: Nanos::from_micros(4),
            notification: Nanos::from_micros(2),
            syscall: Nanos::from_micros(1),
            mutator_work: Nanos::from_micros(3),
            alloc_freelist_extra: Nanos(500),
            steal_packet: Nanos(250),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preserves_six_orders_of_magnitude() {
        // §1: "disk accesses are approximately six orders of magnitude more
        // expensive than main memory accesses".
        let m = CostModel::default();
        let ratio = m.fault_to_ram_ratio();
        assert!(
            (1e5..=1e7).contains(&ratio),
            "fault/ram ratio {ratio} outside the paper's premise"
        );
    }

    #[test]
    fn free_paging_zeroes_only_paging_costs() {
        let m = CostModel::free_paging();
        assert_eq!(m.major_fault, Nanos::ZERO);
        assert_eq!(m.minor_fault, Nanos::ZERO);
        assert_eq!(m.evict_dirty, Nanos::ZERO);
        assert_eq!(m.evict_clean, Nanos::ZERO);
        assert_eq!(m.ram_word, CostModel::default().ram_word);
        assert_eq!(m.scan_object, CostModel::default().scan_object);
    }

    #[test]
    fn faults_dwarf_collection_work() {
        // One major fault must exceed the cost of scanning thousands of
        // objects, otherwise BC's scan-instead-of-fault trade (§3.4.1:
        // "scanning every object is often much smaller than the cost of even
        // a single page fault") would not hold in the simulation.
        let m = CostModel::default();
        let scan_4k_objects = (m.scan_object + m.scan_ref * 2) * 4096;
        assert!(m.major_fault > scan_4k_objects);
    }
}
