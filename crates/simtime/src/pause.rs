//! Garbage-collection pause records and summary statistics.

use crate::Nanos;

/// What kind of collection produced a pause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PauseKind {
    /// A nursery (minor) collection.
    Nursery,
    /// A full-heap mark-sweep (or whole-heap copying) collection.
    Full,
    /// A full-heap *compacting* collection (BC §3.2, or semispace copy).
    Compacting,
    /// BC's completeness fail-safe: a full collection that may touch
    /// evicted pages after discarding all bookmarks (§3.5).
    FailSafe,
}

/// One stop-the-world pause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PauseRecord {
    /// Simulated instant at which the mutator stopped.
    pub start: Nanos,
    /// Pause duration, including any page-fault stalls taken by the
    /// collector while tracing.
    pub duration: Nanos,
    /// The collection kind.
    pub kind: PauseKind,
    /// Major faults incurred *by the collector* during this pause.
    pub major_faults: u64,
}

impl PauseRecord {
    /// The instant the mutator resumed.
    pub fn end(&self) -> Nanos {
        self.start + self.duration
    }
}

/// Summary statistics over a pause log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PauseStats {
    /// Number of pauses.
    pub count: u64,
    /// Total stopped time.
    pub total: Nanos,
    /// Mean pause (zero if no pauses).
    pub mean: Nanos,
    /// Longest pause.
    pub max: Nanos,
    /// Total collector-incurred major faults.
    pub major_faults: u64,
}

/// An append-only log of stop-the-world pauses for one process.
///
/// The experiment harness reads average and maximum pause times from here
/// (Figures 3b, 4, 7b) and feeds the intervals to [`bmu_curve`] for the
/// utilization curves of Figure 6.
///
/// [`bmu_curve`]: crate::bmu_curve
///
/// # Example
///
/// ```
/// use simtime::{Nanos, PauseKind, PauseLog};
///
/// let mut log = PauseLog::new();
/// log.record(Nanos(100), Nanos(40), PauseKind::Nursery, 0);
/// log.record(Nanos(500), Nanos(60), PauseKind::Full, 2);
/// let stats = log.stats();
/// assert_eq!(stats.count, 2);
/// assert_eq!(stats.mean, Nanos(50));
/// assert_eq!(stats.max, Nanos(60));
/// assert_eq!(stats.major_faults, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PauseLog {
    records: Vec<PauseRecord>,
}

impl PauseLog {
    /// Creates an empty log.
    pub fn new() -> PauseLog {
        PauseLog::default()
    }

    /// Appends a pause.
    pub fn record(&mut self, start: Nanos, duration: Nanos, kind: PauseKind, major_faults: u64) {
        self.records.push(PauseRecord {
            start,
            duration,
            kind,
            major_faults,
        });
    }

    /// All pauses, in chronological order.
    pub fn records(&self) -> &[PauseRecord] {
        &self.records
    }

    /// Whether no pause has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of recorded pauses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Summary statistics over every pause.
    pub fn stats(&self) -> PauseStats {
        self.stats_filtered(|_| true)
    }

    /// Summary statistics over pauses of one kind.
    pub fn stats_for(&self, kind: PauseKind) -> PauseStats {
        self.stats_filtered(|r| r.kind == kind)
    }

    /// Count of full-heap (non-nursery) collections.
    pub fn full_collections(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.kind != PauseKind::Nursery)
            .count() as u64
    }

    /// Clears the log (between benchmark iterations).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    fn stats_filtered(&self, mut keep: impl FnMut(&PauseRecord) -> bool) -> PauseStats {
        let mut stats = PauseStats::default();
        for r in self.records.iter().filter(|r| keep(r)) {
            stats.count += 1;
            stats.total += r.duration;
            stats.max = stats.max.max(r.duration);
            stats.major_faults += r.major_faults;
        }
        if stats.count > 0 {
            stats.mean = stats.total / stats.count;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> PauseLog {
        let mut log = PauseLog::new();
        log.record(Nanos(0), Nanos(10), PauseKind::Nursery, 0);
        log.record(Nanos(100), Nanos(30), PauseKind::Nursery, 0);
        log.record(Nanos(200), Nanos(200), PauseKind::Full, 5);
        log.record(Nanos(900), Nanos(400), PauseKind::Compacting, 1);
        log
    }

    #[test]
    fn empty_log_has_zero_stats() {
        let log = PauseLog::new();
        assert!(log.is_empty());
        let s = log.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, Nanos::ZERO);
        assert_eq!(s.max, Nanos::ZERO);
    }

    #[test]
    fn stats_aggregate_all_kinds() {
        let s = sample_log().stats();
        assert_eq!(s.count, 4);
        assert_eq!(s.total, Nanos(640));
        assert_eq!(s.mean, Nanos(160));
        assert_eq!(s.max, Nanos(400));
        assert_eq!(s.major_faults, 6);
    }

    #[test]
    fn stats_for_filters_by_kind() {
        let log = sample_log();
        let nursery = log.stats_for(PauseKind::Nursery);
        assert_eq!(nursery.count, 2);
        assert_eq!(nursery.mean, Nanos(20));
        let full = log.stats_for(PauseKind::Full);
        assert_eq!(full.count, 1);
        assert_eq!(full.major_faults, 5);
        assert_eq!(log.full_collections(), 2);
    }

    #[test]
    fn record_end_is_start_plus_duration() {
        let r = PauseRecord {
            start: Nanos(7),
            duration: Nanos(5),
            kind: PauseKind::Full,
            major_faults: 0,
        };
        assert_eq!(r.end(), Nanos(12));
    }

    #[test]
    fn clear_empties_the_log() {
        let mut log = sample_log();
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
    }
}

/// Percentile view over a pause log (p50/p90/p99/max), the standard way
/// latency-oriented GC evaluations summarize pause distributions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PausePercentiles {
    /// Median pause.
    pub p50: Nanos,
    /// 90th percentile.
    pub p90: Nanos,
    /// 99th percentile.
    pub p99: Nanos,
    /// Longest pause.
    pub max: Nanos,
}

impl PauseLog {
    /// Computes pause percentiles (nearest-rank). Zero everywhere for an
    /// empty log.
    pub fn percentiles(&self) -> PausePercentiles {
        if self.records.is_empty() {
            return PausePercentiles::default();
        }
        let mut durations: Vec<Nanos> = self.records.iter().map(|r| r.duration).collect();
        durations.sort_unstable();
        let rank = |p: f64| -> Nanos {
            let n = durations.len();
            let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
            durations[idx]
        };
        PausePercentiles {
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: *durations.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod percentile_tests {
    use super::*;

    #[test]
    fn empty_log_has_zero_percentiles() {
        assert_eq!(PauseLog::new().percentiles(), PausePercentiles::default());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut log = PauseLog::new();
        for i in 1..=100u64 {
            log.record(Nanos(i * 1000), Nanos(i), PauseKind::Full, 0);
        }
        let p = log.percentiles();
        assert_eq!(p.p50, Nanos(50));
        assert_eq!(p.p90, Nanos(90));
        assert_eq!(p.p99, Nanos(99));
        assert_eq!(p.max, Nanos(100));
    }

    #[test]
    fn single_pause_fills_every_percentile() {
        let mut log = PauseLog::new();
        log.record(Nanos(0), Nanos(7), PauseKind::Nursery, 0);
        let p = log.percentiles();
        assert_eq!(p.p50, Nanos(7));
        assert_eq!(p.p99, Nanos(7));
        assert_eq!(p.max, Nanos(7));
    }
}
