//! Simulated time for the bookmarking-collector reproduction.
//!
//! The evaluation in *Garbage Collection Without Paging* (PLDI 2005) was run
//! on a 1.6 GHz Pentium M with 1 GB of RAM and a local swap disk. This crate
//! replaces wall-clock measurement with a **deterministic simulated clock**:
//! every memory access, fault, collection step, and mutator operation charges
//! a configurable number of simulated nanoseconds to a [`Clock`].
//!
//! The single property the paper's argument needs from the hardware is that
//! disk accesses are *"approximately six orders of magnitude more expensive
//! than main memory accesses"* (§1). The default [`CostModel`] preserves that
//! ratio (2 ns RAM word access vs. 5 ms major fault).
//!
//! The crate also provides the measurement tools the paper uses:
//!
//! * [`PauseLog`] — per-collection pause records (average/maximum pause,
//!   Figures 3b, 4, 7b),
//! * [`bmu_curve`] — *bounded mutator utilization* curves (Figure 6), following
//!   Cheng & Blelloch as adapted by Sachindran, Moss & Berger (MC²).
//!
//! # Example
//!
//! ```
//! use simtime::{Clock, CostModel, Nanos};
//!
//! let costs = CostModel::default();
//! let mut clock = Clock::new();
//! clock.advance(costs.ram_word);        // a resident memory access
//! clock.advance(costs.major_fault);     // a page fault: ~6 orders costlier
//! assert!(clock.now() > Nanos(5_000_000));
//! ```

#![warn(missing_docs)]

mod bmu;
mod clock;
mod cost;
mod pause;

pub use bmu::{bmu_curve, mmu_curve, BmuPoint};
pub use clock::{Clock, Nanos};
pub use cost::CostModel;
pub use pause::{PauseKind, PauseLog, PausePercentiles, PauseRecord, PauseStats};
