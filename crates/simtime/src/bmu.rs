//! Bounded mutator utilization (BMU) curves — Figure 6 of the paper.
//!
//! *Mutator utilization* over a time window is the fraction of that window
//! during which the mutator (rather than the collector) ran. The paper adopts
//! the *bounded* variant of Sachindran, Moss & Berger: the BMU for a window
//! size `w` is the minimum mutator utilization over all windows of size `w`
//! **or greater**, which makes the curve monotone and readable.

use crate::{Nanos, PauseRecord};

/// One point of a BMU/MMU curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BmuPoint {
    /// Window size.
    pub window: Nanos,
    /// Utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Exact minimum mutator utilization (MMU) for one window size.
///
/// The minimizing window either starts at a pause start or ends at a pause
/// end, so it suffices to evaluate those candidates (plus the run
/// boundaries). `pauses` must be chronological and non-overlapping;
/// `total` is the full execution time.
fn mmu_at(pauses: &[PauseRecord], total: Nanos, window: Nanos) -> f64 {
    let w = window.as_nanos().min(total.as_nanos());
    if w == 0 {
        return 0.0;
    }
    // Prefix sums of pause durations for O(log n) range queries.
    let starts: Vec<u64> = pauses.iter().map(|p| p.start.as_nanos()).collect();
    let ends: Vec<u64> = pauses.iter().map(|p| p.end().as_nanos()).collect();
    let mut prefix = Vec::with_capacity(pauses.len() + 1);
    prefix.push(0u64);
    for p in pauses {
        prefix.push(prefix.last().unwrap() + p.duration.as_nanos());
    }
    // Total pause time intersecting [a, a+w].
    let paused_in = |a: u64| -> u64 {
        let b = a + w;
        // First pause whose end is after `a`.
        let lo = ends.partition_point(|&e| e <= a);
        // First pause whose start is >= b.
        let hi = starts.partition_point(|&s| s < b);
        if lo >= hi {
            return 0;
        }
        let mut sum = prefix[hi] - prefix[lo];
        // Trim the partially overlapping first and last pauses.
        sum -= a
            .saturating_sub(starts[lo])
            .min(pauses[lo].duration.as_nanos());
        sum -= ends[hi - 1]
            .saturating_sub(b)
            .min(pauses[hi - 1].duration.as_nanos());
        sum
    };
    let mut worst: u64 = 0;
    let mut consider = |a: u64| {
        if a + w <= total.as_nanos() {
            worst = worst.max(paused_in(a));
        }
    };
    consider(0);
    consider(total.as_nanos().saturating_sub(w));
    for p in pauses {
        consider(p.start.as_nanos());
        consider(p.end().as_nanos().saturating_sub(w));
    }
    1.0 - worst as f64 / w as f64
}

/// Computes an MMU curve over logarithmically spaced window sizes.
///
/// `pauses` must be chronological and non-overlapping (as produced by a
/// [`PauseLog`](crate::PauseLog)); `total` is the execution time;
/// `points` is the number of window sizes, spaced between 1 µs and `total`.
pub fn mmu_curve(pauses: &[PauseRecord], total: Nanos, points: usize) -> Vec<BmuPoint> {
    log_windows(total, points)
        .map(|w| BmuPoint {
            window: w,
            utilization: mmu_at(pauses, total, w),
        })
        .collect()
}

/// Computes a BMU curve (monotone envelope of the MMU curve).
///
/// For each window size `w`, utilization is the minimum MMU over every
/// evaluated window of size `>= w`. The result is non-decreasing in `w`
/// and its right endpoint equals overall utilization
/// `(total - total_pause) / total`.
///
/// # Example
///
/// ```
/// use simtime::{bmu_curve, Nanos, PauseKind, PauseLog};
///
/// let mut log = PauseLog::new();
/// log.record(Nanos::from_millis(10), Nanos::from_millis(5), PauseKind::Full, 0);
/// let curve = bmu_curve(log.records(), Nanos::from_millis(100), 16);
/// assert!(curve.windows(2).all(|p| p[0].utilization <= p[1].utilization + 1e-12));
/// ```
pub fn bmu_curve(pauses: &[PauseRecord], total: Nanos, points: usize) -> Vec<BmuPoint> {
    let mut curve = mmu_curve(pauses, total, points);
    // Suffix-minimum pass makes the curve "bounded" (monotone).
    let mut min_so_far = f64::INFINITY;
    for point in curve.iter_mut().rev() {
        min_so_far = min_so_far.min(point.utilization);
        point.utilization = min_so_far;
    }
    curve
}

fn log_windows(total: Nanos, points: usize) -> impl Iterator<Item = Nanos> {
    let lo = 1_000f64; // 1 us
    let hi = (total.as_nanos().max(2_000)) as f64;
    let n = points.max(2);
    (0..n).map(move |i| {
        let t = i as f64 / (n - 1) as f64;
        Nanos((lo * (hi / lo).powf(t)).round() as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PauseKind;

    fn pause(start: u64, dur: u64) -> PauseRecord {
        PauseRecord {
            start: Nanos(start),
            duration: Nanos(dur),
            kind: PauseKind::Full,
            major_faults: 0,
        }
    }

    #[test]
    fn no_pauses_is_full_utilization() {
        let curve = bmu_curve(&[], Nanos::from_secs(1), 8);
        assert!(curve.iter().all(|p| (p.utilization - 1.0).abs() < 1e-12));
    }

    #[test]
    fn window_equal_to_pause_has_zero_utilization() {
        let pauses = [pause(1_000_000, 500_000)];
        let u = mmu_at(&pauses, Nanos::from_secs(1), Nanos(500_000));
        assert_eq!(u, 0.0);
        let u = mmu_at(&pauses, Nanos::from_secs(1), Nanos(250_000));
        assert_eq!(u, 0.0, "window inside the pause is fully stopped");
    }

    #[test]
    fn whole_run_window_matches_overall_utilization() {
        let total = Nanos::from_secs(1);
        let pauses = [pause(0, 100_000_000), pause(500_000_000, 100_000_000)];
        let u = mmu_at(&pauses, total, total);
        assert!((u - 0.8).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn bmu_is_monotone_even_when_mmu_is_not() {
        // Dense small pauses early, one huge pause late: the raw MMU curve
        // dips at large windows; BMU must not.
        let mut pauses: Vec<_> = (0..50).map(|i| pause(i * 2_000_000, 1_000_000)).collect();
        pauses.push(pause(800_000_000, 150_000_000));
        let curve = bmu_curve(&pauses, Nanos::from_secs(1), 40);
        for pair in curve.windows(2) {
            assert!(pair[0].utilization <= pair[1].utilization + 1e-12);
        }
        // Right endpoint = overall utilization.
        let total_pause: u64 = pauses.iter().map(|p| p.duration.as_nanos()).sum();
        let overall = 1.0 - total_pause as f64 / 1e9;
        let last = curve.last().unwrap().utilization;
        assert!((last - overall).abs() < 1e-9, "{last} vs {overall}");
    }

    #[test]
    fn partial_overlap_is_trimmed() {
        // Pause [100, 200); window [150, 250) of size 100 overlaps 50.
        let pauses = [pause(100, 100)];
        let got = mmu_at(&pauses, Nanos(1_000), Nanos(100));
        // The worst window fully contains the pause.
        assert_eq!(got, 0.0);
        // With window 400, worst overlap is the whole pause: 100/400.
        let got = mmu_at(&pauses, Nanos(1_000), Nanos(400));
        assert!((got - 0.75).abs() < 1e-12);
    }

    #[test]
    fn curve_windows_are_log_spaced_and_bounded() {
        let curve = mmu_curve(&[], Nanos::from_secs(10), 10);
        assert_eq!(curve.len(), 10);
        assert_eq!(curve[0].window, Nanos(1_000));
        assert_eq!(curve[9].window, Nanos::from_secs(10));
        for pair in curve.windows(2) {
            assert!(pair[0].window < pair[1].window);
        }
    }
}
