//! A deterministic simulated clock measured in nanoseconds.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span or instant of simulated time, in nanoseconds.
///
/// `Nanos` is used both for durations (costs charged by the
/// [`CostModel`](crate::CostModel)) and for instants (readings of a
/// [`Clock`]). It is a thin newtype over `u64`, so a simulation can run for
/// roughly 584 simulated years before overflow.
///
/// # Example
///
/// ```
/// use simtime::Nanos;
///
/// let pause = Nanos::from_millis(380);
/// assert_eq!(pause.as_micros(), 380_000);
/// assert_eq!(format!("{pause}"), "380ms");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero nanoseconds.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two spans.
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Nanos {
        Nanos(ns)
    }
}

impl fmt::Display for Nanos {
    /// Renders with an adaptive unit: `12ns`, `3.4us`, `56ms`, `7.8s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.1}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            let ms = ns as f64 / 1e6;
            if ms < 100.0 {
                write!(f, "{ms:.1}ms")
            } else {
                write!(f, "{ms:.0}ms")
            }
        } else {
            write!(f, "{:.2}s", ns as f64 / 1e9)
        }
    }
}

/// A monotonically advancing simulated clock.
///
/// Each simulated process (a JVM instance, the `signalmem` pressure driver)
/// owns a `Clock`; the discrete-event engine in the `simulate` crate
/// interleaves processes by least local time.
///
/// # Example
///
/// ```
/// use simtime::{Clock, Nanos};
///
/// let mut clock = Clock::new();
/// clock.advance(Nanos(40));
/// clock.advance(Nanos(2));
/// assert_eq!(clock.now(), Nanos(42));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    now: Nanos,
}

impl Clock {
    /// Creates a clock reading zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `span`.
    pub fn advance(&mut self, span: Nanos) {
        self.now += span;
    }

    /// Resets the clock to zero (used between benchmark iterations, mirroring
    /// the paper's compile-and-reset methodology in §5.1).
    pub fn reset(&mut self) {
        self.now = Nanos::ZERO;
    }

    /// Rewinds the clock by `span` (saturating at zero).
    ///
    /// This is the critical-path adjustment used by the parallel tracing
    /// scheduler: a packet drain is *executed* sequentially (charging every
    /// worker's simulated work to this clock), then the clock is rewound by
    /// `total_work - max(per_worker_work)` so the elapsed pause equals the
    /// critical path over the simulated workers rather than their sum. With
    /// one worker the rewind span is exactly zero.
    pub fn rewind(&mut self, span: Nanos) {
        self.now = self.now.saturating_sub(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_conversions_round_trip() {
        assert_eq!(Nanos::from_secs(3).as_millis(), 3_000);
        assert_eq!(Nanos::from_millis(5).as_micros(), 5_000);
        assert_eq!(Nanos::from_micros(7).as_nanos(), 7_000);
        assert!((Nanos::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos(100);
        let b = Nanos(30);
        assert_eq!(a + b, Nanos(130));
        assert_eq!(a - b, Nanos(70));
        assert_eq!(a * 3, Nanos(300));
        assert_eq!(a / 4, Nanos(25));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Nanos = [a, b, Nanos(1)].into_iter().sum();
        assert_eq!(total, Nanos(131));
    }

    #[test]
    fn display_picks_adaptive_units() {
        assert_eq!(Nanos(17).to_string(), "17ns");
        assert_eq!(Nanos(2_500).to_string(), "2.5us");
        assert_eq!(Nanos::from_millis(42).to_string(), "42.0ms");
        assert_eq!(Nanos::from_millis(380).to_string(), "380ms");
        assert_eq!(Nanos::from_secs(9).to_string(), "9.00s");
    }

    #[test]
    fn clock_advances_and_resets() {
        let mut c = Clock::new();
        assert_eq!(c.now(), Nanos::ZERO);
        c.advance(Nanos::from_micros(3));
        c.advance(Nanos(9));
        assert_eq!(c.now(), Nanos(3_009));
        c.reset();
        assert_eq!(c.now(), Nanos::ZERO);
    }

    #[test]
    fn clock_rewind_saturates_at_zero() {
        let mut c = Clock::new();
        c.advance(Nanos(100));
        c.rewind(Nanos(30));
        assert_eq!(c.now(), Nanos(70));
        c.rewind(Nanos(1_000));
        assert_eq!(c.now(), Nanos::ZERO);
    }
}
