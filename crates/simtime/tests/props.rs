//! Property tests for the BMU computation (Figure 6's metric).

use proptest::prelude::*;
use simtime::{bmu_curve, mmu_curve, Nanos, PauseKind, PauseLog};

/// Builds a chronological, non-overlapping pause log from (gap, duration)
/// pairs.
fn log_from(pairs: &[(u64, u64)]) -> (PauseLog, Nanos) {
    let mut log = PauseLog::new();
    let mut t = 0u64;
    for &(gap, dur) in pairs {
        t += gap;
        log.record(Nanos(t), Nanos(dur), PauseKind::Full, 0);
        t += dur;
    }
    (log, Nanos(t + 1_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BMU is within [0,1], monotone non-decreasing, bounded above by the
    /// raw MMU pointwise, and ends at overall utilization.
    #[test]
    fn bmu_is_sane(pairs in proptest::collection::vec((1_000u64..5_000_000, 1u64..2_000_000), 0..40)) {
        let (log, total) = log_from(&pairs);
        let bmu = bmu_curve(log.records(), total, 32);
        let mmu = mmu_curve(log.records(), total, 32);
        for (b, m) in bmu.iter().zip(&mmu) {
            prop_assert!((0.0..=1.0).contains(&b.utilization));
            prop_assert!(b.utilization <= m.utilization + 1e-12);
        }
        for w in bmu.windows(2) {
            prop_assert!(w[0].utilization <= w[1].utilization + 1e-12);
        }
        let total_pause: u64 = pairs.iter().map(|&(_, d)| d).sum();
        let overall = 1.0 - total_pause as f64 / total.as_nanos() as f64;
        let last = bmu.last().unwrap().utilization;
        prop_assert!((last - overall).abs() < 1e-9,
            "right endpoint {last} vs overall {overall}");
    }

    /// More pausing never improves BMU: adding a pause can only lower the
    /// curve (pointwise, on the shared window grid).
    #[test]
    fn extra_pause_never_helps(pairs in proptest::collection::vec((10_000u64..1_000_000, 1u64..200_000), 1..20),
                               extra in 0usize..20) {
        let (log, total) = log_from(&pairs);
        let base = bmu_curve(log.records(), total, 24);
        let mut more = pairs.clone();
        let i = extra % more.len();
        more[i].1 += 50_000; // lengthen one pause
        let (log2, total2) = log_from(&more);
        // Compare on the same absolute total (use the longer).
        let t = total.max(total2);
        let base2 = bmu_curve(log.records(), t, 24);
        let worse = bmu_curve(log2.records(), t, 24);
        let _ = base;
        for (b, w) in base2.iter().zip(&worse) {
            prop_assert!(w.utilization <= b.utilization + 1e-9);
        }
    }
}
