//! The `#[zero_alloc]` marker attribute.
//!
//! DESIGN.md §10 requires the tracing loop and the VMM touch fast path to
//! run without heap allocation. The compiler cannot check that, so the rule
//! is enforced in two halves:
//!
//! * this attribute marks the functions that promise it (the marker expands
//!   to nothing — zero runtime cost, zero extra dependencies), and
//! * `cargo xtask lint` scans every marked body for allocation-capable
//!   calls (`Vec::new`, `format!`, `collect()`, …) and fails the build on
//!   any hit.
//!
//! Growth of *reused* scratch buffers (`reserve`/`push` on a buffer that
//! lives across calls) is permitted: it amortizes to zero, which is the
//! invariant the runtime tests in `heap/tests/zero_alloc_trace.rs` pin.

use proc_macro::TokenStream;

/// Marks a function as allocation-free; checked by `cargo xtask lint`.
#[proc_macro_attribute]
pub fn zero_alloc(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
