//! Workspace task runner.
//!
//! ```text
//! cargo xtask lint
//! ```
//!
//! `lint` is the project-specific static pass: the rules DESIGN.md states
//! but the compiler and clippy cannot express. It is a hand-rolled text
//! scanner (the workspace deliberately carries no proc-macro-parsing
//! dependency); comments and string literals are stripped before matching,
//! so doc text never trips a rule. Four rule families:
//!
//! 1. **zero-alloc bodies** — every function marked `#[zero_alloc]` must
//!    contain no allocation-capable call (`Vec::new`, `format!`,
//!    `collect()`, …). Growth of *reused* buffers (`push`/`reserve` on a
//!    caller-owned scratch vector) is permitted: it amortizes to zero,
//!    which is the invariant `heap/tests/zero_alloc_trace.rs` pins at
//!    runtime. A registry also pins that the functions DESIGN.md §10
//!    names stay marked, so deleting the attribute is itself a lint error.
//! 2. **determinism** — simulation crates never read the host clock or a
//!    host RNG (`Instant::now`, `SystemTime`, `thread_rng`): all time is
//!    simulated, all randomness is seeded. The perf harness (`bench`) and
//!    the vendored dev shims are exempt.
//! 3. **`#[cold]` registry** — the designated slow-path outlines
//!    (`Vmm::touch_slow`, `BumpSpace::grow_and_alloc`, `Tracer::record`)
//!    must keep their `#[cold]` attribute so the hot paths stay small
//!    enough to inline.
//! 4. **dead API tokens** — removed APIs must not creep back in; the one
//!    registered token today is the deleted `Vmm::take_events` mailbox
//!    drain (replaced by `drain_events_into`).

use std::path::{Path, PathBuf};

/// One lint finding: where, which rule, and what to do about it.
#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Calls that may allocate from the global heap, banned inside
/// `#[zero_alloc]` bodies. Deliberately NOT listed: `push`, `reserve`,
/// `insert` — growing a reused scratch buffer amortizes to zero.
const ZERO_ALLOC_BANNED: &[&str] = &[
    "Vec::new",
    "vec![",
    "Box::new",
    "Box::from",
    "String::new",
    "String::from",
    "format!",
    "to_string(",
    "to_owned(",
    "to_vec(",
    ".collect(",
    "with_capacity(",
    "HashMap::new",
    "HashSet::new",
    "BTreeMap::new",
    "BTreeSet::new",
    "VecDeque::new",
    "Rc::new",
    "Arc::new",
];

/// Functions that must stay `#[zero_alloc]`-marked (file suffix, fn name).
const REQUIRED_ZERO_ALLOC: &[(&str, &str)] = &[
    ("crates/heap/src/gc.rs", "scan_refs_into"),
    ("crates/heap/src/gc.rs", "drain_gray"),
    ("crates/heap/src/packet.rs", "acquire"),
    ("crates/heap/src/packet.rs", "pop_obj"),
    ("crates/heap/src/packet.rs", "push_obj"),
    ("crates/vmm/src/vmm.rs", "touch"),
];

/// Host-nondeterminism tokens banned from simulation crates.
const DETERMINISM_BANNED: &[&str] = &["Instant::now", "SystemTime", "thread_rng"];

/// Crates exempt from the determinism ban: the perf harness measures host
/// wall-clock on purpose, and the vendored dev-dependency shims are not
/// simulation code. (`xtask` is exempt from everything: it names the
/// banned tokens.)
const DETERMINISM_EXEMPT: &[&str] = &[
    "bench",
    "criterion",
    "rand",
    "proptest",
    "xtask",
    "zero_alloc",
];

/// Slow-path outlines that must keep `#[cold]` (file suffix, fn name).
const REQUIRED_COLD: &[(&str, &str)] = &[
    ("crates/vmm/src/vmm.rs", "touch_slow"),
    ("crates/heap/src/bump.rs", "grow_and_alloc"),
    ("crates/heap/src/packet.rs", "fresh_packet"),
    ("crates/telemetry/src/tracer.rs", "record"),
];

/// Removed-API tokens that must not reappear (token, replacement hint).
/// Tokens are spelled split so this file never contains them itself.
fn dead_tokens() -> Vec<(String, &'static str)> {
    vec![(
        ["take_", "events"].concat(),
        "drain the mailbox with Vmm::drain_events_into / discard_events",
    )]
}

/// Strips `//` comments, `/* */` comments, and the *contents* of string
/// literals from source, line by line, so token scans never match doc
/// text or message strings. Char literals and lifetimes are handled well
/// enough for real code (`'"'` does not open a string; `'a` is left
/// alone). Line structure is preserved for error reporting.
fn strip_source(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    let mut in_string = false;
    for line in content.lines() {
        let mut kept = String::with_capacity(line.len());
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            if in_block_comment {
                if c == '*' && next == Some('/') {
                    in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if in_string {
                if c == '\\' {
                    i += 2; // skip the escaped character
                } else if c == '"' {
                    in_string = false;
                    kept.push('"');
                    i += 1;
                } else {
                    i += 1; // drop string contents
                }
                continue;
            }
            match c {
                '/' if next == Some('/') => break, // line comment: drop the rest
                '/' if next == Some('*') => {
                    in_block_comment = true;
                    i += 2;
                }
                '"' => {
                    in_string = true;
                    kept.push('"');
                    i += 1;
                }
                '\'' => {
                    // Char literal ('x', '\n', '\'') vs lifetime ('a).
                    if next == Some('\\') && bytes.get(i + 3) == Some(&'\'') {
                        i += 4;
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        i += 3;
                    } else {
                        kept.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    kept.push(c);
                    i += 1;
                }
            }
        }
        out.push(kept);
    }
    out
}

/// Extracts the function name from a stripped line containing `fn `.
fn fn_name(line: &str) -> Option<&str> {
    let at = line.find("fn ")?;
    // Guard against identifiers ending in "fn".
    if at > 0 && line.as_bytes()[at - 1].is_ascii_alphanumeric() {
        return None;
    }
    let rest = line[at + 3..].trim_start();
    let end = rest.find(|c: char| !c.is_alphanumeric() && c != '_')?;
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// Scans one file's `#[zero_alloc]` bodies for banned calls. Returns the
/// names of every marked function found (for the registry check).
fn check_zero_alloc(file: &str, stripped: &[String], out: &mut Vec<Violation>) -> Vec<String> {
    let mut marked = Vec::new();
    let mut i = 0;
    while i < stripped.len() {
        let attr = stripped[i].trim();
        if attr != "#[zero_alloc]" && attr != "#[zero_alloc::zero_alloc]" {
            i += 1;
            continue;
        }
        // Find the fn this attribute decorates (other attributes and doc
        // lines may sit in between).
        let mut j = i + 1;
        while j < stripped.len() && fn_name(&stripped[j]).is_none() {
            j += 1;
        }
        let Some(name) = (j < stripped.len())
            .then(|| fn_name(&stripped[j]))
            .flatten()
        else {
            i += 1;
            continue;
        };
        marked.push(name.to_string());
        // Brace-match from the first '{' at or after the fn line.
        let mut depth = 0usize;
        let mut entered = false;
        let mut k = j;
        'body: while k < stripped.len() {
            for c in stripped[k].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break 'body;
                        }
                    }
                    _ => {}
                }
            }
            if entered {
                for banned in ZERO_ALLOC_BANNED {
                    if stripped[k].contains(banned) {
                        out.push(Violation {
                            file: file.to_string(),
                            line: k + 1,
                            rule: "zero-alloc",
                            message: format!(
                                "`{banned}` in #[zero_alloc] fn `{name}` may allocate; \
                                 reuse a caller-owned scratch buffer instead"
                            ),
                        });
                    }
                }
            }
            k += 1;
        }
        i = j + 1;
    }
    marked
}

/// Scans stripped source for banned tokens, attributing each hit.
fn check_tokens(
    file: &str,
    stripped: &[String],
    tokens: &[(String, &'static str)],
    rule: &'static str,
    out: &mut Vec<Violation>,
) {
    for (n, line) in stripped.iter().enumerate() {
        for (token, hint) in tokens {
            if line.contains(token.as_str()) {
                out.push(Violation {
                    file: file.to_string(),
                    line: n + 1,
                    rule,
                    message: format!("`{token}` is banned here: {hint}"),
                });
            }
        }
    }
}

/// Checks that `fn name` in this file carries `#[cold]` among the
/// attribute lines directly above it.
fn check_cold(file: &str, stripped: &[String], name: &str, out: &mut Vec<Violation>) {
    let needle = format!("fn {name}(");
    for (n, line) in stripped.iter().enumerate() {
        if !line.contains(&needle) || fn_name(line) != Some(name) {
            continue;
        }
        let mut k = n;
        let mut found = false;
        while k > 0 {
            k -= 1;
            let above = stripped[k].trim();
            if above == "#[cold]" {
                found = true;
                break;
            }
            // Keep walking up through the attribute/doc block only.
            if !(above.starts_with("#[") || above.starts_with("///") || above.is_empty()) {
                break;
            }
        }
        if !found {
            out.push(Violation {
                file: file.to_string(),
                line: n + 1,
                rule: "cold-registry",
                message: format!(
                    "`{name}` is a registered slow-path outline and must keep #[cold] \
                     (see DESIGN.md §10)"
                ),
            });
        }
        return;
    }
    out.push(Violation {
        file: file.to_string(),
        line: 0,
        rule: "cold-registry",
        message: format!(
            "registered #[cold] fn `{name}` not found; update the registry in \
             crates/xtask/src/main.rs if it moved"
        ),
    });
}

/// Recursively collects `.rs` files, skipping build output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == ".git")
            {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Whether `rel` (workspace-relative, '/'-separated) lives in one of the
/// named crates.
fn in_crate(rel: &str, names: &[&str]) -> bool {
    names
        .iter()
        .any(|n| rel.starts_with(&format!("crates/{n}/")))
}

/// Runs every rule over the workspace rooted at `root`.
fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rs(root, &mut files);
    files.sort();
    let mut out = Vec::new();
    let dead = dead_tokens();
    let determinism: Vec<(String, &'static str)> = DETERMINISM_BANNED
        .iter()
        .map(|t| {
            (
                (*t).to_string(),
                "simulation is deterministic; use simtime::Clock / a seeded rand::Rng",
            )
        })
        .collect();
    let mut marked: Vec<(String, String)> = Vec::new(); // (rel path, fn)
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = std::fs::read_to_string(path) else {
            continue;
        };
        let stripped = strip_source(&content);
        if in_crate(&rel, &["xtask"]) {
            continue; // the linter names every banned token
        }
        for name in check_zero_alloc(&rel, &stripped, &mut out) {
            marked.push((rel.clone(), name));
        }
        if !in_crate(&rel, DETERMINISM_EXEMPT) {
            check_tokens(&rel, &stripped, &determinism, "determinism", &mut out);
        }
        if !in_crate(&rel, &["criterion", "rand", "proptest", "zero_alloc"]) {
            check_tokens(&rel, &stripped, &dead, "dead-api", &mut out);
        }
        for (suffix, name) in REQUIRED_COLD {
            if rel.ends_with(suffix) {
                check_cold(&rel, &stripped, name, &mut out);
            }
        }
    }
    for (suffix, name) in REQUIRED_ZERO_ALLOC {
        if !marked.iter().any(|(f, n)| f.ends_with(suffix) && n == name) {
            out.push(Violation {
                file: (*suffix).to_string(),
                line: 0,
                rule: "zero-alloc",
                message: format!(
                    "`{name}` must stay #[zero_alloc]-marked (DESIGN.md §10); \
                     restore the attribute or update the registry"
                ),
            });
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") | None => {}
        Some(other) => {
            eprintln!("unknown xtask '{other}'; available: lint");
            std::process::exit(2);
        }
    }
    // crates/xtask/ -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let violations = lint_workspace(&root);
    if violations.is_empty() {
        println!("xtask lint: ok");
        return;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("xtask lint: {} violation(s)", violations.len());
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_snippet(rel: &str, src: &str) -> Vec<Violation> {
        let stripped = strip_source(src);
        let mut out = Vec::new();
        check_zero_alloc(rel, &stripped, &mut out);
        out
    }

    #[test]
    fn zero_alloc_body_with_allocation_is_flagged() {
        let src = "#[zero_alloc]\nfn hot() {\n    let v = Vec::new();\n    drop(v);\n}\n";
        let out = lint_snippet("crates/heap/src/gc.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "zero-alloc");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("Vec::new"));
        assert!(out[0].message.contains("hot"));
    }

    #[test]
    fn zero_alloc_reused_buffer_growth_is_allowed() {
        let src = "#[zero_alloc]\nfn hot(out: &mut Vec<u32>) {\n    out.clear();\n    \
                   out.reserve(8);\n    out.push(1);\n}\n";
        assert!(lint_snippet("f.rs", src).is_empty());
    }

    #[test]
    fn allocation_outside_the_marked_fn_is_ignored() {
        let src =
            "#[zero_alloc]\nfn hot() {}\n\nfn cold_path() {\n    let _ = Vec::<u32>::new();\n}\n";
        // `Vec::<u32>::new` is not the literal banned token, and more to
        // the point it is outside the marked body.
        assert!(lint_snippet("f.rs", src).is_empty());
    }

    #[test]
    fn banned_token_in_comment_or_string_is_ignored() {
        let src = "#[zero_alloc]\nfn hot() {\n    // calls like Vec::new are banned\n    \
                   let m = \"no format! here\";\n    let _ = m;\n}\n";
        assert!(lint_snippet("f.rs", src).is_empty());
    }

    #[test]
    fn determinism_ban_fires_in_sim_code() {
        let stripped = strip_source("fn t() { let _ = std::time::Instant::now(); }\n");
        let mut out = Vec::new();
        let tokens = vec![(String::from("Instant::now"), "use simtime::Clock")];
        check_tokens(
            "crates/vmm/src/vmm.rs",
            &stripped,
            &tokens,
            "determinism",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "determinism");
    }

    #[test]
    fn dead_api_token_is_flagged() {
        let token = ["take_", "events"].concat();
        let src = format!("fn drain(v: &mut Vmm) {{ v.{token}(pid); }}\n");
        let stripped = strip_source(&src);
        let mut out = Vec::new();
        check_tokens(
            "crates/simulate/src/runner.rs",
            &stripped,
            &dead_tokens(),
            "dead-api",
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("drain_events_into"));
    }

    #[test]
    fn missing_cold_attribute_is_flagged() {
        let cold = "#[cold]\n#[inline(never)]\nfn touch_slow(&mut self) {}\n";
        let hot = "#[inline(never)]\nfn touch_slow(&mut self) {}\n";
        let mut out = Vec::new();
        check_cold("v.rs", &strip_source(cold), "touch_slow", &mut out);
        assert!(out.is_empty(), "{out:?}");
        check_cold("v.rs", &strip_source(hot), "touch_slow", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "cold-registry");
    }

    #[test]
    fn string_stripping_handles_escapes_and_char_literals() {
        let stripped = strip_source(
            "let a = \"quote \\\" then Vec::new\"; let b = '\"'; let c: &'static str = \"x\";\n",
        );
        assert!(!stripped[0].contains("Vec::new"));
        assert!(stripped[0].contains("let c"));
    }

    /// The packet scheduler lives in `heap`, which must never become
    /// determinism-exempt: its work-stealing order is part of the
    /// simulation's reproducibility contract (no host clocks, no RNG).
    #[test]
    fn heap_crate_stays_under_the_determinism_ban() {
        assert!(
            !DETERMINISM_EXEMPT.contains(&"heap"),
            "crates/heap (packet tracing scheduler) must stay subject to \
             the determinism lint"
        );
    }

    /// The real workspace must lint clean — this is the same pass CI runs.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let violations = lint_workspace(&root);
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
