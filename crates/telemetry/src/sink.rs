//! Pluggable event sinks.

use std::collections::VecDeque;
use std::io::Write;

use crate::event::Event;
use crate::jsonl;

/// A destination for trace events.
///
/// Implementations must be cheap per [`TraceSink::record`] call: sinks run
/// inside the simulation's hot paths whenever tracing is enabled.
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}

    /// Returns the retained events, oldest first, for sinks that keep them
    /// in memory. Streaming sinks return `None`.
    fn snapshot(&self) -> Option<Vec<Event>> {
        None
    }
}

/// A bounded in-memory ring buffer: keeps the most recent `capacity`
/// events and counts the rest as dropped.
#[derive(Debug, Default)]
pub struct RingSink {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }

    fn snapshot(&self) -> Option<Vec<Event>> {
        Some(self.buf.iter().cloned().collect())
    }
}

/// An unbounded in-memory sink (tests and report aggregation).
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }

    fn snapshot(&self) -> Option<Vec<Event>> {
        Some(self.events.clone())
    }
}

/// Streams events as JSON Lines to any writer (see [`crate::jsonl`] for
/// the schema).
pub struct JsonlSink<W: Write> {
    out: W,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncates) `path` and streams events into it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Streams events into `out`.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        // Trace I/O errors are not allowed to kill a simulation run.
        let _ = writeln!(self.out, "{}", jsonl::to_json(event));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}
