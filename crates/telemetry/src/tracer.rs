//! The shared tracing handle.

use std::borrow::Cow;
use std::cell::RefCell;
use std::rc::Rc;

use simtime::Nanos;

use crate::event::{Event, EventKind};
use crate::sink::{RingSink, TraceSink, VecSink};

struct Hub {
    sink: Box<dyn TraceSink>,
    /// Collector label per pid (the simulation registers at most a handful
    /// of processes).
    labels: Vec<&'static str>,
}

/// A cloneable handle shared by the VMM and every collector of one
/// simulation.
///
/// A disabled tracer (the default) is a `None` — emitting through it is a
/// single branch, so fully-disabled runs pay no measurable overhead. The
/// simulation is single-threaded by construction (a deterministic
/// discrete-event loop), hence `Rc<RefCell<..>>` rather than locks.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<Hub>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer: every emit is a single predictable branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer feeding `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(Hub {
                sink,
                labels: Vec::new(),
            }))),
        }
    }

    /// A tracer retaining the most recent `capacity` events in memory.
    pub fn ring(capacity: usize) -> Tracer {
        Tracer::new(Box::new(RingSink::new(capacity)))
    }

    /// A tracer retaining every event in memory (tests, report runs).
    pub fn unbounded() -> Tracer {
        Tracer::new(Box::new(VecSink::new()))
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Associates `pid` with a collector label; subsequent events from that
    /// pid carry it.
    pub fn set_label(&self, pid: u32, label: &'static str) {
        if let Some(hub) = &self.inner {
            let labels = &mut hub.borrow_mut().labels;
            if labels.len() <= pid as usize {
                labels.resize(pid as usize + 1, "?");
            }
            labels[pid as usize] = label;
        }
    }

    /// Records one event.
    ///
    /// The disabled case inlines to a single null check at every call site;
    /// the recording machinery is outlined as a cold function so it never
    /// bloats the hot loops that call `emit`.
    #[inline(always)]
    pub fn emit(&self, pid: u32, t: Nanos, kind: EventKind) {
        if let Some(hub) = &self.inner {
            Self::record(hub, pid, t, kind);
        }
    }

    #[cold]
    #[inline(never)]
    fn record(hub: &Rc<RefCell<Hub>>, pid: u32, t: Nanos, kind: EventKind) {
        let mut hub = hub.borrow_mut();
        let collector = hub.labels.get(pid as usize).copied().unwrap_or("?");
        hub.sink.record(&Event {
            t,
            pid,
            collector: Cow::Borrowed(collector),
            kind,
        });
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        if let Some(hub) = &self.inner {
            hub.borrow_mut().sink.flush();
        }
    }

    /// Returns retained events (oldest first) for in-memory sinks; empty
    /// for disabled tracers and streaming sinks.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .and_then(|hub| hub.borrow().sink.snapshot())
            .unwrap_or_default()
    }
}
