//! Typed trace events.
//!
//! Every event carries `(pid, collector, sim_nanos)` plus a typed payload.
//! The set of kinds mirrors what the paper's evaluation (§5) needs to see:
//! collection phases with simulated-time spans, the VMM's paging traffic,
//! and BC's cooperation actions (bookmarks, discards, relinquishment, heap
//! resizing).

use std::borrow::Cow;

use simtime::Nanos;

/// A phase within one garbage collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GcPhase {
    /// Scanning the root set (stacks/registers analogue).
    RootScan,
    /// Scanning dirty cards / the write buffer for old-to-young pointers.
    CardScan,
    /// Transitive closure over the object graph.
    Trace,
    /// Sweeping unreachable cells back to free lists.
    Sweep,
    /// BC §3.4: scanning evicted/victim pages' referents into bookmarks.
    BookmarkScan,
    /// Compaction pass 1: forwarding-address computation / move.
    CompactPass1,
    /// Compaction pass 2: reference fix-up.
    CompactPass2,
}

impl GcPhase {
    /// All phases, in canonical report order.
    pub const ALL: [GcPhase; 7] = [
        GcPhase::RootScan,
        GcPhase::CardScan,
        GcPhase::Trace,
        GcPhase::Sweep,
        GcPhase::BookmarkScan,
        GcPhase::CompactPass1,
        GcPhase::CompactPass2,
    ];

    /// Stable snake_case name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            GcPhase::RootScan => "root_scan",
            GcPhase::CardScan => "card_scan",
            GcPhase::Trace => "trace",
            GcPhase::Sweep => "sweep",
            GcPhase::BookmarkScan => "bookmark_scan",
            GcPhase::CompactPass1 => "compact_pass1",
            GcPhase::CompactPass2 => "compact_pass2",
        }
    }

    /// Inverse of [`GcPhase::name`].
    pub fn from_name(name: &str) -> Option<GcPhase> {
        GcPhase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// What kind of collection a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollectionKind {
    /// Nursery-only collection.
    Minor,
    /// Whole-heap collection.
    Full,
    /// Whole-heap collection that also compacts.
    Compacting,
    /// BC's fail-safe compacting collection (§3.6).
    Failsafe,
}

impl CollectionKind {
    /// All kinds, in canonical report order.
    pub const ALL: [CollectionKind; 4] = [
        CollectionKind::Minor,
        CollectionKind::Full,
        CollectionKind::Compacting,
        CollectionKind::Failsafe,
    ];

    /// Stable snake_case name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            CollectionKind::Minor => "minor",
            CollectionKind::Full => "full",
            CollectionKind::Compacting => "compacting",
            CollectionKind::Failsafe => "failsafe",
        }
    }

    /// Inverse of [`CollectionKind::name`].
    pub fn from_name(name: &str) -> Option<CollectionKind> {
        CollectionKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// The typed payload of one trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A collection pause began.
    CollectionBegin {
        /// The collection kind.
        kind: CollectionKind,
    },
    /// The matching end of a [`EventKind::CollectionBegin`].
    CollectionEnd {
        /// The collection kind.
        kind: CollectionKind,
    },
    /// A GC phase began (always nested within a collection span).
    PhaseBegin {
        /// The phase.
        phase: GcPhase,
    },
    /// The matching end of a [`EventKind::PhaseBegin`].
    PhaseEnd {
        /// The phase.
        phase: GcPhase,
    },
    /// The VMM served a page fault for this process.
    Fault {
        /// Faulting virtual page.
        page: u32,
        /// `true` for a major (disk) fault, `false` for minor/demand-zero.
        major: bool,
    },
    /// The VMM queued an eviction notice for this page (it reached the
    /// front of the inactive list).
    EvictionScheduled {
        /// The victim page.
        page: u32,
    },
    /// The VMM evicted the page to swap.
    Evicted {
        /// The evicted page.
        page: u32,
        /// `true` when eviction happened without (or before) the grace
        /// period the notice opens — the §3.4 race case.
        hard: bool,
    },
    /// An evicted or fresh page became resident again.
    MadeResident {
        /// The page made resident.
        page: u32,
    },
    /// A protection trap fired on an `mprotect`-guarded page.
    ProtectionTrap {
        /// The guarded page.
        page: u32,
    },
    /// The process discarded the page (`madvise(MADV_DONTNEED)` analogue).
    Discard {
        /// The discarded page.
        page: u32,
    },
    /// The process voluntarily surrendered the page (`vm_relinquish`).
    Relinquish {
        /// The relinquished page.
        page: u32,
    },
    /// BC recorded a bookmark summarizing a reference into an evicted page.
    BookmarkSet {
        /// The page holding the bookmarked (target) object.
        page: u32,
    },
    /// BC cleared the bookmarks of a page that became resident again.
    BookmarkCleared {
        /// The page whose bookmarks were dropped.
        page: u32,
    },
    /// BC scanned one victim page at eviction time (§3.4).
    BookmarkScanned {
        /// The scanned victim page.
        page: u32,
    },
    /// The collector shrank its heap in response to pressure (§3.3.3).
    HeapShrink {
        /// New heap budget, in pages.
        budget_pages: u32,
        /// The sizing policy's reasoning (e.g. `"footprint-shrink"`).
        reason: Cow<'static, str>,
    },
    /// The collector regrew its heap after pressure subsided (§7).
    HeapGrow {
        /// New heap budget, in pages.
        budget_pages: u32,
        /// The sizing policy's reasoning (e.g. `"regrow"`).
        reason: Cow<'static, str>,
    },
    /// Per-worker summary of one parallel packet-drain (emitted once per
    /// simulated GC worker at the end of each collection's trace).
    TraceWorker {
        /// Worker index within the drain, `0..gc_threads`.
        worker: u32,
        /// Work packets this worker drained (including stolen ones).
        packets: u64,
        /// Packets this worker stole from other workers' deques.
        steals: u64,
        /// Objects this worker scanned.
        objects: u64,
        /// Simulated time this worker spent tracing, in nanoseconds.
        busy_ns: u64,
        /// Simulated time this worker idled while the critical-path worker
        /// was still tracing: `max(busy) - busy`, in nanoseconds.
        idle_ns: u64,
    },
    /// Residency snapshot of one superpage after a major collection.
    Residency {
        /// First page of the superpage.
        superpage: u32,
        /// Pages of it currently resident.
        resident: u32,
        /// Pages in the superpage.
        total: u32,
    },
}

impl EventKind {
    /// Stable snake_case tag used in the JSONL schema.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::CollectionBegin { .. } => "collection_begin",
            EventKind::CollectionEnd { .. } => "collection_end",
            EventKind::PhaseBegin { .. } => "phase_begin",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::Fault { .. } => "fault",
            EventKind::EvictionScheduled { .. } => "eviction_scheduled",
            EventKind::Evicted { .. } => "evicted",
            EventKind::MadeResident { .. } => "made_resident",
            EventKind::ProtectionTrap { .. } => "protection_trap",
            EventKind::Discard { .. } => "discard",
            EventKind::Relinquish { .. } => "relinquish",
            EventKind::BookmarkSet { .. } => "bookmark_set",
            EventKind::BookmarkCleared { .. } => "bookmark_cleared",
            EventKind::BookmarkScanned { .. } => "bookmark_scanned",
            EventKind::HeapShrink { .. } => "heap_shrink",
            EventKind::HeapGrow { .. } => "heap_grow",
            EventKind::TraceWorker { .. } => "trace_worker",
            EventKind::Residency { .. } => "residency",
        }
    }
}

/// One structured trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated time of the event (the emitting process's clock).
    pub t: Nanos,
    /// Process id within the shared VMM.
    pub pid: u32,
    /// Collector label of the process (`"BC"`, `"GenMS"`, …) or `"?"` if
    /// the process never registered one (e.g. the signalmem driver).
    pub collector: Cow<'static, str>,
    /// The typed payload.
    pub kind: EventKind,
}
