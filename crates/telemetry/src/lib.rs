//! Structured GC/VMM telemetry for the bookmarking-collector reproduction.
//!
//! The paper's evaluation (§5) hinges on fine-grained visibility: per-phase
//! pause breakdowns, page-fault and eviction timelines, bookmark churn.
//! End-of-run counters cannot answer "what did BC do during the eviction
//! storm at t=1.2s", so this crate records **typed events** — each carrying
//! `(pid, collector, sim_nanos)` — through a zero-overhead-when-disabled
//! [`Tracer`] shared by the VMM and every collector of one simulation:
//!
//! * collection and phase **spans** (root scan, trace, sweep, compact
//!   passes) in simulated time;
//! * **VMM events**: faults, eviction notices, evictions, `madvise`
//!   discards, `vm_relinquish`, `mprotect` traps;
//! * **BC cooperation**: bookmark set/clear with page ids, victim-page
//!   scans, heap shrink/grow decisions, per-superpage residency snapshots.
//!
//! Sinks are pluggable ([`TraceSink`]): a bounded [`RingSink`], an
//! unbounded [`VecSink`], and a streaming [`JsonlSink`] whose line format
//! is documented in [`jsonl`] and exactly round-trips via [`jsonl::parse`].
//! [`aggregate`] reduces a stream to per-phase/per-kind
//! [`DurationHistogram`]s and a time-bucketed [`SeriesBucket`] series for
//! reports.

#![warn(missing_docs)]

mod agg;
mod event;
pub mod jsonl;
mod sink;
mod tracer;

pub use agg::{aggregate, Aggregate, DurationHistogram, EventCounts, SeriesBucket};
pub use event::{CollectionKind, Event, EventKind, GcPhase};
pub use sink::{JsonlSink, RingSink, TraceSink, VecSink};
pub use tracer::Tracer;

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Nanos;
    use std::borrow::Cow;

    fn ev(t: u64, kind: EventKind) -> Event {
        Event {
            t: Nanos(t),
            pid: 0,
            collector: Cow::Borrowed("BC"),
            kind,
        }
    }

    #[test]
    fn ring_sink_preserves_order_and_monotonic_timestamps() {
        let tracer = Tracer::ring(128);
        tracer.set_label(0, "BC");
        for i in 0..200u64 {
            tracer.emit(
                0,
                Nanos(i * 10),
                EventKind::Fault {
                    page: i as u32,
                    major: i % 2 == 0,
                },
            );
        }
        let events = tracer.snapshot();
        // Capacity bounds retention: only the latest 128 survive, in order.
        assert_eq!(events.len(), 128);
        assert_eq!(events.first().unwrap().t, Nanos(72 * 10));
        assert_eq!(events.last().unwrap().t, Nanos(199 * 10));
        for w in events.windows(2) {
            assert!(w[0].t <= w[1].t, "timestamps must be monotonic");
        }
        for e in &events {
            assert_eq!(e.collector, "BC");
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.emit(0, Nanos(1), EventKind::Discard { page: 1 });
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let kinds = vec![
            EventKind::CollectionBegin {
                kind: CollectionKind::Minor,
            },
            EventKind::CollectionEnd {
                kind: CollectionKind::Failsafe,
            },
            EventKind::PhaseBegin {
                phase: GcPhase::RootScan,
            },
            EventKind::PhaseEnd {
                phase: GcPhase::CompactPass2,
            },
            EventKind::Fault {
                page: 41,
                major: true,
            },
            EventKind::Fault {
                page: 42,
                major: false,
            },
            EventKind::EvictionScheduled { page: 7 },
            EventKind::Evicted {
                page: 7,
                hard: true,
            },
            EventKind::MadeResident { page: 7 },
            EventKind::ProtectionTrap { page: 9 },
            EventKind::Discard { page: 3 },
            EventKind::Relinquish { page: 4 },
            EventKind::BookmarkSet { page: 11 },
            EventKind::BookmarkCleared { page: 11 },
            EventKind::BookmarkScanned { page: 12 },
            EventKind::HeapShrink {
                budget_pages: 512,
                reason: Cow::Borrowed("footprint-shrink"),
            },
            EventKind::HeapGrow {
                budget_pages: 1024,
                reason: Cow::Borrowed("regrow"),
            },
            EventKind::TraceWorker {
                worker: 3,
                packets: 17,
                steals: 2,
                objects: 900,
                busy_ns: 123_456,
                idle_ns: 789,
            },
            EventKind::Residency {
                superpage: 16,
                resident: 3,
                total: 4,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let original = Event {
                t: Nanos(1_000_000 + i as u64),
                pid: i as u32,
                collector: Cow::Borrowed("GenMS"),
                kind,
            };
            let line = jsonl::to_json(&original);
            let parsed = jsonl::parse(&line).unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(parsed, original, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn jsonl_document_round_trips_and_escapes() {
        let events = vec![
            Event {
                t: Nanos(5),
                pid: 2,
                collector: Cow::Borrowed("odd\"label\\x"),
                kind: EventKind::Relinquish { page: 1 },
            },
            ev(9, EventKind::BookmarkSet { page: 2 }),
        ];
        let doc: String = events.iter().map(|e| jsonl::to_json(e) + "\n").collect();
        assert_eq!(jsonl::parse_all(&doc).unwrap(), events);
        assert!(jsonl::parse("{\"event\":\"no_such_tag\"}").is_none());
    }

    #[test]
    fn aggregate_builds_phase_histograms_and_series() {
        let events = vec![
            ev(
                0,
                EventKind::CollectionBegin {
                    kind: CollectionKind::Full,
                },
            ),
            ev(
                10,
                EventKind::PhaseBegin {
                    phase: GcPhase::RootScan,
                },
            ),
            ev(
                110,
                EventKind::PhaseEnd {
                    phase: GcPhase::RootScan,
                },
            ),
            ev(
                110,
                EventKind::PhaseBegin {
                    phase: GcPhase::Trace,
                },
            ),
            ev(
                1_110,
                EventKind::PhaseEnd {
                    phase: GcPhase::Trace,
                },
            ),
            ev(
                1_200,
                EventKind::CollectionEnd {
                    kind: CollectionKind::Full,
                },
            ),
            ev(
                2_000,
                EventKind::Fault {
                    page: 1,
                    major: true,
                },
            ),
            ev(
                3_000,
                EventKind::Evicted {
                    page: 1,
                    hard: false,
                },
            ),
        ];
        let agg = aggregate(&events, Nanos(1_000));
        assert_eq!(agg.counts.collections, 1);
        assert_eq!(agg.counts.major_faults, 1);
        assert_eq!(agg.counts.evictions, 1);
        let root = agg.phase(GcPhase::RootScan).unwrap();
        assert_eq!(root.count(), 1);
        assert_eq!(root.mean(), Nanos(100));
        let full = agg.collection(CollectionKind::Full).unwrap();
        assert_eq!(full.total(), Nanos(1_200));
        assert!(full.percentile(99.0) >= Nanos(1_200));
        // Series: fault lands in bucket 2, eviction in bucket 3.
        assert_eq!(agg.series.len(), 4);
        assert_eq!(agg.series[2].counts.major_faults, 1);
        assert_eq!(agg.series[3].counts.evictions, 1);
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = DurationHistogram::new();
        for ns in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            h.record(Nanos(ns));
        }
        assert!(h.percentile(50.0) <= h.percentile(90.0));
        assert!(h.percentile(90.0) <= h.percentile(100.0));
        assert_eq!(h.max(), Nanos(100_000));
        assert_eq!(h.count(), 6);
        assert!(!h.nonzero_buckets().is_empty());
    }
}
