//! Aggregation of raw event streams into report-ready statistics:
//! per-phase/per-kind duration histograms and a time-bucketed series.

use simtime::Nanos;

use crate::event::{CollectionKind, Event, EventKind, GcPhase};

/// A power-of-two-bucketed duration histogram (bucket *i* covers durations
/// with `ilog2 == i`, i.e. `[2^i, 2^(i+1))` ns; bucket 0 also holds 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurationHistogram {
    buckets: [u64; 64],
    count: u64,
    total_ns: u128,
    max_ns: u64,
}

impl Default for DurationHistogram {
    fn default() -> DurationHistogram {
        DurationHistogram {
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> DurationHistogram {
        DurationHistogram::default()
    }

    /// Adds one duration.
    pub fn record(&mut self, d: Nanos) {
        let ns = d.as_nanos();
        let idx = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration (zero when empty).
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            Nanos((self.total_ns / self.count as u128) as u64)
        }
    }

    /// Largest recorded duration.
    pub fn max(&self) -> Nanos {
        Nanos(self.max_ns)
    }

    /// Sum of recorded durations.
    pub fn total(&self) -> Nanos {
        Nanos(self.total_ns.min(u64::MAX as u128) as u64)
    }

    /// Approximate percentile (`p` in `[0, 100]`): the upper bound of the
    /// bucket containing the `p`-th observation.
    pub fn percentile(&self, p: f64) -> Nanos {
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Nanos(upper.min(self.max_ns));
            }
        }
        Nanos(self.max_ns)
    }

    /// Non-empty `(bucket_lower_bound_ns, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
            .collect()
    }
}

/// Scalar event counts over a stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Major (disk) faults.
    pub major_faults: u64,
    /// Minor / demand-zero faults.
    pub minor_faults: u64,
    /// Eviction notices queued.
    pub eviction_notices: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Pages evicted without the cooperative grace path.
    pub hard_evictions: u64,
    /// Pages made resident.
    pub made_resident: u64,
    /// Protection traps.
    pub protection_traps: u64,
    /// Pages discarded via `madvise`.
    pub discards: u64,
    /// Pages relinquished via `vm_relinquish`.
    pub relinquished: u64,
    /// Bookmarks set.
    pub bookmarks_set: u64,
    /// Bookmarks cleared.
    pub bookmarks_cleared: u64,
    /// Victim pages bookmark-scanned.
    pub bookmark_scans: u64,
    /// Heap shrink decisions.
    pub heap_shrinks: u64,
    /// Heap regrow decisions.
    pub heap_grows: u64,
    /// Collections started.
    pub collections: u64,
    /// Work packets drained by GC workers (summed over `TraceWorker` events).
    pub trace_packets: u64,
    /// Work packets stolen between GC workers.
    pub trace_steals: u64,
}

/// One bucket of the time series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeriesBucket {
    /// Bucket start time.
    pub start: Nanos,
    /// Event counts within `[start, start + width)`.
    pub counts: EventCounts,
}

/// Everything derived from one event stream.
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    /// Duration histogram per collection kind (collection spans).
    pub collections: Vec<(CollectionKind, DurationHistogram)>,
    /// Duration histogram per GC phase (phase spans).
    pub phases: Vec<(GcPhase, DurationHistogram)>,
    /// Whole-stream scalar counts.
    pub counts: EventCounts,
    /// Time-bucketed counts (empty if `bucket` was zero).
    pub series: Vec<SeriesBucket>,
}

impl Aggregate {
    /// The histogram for `phase`, if any events recorded it.
    pub fn phase(&self, phase: GcPhase) -> Option<&DurationHistogram> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, h)| h)
    }

    /// The histogram for collection `kind`, if any events recorded it.
    pub fn collection(&self, kind: CollectionKind) -> Option<&DurationHistogram> {
        self.collections
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| h)
    }
}

fn bump(counts: &mut EventCounts, kind: &EventKind) {
    match kind {
        EventKind::Fault { major: true, .. } => counts.major_faults += 1,
        EventKind::Fault { major: false, .. } => counts.minor_faults += 1,
        EventKind::EvictionScheduled { .. } => counts.eviction_notices += 1,
        EventKind::Evicted { hard, .. } => {
            counts.evictions += 1;
            if *hard {
                counts.hard_evictions += 1;
            }
        }
        EventKind::MadeResident { .. } => counts.made_resident += 1,
        EventKind::ProtectionTrap { .. } => counts.protection_traps += 1,
        EventKind::Discard { .. } => counts.discards += 1,
        EventKind::Relinquish { .. } => counts.relinquished += 1,
        EventKind::BookmarkSet { .. } => counts.bookmarks_set += 1,
        EventKind::BookmarkCleared { .. } => counts.bookmarks_cleared += 1,
        EventKind::BookmarkScanned { .. } => counts.bookmark_scans += 1,
        EventKind::HeapShrink { .. } => counts.heap_shrinks += 1,
        EventKind::HeapGrow { .. } => counts.heap_grows += 1,
        EventKind::CollectionBegin { .. } => counts.collections += 1,
        EventKind::TraceWorker {
            packets, steals, ..
        } => {
            counts.trace_packets += packets;
            counts.trace_steals += steals;
        }
        _ => {}
    }
}

/// Aggregates an event stream.
///
/// Span matching pairs each `*Begin` with the next same-pid, same-payload
/// `*End`; unmatched begins (a truncated ring) are dropped. `bucket` is the
/// time-series bucket width; pass [`Nanos::ZERO`] to skip the series.
pub fn aggregate(events: &[Event], bucket: Nanos) -> Aggregate {
    let mut agg = Aggregate::default();
    // (pid, discriminating payload) -> start time; small linear maps are
    // fine at trace volumes.
    let mut open_coll: Vec<(u32, CollectionKind, Nanos)> = Vec::new();
    let mut open_phase: Vec<(u32, GcPhase, Nanos)> = Vec::new();
    for e in events {
        bump(&mut agg.counts, &e.kind);
        match &e.kind {
            EventKind::CollectionBegin { kind } => {
                open_coll.push((e.pid, *kind, e.t));
            }
            EventKind::CollectionEnd { kind } => {
                if let Some(i) = open_coll
                    .iter()
                    .rposition(|(p, k, _)| *p == e.pid && k == kind)
                {
                    let (_, _, start) = open_coll.remove(i);
                    let hist = match agg.collections.iter_mut().find(|(k, _)| k == kind) {
                        Some((_, h)) => h,
                        None => {
                            agg.collections.push((*kind, DurationHistogram::new()));
                            &mut agg.collections.last_mut().unwrap().1
                        }
                    };
                    hist.record(e.t.saturating_sub(start));
                }
            }
            EventKind::PhaseBegin { phase } => {
                open_phase.push((e.pid, *phase, e.t));
            }
            EventKind::PhaseEnd { phase } => {
                if let Some(i) = open_phase
                    .iter()
                    .rposition(|(p, f, _)| *p == e.pid && f == phase)
                {
                    let (_, _, start) = open_phase.remove(i);
                    let hist = match agg.phases.iter_mut().find(|(f, _)| f == phase) {
                        Some((_, h)) => h,
                        None => {
                            agg.phases.push((*phase, DurationHistogram::new()));
                            &mut agg.phases.last_mut().unwrap().1
                        }
                    };
                    hist.record(e.t.saturating_sub(start));
                }
            }
            _ => {}
        }
        if bucket > Nanos::ZERO {
            let idx = (e.t.as_nanos() / bucket.as_nanos()) as usize;
            if agg.series.len() <= idx {
                let width = bucket.as_nanos();
                while agg.series.len() <= idx {
                    let start = Nanos(agg.series.len() as u64 * width);
                    agg.series.push(SeriesBucket {
                        start,
                        counts: EventCounts::default(),
                    });
                }
            }
            bump(&mut agg.series[idx].counts, &e.kind);
        }
    }
    // Keep report order canonical.
    agg.collections
        .sort_by_key(|(k, _)| CollectionKind::ALL.iter().position(|c| c == k));
    agg.phases
        .sort_by_key(|(p, _)| GcPhase::ALL.iter().position(|f| f == p));
    agg
}
